// Experiment F1 — the Figure 1 artefact: the noise-cluster macromodel of a
// victim and two coupled aggressors.
//
// Figure 1 in the paper is a schematic, not a data plot; its reproduction
// is the assembled macromodel itself. This bench builds the Fig. 1 cluster
// (victim + two aggressors), prints every element with its characterized
// value, and then verifies each element against its source:
//   * the load-curve VCCS vanishes at the holding point and is strongly
//     non-linear across the sweep;
//   * each Thevenin ramp + R_TH reproduces the golden driver transition;
//   * the reduced coupled network preserves the driving-point moments and
//     the pair coupling totals.
#include "bench_common.hpp"

#include "mor/linear_network.hpp"
#include "mor/pi_model.hpp"

int main() {
    using namespace bench;
    const auto spec = paperCluster(/*aggressors=*/2);
    const core::ClusterMacromodel model(spec);

    std::printf("Figure 1. Noise cluster macromodel (victim + two coupled "
                "aggressors)\n\n%s\n", model.describe().c_str());

    // ---- element verification -------------------------------------------
    util::Table t({"Element", "Check", "Value", "Verdict"});

    const auto& lc = model.loadCurve();
    const double iHold = lc(model.inputHoldLevel(), model.outputHoldLevel());
    t.addRow({"VCCS I_DC", "I at holding point (A)",
              util::Table::num(iHold, 9),
              std::abs(iHold) < 1e-5 ? "ok" : "FAIL"});
    const double iMid = lc(model.inputHoldLevel(), 0.5 * spec.technology->vdd);
    const double iHalfDrive =
        lc(0.5 * spec.technology->vdd, 0.5 * spec.technology->vdd);
    t.addRow({"VCCS I_DC", "restoring current, full drive (mA)",
              util::Table::num(iMid * 1e3, 3), iMid > 1e-4 ? "ok" : "FAIL"});
    t.addRow({"VCCS I_DC", "non-linearity: I(half drive)/I(full drive)",
              util::Table::num(iHalfDrive / iMid, 3),
              (iHalfDrive < 0.7 * iMid) ? "ok (strongly non-linear)"
                                         : "FAIL"});

    const ic::RcNetwork& net = model.interconnect();
    const mor::LinearNetwork lin(net);
    for (int w = 0; w < net.wireCount(); ++w) {
        std::vector<int> shorted;
        for (int o = 0; o < net.wireCount(); ++o) {
            if (o != w) shorted.push_back(net.driverNode(o));
        }
        const auto y = lin.admittanceMoments(net.driverNode(w), shorted, 3);
        // Reduced model self-capacitance + explicit coupling == y1.
        const auto& pi = model.reducedPi().nets[w].pi;
        double cc = 0.0;
        for (int o = 0; o < net.wireCount(); ++o) {
            if (o != w) cc += net.couplingCapBetween(w, o);
        }
        const double m1err = (pi.totalCap() + cc - y[0]) / y[0];
        t.addRow({"reduced net " + net.wireName(w),
                  "self-admittance m1 preserved (rel err)",
                  util::Table::num(m1err, 6),
                  std::abs(m1err) < 1e-6 ? "ok" : "FAIL"});
    }
    for (const auto& cp : model.reducedPi().couplings) {
        const double ccPair = net.couplingCapBetween(cp.netA, cp.netB);
        const double err = (cp.nearCap + cp.farCap - ccPair) / ccPair;
        t.addRow({"coupling " + net.wireName(cp.netA) + "<->" +
                      net.wireName(cp.netB),
                  "total coupling preserved (rel err)",
                  util::Table::num(err, 6),
                  std::abs(err) < 1e-9 ? "ok" : "FAIL"});
    }

    for (std::size_t a = 0; a < model.aggressorModels().size(); ++a) {
        const auto& m = model.aggressorModels()[a];
        t.addRow({"Thevenin agg" + std::to_string(a),
                  "R_TH (ohm) / slew (ps)",
                  util::Table::num(m.rth, 1) + " / " +
                      util::Table::num(m.slew * 1e12, 1),
                  (m.rth > 1.0 && m.slew > 1e-12) ? "ok" : "FAIL"});
    }
    for (std::size_t w = 0; w < model.receiverCaps().size(); ++w) {
        t.addRow({"receiver " + std::to_string(w), "input cap (fF)",
                  util::Table::num(model.receiverCaps()[w] * 1e15, 2),
                  model.receiverCaps()[w] > 0.0 ? "ok" : "FAIL"});
    }
    std::printf("%s\n", t.str().c_str());

    // ---- end-to-end sanity of the Fig. 1 model ---------------------------
    const auto run = runAligned(spec, model);
    std::printf("macromodel vs golden at worst alignment: peak %+.1f%%, "
                "area %+.1f%% (paper: within few percent)\n",
                100 * pctError(run.macro_.metrics.peak,
                               run.golden.metrics.peak),
                100 * pctError(run.macro_.metrics.area,
                               run.golden.metrics.area));
    return 0;
}

// Experiment D1 — design-scale throughput of the full-design noise pipeline.
//
// Generates synthetic N-net coupled designs (a ring of parallel routes, each
// net coupled to both neighbours through distinct caps) as SPEF text,
// connects a gate-level design to them, and times end-to-end analyzeDesign:
//   * reference: the pre-index brute-force sweep (linear instance scans,
//     all-net cap scans, full per-cluster re-characterization, serial);
//   * optimized: DesignIndex + shared CharCache, swept across --threads
//     (default 1,2,4,8);
//   * propagate: the same parasitics wired as `--chains` parallel chains of
//     depth N/chains (deep levels), analyzed with the dependency-counted
//     task-graph wavefront and stage-to-stage glitch propagation, across
//     the same thread sweep. All sweep margins are cross-checked bitwise
//     against t=1, the max-thread run is cross-checked bitwise against the
//     level-barrier mode and reports its scheduler counters (tasks, steals,
//     ready-frontier high water, per-worker busy fractions), and the count
//     of combined-only failures (nets the flat local-only sweep passes but
//     the propagated verdict fails) is reported;
//   * windowed: the chained wavefront again with alternating disjoint
//     switching windows (even nets early, odd nets late), measuring the
//     pessimism the FRAME-style window constraints recover: excluded
//     aggressors, dropped incoming glitches, and the worst
//     unconstrained-vs-windowed margins;
//   * cache: the chained wavefront run cold (fresh CharCache), saved to the
//     snacache file, loaded into a fresh cache, and re-run warm — the warm
//     run must replace every characterization with a disk hit;
//   * eco: `--eco K` drivers near the chain tails are resized in place
//     (Design::replaceCell) and analyzeDesignIncremental re-solves the
//     dirty cone against the retained snapshot, timed against the full
//     warm-cache re-run; the incremental margins must match the full run
//     bitwise (incremental_margin_diff, asserted 0).
// Margins are cross-checked within 1e-9 between every flat path. Emits one
// JSON object (for the bench trajectory) after the human-readable table.
//
// Run:  ./build/bench_design_scale [--nets 50,200,800] [--threads 1,2,4,8]
//                                  [--reference-max 200] [--chains 4]
//                                  [--eco 1] [--smoke]
// --smoke: one tiny size, threads 1,4, no reference sweep — a CI-speed run
// whose JSON carries the full schema so bench bit-rot is caught before
// merge.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/design_index.hpp"
#include "core/frontend.hpp"
#include "core/incremental.hpp"
#include "core/sna.hpp"
#include "lint/lint.hpp"
#include "interconnect/parallel_bus.hpp"
#include "parser/verilog_parser.hpp"
#include "parser/windows_parser.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sna;

// Ring design: net i is driven by d<i>, loaded by r<i>, and coupled to nets
// i-1 and i+1 through mid-node caps with distinct values (no rank ties).
// `quietEvery` > 0 leaves every quietEvery-th net without any coupling cap
// (to either neighbour): those nets are not victim clusters, so with
// propagation on they exercise the pass-through propagation-table path.
std::string syntheticSpef(int nets, double ccScale = 1.0,
                          int quietEvery = 0) {
    const auto quiet = [quietEvery](int i) {
        return quietEvery > 0 && i % quietEvery == quietEvery - 1;
    };
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"scale_" << nets << "\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        // fF, to the right-hand neighbour
        const double cc = (8.0 + (i % 11)) * ccScale;
        const bool couple = !quiet(i) && !quiet(j);
        os << "*D_NET n" << i << " " << (6.5 + (couple ? cc : 0.0)) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        if (couple) {
            os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        }
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    return os.str();
}

void buildDesign(core::Design& design, int nets) {
    auto inst = [&](const std::string& name, const std::string& cellName,
                    std::map<std::string, std::string> pins) {
        core::Instance in;
        in.name = name;
        in.cellName = cellName;
        in.pinToNet = std::move(pins);
        design.addInstance(std::move(in));
    };
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        inst("d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
             {{"a", "pi" + n}, {"y", "n" + n}});
        inst("r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
             {{"a", "n" + n}, {"y", "po" + n}});
    }
}

// Chained variant of the same parasitics: the N ring-coupled nets become
// `chains` parallel chains of depth N/chains (g_i: n_{i-1} -> n_i), so the
// levelized wavefront is deep and each level holds ~`chains` victims.
void buildChainedDesign(core::Design& design, int nets, int chains) {
    auto inst = [&](const std::string& name, const std::string& cellName,
                    std::map<std::string, std::string> pins) {
        core::Instance in;
        in.name = name;
        in.cellName = cellName;
        in.pinToNet = std::move(pins);
        design.addInstance(std::move(in));
    };
    // Uniformly weak chain drivers: glitches survive the stages instead of
    // being swallowed at the first strong inverter, so the propagated
    // verdicts differ visibly from the local-only ones.
    const int depth = (nets + chains - 1) / chains;
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        const int pos = i % depth;
        const std::string prev =
            pos == 0 ? "pi" + std::to_string(i / depth)
                     : "n" + std::to_string(i - 1);
        inst("g" + n, "INV_X1", {{"a", prev}, {"y", "n" + n}});
        if (pos == depth - 1 || i == nets - 1) {
            inst("snk" + n, "INV_X2", {{"a", "n" + n}, {"y", "po" + n}});
        }
    }
}

// The design serialized back out as a structural Verilog netlist (the
// format the industry front end reads): nets only loaded become inputs,
// nets only driven become outputs, the rest wires.
std::string designToVerilog(const core::Design& design,
                            const std::string& name) {
    std::set<std::string> driven, loaded;
    for (const auto& inst : design.instances()) {
        const cell::Cell& c = design.library().cell(inst.cellName);
        for (const auto& pin : c.pins()) {
            const std::string& net = inst.pinToNet.at(pin.name);
            (pin.dir == cell::PinDir::Output ? driven : loaded).insert(net);
        }
    }
    std::vector<std::string> inputs, outputs, wires;
    for (const auto& net : loaded) {
        if (driven.count(net) == 0) inputs.push_back(net);
    }
    for (const auto& net : driven) {
        (loaded.count(net) != 0 ? wires : outputs).push_back(net);
    }
    std::ostringstream os;
    os << "module " << name << " (";
    bool first = true;
    for (const auto* group : {&inputs, &outputs}) {
        for (const auto& net : *group) {
            os << (first ? "" : ", ") << net;
            first = false;
        }
    }
    os << ");\n";
    for (const auto& net : inputs) os << "  input " << net << ";\n";
    for (const auto& net : outputs) os << "  output " << net << ";\n";
    for (const auto& net : wires) os << "  wire " << net << ";\n";
    for (const auto& inst : design.instances()) {
        os << "  " << inst.cellName << " " << inst.name << " (";
        bool firstPin = true;
        for (const auto& [pin, net] : inst.pinToNet) {
            os << (firstPin ? "" : ", ") << "." << pin << "(" << net << ")";
            firstPin = false;
        }
        os << ");\n";
    }
    os << "endmodule\n";
    return os.str();
}

double seconds(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

double maxMarginDiff(const std::vector<core::NetNoiseReport>& a,
                     const std::vector<core::NetNoiseReport>& b) {
    if (a.size() != b.size()) return 1e9;
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].net != b[i].net || a[i].aggressorNets != b[i].aggressorNets) {
            return 1e9;
        }
        worst = std::max(worst,
                         std::abs(a[i].cluster.margin - b[i].cluster.margin));
    }
    return worst;
}

/// One thread count of the sweep: flat optimized sweep and propagated
/// (task-graph) wavefront wall times at that count.
struct SweepPoint {
    int threads = 0;
    int workers = 0;  ///< resolved count (threads == 0 means "auto")
    double flatSec = 0.0;
    double propSec = 0.0;
};

struct Row {
    int nets = 0;
    double refSec = -1.0;  ///< < 0: reference not measured at this size
    double opt1Sec = 0.0;
    double opt4Sec = 0.0;
    std::vector<SweepPoint> sweep;
    double marginDiff = 0.0;
    std::size_t reports = 0;
    std::size_t loadCurveRuns = 0;
    std::size_t nrcRuns = 0;
    // Propagation-enabled chained variant.
    double prop1Sec = 0.0;
    double prop4Sec = 0.0;
    double propMarginDiff = 0.0;  ///< t=1 vs t=4 wavefront, must be 0
    std::size_t levels = 0;
    // Design lint over the chained variant (same DesignIndex as `levels`).
    // The synthetic designs are well-formed, so the counts double as a
    // clean-input regression check (CI asserts errors == warnings == 0).
    double lintSec = 0.0;
    std::size_t lintErrors = 0;
    std::size_t lintWarnings = 0;
    std::size_t lintInfos = 0;
    // Industry front end: the chained design serialized as structural
    // Verilog, re-parsed, and rebuilt — parse wall time and an
    // instance-exact round-trip check (asserted, like the margin diffs).
    double frontendParseSec = 0.0;
    bool frontendRoundtripOk = false;
    std::size_t frontendInstances = 0;
    // Task-graph scheduler counters from the max-thread propagate run.
    std::size_t schedTasks = 0;
    std::size_t schedSteals = 0;
    std::size_t schedMaxReady = 0;
    std::vector<double> schedBusy;  ///< per-worker busy fraction
    /// Resilience counters from the same run: both must be zero on the
    /// bench's happy path (no faults injected, no deadline set) — the CI
    /// smoke check asserts exactly that.
    std::size_t quarantinedTasks = 0;
    bool cancelled = false;
    /// Task-graph vs level-barrier wavefront at the max thread count; the
    /// scheduler's determinism contract makes this exactly 0.
    double barrierMarginDiff = 0.0;
    std::size_t propagationRuns = 0;
    std::size_t combinedOnlyFails = 0;  ///< fails only with propagation
    double maxMarginDrop = 0.0;  ///< worst local-minus-combined margin, V
    // Windowed (FRAME) chained variant.
    double windowed1Sec = 0.0;
    double maxMarginRecovery = 0.0;  ///< worst windowed-minus-unconstrained
    double worstUnconstrainedMargin = 0.0;
    double worstWindowedMargin = 0.0;
    std::size_t windowExcludedAggressors = 0;
    std::size_t windowDroppedIncoming = 0;
    // Persistent characterization cache: cold run / save / load / warm run.
    std::size_t cacheEntries = 0;       ///< entries the save() wrote
    double cacheColdSec = 0.0;          ///< fresh-cache wavefront run
    double cacheWarmSec = 0.0;          ///< same run after load()
    std::size_t cacheWarmCharRuns = 0;  ///< must be 0: all served from disk
    std::size_t cacheDiskHits = 0;
    // Incremental ECO re-analysis against the retained snapshot.
    std::size_t ecoNets = 0;        ///< drivers resized in place
    std::size_t ecoDirtyTasks = 0;  ///< cone the incremental run re-solved
    std::size_t ecoTotalTasks = 0;
    double ecoIncrementalSec = 0.0;
    double ecoFullSec = 0.0;  ///< full warm-cache re-run of the same state
    double incrementalMarginDiff = 0.0;  ///< vs the full re-run, must be 0
};

}  // namespace

int main(int argc, char** argv) {
    std::vector<int> sizes{50, 200, 800};
    std::vector<int> threadsSweep{1, 2, 4, 8};
    int referenceMax = 200;  // brute force is super-quadratic; cap it
    int chains = 4;
    int eco = 1;  // drivers perturbed by the incremental ECO pass
    try {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--smoke") == 0) {
                // CI-speed run: one tiny size, no reference sweep, short
                // thread sweep. The JSON still carries every schema field.
                sizes = {12};
                threadsSweep = {1, 4};
                referenceMax = 0;
                continue;
            }
            if (std::strcmp(argv[i], "--nets") == 0 && i + 1 < argc) {
                sizes.clear();
                std::istringstream is(argv[++i]);
                std::string tok;
                while (std::getline(is, tok, ',')) {
                    sizes.push_back(std::stoi(tok));
                }
            } else if (std::strcmp(argv[i], "--threads") == 0 &&
                       i + 1 < argc) {
                threadsSweep.clear();
                std::istringstream is(argv[++i]);
                std::string tok;
                while (std::getline(is, tok, ',')) {
                    threadsSweep.push_back(std::stoi(tok));
                }
                if (threadsSweep.empty()) {
                    std::fprintf(stderr, "--threads needs a list\n");
                    return 1;
                }
            } else if (std::strcmp(argv[i], "--reference-max") == 0 &&
                       i + 1 < argc) {
                referenceMax = std::stoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--chains") == 0 &&
                       i + 1 < argc) {
                chains = std::stoi(argv[++i]);
                if (chains < 1) {
                    std::fprintf(stderr, "--chains must be >= 1\n");
                    return 1;
                }
            } else if (std::strcmp(argv[i], "--eco") == 0 && i + 1 < argc) {
                eco = std::stoi(argv[++i]);
                if (eco < 1) {
                    std::fprintf(stderr, "--eco must be >= 1\n");
                    return 1;
                }
            } else {
                std::fprintf(stderr,
                             "usage: %s [--nets N1,N2,...] "
                             "[--threads T1,T2,...] [--reference-max N] "
                             "[--chains K] [--eco K] [--smoke]\n",
                             argv[0]);
                return 1;
            }
        }
    } catch (const std::exception&) {
        std::fprintf(stderr, "bad numeric argument\n");
        return 1;
    }

    const cell::CellLibrary lib(tech::tech130());
    std::vector<Row> rows;
    for (const int n : sizes) {
        const auto spef = parser::parseSpef(syntheticSpef(n));
        core::Design design(lib);
        buildDesign(design, n);

        core::DesignNoiseOptions opt;
        opt.maxAggressors = 2;
        // Alignment probes cost the same in both paths; disable the search so
        // the measurement isolates the pipeline (index + cache + threads).
        opt.report.searchAlignment = false;

        Row row;
        row.nets = n;

        // Flat sweep across the thread counts, a fresh cache per count so
        // every run does the same characterization work.
        std::vector<core::NetNoiseReport> opt1;
        row.sweep.resize(threadsSweep.size());
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t k = 0; k < threadsSweep.size(); ++k) {
            charlib::CharCache cache;
            opt.cache = &cache;
            opt.threads = threadsSweep[k];
            t0 = std::chrono::steady_clock::now();
            const auto rep = core::analyzeDesign(design, spef, opt);
            row.sweep[k].threads = threadsSweep[k];
            row.sweep[k].workers = util::resolveThreadCount(threadsSweep[k]);
            row.sweep[k].flatSec = seconds(t0);
            if (k == 0) {
                opt1 = rep;
                const auto stats = cache.stats();
                row.loadCurveRuns = stats.loadCurveRuns;
                row.nrcRuns = stats.nrcRuns;
                row.reports = rep.size();
            } else {
                row.marginDiff =
                    std::max(row.marginDiff, maxMarginDiff(opt1, rep));
            }
            if (threadsSweep[k] == 1) row.opt1Sec = row.sweep[k].flatSec;
            if (threadsSweep[k] == 4) row.opt4Sec = row.sweep[k].flatSec;
        }
        if (row.opt1Sec == 0.0) row.opt1Sec = row.sweep.front().flatSec;
        if (row.opt4Sec == 0.0) row.opt4Sec = row.sweep.back().flatSec;

        if (n <= referenceMax) {
            t0 = std::chrono::steady_clock::now();
            const auto ref = core::analyzeDesignReference(design, spef, opt);
            row.refSec = seconds(t0);
            row.marginDiff =
                std::max(row.marginDiff, maxMarginDiff(opt1, ref));
        }

        // ---- propagation-enabled chained variant -------------------------
        // An aggressive-coupling corner (2.2x the flat variant's caps): weak
        // chain drivers under heavy coupling, so upstream glitches are large
        // enough that the combined verdicts diverge from local-only. Every
        // 4th net is left uncoupled: a quiet pass-through stage that carries
        // noise via the cached propagation tables.
        const auto chainSpef = parser::parseSpef(syntheticSpef(n, 2.2, 4));
        core::Design chained(lib);
        buildChainedDesign(chained, n, chains);
        const core::DesignIndex chainedIndex(chained, chainSpef);
        row.levels = chainedIndex.levels().levels.size();

        // Design lint over the already-built index: pure static stages (no
        // characterization), timed as its own pipeline step.
        t0 = std::chrono::steady_clock::now();
        const lint::LintReport lintRep =
            lint::lintDesign(chainedIndex, chainSpef);
        row.lintSec = seconds(t0);
        row.lintErrors = lintRep.errors();
        row.lintWarnings = lintRep.warnings();
        row.lintInfos = lintRep.infos();

        // ---- industry front-end round trip -------------------------------
        // Serialize the chained design as a gate-level Verilog netlist,
        // re-read it through the front-end parser, and rebuild the Design:
        // the rebuilt instances must match the original exactly.
        {
            const std::string vtext = designToVerilog(chained, "bench_chain");
            t0 = std::chrono::steady_clock::now();
            const auto module = parser::parseVerilog(vtext);
            row.frontendParseSec = seconds(t0);
            const auto rebuilt = core::buildDesign(module, lib);
            row.frontendInstances = rebuilt.instances().size();
            bool ok =
                rebuilt.instances().size() == chained.instances().size();
            for (std::size_t k = 0; ok && k < rebuilt.instances().size();
                 ++k) {
                const auto& a = rebuilt.instances()[k];
                const auto& b = chained.instances()[k];
                ok = a.name == b.name && a.cellName == b.cellName &&
                     a.pinToNet == b.pinToNet;
            }
            row.frontendRoundtripOk = ok;
            if (!ok) {
                std::fprintf(stderr,
                             "front-end Verilog round trip diverged\n");
                return 1;
            }
        }

        // Propagated wavefront across the same thread sweep (task-graph
        // scheduling); the max-thread run also reports its scheduler
        // counters and is cross-checked bitwise against the level-barrier
        // mode it replaced.
        core::DesignNoiseOptions popt = opt;
        popt.propagate = true;
        std::vector<core::NetNoiseReport> prop1, propMax;
        for (std::size_t k = 0; k < threadsSweep.size(); ++k) {
            charlib::CharCache pcache;
            popt.cache = &pcache;
            popt.threads = threadsSweep[k];
            util::SchedulerStats sched;
            const bool last = k + 1 == threadsSweep.size();
            popt.schedulerStats = last ? &sched : nullptr;
            t0 = std::chrono::steady_clock::now();
            const auto rep = core::analyzeDesign(chained, chainSpef, popt);
            row.sweep[k].propSec = seconds(t0);
            if (k == 0) {
                prop1 = rep;
                row.propagationRuns = pcache.stats().propagationRuns;
                for (const auto& r : rep) {
                    if (r.cluster.fails && !r.propagated.localFails) {
                        ++row.combinedOnlyFails;
                    }
                    row.maxMarginDrop =
                        std::max(row.maxMarginDrop,
                                 r.propagated.localMargin - r.cluster.margin);
                }
            } else {
                row.propMarginDiff = std::max(row.propMarginDiff,
                                              maxMarginDiff(prop1, rep));
            }
            if (threadsSweep[k] == 1) row.prop1Sec = row.sweep[k].propSec;
            if (threadsSweep[k] == 4) row.prop4Sec = row.sweep[k].propSec;
            if (last) {
                propMax = rep;
                row.schedTasks = sched.tasksExecuted;
                row.schedSteals = sched.steals;
                row.schedMaxReady = sched.maxReadyDepth;
                row.schedBusy = sched.busyFraction;
                row.quarantinedTasks =
                    sched.quarantinedTasks + sched.degradedTasks;
                row.cancelled = sched.cancelled;
            }
        }
        popt.schedulerStats = nullptr;
        if (row.prop1Sec == 0.0) row.prop1Sec = row.sweep.front().propSec;
        if (row.prop4Sec == 0.0) row.prop4Sec = row.sweep.back().propSec;

        // Barrier cross-check at the max thread count: the dependency-
        // counted scheduler must be bit-identical to the level barrier.
        {
            charlib::CharCache bcache;
            popt.cache = &bcache;
            popt.threads = threadsSweep.back();
            popt.wavefront = core::WavefrontMode::levelBarrier;
            const auto barrier = core::analyzeDesign(chained, chainSpef, popt);
            row.barrierMarginDiff = maxMarginDiff(propMax, barrier);
            popt.wavefront = core::WavefrontMode::taskGraph;
        }

        // ---- timing-windows variant --------------------------------------
        // Disjoint switching slots in blocks of two (n0,n1 early; n2,n3
        // late; ...): the in-slot ring neighbour keeps its aggressor role —
        // so real glitches still survive the windowed stages — while the
        // cross-slot neighbour is excluded and the surviving glitch is
        // dropped at every slot boundary. The recovered pessimism is
        // measured as windowed-minus-unconstrained margin per net.
        std::ostringstream ws;
        ws << "*T_UNIT 1 PS\n";
        for (int i = 0; i < n; ++i) {
            ws << "n" << i << ((i / 2) % 2 == 0 ? " 0 300" : " 1500 1800")
               << "\n";
        }
        const core::TimingWindows windows =
            parser::parseTimingWindows(ws.str());
        core::DesignNoiseOptions wopt = popt;
        charlib::CharCache wcache;
        wopt.cache = &wcache;
        wopt.threads = 1;
        wopt.windows = &windows;
        t0 = std::chrono::steady_clock::now();
        const auto windowed = core::analyzeDesign(chained, chainSpef, wopt);
        row.windowed1Sec = seconds(t0);
        bool firstWindowed = true;
        for (const auto& r : windowed) {
            if (!r.windows.constrained) continue;
            row.maxMarginRecovery =
                std::max(row.maxMarginRecovery,
                         r.windows.windowedMargin -
                             r.windows.unconstrainedMargin);
            row.windowExcludedAggressors +=
                r.windows.excludedAggressors.size();
            row.windowDroppedIncoming += r.windows.droppedIncoming.size();
            if (firstWindowed ||
                r.windows.unconstrainedMargin <
                    row.worstUnconstrainedMargin) {
                row.worstUnconstrainedMargin = r.windows.unconstrainedMargin;
            }
            if (firstWindowed ||
                r.windows.windowedMargin < row.worstWindowedMargin) {
                row.worstWindowedMargin = r.windows.windowedMargin;
            }
            firstWindowed = false;
        }

        // ---- persistent characterization cache -----------------------------
        // Cold wavefront run into a fresh cache, save, load into another
        // fresh cache, identical run warm: the second invocation must do
        // zero characterization work — disk hits replace every run.
        const std::string cachePath =
            "bench_design_scale_" + std::to_string(n) + ".snacache.tmp";
        core::DesignNoiseOptions copt = popt;
        copt.threads = threadsSweep.back();
        std::vector<core::NetNoiseReport> cacheCold;
        {
            charlib::CharCache cold;
            copt.cache = &cold;
            t0 = std::chrono::steady_clock::now();
            cacheCold = core::analyzeDesign(chained, chainSpef, copt);
            row.cacheColdSec = seconds(t0);
            const auto saved = cold.save(cachePath);
            if (!saved.ok) {
                std::fprintf(stderr, "cache save failed: %s\n",
                             saved.error.c_str());
                return 1;
            }
            row.cacheEntries = saved.entries;
        }
        {
            charlib::CharCache warm;
            const auto loaded = warm.load(cachePath);
            if (!loaded.ok) {
                std::fprintf(stderr, "cache load failed: %s\n",
                             loaded.error.c_str());
                return 1;
            }
            copt.cache = &warm;
            t0 = std::chrono::steady_clock::now();
            const auto rep = core::analyzeDesign(chained, chainSpef, copt);
            row.cacheWarmSec = seconds(t0);
            const auto wstats = warm.stats();
            row.cacheWarmCharRuns = wstats.totalRuns();
            row.cacheDiskHits = wstats.totalDiskHits();
            if (row.cacheWarmCharRuns != 0 ||
                maxMarginDiff(cacheCold, rep) != 0.0) {
                std::fprintf(stderr,
                             "warm cache run recharacterized or diverged "
                             "(%zu runs)\n",
                             row.cacheWarmCharRuns);
                return 1;
            }
        }
        std::remove(cachePath.c_str());

        // ---- incremental ECO re-analysis -----------------------------------
        // Retain a snapshot of the cold full run, resize `eco` drivers near
        // the chain tails (small downstream cones), and time the restricted
        // re-solve against a full warm-cache re-run of the mutated design.
        {
            charlib::CharCache ecache;
            core::DesignNoiseOptions eopt = popt;
            eopt.threads = threadsSweep.back();
            eopt.cache = &ecache;
            core::AnalysisSnapshot snapshot;
            eopt.snapshot = &snapshot;
            core::analyzeDesign(chained, chainSpef, eopt);
            eopt.snapshot = nullptr;

            const int depth = (n + chains - 1) / chains;
            core::DesignDelta delta;
            for (int j = 0; j < eco; ++j) {
                const int idx = (n - 1) - j * depth;
                if (idx < 0) break;
                const std::string name = "g" + std::to_string(idx);
                chained.replaceCell(name, "INV_X2");
                delta.instances.push_back(name);
            }
            row.ecoNets = delta.instances.size();

            core::IncrementalStats istats;
            t0 = std::chrono::steady_clock::now();
            const auto fast = core::analyzeDesignIncremental(
                chained, chainSpef, delta, snapshot, eopt, &istats);
            row.ecoIncrementalSec = seconds(t0);
            row.ecoDirtyTasks = istats.dirtyTasks;
            row.ecoTotalTasks = istats.totalTasks;

            t0 = std::chrono::steady_clock::now();
            const auto full = core::analyzeDesign(chained, chainSpef, eopt);
            row.ecoFullSec = seconds(t0);
            row.incrementalMarginDiff = maxMarginDiff(fast, full);
            if (row.incrementalMarginDiff != 0.0) {
                std::fprintf(stderr,
                             "incremental ECO run diverged from the full "
                             "re-run (max |dMargin| %.3e V)\n",
                             row.incrementalMarginDiff);
                return 1;
            }
        }

        rows.push_back(row);
        std::fprintf(stderr, "done %d nets\n", n);
    }

    util::Table table({"Nets", "Reports", "Reference (s)", "Opt t=1 (s)",
                       "Opt t=4 (s)", "Speed-up", "Max |dMargin| (V)",
                       "LC runs", "NRC runs"});
    for (const auto& r : rows) {
        const double best = std::min(r.opt1Sec, r.opt4Sec);
        table.addRow(
            {std::to_string(r.nets), std::to_string(r.reports),
             r.refSec < 0 ? "-" : util::Table::num(r.refSec, 2),
             util::Table::num(r.opt1Sec, 2), util::Table::num(r.opt4Sec, 2),
             r.refSec < 0 ? "-" : util::Table::num(r.refSec / best, 1),
             util::Table::num(r.marginDiff, 12),
             std::to_string(r.loadCurveRuns), std::to_string(r.nrcRuns)});
    }
    std::printf("Design-scale noise analysis throughput\n\n%s\n",
                table.str().c_str());

    util::Table ptable({"Nets", "Levels", "Lint (s)", "Lint E/W/I",
                        "Prop sweep t:s", "Max |dMargin| sweep (V)",
                        "Barrier |dMargin| (V)", "Prop-table runs",
                        "Max margin drop (V)", "Combined-only fails"});
    for (const auto& r : rows) {
        std::ostringstream sw;
        for (std::size_t k = 0; k < r.sweep.size(); ++k) {
            sw << (k == 0 ? "" : " ") << r.sweep[k].threads << ":"
               << util::Table::num(r.sweep[k].propSec, 2);
        }
        ptable.addRow({std::to_string(r.nets), std::to_string(r.levels),
                       util::Table::num(r.lintSec, 4),
                       std::to_string(r.lintErrors) + "/" +
                           std::to_string(r.lintWarnings) + "/" +
                           std::to_string(r.lintInfos),
                       sw.str(), util::Table::num(r.propMarginDiff, 12),
                       util::Table::num(r.barrierMarginDiff, 12),
                       std::to_string(r.propagationRuns),
                       util::Table::num(r.maxMarginDrop, 3),
                       std::to_string(r.combinedOnlyFails)});
    }
    std::printf(
        "Propagated-noise wavefront (chained design, %d chains, "
        "task-graph scheduling)\n\n%s\n",
        chains, ptable.str().c_str());

    util::Table ftable({"Nets", "Instances", "Verilog parse (s)",
                        "Round trip"});
    for (const auto& r : rows) {
        ftable.addRow({std::to_string(r.nets),
                       std::to_string(r.frontendInstances),
                       util::Table::num(r.frontendParseSec, 4),
                       r.frontendRoundtripOk ? "exact" : "DIVERGED"});
    }
    std::printf(
        "Industry front end (Verilog serialize / parse / rebuild)\n\n%s\n",
        ftable.str().c_str());

    util::Table stable({"Nets", "Tasks", "Steals", "Max ready depth",
                        "Busy fraction / worker"});
    for (const auto& r : rows) {
        std::ostringstream busy;
        for (std::size_t k = 0; k < r.schedBusy.size(); ++k) {
            busy << (k == 0 ? "" : " ") << util::Table::num(r.schedBusy[k], 2);
        }
        stable.addRow({std::to_string(r.nets), std::to_string(r.schedTasks),
                       std::to_string(r.schedSteals),
                       std::to_string(r.schedMaxReady), busy.str()});
    }
    std::printf(
        "Task-graph scheduler counters (max-thread propagate run)\n\n%s\n",
        stable.str().c_str());

    util::Table wtable({"Nets", "Windowed t=1 (s)", "Excl aggs",
                        "Dropped glitches", "Worst unconstr margin (V)",
                        "Worst windowed margin (V)", "Max recovery (V)"});
    for (const auto& r : rows) {
        wtable.addRow({std::to_string(r.nets),
                       util::Table::num(r.windowed1Sec, 2),
                       std::to_string(r.windowExcludedAggressors),
                       std::to_string(r.windowDroppedIncoming),
                       util::Table::num(r.worstUnconstrainedMargin, 3),
                       util::Table::num(r.worstWindowedMargin, 3),
                       util::Table::num(r.maxMarginRecovery, 3)});
    }
    std::printf(
        "Timing-windowed wavefront (alternating disjoint switching "
        "slots)\n\n%s\n",
        wtable.str().c_str());

    util::Table ctable({"Nets", "Cache entries", "Cold (s)", "Warm (s)",
                        "Warm char runs", "Disk hits", "ECO nets",
                        "Dirty/total tasks", "Incr (s)", "Full (s)",
                        "Incr speed-up"});
    for (const auto& r : rows) {
        ctable.addRow(
            {std::to_string(r.nets), std::to_string(r.cacheEntries),
             util::Table::num(r.cacheColdSec, 2),
             util::Table::num(r.cacheWarmSec, 2),
             std::to_string(r.cacheWarmCharRuns),
             std::to_string(r.cacheDiskHits), std::to_string(r.ecoNets),
             std::to_string(r.ecoDirtyTasks) + "/" +
                 std::to_string(r.ecoTotalTasks),
             util::Table::num(r.ecoIncrementalSec, 3),
             util::Table::num(r.ecoFullSec, 3),
             r.ecoIncrementalSec > 0.0
                 ? util::Table::num(r.ecoFullSec / r.ecoIncrementalSec, 1)
                 : "-"});
    }
    std::printf(
        "Persistent cache warm start + incremental ECO re-analysis\n\n%s\n",
        ctable.str().c_str());

    std::printf("{\"bench\": \"design_scale\", \"rows\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        const std::string refStr =
            r.refSec < 0 ? "null" : util::Table::num(r.refSec, 4);
        const std::string speedupStr =
            r.refSec < 0
                ? "null"
                : util::Table::num(r.refSec / std::min(r.opt1Sec, r.opt4Sec),
                                   2);
        std::ostringstream sweepJson;
        for (std::size_t k = 0; k < r.sweep.size(); ++k) {
            sweepJson << (k == 0 ? "" : ", ") << "{\"threads\": "
                      << r.sweep[k].threads << ", \"workers\": "
                      << r.sweep[k].workers << ", \"flat_sec\": "
                      << util::Table::num(r.sweep[k].flatSec, 4)
                      << ", \"propagate_sec\": "
                      << util::Table::num(r.sweep[k].propSec, 4) << "}";
        }
        std::ostringstream busyJson;
        for (std::size_t k = 0; k < r.schedBusy.size(); ++k) {
            busyJson << (k == 0 ? "" : ", ")
                     << util::Table::num(r.schedBusy[k], 4);
        }
        std::printf(
            "%s{\"nets\": %d, \"reports\": %zu, \"reference_sec\": %s, "
            "\"optimized_t1_sec\": %.4f, \"optimized_t4_sec\": %.4f, "
            "\"speedup\": %s, \"max_margin_diff\": %.3e, "
            "\"load_curve_runs\": %zu, \"nrc_runs\": %zu, "
            "\"threads_sweep\": [%s], "
            "\"levels\": %zu, \"lint_sec\": %.4f, \"lint_errors\": %zu, "
            "\"lint_warnings\": %zu, \"lint_infos\": %zu, "
            "\"propagate_t1_sec\": %.4f, "
            "\"propagate_t4_sec\": %.4f, \"propagate_margin_diff\": %.3e, "
            "\"barrier_margin_diff\": %.3e, "
            "\"scheduler_tasks\": %zu, \"scheduler_steals\": %zu, "
            "\"scheduler_max_ready_depth\": %zu, "
            "\"scheduler_busy_fraction\": [%s], "
            "\"quarantined_tasks\": %zu, \"cancelled\": %s, "
            "\"propagation_runs\": %zu, \"max_margin_drop\": %.4f, "
            "\"combined_only_fails\": %zu, \"windowed_t1_sec\": %.4f, "
            "\"window_excluded_aggressors\": %zu, "
            "\"window_dropped_incoming\": %zu, "
            "\"worst_unconstrained_margin\": %.4f, "
            "\"worst_windowed_margin\": %.4f, "
            "\"max_margin_recovery\": %.4f, "
            "\"cache_entries\": %zu, \"cache_cold_sec\": %.4f, "
            "\"cache_warm_sec\": %.4f, \"cache_warm_char_runs\": %zu, "
            "\"cache_disk_hits\": %zu, "
            "\"eco_nets\": %zu, \"eco_dirty_tasks\": %zu, "
            "\"eco_total_tasks\": %zu, \"eco_incremental_sec\": %.4f, "
            "\"eco_full_sec\": %.4f, \"incremental_margin_diff\": %.3e, "
            "\"frontend_parse_sec\": %.4f, \"frontend_roundtrip_ok\": %s, "
            "\"frontend_instances\": %zu}",
            i == 0 ? "" : ", ", r.nets, r.reports, refStr.c_str(), r.opt1Sec,
            r.opt4Sec, speedupStr.c_str(), r.marginDiff, r.loadCurveRuns,
            r.nrcRuns, sweepJson.str().c_str(), r.levels, r.lintSec,
            r.lintErrors, r.lintWarnings, r.lintInfos, r.prop1Sec,
            r.prop4Sec, r.propMarginDiff, r.barrierMarginDiff, r.schedTasks,
            r.schedSteals, r.schedMaxReady, busyJson.str().c_str(),
            r.quarantinedTasks, r.cancelled ? "true" : "false",
            r.propagationRuns, r.maxMarginDrop, r.combinedOnlyFails,
            r.windowed1Sec, r.windowExcludedAggressors,
            r.windowDroppedIncoming, r.worstUnconstrainedMargin,
            r.worstWindowedMargin, r.maxMarginRecovery, r.cacheEntries,
            r.cacheColdSec, r.cacheWarmSec, r.cacheWarmCharRuns,
            r.cacheDiskHits, r.ecoNets, r.ecoDirtyTasks, r.ecoTotalTasks,
            r.ecoIncrementalSec, r.ecoFullSec, r.incrementalMarginDiff,
            r.frontendParseSec, r.frontendRoundtripOk ? "true" : "false",
            r.frontendInstances);
    }
    std::printf("], \"chains\": %d}\n", chains);
    return 0;
}

// Experiment D1 — design-scale throughput of the full-design noise pipeline.
//
// Generates synthetic N-net coupled designs (a ring of parallel routes, each
// net coupled to both neighbours through distinct caps) as SPEF text,
// connects a gate-level design to them, and times end-to-end analyzeDesign:
//   * reference: the pre-index brute-force sweep (linear instance scans,
//     all-net cap scans, full per-cluster re-characterization, serial);
//   * optimized: DesignIndex + shared CharCache, at 1 and 4 threads.
// Margins are cross-checked within 1e-9 between every path. Emits one JSON
// object (for the bench trajectory) after the human-readable table.
//
// Run:  ./build/bench_design_scale [--nets 50,200,800] [--reference-max 200]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/sna.hpp"
#include "interconnect/parallel_bus.hpp"
#include "util/table.hpp"

namespace {

using namespace sna;

// Ring design: net i is driven by d<i>, loaded by r<i>, and coupled to nets
// i-1 and i+1 through mid-node caps with distinct values (no rank ties).
std::string syntheticSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"scale_" << nets << "\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 8.0 + (i % 11);  // fF, to the right-hand neighbour
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    return os.str();
}

void buildDesign(core::Design& design, int nets) {
    auto inst = [&](const std::string& name, const std::string& cellName,
                    std::map<std::string, std::string> pins) {
        core::Instance in;
        in.name = name;
        in.cellName = cellName;
        in.pinToNet = std::move(pins);
        design.addInstance(std::move(in));
    };
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        inst("d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
             {{"a", "pi" + n}, {"y", "n" + n}});
        inst("r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
             {{"a", "n" + n}, {"y", "po" + n}});
    }
}

double seconds(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

double maxMarginDiff(const std::vector<core::NetNoiseReport>& a,
                     const std::vector<core::NetNoiseReport>& b) {
    if (a.size() != b.size()) return 1e9;
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].net != b[i].net || a[i].aggressorNets != b[i].aggressorNets) {
            return 1e9;
        }
        worst = std::max(worst,
                         std::abs(a[i].cluster.margin - b[i].cluster.margin));
    }
    return worst;
}

struct Row {
    int nets = 0;
    double refSec = -1.0;  ///< < 0: reference not measured at this size
    double opt1Sec = 0.0;
    double opt4Sec = 0.0;
    double marginDiff = 0.0;
    std::size_t reports = 0;
    std::size_t loadCurveRuns = 0;
    std::size_t nrcRuns = 0;
};

}  // namespace

int main(int argc, char** argv) {
    std::vector<int> sizes{50, 200, 800};
    int referenceMax = 200;  // brute force is super-quadratic; cap it
    try {
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--nets") == 0 && i + 1 < argc) {
                sizes.clear();
                std::istringstream is(argv[++i]);
                std::string tok;
                while (std::getline(is, tok, ',')) {
                    sizes.push_back(std::stoi(tok));
                }
            } else if (std::strcmp(argv[i], "--reference-max") == 0 &&
                       i + 1 < argc) {
                referenceMax = std::stoi(argv[++i]);
            } else {
                std::fprintf(stderr,
                             "usage: %s [--nets N1,N2,...] "
                             "[--reference-max N]\n",
                             argv[0]);
                return 1;
            }
        }
    } catch (const std::exception&) {
        std::fprintf(stderr, "bad numeric argument\n");
        return 1;
    }

    const cell::CellLibrary lib(tech::tech130());
    std::vector<Row> rows;
    for (const int n : sizes) {
        const auto spef = parser::parseSpef(syntheticSpef(n));
        core::Design design(lib);
        buildDesign(design, n);

        core::DesignNoiseOptions opt;
        opt.maxAggressors = 2;
        // Alignment probes cost the same in both paths; disable the search so
        // the measurement isolates the pipeline (index + cache + threads).
        opt.report.searchAlignment = false;

        Row row;
        row.nets = n;

        charlib::CharCache cache;
        opt.cache = &cache;
        opt.threads = 1;
        auto t0 = std::chrono::steady_clock::now();
        const auto opt1 = core::analyzeDesign(design, spef, opt);
        row.opt1Sec = seconds(t0);
        const auto stats = cache.stats();
        row.loadCurveRuns = stats.loadCurveRuns;
        row.nrcRuns = stats.nrcRuns;
        row.reports = opt1.size();

        charlib::CharCache cache4;
        opt.cache = &cache4;
        opt.threads = 4;
        t0 = std::chrono::steady_clock::now();
        const auto opt4 = core::analyzeDesign(design, spef, opt);
        row.opt4Sec = seconds(t0);
        row.marginDiff = maxMarginDiff(opt1, opt4);

        if (n <= referenceMax) {
            t0 = std::chrono::steady_clock::now();
            const auto ref = core::analyzeDesignReference(design, spef, opt);
            row.refSec = seconds(t0);
            row.marginDiff =
                std::max(row.marginDiff, maxMarginDiff(opt1, ref));
        }
        rows.push_back(row);
        std::fprintf(stderr, "done %d nets\n", n);
    }

    util::Table table({"Nets", "Reports", "Reference (s)", "Opt t=1 (s)",
                       "Opt t=4 (s)", "Speed-up", "Max |dMargin| (V)",
                       "LC runs", "NRC runs"});
    for (const auto& r : rows) {
        const double best = std::min(r.opt1Sec, r.opt4Sec);
        table.addRow(
            {std::to_string(r.nets), std::to_string(r.reports),
             r.refSec < 0 ? "-" : util::Table::num(r.refSec, 2),
             util::Table::num(r.opt1Sec, 2), util::Table::num(r.opt4Sec, 2),
             r.refSec < 0 ? "-" : util::Table::num(r.refSec / best, 1),
             util::Table::num(r.marginDiff, 12),
             std::to_string(r.loadCurveRuns), std::to_string(r.nrcRuns)});
    }
    std::printf("Design-scale noise analysis throughput\n\n%s\n",
                table.str().c_str());

    std::printf("{\"bench\": \"design_scale\", \"rows\": [");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        const std::string refStr =
            r.refSec < 0 ? "null" : util::Table::num(r.refSec, 4);
        const std::string speedupStr =
            r.refSec < 0
                ? "null"
                : util::Table::num(r.refSec / std::min(r.opt1Sec, r.opt4Sec),
                                   2);
        std::printf(
            "%s{\"nets\": %d, \"reports\": %zu, \"reference_sec\": %s, "
            "\"optimized_t1_sec\": %.4f, \"optimized_t4_sec\": %.4f, "
            "\"speedup\": %s, \"max_margin_diff\": %.3e, "
            "\"load_curve_runs\": %zu, \"nrc_runs\": %zu}",
            i == 0 ? "" : ", ", r.nets, r.reports, refStr.c_str(), r.opt1Sec,
            r.opt4Sec, speedupStr.c_str(), r.marginDiff, r.loadCurveRuns,
            r.nrcRuns);
    }
    std::printf("]}\n");
    return 0;
}

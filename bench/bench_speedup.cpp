// Experiment C2 — Sec. 3 claim: "The speed-up obtained with our approach
// was about 20X with respect to ELDO(tm), thus yielding a practical
// approach for noise analysis."
//
// google-benchmark timing of the full transistor-level + distributed-RC
// golden simulation against the macromodel's dedicated small engine on the
// same cluster, for several extraction densities. Characterization is
// excluded from the macromodel timing (it is the paper's amortized
// pre-characterization step); the summary table at the end prints the
// speed-up per extraction density.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace bench;

core::ClusterSpec specFor(int segments) {
    auto spec = paperCluster();
    spec.segments = segments;
    return spec;
}

const core::ClusterMacromodel& modelFor(int segments) {
    // One characterized macromodel per density, built once.
    static std::map<int, core::ClusterMacromodel> cache;
    auto it = cache.find(segments);
    if (it == cache.end()) {
        it = cache.emplace(segments,
                           core::ClusterMacromodel(specFor(segments))).first;
    }
    return it->second;
}

void BM_GoldenSpice(benchmark::State& state) {
    const auto spec = specFor(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        const auto r = core::simulateGolden(spec);
        benchmark::DoNotOptimize(r.metrics.peak);
    }
}

void BM_Macromodel(benchmark::State& state) {
    const auto& model = modelFor(static_cast<int>(state.range(0)));
    const std::vector<double> aggTimes{0.4e-9};
    for (auto _ : state) {
        const auto r = model.analyzeAt(aggTimes, 0.4e-9);
        benchmark::DoNotOptimize(r.metrics.peak);
    }
}

}  // namespace

BENCHMARK(BM_GoldenSpice)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Macromodel)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Summary in the paper's terms.
    std::printf("\nSpeed-up summary (single run each, wall clock):\n");
    sna::util::Table t({"Extraction (segs/wire)", "Golden nodes",
                        "Macromodel nodes", "Golden (ms)", "Macromodel (ms)",
                        "Speed-up"});
    for (const int segs : {8, 16, 32, 64}) {
        const auto spec = specFor(segs);
        const auto& model = modelFor(segs);
        const auto golden = core::simulateGolden(spec);
        const auto macro_ = model.analyzeAt({0.4e-9}, 0.4e-9);
        t.addRow({std::to_string(segs), std::to_string(golden.engineNodes),
                  std::to_string(macro_.engineNodes),
                  sna::util::Table::num(golden.runtimeSec * 1e3, 2),
                  sna::util::Table::num(macro_.runtimeSec * 1e3, 3),
                  sna::util::Table::num(golden.runtimeSec / macro_.runtimeSec,
                                        1) + "x"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("paper claim: ~20x vs ELDO at production extraction "
                "densities\n");
    return 0;
}

// Experiment T2 — reproduces Table 2 of the paper:
// "Worst-case overlapping between two aggressors and one propagating noise
// glitch".
//
// Same fabric as Table 1 but with TWO in-phase aggressors flanking the
// victim while the glitch propagates through the victim NAND. The paper
// reports the macromodel against the golden simulation only (peak +3.1%,
// area +2.5%).
#include "bench_common.hpp"

int main() {
    using namespace bench;
    auto spec = paperCluster(/*aggressors=*/2);
    const core::ClusterMacromodel model(spec);
    const auto run = runAligned(spec, model);

    const auto& g = run.golden.metrics;
    const auto& m = run.macro_.metrics;

    std::printf("Table 2. Worst-case overlapping between two aggressors and "
                "one propagating noise glitch\n");
    std::printf("(victim NAND2_X1 held low between two INV aggressors, "
                "500 um M4, 0.13 um)\n\n");
    util::Table t({"Noise", "Golden(SPICE)", "Our macromodel", "Error%"});
    t.addRow({"Peak (V)", util::Table::num(g.peak, 3),
              util::Table::num(m.peak, 3),
              util::Table::pct(pctError(m.peak, g.peak))});
    t.addRow({"Area (V*ps)", util::Table::num(areaVps(g), 1),
              util::Table::num(areaVps(m), 1),
              util::Table::pct(pctError(m.area, g.area))});
    std::printf("%s\n", t.str().c_str());

    std::printf("paper reference: ELDO peak 0.919 V / area 496.2 V*ps; "
                "macromodel +3.1%% / +2.5%%\n");
    std::printf("shape check: macromodel within few %% = %s\n",
                (std::abs(pctError(m.peak, g.peak)) < 0.08 &&
                 std::abs(pctError(m.area, g.area)) < 0.10)
                    ? "yes"
                    : "NO");
    return 0;
}

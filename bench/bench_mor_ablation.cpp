// Experiment A1 — ablation of the interconnect-reduction design choice
// (DESIGN.md, key decision 4): coupled-Pi driving-point model vs PRIMA
// reduced multiport (several Krylov block counts) vs the unreduced RC,
// all under the same non-linear victim macromodel.
//
// Reports the victim driving-point error versus the full-RC reference, the
// engine sizes, and timings. The paper uses the moment-matched
// driving-point model ([8]); this bench quantifies what that buys.
#include "bench_common.hpp"

#include <chrono>

#include "mor/linear_network.hpp"
#include "spice/tran.hpp"

namespace {

using namespace bench;

// Macromodel run where the interconnect is the FULL RC network (reduction
// ablated away): table-VCCS victim + Thevenin aggressors + full ladder.
core::NoiseResult runFullRc(const core::ClusterSpec& spec,
                            const core::ClusterMacromodel& model,
                            const std::vector<double>& aggTimes,
                            double glitchTime) {
    const auto start = std::chrono::steady_clock::now();
    spice::Circuit ckt;
    const auto vin = ckt.node("vin");
    const auto ids = model.interconnect().buildInto(ckt, "rc:");
    const ic::RcNetwork& net = model.interconnect();
    const auto dp = ids[net.driverNode(0)];
    if (const auto glitch = core::victimInputGlitch(spec, glitchTime)) {
        ckt.addVSource("v_in", vin, spice::kGround,
                       spice::SourceSpec::pwl(*glitch));
    } else {
        ckt.addVSource("v_in", vin, spice::kGround,
                       spice::SourceSpec::dc(model.inputHoldLevel()));
    }
    ckt.addTableVccs("idc_victim", dp, vin, model.loadCurve());
    ckt.addCapacitor("cdrv0", dp, spice::kGround, model.driverCaps()[0]);
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        const auto& m = model.aggressorModels()[a];
        const std::string inst = "agg" + std::to_string(a);
        const auto src = ckt.node(inst + "_th");
        ckt.addVSource("v_" + inst, src, spice::kGround,
                       spice::SourceSpec::pwl(
                           m.ramp(aggTimes[a] + m.delay, spec.tstop)));
        const auto adp = ids[net.driverNode(static_cast<int>(a) + 1)];
        ckt.addResistor("r_" + inst, src, adp, m.rth);
        ckt.addCapacitor("cdrv" + std::to_string(a + 1), adp, spice::kGround,
                         model.driverCaps()[a + 1]);
    }
    for (int w = 0; w < net.wireCount(); ++w) {
        ckt.addCapacitor("crx" + std::to_string(w), ids[net.receiverNode(w)],
                         spice::kGround, model.receiverCaps()[w]);
    }
    spice::TranOptions opt;
    opt.tstop = spec.tstop;
    const auto res = spice::simulateTransient(ckt, opt);
    core::NoiseResult out;
    out.waveform = res.waveform("rc:" + net.nodeName(net.driverNode(0)));
    out.metrics = wave::measureGlitch(out.waveform, model.outputHoldLevel());
    out.engineNodes = ckt.nodeCount();
    out.runtimeSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return out;
}

}  // namespace

int main() {
    using namespace bench;
    auto spec = paperCluster(/*aggressors=*/2);
    spec.segments = 32;  // dense extraction so the reduction has work to do
    const std::vector<double> aggTimes{0.4e-9, 0.4e-9};
    const double glitchTime = 0.4e-9;

    const core::ClusterMacromodel pi(spec);
    const auto full = runFullRc(spec, pi, aggTimes, glitchTime);

    util::Table t({"Interconnect model", "Engine nodes", "Run (ms)",
                   "Peak err% vs full RC", "Area err%", "Waveform rms (mV)"});
    auto addRow = [&](const std::string& name, const core::NoiseResult& r) {
        t.addRow({name, std::to_string(r.engineNodes),
                  util::Table::num(r.runtimeSec * 1e3, 3),
                  util::Table::pct(pctError(r.metrics.peak, full.metrics.peak)),
                  util::Table::pct(pctError(r.metrics.area, full.metrics.area)),
                  util::Table::num(
                      wave::rmsDifference(r.waveform, full.waveform) * 1e3,
                      2)});
    };
    addRow("full RC (reference)", full);
    addRow("coupled-Pi (paper choice)",
           pi.analyzeAt(aggTimes, glitchTime));
    for (const int blocks : {1, 2, 3, 5}) {
        core::MacromodelOptions opt;
        opt.usePrima = true;
        opt.primaBlocks = blocks;
        const core::ClusterMacromodel prima(spec, opt);
        addRow("PRIMA q=" + std::to_string(blocks) + " blocks",
               prima.analyzeAt(aggTimes, glitchTime));
    }
    std::printf("Interconnect reduction ablation (victim + 2 aggressors, "
                "32 segments/wire)\n\n%s\n", t.str().c_str());
    std::printf("expected shape: coupled-Pi within a few %% of full RC at a "
                "fraction of the nodes; PRIMA converges to full RC as "
                "blocks grow\n");
    return 0;
}

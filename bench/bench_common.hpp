// Shared scaffolding for the reproduction benches.
//
// Each bench binary regenerates one table/figure/claim of the paper (see
// DESIGN.md experiment index) and prints paper-style rows. The helpers here
// standardize the cluster of Sec. 3 (500 um parallel M4 wires, INV
// aggressor drivers, NAND2 victim driver in 0.13 um) and the error
// arithmetic.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "core/alignment.hpp"
#include "core/baselines.hpp"
#include "core/report.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bench {

using namespace sna;

/// The paper's main test case (Sec. 3): two adjacent coupled nets from
/// 500 um parallel metal-4 wires, aggressor driver an inverter, victim
/// driver a 2-input NAND holding its output low, with a noise glitch
/// propagating through the victim.
inline core::ClusterSpec paperCluster(int aggressors = 1,
                                      double glitchFraction = 0.7,
                                      const tech::Technology* t =
                                          &tech::tech130()) {
    core::ClusterSpec spec;
    spec.technology = t;
    spec.victim.driverCell = "NAND2_X1";
    spec.victim.glitchInput = "a";
    spec.victim.outputLevel = false;
    spec.victim.glitchHeight = glitchFraction * t->vdd;
    spec.victim.glitchWidth = 250e-12;
    spec.victim.receiverCell = "INV_X2";
    for (int a = 0; a < aggressors; ++a) {
        core::AggressorSpec agg;
        agg.driverCell = "INV_X1";
        agg.outputRising = true;
        spec.aggressors.push_back(agg);
    }
    spec.layer = "M4";
    spec.lengthUm = 500.0;
    spec.segments = 16;
    return spec;
}

/// Golden run at the worst-case alignment found on the macromodel; returns
/// {golden, macromodel-at-same-alignment, alignment}.
struct AlignedPair {
    core::NoiseResult golden;
    core::NoiseResult macro_;
    core::AlignmentResult alignment;
};

inline AlignedPair runAligned(const core::ClusterSpec& spec,
                              const core::ClusterMacromodel& model) {
    AlignedPair out;
    out.alignment = core::findWorstAlignment(model);
    core::ClusterSpec goldenSpec = spec;
    for (std::size_t a = 0; a < goldenSpec.aggressors.size(); ++a) {
        goldenSpec.aggressors[a].switchTime =
            out.alignment.aggressorSwitchTimes[a];
    }
    goldenSpec.victim.glitchTime = out.alignment.glitchTime;
    out.golden = core::simulateGolden(goldenSpec);
    out.macro_ = model.analyzeAt(out.alignment.aggressorSwitchTimes,
                                 out.alignment.glitchTime);
    return out;
}

inline double pctError(double value, double reference) {
    return (value - reference) / reference;
}

/// Area in the paper's V*ps unit.
inline double areaVps(const wave::GlitchMetrics& m) {
    return m.area / units::volt_ps;
}

}  // namespace bench

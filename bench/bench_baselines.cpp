// Experiment C3 — Sec. 1 claims about prior art:
//  * plain linear superposition "may lead to a large underestimation of the
//    total noise, thus potentially leaving many functional failures
//    undetected";
//  * the iterative Thevenin victim model of Zolotov et al. [4] "may still
//    yield large errors in both the noise peak (-18%) and width (-20%)".
//
// Prints peak/area/width errors of both baselines and of the macromodel
// against golden simulation over several cluster configurations.
#include "bench_common.hpp"

int main() {
    using namespace bench;

    struct Case {
        const char* label;
        int aggressors;
        double glitchFraction;
        double lengthUm;
    };
    const Case cases[] = {
        {"1 agg + glitch (Table 1 setup)", 1, 0.7, 500.0},
        {"2 agg + glitch (Table 2 setup)", 2, 0.7, 500.0},
        {"1 agg + mild glitch", 1, 0.45, 500.0},
        {"2 agg, injection only", 2, 0.0, 500.0},
        {"1 agg + glitch, short run", 1, 0.7, 300.0},
    };

    util::Table t({"Cluster", "Model", "Peak err%", "Area err%",
                   "Width err%"});
    for (const auto& c : cases) {
        auto spec = paperCluster(c.aggressors, c.glitchFraction);
        spec.lengthUm = c.lengthUm;
        const core::ClusterMacromodel model(spec);
        const auto run = runAligned(spec, model);
        const auto b1 = core::analyzeLinearSuperposition(
            model, run.alignment.aggressorSwitchTimes);
        const auto b2 = core::analyzeIterativeThevenin(
            model, run.alignment.aggressorSwitchTimes,
            run.alignment.glitchTime);
        const auto& g = run.golden.metrics;
        auto addRow = [&](const char* name, const wave::GlitchMetrics& m) {
            t.addRow({c.label, name, util::Table::pct(pctError(m.peak, g.peak)),
                      util::Table::pct(pctError(m.area, g.area)),
                      util::Table::pct(pctError(m.width, g.width))});
        };
        addRow("linear superposition", b1.metrics);
        addRow("iterative Thevenin [4]", b2.metrics);
        addRow("our macromodel", run.macro_.metrics);
    }
    std::printf("Baseline comparison vs golden simulation\n\n%s\n",
                t.str().c_str());
    std::printf("paper reference: superposition errors tens of %% "
                "(Table 1: -22%% peak, -52.8%% area); iterative Thevenin "
                "up to -18%% peak / -20%% width; macromodel within few %%\n");
    return 0;
}

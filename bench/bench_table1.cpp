// Experiment T1 — reproduces Table 1 of the paper:
// "Injected and propagated noise combination".
//
// Setup (paper Sec. 3): 0.13 um technology, two adjacent coupled nets from
// 500 um parallel metal-4 wires; aggressor driver = inverter, victim driver
// = 2-input NAND holding its output low while a noise glitch propagates
// through it and the aggressor switches. Columns: golden transistor-level
// simulation (our SPICE engine in the ELDO role), linear superposition of
// separately computed injected + propagated noise (the classical SNA
// baseline), and the non-linear victim-driver macromodel.
//
// Expected shape (the paper's thesis): superposition underestimates the
// total noise severely (paper: -22% peak, -52.8% area); the macromodel
// lands within a few percent (paper: +2.6% peak, +0.8% area).
#include "bench_common.hpp"

int main() {
    using namespace bench;
    const auto spec = paperCluster();
    const core::ClusterMacromodel model(spec);
    const auto run = runAligned(spec, model);
    const auto b1 = core::analyzeLinearSuperposition(
        model, run.alignment.aggressorSwitchTimes);

    const auto& g = run.golden.metrics;
    const auto& m = run.macro_.metrics;
    const auto& s = b1.metrics;

    std::printf("Table 1. Injected and propagated noise combination\n");
    std::printf("(victim NAND2_X1 held low, one INV aggressor, 500 um M4, "
                "0.13 um)\n\n");
    util::Table t({"Noise", "Golden(SPICE)", "Linear superposition", "Error%",
                   "Our macromodel", "Error%"});
    t.addRow({"Peak (V)", util::Table::num(g.peak, 3),
              util::Table::num(s.peak, 3),
              util::Table::pct(pctError(s.peak, g.peak)),
              util::Table::num(m.peak, 3),
              util::Table::pct(pctError(m.peak, g.peak))});
    t.addRow({"Area (V*ps)", util::Table::num(areaVps(g), 1),
              util::Table::num(areaVps(s), 1),
              util::Table::pct(pctError(s.area, g.area)),
              util::Table::num(areaVps(m), 1),
              util::Table::pct(pctError(m.area, g.area))});
    std::printf("%s\n", t.str().c_str());

    std::printf("paper reference: ELDO peak 0.345 V / area 174.3 V*ps; "
                "superposition -22.0%% / -52.8%%; macromodel +2.6%% / "
                "+0.8%%\n");
    std::printf("shape check: superposition underestimates = %s; "
                "macromodel within few %% = %s\n",
                (s.peak < 0.9 * g.peak && s.area < 0.9 * g.area) ? "yes"
                                                                  : "NO",
                (std::abs(pctError(m.peak, g.peak)) < 0.08 &&
                 std::abs(pctError(m.area, g.area)) < 0.08)
                    ? "yes"
                    : "NO");
    return 0;
}

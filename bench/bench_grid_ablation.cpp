// Experiment A2 — ablation of the load-curve characterization grid
// (DESIGN.md, key decision 2): Eq. (1)'s I_DC = f(V_in, V_out) table
// resolution vs macromodel accuracy and characterization cost.
//
// The paper characterizes "by performing a simple DC analysis, where Vin
// and Vout are swept across the characterization range"; this bench shows
// how dense that sweep must be.
#include "bench_common.hpp"

#include <chrono>

int main() {
    using namespace bench;
    const auto spec = paperCluster();

    // Reference: golden simulation at a fixed alignment.
    core::ClusterSpec goldenSpec = spec;
    goldenSpec.aggressors[0].switchTime = 0.4e-9;
    goldenSpec.victim.glitchTime = 0.4e-9;
    const auto golden = core::simulateGolden(goldenSpec);

    util::Table t({"Grid (NxN)", "Characterization (ms)", "Peak err%",
                   "Area err%"});
    for (const int n : {5, 9, 17, 33, 65}) {
        core::MacromodelOptions opt;
        opt.loadCurveGrid = n;
        const auto t0 = std::chrono::steady_clock::now();
        const core::ClusterMacromodel model(spec, opt);
        const double charMs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count() *
            1e3;
        const auto r = model.analyzeAt({0.4e-9}, 0.4e-9);
        t.addRow({std::to_string(n) + "x" + std::to_string(n),
                  util::Table::num(charMs, 1),
                  util::Table::pct(
                      pctError(r.metrics.peak, golden.metrics.peak)),
                  util::Table::pct(
                      pctError(r.metrics.area, golden.metrics.area))});
    }
    std::printf("Load-curve grid ablation (Table 1 cluster, fixed "
                "alignment)\n\n%s\n", t.str().c_str());
    std::printf("expected shape: error saturates once the grid resolves the "
                "device turn-over (~17x17); characterization cost grows "
                "quadratically\n");
    return 0;
}

// Experiment C1 — Sec. 3 claim: "Our approach has been tested on several
// noise clusters in 0.13 um and 90 nm technology, and its accuracy
// evaluated against circuit simulations, and the error was always within
// few percents."
//
// Sweeps {technology} x {victim cell} x {aggressor count} x {coupling
// length} x {propagated glitch} and prints the per-cluster peak/area error
// of the macromodel vs the golden simulation, plus the distribution
// summary.
#include "bench_common.hpp"

#include <map>
#include <vector>

int main() {
    using namespace bench;

    struct Case {
        const tech::Technology* tech;
        const char* victim;
        int aggressors;
        double lengthUm;
        double glitchFraction;
    };
    std::vector<Case> cases;
    for (const auto* t : tech::allTechnologies()) {
        for (const char* cell : {"NAND2_X1", "INV_X1", "NOR2_X1"}) {
            for (const int agg : {1, 2}) {
                for (const double len : {300.0, 500.0}) {
                    for (const double g : {0.0, 0.6}) {
                        cases.push_back({t, cell, agg, len, g});
                    }
                }
            }
        }
    }

    util::Table table({"Tech", "Victim", "Aggs", "Len(um)", "Glitch",
                       "Peak gold(V)", "Peak err%", "Area err%"});
    std::map<std::string, double> worstPeakByCell;
    double sumPeak = 0.0, sumArea = 0.0, worstUnder = 0.0;
    int counted = 0;
    for (const auto& c : cases) {
        auto spec = paperCluster(c.aggressors, c.glitchFraction, c.tech);
        spec.victim.driverCell = c.victim;
        spec.lengthUm = c.lengthUm;
        const core::ClusterMacromodel model(spec);
        const auto run = runAligned(spec, model);
        const auto& g = run.golden.metrics;
        const auto& m = run.macro_.metrics;
        if (std::abs(g.peak) < 0.03) continue;  // noise-free corner
        const double pe = pctError(m.peak, g.peak);
        const double ae = pctError(m.area, g.area);
        table.addRow({c.tech->name, c.victim, std::to_string(c.aggressors),
                      util::Table::num(c.lengthUm, 0),
                      util::Table::num(c.glitchFraction, 2),
                      util::Table::num(g.peak, 3), util::Table::pct(pe),
                      util::Table::pct(ae)});
        auto& worst = worstPeakByCell[c.victim];
        worst = std::max(worst, std::abs(pe));
        worstUnder = std::min(worstUnder, pe);
        sumPeak += std::abs(pe);
        sumArea += std::abs(ae);
        ++counted;
    }

    std::printf("Accuracy sweep: macromodel vs golden simulation over %d "
                "noise clusters\n\n%s\n", counted, table.str().c_str());
    std::printf("mean |peak err| %.1f%%  mean |area err| %.1f%%\n",
                100 * sumPeak / counted, 100 * sumArea / counted);
    for (const auto& [cell, worst] : worstPeakByCell) {
        std::printf("worst |peak err| for %-9s : %.1f%%\n", cell.c_str(),
                    100 * worst);
    }
    std::printf("worst UNDERestimation anywhere: %.1f%% (the dangerous "
                "direction in sign-off)\n", 100 * worstUnder);
    std::printf(
        "paper claim (\"error always within few percents\"): holds for\n"
        "simple and series-pulldown victims; victims whose glitched input\n"
        "opens a stacked PULLUP (NOR2 + large propagated glitch) read up to\n"
        "~19%% HIGH because the DC load curve cannot track the stack's\n"
        "internal-node charging - a conservative (safe-side) error. No\n"
        "configuration underestimates by more than a few percent.\n");
    return 0;
}

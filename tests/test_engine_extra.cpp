// Deeper engine validation: the table-VCCS against the transistor cell it
// models (the most direct check of Eq. (1)), floating sources and VCVS in
// transient, integration-order behavior, Thevenin/NRC secondary paths, and
// reduced-multiport DC correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/library.hpp"
#include "charlib/characterize.hpp"
#include "interconnect/parallel_bus.hpp"
#include "mor/linear_network.hpp"
#include "mor/coupled_pi.hpp"
#include "mor/prima.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using spice::SourceSpec;

// ------------------------------------------------- table-VCCS vs transistors

// Drive the NAND2 transistor cell and its characterized table-VCCS stand-in
// with the same input glitch into the same lumped load, and compare the
// output waveforms. This isolates the Eq. (1) modeling error from the
// interconnect and Thevenin pieces.
class TableVsTransistors : public ::testing::TestWithParam<double> {};

TEST_P(TableVsTransistors, OutputGlitchMatches) {
    const double glitchHeight = GetParam();
    const cell::CellLibrary lib(tech::tech130());
    const cell::Cell& nand2 = lib.cell("NAND2_X1");
    const double vdd = 1.2;
    const double load = 40e-15;
    const auto glitch =
        wave::triangleGlitch(vdd, -glitchHeight, 0.3e-9, 250e-12, 2e-9);

    // Golden: transistor cell.
    spice::Circuit gold;
    {
        const auto vddNode = gold.node("vdd");
        const auto a = gold.node("a");
        const auto b = gold.node("b");
        const auto y = gold.node("y");
        gold.addVSource("vs", vddNode, spice::kGround, SourceSpec::dc(vdd));
        gold.addVSource("va", a, spice::kGround, SourceSpec::pwl(glitch));
        gold.addVSource("vb", b, spice::kGround, SourceSpec::dc(vdd));
        gold.addCapacitor("cl", y, spice::kGround, load);
        nand2.instantiate(gold, "dut", {{"a", a}, {"b", b}, {"y", y}},
                          vddNode);
    }
    // Macromodel: characterized table + the driver's own output cap.
    charlib::LoadCurveSpec lc;
    lc.cell = &nand2;
    lc.input = "a";
    lc.outputLevel = false;
    const auto table = charlib::characterizeLoadCurve(lc);
    spice::Circuit model;
    {
        const auto a = model.node("a");
        const auto y = model.node("y");
        model.addVSource("va", a, spice::kGround, SourceSpec::pwl(glitch));
        model.addTableVccs("idc", y, a, table);
        model.addCapacitor("cdrv", y, spice::kGround,
                           nand2.outputCapacitance("y"));
        model.addCapacitor("cl", y, spice::kGround, load);
    }
    spice::TranOptions opt;
    opt.tstop = 2e-9;
    const auto wGold = spice::simulateTransient(gold, opt).waveform("y");
    const auto wModel = spice::simulateTransient(model, opt).waveform("y");
    const auto mGold = wave::measureGlitch(wGold, 0.0);
    const auto mModel = wave::measureGlitch(wModel, 0.0);
    if (std::abs(mGold.peak) < 0.02) {
        EXPECT_LT(std::abs(mModel.peak), 0.05);
        return;
    }
    // Mixed tolerance: a relative band plus a millivolt-scale floor — near
    // the holding point the bilinear patch spacing dominates the (tiny)
    // absolute error.
    EXPECT_NEAR(mModel.peak, mGold.peak,
                0.08 * std::abs(mGold.peak) + 6e-3)
        << "height " << glitchHeight;
    EXPECT_NEAR(mModel.area, mGold.area,
                0.10 * std::abs(mGold.area) + 0.9e-12);
}

INSTANTIATE_TEST_SUITE_P(GlitchHeights, TableVsTransistors,
                         ::testing::Values(0.4, 0.6, 0.8, 1.0, 1.2));

// ------------------------------------------------------ transient devices

TEST(TranDevices, FloatingVSourceInTransient) {
    // Level shifter: floating source stacked on a ramping grounded source.
    spice::Circuit c;
    const auto a = c.node("a");
    const auto b = c.node("b");
    c.addVSource("vbase", a, spice::kGround,
                 SourceSpec::pwl(wave::saturatedRamp(0, 1, 0.2e-9, 0.1e-9,
                                                     2e-9)));
    c.addVSource("vstack", b, a, SourceSpec::dc(0.5));
    c.addResistor("rl", b, spice::kGround, 1e3);
    spice::TranOptions opt;
    opt.tstop = 2e-9;
    const auto res = spice::simulateTransient(c, opt);
    EXPECT_NEAR(res.waveform("b").value(0.1e-9), 0.5, 1e-6);
    EXPECT_NEAR(res.waveform("b").value(1.5e-9), 1.5, 1e-6);
}

TEST(TranDevices, VcvsTracksInTransient) {
    spice::Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.addVSource("vin", in, spice::kGround,
                 SourceSpec::pwl(wave::triangleGlitch(0, 0.5, 0.2e-9,
                                                      0.4e-9, 2e-9)));
    c.addVcvs("e1", out, spice::kGround, in, spice::kGround, -3.0);
    c.addResistor("rl", out, spice::kGround, 1e3);
    spice::TranOptions opt;
    opt.tstop = 2e-9;
    const auto res = spice::simulateTransient(c, opt);
    EXPECT_NEAR(res.waveform("out").value(0.4e-9),
                -3.0 * res.waveform("in").value(0.4e-9), 1e-6);
}

TEST(TranDevices, CurrentSourceChargesCapacitorLinearly) {
    // The source steps on after t=0 so the DC operating point (I = 0,
    // v = 0) is well posed; a DC current into a pure capacitor has none.
    spice::Circuit c;
    const auto n = c.node("n");
    const double tOn = 1e-8;
    c.addISource("i1", spice::kGround, n,
                 SourceSpec::pwl(wave::Waveform(
                     {{0.0, 0.0}, {tOn, 0.0}, {tOn * 1.0001, 1e-6},
                      {1e-6, 1e-6}})));
    c.addCapacitor("c1", n, spice::kGround, 1e-12);
    spice::TranOptions opt;
    opt.tstop = 1e-7;
    const auto res = spice::simulateTransient(c, opt);
    // v = I (t - tOn) / C after the step.
    for (double t = 3e-8; t < 1e-7; t += 2e-8) {
        const double expected = 1e6 * (t - tOn);
        EXPECT_NEAR(res.waveform("n").value(t), expected, expected * 6e-3);
    }
}

// ----------------------------------------------------- charlib extra paths

TEST(TheveninExtra, FallingAndRisingAreBothPhysical) {
    const cell::CellLibrary lib(tech::tech130());
    charlib::TheveninSpec spec;
    spec.cell = &lib.cell("INV_X2");
    spec.input = "a";
    spec.loadCap = 40e-15;
    spec.outputRising = true;
    const auto up = charlib::characterizeThevenin(spec);
    spec.outputRising = false;
    const auto down = charlib::characterizeThevenin(spec);
    EXPECT_DOUBLE_EQ(up.vStart, 0.0);
    EXPECT_DOUBLE_EQ(up.vEnd, 1.2);
    EXPECT_DOUBLE_EQ(down.vStart, 1.2);
    EXPECT_DOUBLE_EQ(down.vEnd, 0.0);
    // NMOS pulldown is stronger than the PMOS pullup at equal width ratio
    // 2:1 given kp ratio ~2.4: falling R is smaller.
    EXPECT_LT(down.rth, up.rth);
}

TEST(NrcExtra, QuietHighInputCurveIsMonotone) {
    const cell::CellLibrary lib(tech::tech130());
    charlib::NrcSpec spec;
    spec.cell = &lib.cell("INV_X2");
    spec.input = "a";
    spec.quietLevel = true;  // downward glitches on a high input
    spec.widths = {100e-12, 300e-12, 900e-12};
    const auto curve = charlib::characterizeNrc(spec);
    EXPECT_GE(curve.ys()[0], curve.ys()[1] - 1e-3);
    EXPECT_GE(curve.ys()[1], curve.ys()[2] - 1e-3);
    EXPECT_GT(curve.ys()[2], 0.3);
}

// ------------------------------------------------------ reduced multiport DC

TEST(ReducedMultiportDc, MatchesFullNetworkOperatingPoint) {
    // DC through the reduced model: port constraints must reproduce the
    // full network's resistive solution (here: both ports driven).
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 2;
    spec.segments = 10;
    const auto net = buildParallelBus(spec);
    const mor::LinearNetwork lin(net);
    const std::vector<int> ports{net.driverNode(0), net.driverNode(1)};

    spice::Circuit c;
    const auto p0 = c.node("p0");
    const auto p1 = c.node("p1");
    c.addVSource("v0", p0, spice::kGround, SourceSpec::dc(0.7));
    c.addVSource("v1", p1, spice::kGround, SourceSpec::dc(0.2));
    mor::attachReduced(c, "red", lin, ports, {p0, p1}, 3);
    const auto dc = spice::solveDc(c);
    // Pure RC network: no DC current flows, ports sit at their sources.
    EXPECT_NEAR(dc.voltage("p0"), 0.7, 1e-9);
    EXPECT_NEAR(dc.voltage("p1"), 0.2, 1e-9);
    EXPECT_NEAR(dc.sourceCurrent("v0"), 0.0, 1e-8);
}

TEST(ReducedMultiportDc, PortCountMismatchThrows) {
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 2;
    spec.segments = 4;
    const auto net = buildParallelBus(spec);
    const mor::LinearNetwork lin(net);
    const auto model =
        mor::primaReduce(lin, {net.driverNode(0), net.driverNode(1)}, 2);
    spice::Circuit c;
    EXPECT_THROW(c.addDevice<mor::ReducedMultiport>(
                     "red", std::vector<spice::NodeId>{c.node("only_one")},
                     model),
                 LogicError);
}

// -------------------------------------------------------- star topologies

TEST(StarCluster, ThreeAggressorsAllCoupleToVictim) {
    ic::StarClusterSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.aggressors = 3;
    spec.segments = 6;
    spec.ccScale = {1.0, 0.5, 0.25};
    const auto net = ic::buildStarCluster(spec);
    ASSERT_EQ(net.wireCount(), 4);
    const double cc0 = net.couplingCapBetween(0, 1);
    const double cc1 = net.couplingCapBetween(0, 2);
    const double cc2 = net.couplingCapBetween(0, 3);
    EXPECT_NEAR(cc1, 0.5 * cc0, 1e-21);
    EXPECT_NEAR(cc2, 0.25 * cc0, 1e-21);
    // Aggressors do not couple to each other in the star topology.
    EXPECT_DOUBLE_EQ(net.couplingCapBetween(1, 2), 0.0);
    // And the coupled-Pi reduction handles the 4-net cluster.
    const auto reduced = mor::reduceCluster(net);
    EXPECT_EQ(reduced.nets.size(), 4u);
    EXPECT_EQ(reduced.couplings.size(), 3u);
}

}  // namespace

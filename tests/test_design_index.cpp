// Tests for the indexed, cached, parallel full-design pipeline: DesignIndex
// vs the brute-force scans, analyzeDesign vs the reference path, thread
// determinism, and the characterization cache's once-per-cell guarantee.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "charlib/char_cache.hpp"
#include "core/design_index.hpp"
#include "core/sna.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sna;

// A 4-net ring (every net coupled to both neighbours through distinct caps)
// plus one stub net with coupling but no driver in the design.
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    // Coupled net with no driver instance: must be skipped by both paths.
    os << "*D_NET orphan 4.0\n*CONN\n*P orphan_in I\n*CAP\n";
    os << "1 orphan:1 2.0\n2 orphan:1 n0:1 2.0\n*RES\n";
    os << "1 orphan_in orphan:1 10\n*END\n";
    return os.str();
}

void buildRingDesign(core::Design& design, int nets) {
    auto inst = [&](const std::string& name, const std::string& cellName,
                    std::map<std::string, std::string> pins) {
        core::Instance in;
        in.name = name;
        in.cellName = cellName;
        in.pinToNet = std::move(pins);
        design.addInstance(std::move(in));
    };
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        inst("d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
             {{"a", "pi" + n}, {"y", "n" + n}});
        inst("r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
             {{"a", "n" + n}, {"y", "po" + n}});
    }
}

// ------------------------------------------------------------------ index

TEST(DesignIndex, MatchesBruteForceScans) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);

    const core::DesignIndex index(design, spef);

    for (const auto& [netName, spefNet] : spef.nets()) {
        EXPECT_EQ(index.driverOf(netName), design.driverOf(netName))
            << "driver mismatch on " << netName;
        EXPECT_EQ(index.loadsOf(netName), design.loadsOf(netName))
            << "loads mismatch on " << netName;

        // Brute-force coupling: sum matching caps over every section.
        std::map<std::string, double> brute;
        for (const auto& [otherName, otherNet] : spef.nets()) {
            for (const auto& cap : otherNet.caps) {
                if (cap.node2.empty()) continue;
                const auto owner = [](const std::string& n) {
                    return n.substr(0, n.find(':'));
                };
                const std::string o1 = owner(cap.node1);
                const std::string o2 = owner(cap.node2);
                if (o1 == netName && o2 != netName) {
                    brute[o2] += cap.farads;
                } else if (o2 == netName && o1 != netName) {
                    brute[o1] += cap.farads;
                }
            }
        }
        const auto& indexed = index.couplingOf(netName);
        ASSERT_EQ(indexed.size(), brute.size()) << "on " << netName;
        for (const auto& [agg, cc] : brute) {
            ASSERT_TRUE(indexed.count(agg)) << agg << " missing";
            EXPECT_NEAR(indexed.at(agg), cc, 1e-24);
        }
    }
    EXPECT_EQ(index.driverOf("nope"), nullptr);
    EXPECT_TRUE(index.loadsOf("nope").empty());
    EXPECT_TRUE(index.couplingOf("nope").empty());
    // The orphan net couples to n0 but has no driver instance.
    EXPECT_EQ(index.driverOf("orphan"), nullptr);
    EXPECT_NEAR(index.couplingOf("orphan").at("n0"), 2e-15, 1e-24);
}

// ------------------------------------------------------------- regression

TEST(DesignFlowRegression, IndexedPipelineMatchesReference) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;  // keep the test fast
    opt.report.macromodel.loadCurveGrid = 9;

    const auto ref = core::analyzeDesignReference(design, spef, opt);
    opt.threads = 1;
    const auto fast1 = core::analyzeDesign(design, spef, opt);
    opt.threads = 4;
    const auto fast4 = core::analyzeDesign(design, spef, opt);

    ASSERT_EQ(ref.size(), 4u);
    ASSERT_EQ(fast1.size(), ref.size());
    ASSERT_EQ(fast4.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(fast1[i].net, ref[i].net);
        EXPECT_EQ(fast1[i].aggressorNets, ref[i].aggressorNets);
        // Every net has exactly its two ring neighbours, listed once (the
        // old implementation appended them per holding level and trimmed).
        EXPECT_EQ(ref[i].aggressorNets.size(), 2u);
        EXPECT_NEAR(fast1[i].cluster.margin, ref[i].cluster.margin, 1e-9);
        EXPECT_NEAR(fast1[i].cluster.nrcLimit, ref[i].cluster.nrcLimit, 1e-9);
        EXPECT_EQ(fast1[i].cluster.fails, ref[i].cluster.fails);

        EXPECT_EQ(fast4[i].net, fast1[i].net);
        EXPECT_EQ(fast4[i].aggressorNets, fast1[i].aggressorNets);
        EXPECT_NEAR(fast4[i].cluster.margin, fast1[i].cluster.margin, 1e-9);
    }
}

// ------------------------------------------------------------------ cache

TEST(CharCacheDesign, OneCharacterizationPerCellAndLevel) {
    const cell::CellLibrary lib(tech::tech130());
    const int nets = 6;
    const auto spef = parser::parseSpef(ringSpef(nets));
    core::Design design(lib);
    buildRingDesign(design, nets);

    charlib::CharCache cache;
    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    opt.cache = &cache;
    const auto reports = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(reports.size(), static_cast<std::size_t>(nets));

    const auto stats = cache.stats();
    // Victim drivers are INV_X1 and INV_X2, each analyzed at both holding
    // levels: exactly 4 load-curve DC sweeps regardless of net count.
    EXPECT_EQ(stats.loadCurveRuns, 4u);
    EXPECT_GT(stats.loadCurveHits, 0u);
    // Receivers are INV_X2 and INV_X1 at both quiet levels, probed on the
    // canonical width grid: exactly 4 NRC characterizations.
    EXPECT_EQ(stats.nrcRuns, 4u);
    EXPECT_GT(stats.nrcHits, 0u);
    EXPECT_GT(stats.theveninRuns, 0u);

    // A second run through the same cache re-characterizes nothing.
    const auto again = core::analyzeDesign(design, spef, opt);
    const auto stats2 = cache.stats();
    EXPECT_EQ(stats2.loadCurveRuns, stats.loadCurveRuns);
    EXPECT_EQ(stats2.theveninRuns, stats.theveninRuns);
    EXPECT_EQ(stats2.nrcRuns, stats.nrcRuns);
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_NEAR(again[i].cluster.margin, reports[i].cluster.margin, 0.0);
    }
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, ParallelForCoversAllIndicesOnce) {
    std::vector<int> hits(1000, 0);
    util::parallelFor(4, 1000, [&](int i) { hits[i]++; });
    for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ParallelForSerialFallback) {
    std::vector<int> order;
    util::parallelFor(1, 5, [&](int i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForPropagatesException) {
    EXPECT_THROW(
        util::parallelFor(3, 100,
                          [](int i) {
                              if (i == 57) throw ModelError("boom");
                          }),
        ModelError);
}

}  // namespace

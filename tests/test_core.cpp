// Tests for the noise core: macromodel accuracy vs golden, baseline
// underestimation (the paper's thesis), alignment search, NRC reports, and
// the design-level flow.
#include <gtest/gtest.h>

#include <cmath>

#include "core/alignment.hpp"
#include "core/baselines.hpp"
#include "core/report.hpp"
#include "core/sna.hpp"
#include "interconnect/parallel_bus.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using core::AggressorSpec;
using core::ClusterMacromodel;
using core::ClusterSpec;

ClusterSpec paperCluster(double glitchFraction = 0.7, int aggressors = 1) {
    ClusterSpec spec;
    spec.victim.driverCell = "NAND2_X1";
    spec.victim.glitchInput = "a";
    spec.victim.outputLevel = false;
    spec.victim.glitchHeight = glitchFraction > 0.0
                                   ? glitchFraction * spec.technology->vdd
                                   : 0.0;
    spec.victim.glitchWidth = 250e-12;
    for (int a = 0; a < aggressors; ++a) {
        AggressorSpec agg;
        agg.driverCell = "INV_X2";
        agg.outputRising = true;
        spec.aggressors.push_back(agg);
    }
    spec.segments = 12;
    return spec;
}

TEST(Macromodel, DescribeListsFigure1Elements) {
    const ClusterMacromodel model(paperCluster());
    const std::string d = model.describe();
    EXPECT_NE(d.find("VCCS I_DC"), std::string::npos);
    EXPECT_NE(d.find("Thevenin V_TH"), std::string::npos);
    EXPECT_NE(d.find("coupled-Pi"), std::string::npos);
    EXPECT_NE(d.find("receiver"), std::string::npos);
}

TEST(Macromodel, HoldingPointIsQuiet) {
    const ClusterMacromodel model(paperCluster());
    // I_DC at the holding point is ~0 and the holding resistance is the
    // kOhm-scale NMOS stack resistance.
    EXPECT_NEAR(model.loadCurve()(model.inputHoldLevel(),
                                  model.outputHoldLevel()),
                0.0, 5e-6);
    EXPECT_GT(model.victimHoldingResistance(), 100.0);
    EXPECT_LT(model.victimHoldingResistance(), 1e4);
}

TEST(Macromodel, QuietClusterStaysQuiet) {
    // No propagated glitch and the aggressor switching only at 2.4 ns: the
    // victim driving point must sit at its baseline until then.
    ClusterSpec spec = paperCluster(0.0);
    const ClusterMacromodel model(spec);
    const auto r = model.analyzeAt({2.4e-9}, 0.0);
    const auto quietPart = r.waveform.window(0.0, 2.3e-9);
    EXPECT_LT(std::abs(wave::measureGlitch(quietPart, 0.0).peak), 0.01);
    // ... and the late aggressor still injects once it fires.
    EXPECT_GT(std::abs(r.metrics.peak), 0.1);
}

struct AccuracyCase {
    const tech::Technology* tech;
    const char* victim;
    int aggressors;
    double glitchFraction;
    double lengthUm;
};

void PrintTo(const AccuracyCase& c, std::ostream* os) {
    *os << c.tech->name << "/" << c.victim << "/agg" << c.aggressors
        << "/g" << c.glitchFraction << "/L" << c.lengthUm;
}

class MacromodelAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(MacromodelAccuracy, TracksGoldenWithinFewPercent) {
    const auto& p = GetParam();
    ClusterSpec spec = paperCluster(p.glitchFraction, p.aggressors);
    spec.technology = p.tech;
    spec.victim.driverCell = p.victim;
    spec.victim.glitchHeight = p.glitchFraction * p.tech->vdd;
    spec.lengthUm = p.lengthUm;

    const ClusterMacromodel model(spec);
    const auto align = core::findWorstAlignment(model);
    ClusterSpec goldenSpec = spec;
    for (std::size_t a = 0; a < goldenSpec.aggressors.size(); ++a) {
        goldenSpec.aggressors[a].switchTime = align.aggressorSwitchTimes[a];
    }
    goldenSpec.victim.glitchTime = align.glitchTime;
    const auto golden = core::simulateGolden(goldenSpec);
    const auto macro =
        model.analyzeAt(align.aggressorSwitchTimes, align.glitchTime);

    ASSERT_GT(std::abs(golden.metrics.peak), 0.05);
    const double peakErr =
        (macro.metrics.peak - golden.metrics.peak) / golden.metrics.peak;
    const double areaErr =
        (macro.metrics.area - golden.metrics.area) / golden.metrics.area;
    // "The error was always within few percents" (Sec. 3). Our bound is a
    // conservative 11%: complex gates with stacked pull networks carry
    // internal-node charge the DC load curve cannot represent, worth a few
    // extra percent (always on the overestimating, safe side here).
    EXPECT_LT(std::abs(peakErr), 0.11) << "peak " << macro.metrics.peak
                                       << " vs " << golden.metrics.peak;
    EXPECT_LT(std::abs(areaErr), 0.12) << "area " << macro.metrics.area
                                       << " vs " << golden.metrics.area;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MacromodelAccuracy,
    ::testing::Values(
        AccuracyCase{&tech::tech130(), "NAND2_X1", 1, 0.7, 500.0},
        AccuracyCase{&tech::tech130(), "NAND2_X1", 2, 0.6, 500.0},
        AccuracyCase{&tech::tech130(), "NOR2_X1", 1, 0.6, 400.0},
        AccuracyCase{&tech::tech130(), "INV_X1", 1, 0.0, 600.0},
        AccuracyCase{&tech::tech90(), "NAND2_X1", 1, 0.7, 400.0},
        AccuracyCase{&tech::tech90(), "INV_X2", 2, 0.5, 500.0}));

TEST(Baselines, LinearSuperpositionUnderestimates) {
    // The paper's Table 1 claim: summing independently computed injected
    // and propagated noise misses the non-linear interaction and lands well
    // below golden.
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel model(spec);
    const auto align = core::findWorstAlignment(model);
    ClusterSpec goldenSpec = spec;
    goldenSpec.aggressors[0].switchTime = align.aggressorSwitchTimes[0];
    goldenSpec.victim.glitchTime = align.glitchTime;
    const auto golden = core::simulateGolden(goldenSpec);
    const auto b1 =
        core::analyzeLinearSuperposition(model, align.aggressorSwitchTimes);

    EXPECT_LT(b1.metrics.peak, 0.85 * golden.metrics.peak);
    EXPECT_LT(b1.metrics.area, 0.85 * golden.metrics.area);
}

TEST(Baselines, IterativeTheveninAlsoUnderestimates) {
    // The Sec. 1 claim about [4]: a linear victim model, even iteratively
    // refit, still leaves a significant underestimation.
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel model(spec);
    const auto align = core::findWorstAlignment(model);
    ClusterSpec goldenSpec = spec;
    goldenSpec.aggressors[0].switchTime = align.aggressorSwitchTimes[0];
    goldenSpec.victim.glitchTime = align.glitchTime;
    const auto golden = core::simulateGolden(goldenSpec);
    const auto macro =
        model.analyzeAt(align.aggressorSwitchTimes, align.glitchTime);
    const auto b2 = core::analyzeIterativeThevenin(
        model, align.aggressorSwitchTimes, align.glitchTime);

    EXPECT_LT(b2.metrics.peak, 0.92 * golden.metrics.peak);
    // The macromodel must be the most accurate of the three models.
    const double macroErr = std::abs(macro.metrics.peak - golden.metrics.peak);
    const double b2Err = std::abs(b2.metrics.peak - golden.metrics.peak);
    EXPECT_LT(macroErr, b2Err);
}

TEST(Baselines, InjectedOnlyClusterIsCloseAcrossModels) {
    // Without a propagated glitch the victim stays near its holding point,
    // where the linearization is valid: B1 is then a decent approximation
    // (this is why classical SNA worked at all).
    ClusterSpec spec = paperCluster(0.0);
    const ClusterMacromodel model(spec);
    const std::vector<double> t{0.4e-9};
    const auto macro = model.analyzeAt(t, 0.4e-9);
    const auto b1 = core::analyzeLinearSuperposition(model, t);
    ASSERT_GT(macro.metrics.peak, 0.03);
    EXPECT_NEAR(b1.metrics.peak, macro.metrics.peak,
                0.30 * macro.metrics.peak);
}

TEST(Baselines, SuperpositionIsExactInLinearClusters) {
    // Control experiment for the paper's thesis: when the victim driver IS
    // linear (a resistor), the injected contributions of two aggressors add
    // exactly. The Table 1 error therefore comes from the cell
    // non-linearity, not from the superposition arithmetic.
    auto build = [](bool agg1On, bool agg2On) {
        spice::Circuit c;
        const auto vic = c.node("vic");
        c.addResistor("rhold", vic, spice::kGround, 800.0);
        c.addCapacitor("cg", vic, spice::kGround, 25e-15);
        auto addAgg = [&](const char* name, bool on) {
            const auto src = c.node(std::string(name) + "_src");
            const auto dp = c.node(std::string(name) + "_dp");
            if (on) {
                c.addVSource(std::string("v") + name, src, spice::kGround,
                             spice::SourceSpec::pwl(wave::saturatedRamp(
                                 0, 1.2, 0.4e-9, 40e-12, 2e-9)));
            } else {
                c.addVSource(std::string("v") + name, src, spice::kGround,
                             spice::SourceSpec::dc(0.0));
            }
            c.addResistor(std::string("r") + name, src, dp, 200.0);
            c.addCapacitor(std::string("cc") + name, dp, vic, 30e-15);
            c.addCapacitor(std::string("cga") + name, dp, spice::kGround,
                           20e-15);
        };
        addAgg("a1", agg1On);
        addAgg("a2", agg2On);
        spice::TranOptions opt;
        opt.tstop = 2e-9;
        return spice::simulateTransient(c, opt).waveform("vic");
    };
    const auto both = build(true, true);
    const auto only1 = build(true, false);
    const auto only2 = build(false, true);
    const auto summed = only1.plus(only2);
    EXPECT_LT(wave::maxDifference(both, summed), 2e-3);  // ~exact (solver tol)
    // And the combined peak is meaningfully large, so the check is not
    // vacuous.
    EXPECT_GT(wave::measureGlitch(both, 0.0).peak, 0.1);
}

TEST(Macromodel, PrimaModeMatchesPiMode) {
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel pi(spec);
    ClusterMacromodel::Options opt;
    opt.usePrima = true;
    const ClusterMacromodel prima(spec, opt);
    const std::vector<double> t{0.5e-9};
    const auto rPi = pi.analyzeAt(t, 0.45e-9);
    const auto rPrima = prima.analyzeAt(t, 0.45e-9);
    EXPECT_NEAR(rPrima.metrics.peak, rPi.metrics.peak,
                0.06 * std::abs(rPi.metrics.peak));
}

TEST(Macromodel, EngineIsMuchSmallerThanGolden) {
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel model(spec);
    const auto macro = model.analyze();
    const auto golden = core::simulateGolden(spec);
    EXPECT_LT(macro.engineNodes * 3, golden.engineNodes);
    EXPECT_LT(macro.runtimeSec, golden.runtimeSec);
}

TEST(Alignment, SearchBeatsDefaultAndMatchesBruteForce) {
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel model(spec);
    const auto defaultRun = model.analyze();
    const auto smart = core::findWorstAlignment(model);
    EXPECT_GE(std::abs(smart.worst.metrics.peak),
              std::abs(defaultRun.metrics.peak) - 1e-6);
    // Brute force over the same window cannot be much better.
    const auto brute = core::bruteForceWorstAlignment(model, 0.8e-9, 7);
    EXPECT_GE(std::abs(smart.worst.metrics.peak),
              0.97 * std::abs(brute.worst.metrics.peak));
}

TEST(Alignment, RequiresMatchingAggressorCount) {
    const ClusterSpec spec = paperCluster();
    const ClusterMacromodel model(spec);
    EXPECT_THROW(model.analyzeAt({1e-10, 2e-10}, 1e-10), LogicError);
}

TEST(Report, FlagsLargeGlitchAgainstNrc) {
    // Strong coupling + propagated glitch: must fail the receiver NRC.
    ClusterSpec spec = paperCluster(0.8, 2);
    spec.lengthUm = 700.0;
    core::ReportOptions opt;
    const auto report = core::analyzeCluster(spec, opt);
    EXPECT_GT(report.nrcLimit, 0.1);
    EXPECT_EQ(report.fails, report.margin <= 0.0);
    EXPECT_TRUE(report.fails);
}

TEST(Report, PassesQuietCluster) {
    // Tiny coupling and no propagated noise: must pass.
    ClusterSpec spec = paperCluster(0.0, 1);
    spec.lengthUm = 60.0;
    spec.segments = 4;
    const auto report = core::analyzeCluster(spec);
    EXPECT_FALSE(report.fails);
    EXPECT_GT(report.margin, 0.0);
}

// ----------------------------------------------------------------- design

TEST(DesignFlow, AnalyzesSpefClusters) {
    const cell::CellLibrary lib(tech::tech130());

    // Parasitics: a 3-wire star cluster exported to SPEF and re-read.
    ic::StarClusterSpec star;
    star.layer = &tech::tech130().layer("M4");
    star.lengthUm = 400.0;
    star.aggressors = 2;
    star.segments = 8;
    const auto rc = ic::buildStarCluster(star);
    const auto spef = parser::parseSpef(ic::toSpef(rc, "mini"));

    core::Design design(lib);
    auto connect = [&](const std::string& inst, const std::string& cellName,
                       const std::map<std::string, std::string>& pins) {
        core::Instance i;
        i.name = inst;
        i.cellName = cellName;
        i.pinToNet = pins;
        design.addInstance(std::move(i));
    };
    connect("u_vic", "NAND2_X1",
            {{"a", "in_a"}, {"b", "in_b"}, {"y", "victim"}});
    connect("u_rx", "INV_X2", {{"a", "victim"}, {"y", "out_v"}});
    connect("u_a0", "INV_X2", {{"a", "in0"}, {"y", "agg0"}});
    connect("u_a0rx", "INV_X1", {{"a", "agg0"}, {"y", "out0"}});
    connect("u_a1", "BUF_X2", {{"a", "in1"}, {"y", "agg1"}});
    connect("u_a1rx", "INV_X1", {{"a", "agg1"}, {"y", "out1"}});

    EXPECT_EQ(design.driverOf("victim")->name, "u_vic");
    EXPECT_EQ(design.loadsOf("victim").size(), 1u);
    EXPECT_EQ(design.driverOf("nope"), nullptr);

    core::DesignNoiseOptions opt;
    opt.report.searchAlignment = false;  // keep the test fast
    const auto reports = core::analyzeDesign(design, spef, opt);

    // The victim net has coupling and a driver/load: it must be analyzed.
    bool foundVictim = false;
    for (const auto& r : reports) {
        if (r.net == "victim") {
            foundVictim = true;
            EXPECT_EQ(r.aggressorNets.size(), 2u);
            EXPECT_GT(std::abs(r.cluster.worst.metrics.peak), 0.0);
            EXPECT_GT(r.cluster.nrcLimit, 0.0);
        }
    }
    EXPECT_TRUE(foundVictim);
}

TEST(DesignFlow, RejectsUnconnectedPins) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    core::Instance i;
    i.name = "u1";
    i.cellName = "NAND2_X1";
    i.pinToNet = {{"a", "n1"}};  // b and y missing
    EXPECT_THROW(design.addInstance(std::move(i)), ModelError);
}

}  // namespace

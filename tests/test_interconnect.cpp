// Tests for the coupled RC builders: conservation of totals, ownership,
// SPEF round-trip, and convergence with segment refinement.
#include <gtest/gtest.h>

#include "interconnect/parallel_bus.hpp"
#include "parser/spef_parser.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/units.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using ic::ParallelBusSpec;
using ic::RcNetwork;

ParallelBusSpec paperBus(int wires = 2, int segments = 16) {
    ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.lengthUm = 500.0;
    spec.wires = wires;
    spec.segments = segments;
    return spec;
}

TEST(ParallelBus, TotalsMatchPerUnitLength) {
    const auto& layer = tech::tech130().layer("M4");
    const RcNetwork net = buildParallelBus(paperBus());
    ASSERT_EQ(net.wireCount(), 2);
    for (int w = 0; w < 2; ++w) {
        EXPECT_NEAR(net.totalResistanceOf(w), layer.rPerUm * 500.0, 1e-9);
        EXPECT_NEAR(net.totalGroundCapOf(w), layer.cgPerUm * 500.0, 1e-24);
    }
    EXPECT_NEAR(net.couplingCapBetween(0, 1), layer.ccPerUm * 500.0, 1e-24);
}

TEST(ParallelBus, ThreeWiresOnlyAdjacentCoupling) {
    const RcNetwork net = buildParallelBus(paperBus(3));
    EXPECT_GT(net.couplingCapBetween(0, 1), 0.0);
    EXPECT_GT(net.couplingCapBetween(1, 2), 0.0);
    EXPECT_DOUBLE_EQ(net.couplingCapBetween(0, 2), 0.0);
}

TEST(ParallelBus, OwnershipFollowsResistiveConnectivity) {
    const RcNetwork net = buildParallelBus(paperBus(2, 4));
    for (int n = 0; n < net.nodeCount(); ++n) {
        const int w = net.wireOfNode(n);
        ASSERT_GE(w, 0);
        // Node names carry the wire name prefix by construction.
        EXPECT_EQ(net.nodeName(n).rfind(net.wireName(w) + ":", 0), 0u);
    }
    EXPECT_EQ(net.wireOfNode(net.driverNode(1)), 1);
    EXPECT_EQ(net.wireOfNode(net.receiverNode(1)), 1);
}

TEST(ParallelBus, CustomNetNames) {
    auto spec = paperBus();
    spec.netNames = {"victim", "aggr1"};
    const RcNetwork net = buildParallelBus(spec);
    EXPECT_EQ(net.wireName(0), "victim");
    EXPECT_NE(net.findNode("aggr1:0"), -2);
}

TEST(ParallelBus, RejectsBadSpecs) {
    ParallelBusSpec spec;  // no layer
    EXPECT_THROW(buildParallelBus(spec), LogicError);
    spec = paperBus();
    spec.segments = 0;
    EXPECT_THROW(buildParallelBus(spec), LogicError);
    spec = paperBus();
    spec.netNames = {"onlyone"};
    EXPECT_THROW(buildParallelBus(spec), LogicError);
}

TEST(RcNetwork, AggregatesAndValidation) {
    RcNetwork net;
    const int a0 = net.addNode("a:0");
    const int a1 = net.addNode("a:1");
    net.addRes(a0, a1, 100.0);
    net.addCap(a1, RcNetwork::kGroundNode, 1e-15);
    net.addWire("a", a0, a1);
    EXPECT_DOUBLE_EQ(net.totalResistanceOf(0), 100.0);
    EXPECT_DOUBLE_EQ(net.totalGroundCapOf(0), 1e-15);
    EXPECT_THROW(net.addNode("a:0"), LogicError);
    EXPECT_THROW(net.addRes(a0, 99, 1.0), LogicError);
    EXPECT_THROW(net.addCap(a0, a1, -1e-15), LogicError);
}

TEST(RcNetwork, BuildIntoCreatesPrefixedDevices) {
    const RcNetwork net = buildParallelBus(paperBus(2, 3));
    spice::Circuit c;
    const auto ids = net.buildInto(c, "w:");
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(net.nodeCount()));
    EXPECT_TRUE(c.findNode("w:net0:0").has_value());
    EXPECT_TRUE(c.findNode("w:net1:3").has_value());
    // 2 wires x 3 segments of resistance.
    int resCount = 0;
    for (const auto& d : c.devices()) {
        if (dynamic_cast<const spice::Resistor*>(d.get()) != nullptr) {
            ++resCount;
        }
    }
    EXPECT_EQ(resCount, 6);
}

TEST(ParallelBus, SpefRoundTripPreservesTotals) {
    auto spec = paperBus(3, 8);
    spec.netNames = {"victim", "agg1", "agg2"};
    const RcNetwork net = buildParallelBus(spec);
    const std::string spefText = ic::toSpef(net, "rt");
    const auto spef = parser::parseSpef(spefText);

    ASSERT_EQ(spef.nets().size(), 3u);
    // Per-net resistances round-trip exactly.
    double rTotal = 0.0;
    for (const auto& r : spef.net("victim").ress) rTotal += r.ohms;
    EXPECT_NEAR(rTotal, net.totalResistanceOf(0), 1e-9);
    // Coupling caps connect victim to both neighbors exactly once.
    const auto aggs = spef.aggressorsOf("victim");
    EXPECT_EQ(aggs.size(), 1u);  // victim couples only to agg1 (adjacent)
    // Total capacitance over all nets is conserved.
    double capAll = 0.0;
    for (const auto& [name, n] : spef.nets()) capAll += n.sectionCapTotal();
    double capNet = 0.0;
    for (const auto& c : net.caps()) capNet += c.farads;
    EXPECT_NEAR(capAll, capNet, 1e-21);
}

TEST(ParallelBus, SegmentRefinementConvergesGlitchPeak) {
    // The injected glitch on a resistively held victim must converge as the
    // ladder is refined; 16 segments should be within a few % of 48.
    auto glitchPeak = [](int segments) {
        auto spec = paperBus(2, segments);
        spec.netNames = {"vic", "agg"};
        const RcNetwork net = buildParallelBus(spec);
        spice::Circuit c;
        const auto ids = net.buildInto(c, "");
        c.addVSource("vagg", ids[net.driverNode(1)], spice::kGround,
                     spice::SourceSpec::pwl(
                         wave::saturatedRamp(0, 1.2, 1e-10, 5e-11, 4e-9)));
        c.addResistor("rhold", ids[net.driverNode(0)], spice::kGround, 500.0);
        spice::TranOptions opt;
        opt.tstop = 2e-9;
        const auto res = spice::simulateTransient(c, opt);
        return wave::measureGlitch(res.waveform("vic:0"), 0.0).peak;
    };
    const double p16 = glitchPeak(16);
    const double p48 = glitchPeak(48);
    EXPECT_GT(p16, 0.01);
    EXPECT_NEAR(p16, p48, 0.05 * std::abs(p48));
}

}  // namespace

// Unit tests for the util module: errors, strings, tables, units, rng.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace sna;

// ---------------------------------------------------------------- errors

TEST(Error, HierarchyIsCatchableAsBase) {
    EXPECT_THROW(throw ConvergenceError("x"), Error);
    EXPECT_THROW(throw ParseError("x"), Error);
    EXPECT_THROW(throw ModelError("x"), Error);
    EXPECT_THROW(throw LogicError("x"), Error);
}

TEST(Error, ParseErrorCarriesLine) {
    const ParseError e("bad token", 42);
    EXPECT_EQ(e.line(), 42);
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
}

TEST(Error, RequireThrowsLogicErrorWithContext) {
    try {
        SNA_REQUIRE(1 == 2, "math still works");
        FAIL() << "SNA_REQUIRE did not throw";
    } catch (const LogicError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("math still works"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
    }
}

// --------------------------------------------------------------- strings

TEST(Strings, TrimRemovesEdgesOnly) {
    EXPECT_EQ(str::trim("  a b  "), "a b");
    EXPECT_EQ(str::trim("\t\n x \r "), "x");
    EXPECT_EQ(str::trim(""), "");
    EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, SplitDropsEmptyTokens) {
    const auto t = str::split("  r1   n1\tn2  1k ");
    ASSERT_EQ(t.size(), 4u);
    EXPECT_EQ(t[0], "r1");
    EXPECT_EQ(t[3], "1k");
}

TEST(Strings, CaseInsensitiveHelpers) {
    EXPECT_TRUE(str::iequals("NAND2_X1", "nand2_x1"));
    EXPECT_FALSE(str::iequals("a", "ab"));
    EXPECT_TRUE(str::istartsWith(".SUBCKT inv", ".subckt"));
    EXPECT_FALSE(str::istartsWith("x", ".subckt"));
    EXPECT_EQ(str::toLower("VDD!"), "vdd!");
}

struct SpiceNumberCase {
    const char* text;
    double expected;
};

class SpiceNumberParse : public ::testing::TestWithParam<SpiceNumberCase> {};

TEST_P(SpiceNumberParse, ParsesWithSuffix) {
    const auto& p = GetParam();
    const auto v = str::parseSpiceNumber(p.text);
    ASSERT_TRUE(v.has_value()) << p.text;
    EXPECT_NEAR(*v, p.expected, std::abs(p.expected) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceNumberParse,
    ::testing::Values(SpiceNumberCase{"1", 1.0}, SpiceNumberCase{"-2.5", -2.5},
                      SpiceNumberCase{"1k", 1e3}, SpiceNumberCase{"2.2K", 2.2e3},
                      SpiceNumberCase{"1meg", 1e6}, SpiceNumberCase{"3MEG", 3e6},
                      SpiceNumberCase{"1g", 1e9}, SpiceNumberCase{"1t", 1e12},
                      SpiceNumberCase{"5m", 5e-3}, SpiceNumberCase{"10u", 1e-5},
                      SpiceNumberCase{"7n", 7e-9}, SpiceNumberCase{"2p", 2e-12},
                      SpiceNumberCase{"40f", 40e-15},
                      SpiceNumberCase{"2.2kohm", 2.2e3},
                      SpiceNumberCase{"100fF", 100e-15},
                      SpiceNumberCase{"1e-12", 1e-12},
                      SpiceNumberCase{"1.5e3", 1500.0}));

TEST(Strings, ParseSpiceNumberRejectsGarbage) {
    EXPECT_FALSE(str::parseSpiceNumber("").has_value());
    EXPECT_FALSE(str::parseSpiceNumber("abc").has_value());
    EXPECT_FALSE(str::parseSpiceNumber("1.2.3z9").has_value());
    EXPECT_FALSE(str::parseSpiceNumber("1k2").has_value());
}

// ----------------------------------------------------------------- table

TEST(Table, FormatsAlignedColumns) {
    util::Table t({"Noise", "ELDO(sim)", "Err%"});
    t.addRow({"Peak (V)", util::Table::num(0.345), util::Table::pct(-0.22)});
    t.addRow({"Area (V*ps)", util::Table::num(174.3, 1), util::Table::pct(0.026)});
    const std::string s = t.str();
    EXPECT_NE(s.find("| Peak (V)"), std::string::npos);
    EXPECT_NE(s.find("-22.0"), std::string::npos);
    EXPECT_NE(s.find("+2.6"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    // Every rendered line has the same width.
    std::size_t width = s.find('\n');
    for (std::size_t pos = 0; pos < s.size();) {
        const std::size_t next = s.find('\n', pos);
        EXPECT_EQ(next - pos, width);
        pos = next + 1;
    }
}

TEST(Table, RejectsAridityMismatch) {
    util::Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), LogicError);
}

// ----------------------------------------------------------------- units

TEST(Units, RoundTripConversions) {
    EXPECT_DOUBLE_EQ(500.0 * units::um, 5e-4);
    EXPECT_DOUBLE_EQ(40.0 * units::fF, 4e-14);
    EXPECT_DOUBLE_EQ(174.3 * units::volt_ps / units::ps, 174.3);
    // 0.25 ohm/um over 500 um = 125 ohms.
    EXPECT_NEAR(0.25 * units::ohm_per_um * (500 * units::um), 125.0, 1e-9);
    // 0.08 fF/um over 500 um = 40 fF.
    EXPECT_NEAR(0.08 * units::fF_per_um * (500 * units::um) / units::fF, 40.0,
                1e-9);
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicAcrossInstances) {
    util::Rng a(123);
    util::Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
    }
}

TEST(Rng, RespectsBounds) {
    util::Rng r;
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-2.0, 3.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 3.0);
        const int k = r.uniformInt(1, 6);
        EXPECT_GE(k, 1);
        EXPECT_LE(k, 6);
    }
}

}  // namespace

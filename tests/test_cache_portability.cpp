// Tests for locale-independent model/cache serialization and concurrent
// cache persistence: formatDoubleHex / parseDoubleToken round-trips
// (including the legacy printf-%a spellings older cache files carry),
// model_io and snacache round-trips under a forced comma-decimal locale
// (skipped when the container ships no such locale), a comma-decimal C++
// stream locale (always runs — built from a custom numpunct facet), and a
// two-writer save() stress on one path.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <locale>
#include <string>
#include <thread>
#include <vector>

#include "celllib/library.hpp"
#include "charlib/char_cache.hpp"
#include "charlib/model_io.hpp"
#include "tech/tech.hpp"
#include "waveform/waveform.hpp"
#include "util/strings.hpp"

namespace {

using namespace sna;

std::string tmpPath(const std::string& name) {
    return testing::TempDir() + name;
}

// --------------------------------------------------- hex-float round trip

TEST(HexDouble, RoundTripsBitExactly) {
    const double cases[] = {0.0,
                            1.0,
                            -1.0,
                            1.5,
                            3.141592653589793,
                            1e300,
                            -1e-300,
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity()};
    for (const double v : cases) {
        const auto back = str::parseDoubleToken(str::formatDoubleHex(v));
        ASSERT_TRUE(back.has_value()) << str::formatDoubleHex(v);
        EXPECT_EQ(*back, v) << str::formatDoubleHex(v);
    }
    // -0.0 keeps its sign bit.
    const auto negZero = str::parseDoubleToken(str::formatDoubleHex(-0.0));
    ASSERT_TRUE(negZero.has_value());
    EXPECT_TRUE(std::signbit(*negZero));
    // NaN round-trips as NaN.
    const auto nan = str::parseDoubleToken(
        str::formatDoubleHex(std::numeric_limits<double>::quiet_NaN()));
    ASSERT_TRUE(nan.has_value());
    EXPECT_TRUE(std::isnan(*nan));
}

TEST(HexDouble, AcceptsLegacyPrintfSpellings) {
    // Older cache files were written with printf("%a"): "0x1.8p+1"-style,
    // with an explicit 0x prefix and sign. from_chars-based parsing must
    // keep reading them.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", 0.1);
    EXPECT_EQ(str::parseDoubleToken(buf).value_or(-1.0), 0.1);
    EXPECT_EQ(str::parseDoubleToken("0x1.8p+1").value_or(0.0), 3.0);
    EXPECT_EQ(str::parseDoubleToken("-0x1.0p-3").value_or(0.0), -0.125);
    EXPECT_EQ(str::parseDoubleToken("0X1P+4").value_or(0.0), 16.0);
    // Plain decimal and scientific notation still parse.
    EXPECT_EQ(str::parseDoubleToken("1.25e-3").value_or(0.0), 1.25e-3);
    EXPECT_EQ(str::parseDoubleToken("-42").value_or(0.0), -42.0);
}

TEST(HexDouble, RejectsMalformedTokens) {
    EXPECT_FALSE(str::parseDoubleToken(""));
    EXPECT_FALSE(str::parseDoubleToken("abc"));
    EXPECT_FALSE(str::parseDoubleToken("1.5junk"));
    EXPECT_FALSE(str::parseDoubleToken("0x"));
    EXPECT_FALSE(str::parseDoubleToken("-"));
    // A comma is never a decimal separator, whatever the locale.
    EXPECT_FALSE(str::parseDoubleToken("1,5"));
}

// ------------------------------------------------------------ locale forcing

/// Switches LC_NUMERIC to a comma-decimal locale for the test's scope.
/// available() is false when the container ships none of the candidates.
class CommaLocale {
public:
    CommaLocale() {
        saved_ = std::setlocale(LC_NUMERIC, nullptr);
        for (const char* name :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR.utf8", "fr_FR", "it_IT.UTF-8", "es_ES.UTF-8"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                // Trust but verify: the locale must actually print commas.
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
                if (std::string(buf) == "1,5") {
                    available_ = true;
                    return;
                }
            }
        }
        std::setlocale(LC_NUMERIC, saved_.c_str());
    }
    ~CommaLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
    bool available() const { return available_; }

private:
    std::string saved_;
    bool available_ = false;
};

using charlib::TheveninModel;

TheveninModel referenceModel() {
    TheveninModel m;
    m.vStart = 0.0;
    m.vEnd = 1.2;
    m.slew = 6.5e-11;
    m.rth = 1563.4210526315789;
    m.delay = 4.35e-11;
    return m;
}

void expectModelRoundTrip() {
    const TheveninModel m = referenceModel();
    const TheveninModel back = charlib::loadThevenin(charlib::saveThevenin(m));
    EXPECT_EQ(back.vStart, m.vStart);
    EXPECT_EQ(back.vEnd, m.vEnd);
    EXPECT_EQ(back.slew, m.slew);
    EXPECT_EQ(back.rth, m.rth);
    EXPECT_EQ(back.delay, m.delay);
}

charlib::CharCache& seededCache(charlib::CharCache& cache,
                                const cell::CellLibrary& lib,
                                std::size_t entries) {
    for (std::size_t i = 0; i < entries; ++i) {
        charlib::TheveninSpec spec;
        spec.cell = &lib.cell("INV_X1");
        spec.input = "a";
        spec.outputRising = (i % 2) == 0;
        spec.loadCap = 10e-15 + 1e-15 * static_cast<double>(i);
        TheveninModel m = referenceModel();
        m.rth += static_cast<double>(i);
        EXPECT_TRUE(cache.seedThevenin(spec, m));
    }
    return cache;
}

TEST(LocalePortability, ModelAndCacheRoundTripUnderCommaDecimalCLocale) {
    CommaLocale locale;
    if (!locale.available()) {
        GTEST_SKIP() << "no comma-decimal locale installed in this image";
    }
    expectModelRoundTrip();

    const cell::CellLibrary lib(tech::tech130());
    const std::string path = tmpPath("sna_locale.snacache");
    charlib::CharCache cache;
    seededCache(cache, lib, 4);
    const auto saved = cache.save(path);
    EXPECT_TRUE(saved.ok) << saved.error;
    EXPECT_EQ(saved.entries, 4u);
    charlib::CharCache fresh;
    const auto loaded = fresh.load(path);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, 4u);
    std::remove(path.c_str());
}

TEST(LocalePortability, StreamsUnderCommaDecimalGlobalCppLocale) {
    // A comma-decimal numpunct needs no OS locale pack, so this test always
    // runs: it catches any serialization path formatting through an
    // un-imbued iostream.
    struct CommaPunct : std::numpunct<char> {
        char do_decimal_point() const override { return ','; }
    };
    const std::locale saved = std::locale::global(
        std::locale(std::locale::classic(), new CommaPunct));
    struct Restore {
        const std::locale& loc;
        ~Restore() { std::locale::global(loc); }
    } restore{saved};

    expectModelRoundTrip();

    // The CSV exchange format stays dot-decimal too: a comma-decimal
    // writer would produce a third column and break the round trip.
    wave::Waveform w;
    w.append(0.0, 0.0);
    w.append(1.5e-12, 0.75);
    const std::string csv = charlib::toCsv(w);
    const wave::Waveform back = charlib::fromCsv(csv);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_DOUBLE_EQ(back.samples()[1].t, 1.5e-12);
    EXPECT_DOUBLE_EQ(back.samples()[1].v, 0.75);
}

// ----------------------------------------------------- concurrent persistence

TEST(ConcurrentSave, TwoWritersOnePathNeverCorrupt) {
    const cell::CellLibrary lib(tech::tech130());
    const std::string name = "sna_concurrent.snacache";
    const std::string path = tmpPath(name);
    charlib::CharCache cache;
    seededCache(cache, lib, 8);

    constexpr int kIters = 25;
    std::vector<std::thread> writers;
    std::vector<int> failures(2, 0);
    for (int t = 0; t < 2; ++t) {
        writers.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                const auto r = cache.save(path);
                if (!r.ok || r.entries != 8u) ++failures[t];
            }
        });
    }
    for (auto& th : writers) th.join();
    EXPECT_EQ(failures[0], 0);
    EXPECT_EQ(failures[1], 0);

    // Whoever won, the published file is one complete snapshot.
    charlib::CharCache fresh;
    const auto loaded = fresh.load(path);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, 8u);

    // No temporary sibling survives: every writer's tmp was renamed away.
    std::size_t leftover = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(testing::TempDir())) {
        const std::string base = entry.path().filename().string();
        if (base.rfind(name + ".tmp.", 0) == 0) ++leftover;
    }
    EXPECT_EQ(leftover, 0u);
    std::remove(path.c_str());
}

}  // namespace

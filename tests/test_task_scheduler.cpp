// Dependency-counted task scheduler: randomized-DAG stress (every task runs
// exactly once, after all its fanins, at any thread count), thread-pool
// batching/reuse, and the design-level guarantee the wavefront builds on
// it: the scheduled run is bit-identical to the level-barrier run — and to
// analyzeDesignReference with propagate=false — at threads 1, 4, and 8,
// with and without propagation and timing windows.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "charlib/char_cache.hpp"
#include "core/design_index.hpp"
#include "core/sna.hpp"
#include "parser/windows_parser.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/task_scheduler.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sna;

// ----------------------------------------------------------- scheduler unit

util::TaskGraph randomDag(util::Rng& rng, int n, double edgeChance) {
    util::TaskGraph g;
    g.fanout.resize(n);
    g.faninCount.assign(n, 0);
    for (int from = 0; from < n; ++from) {
        for (int to = from + 1; to < n; ++to) {
            if (rng.chance(edgeChance)) {
                g.fanout[from].push_back(to);
                ++g.faninCount[to];
            }
        }
    }
    return g;
}

TEST(TaskScheduler, RandomDagStressRunsEachTaskOnceAfterItsFanins) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        util::Rng rng(seed);
        const int n = 120;
        const util::TaskGraph graph = randomDag(rng, n, 0.04);
        // Fanin lists for the postcondition check (the graph stores counts).
        std::vector<std::vector<int>> fanin(n);
        for (int from = 0; from < n; ++from) {
            for (const int to : graph.fanout[from]) fanin[to].push_back(from);
        }
        // Random task durations so completion order varies across workers.
        std::vector<int> napUs(n);
        for (int i = 0; i < n; ++i) napUs[i] = rng.uniformInt(0, 120);

        for (const int threads : {1, 4, 8}) {
            std::vector<std::atomic<int>> runs(n);
            std::vector<std::atomic<bool>> done(n);
            for (int i = 0; i < n; ++i) {
                runs[i].store(0);
                done[i].store(false);
            }
            std::atomic<int> faninViolations{0};
            const auto task = [&](int i) {
                for (const int f : fanin[i]) {
                    if (!done[f].load()) faninViolations.fetch_add(1);
                }
                runs[i].fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(napUs[i]));
                done[i].store(true);
            };
            util::SchedulerStats stats;
            if (threads <= 1) {
                stats = util::runTaskGraph(graph, task, nullptr);
                ASSERT_EQ(stats.busyFraction.size(), 1u);
            } else {
                util::ThreadPool pool(threads);
                stats = util::runTaskGraph(graph, task, &pool);
                ASSERT_EQ(stats.busyFraction.size(),
                          static_cast<std::size_t>(threads));
            }
            EXPECT_EQ(faninViolations.load(), 0)
                << "seed=" << seed << " threads=" << threads;
            for (int i = 0; i < n; ++i) {
                EXPECT_EQ(runs[i].load(), 1)
                    << "task " << i << " seed=" << seed
                    << " threads=" << threads;
            }
            EXPECT_EQ(stats.tasksExecuted, static_cast<std::size_t>(n));
            EXPECT_GE(stats.maxReadyDepth, 1u);
        }
    }
}

TEST(TaskScheduler, SerialOrderIsDeterministicKahn) {
    util::Rng rng(7);
    const util::TaskGraph graph = randomDag(rng, 60, 0.08);
    std::vector<int> order1, order2;
    util::runTaskGraph(graph, [&](int i) { order1.push_back(i); });
    util::runTaskGraph(graph, [&](int i) { order2.push_back(i); });
    EXPECT_EQ(order1, order2);
    ASSERT_EQ(order1.size(), 60u);
    // Topological: every task appears after all its fanins.
    std::vector<int> pos(60);
    for (int k = 0; k < 60; ++k) pos[order1[k]] = k;
    for (int from = 0; from < 60; ++from) {
        for (const int to : graph.fanout[from]) {
            EXPECT_LT(pos[from], pos[to]);
        }
    }
}

TEST(TaskScheduler, CycleIsRejectedUpFront) {
    util::TaskGraph graph;
    graph.fanout = {{1}, {2}, {0}};
    graph.faninCount = {1, 1, 1};
    EXPECT_THROW(util::runTaskGraph(graph, [](int) {}), LogicError);
    util::ThreadPool pool(2);
    EXPECT_THROW(util::runTaskGraph(graph, [](int) {}, &pool), LogicError);
}

TEST(TaskScheduler, FirstExceptionPropagatesAndRunDrains) {
    util::TaskGraph graph;
    const int n = 40;
    graph.fanout.resize(n);
    graph.faninCount.assign(n, 0);
    for (int i = 1; i < n; ++i) {
        graph.fanout[i - 1] = {i};  // a chain: the throw has dependents
        graph.faninCount[i] = 1;
    }
    for (const int threads : {1, 4}) {
        util::ThreadPool pool(threads);
        std::atomic<int> ran{0};
        const auto task = [&](int i) {
            if (i == 5) throw ModelError("boom");
            ran.fetch_add(1);
        };
        EXPECT_THROW(
            util::runTaskGraph(graph, task, threads > 1 ? &pool : nullptr),
            ModelError);
        // Tasks before the throw ran; tasks after it were skipped but their
        // dependency counts still drained (no hang to get here).
        EXPECT_GE(ran.load(), 5);
    }
}

// ------------------------------------------------------- thread pool reuse

TEST(ThreadPool, RunBatchExecutesEveryJob) {
    util::ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 100; ++i) {
        jobs.push_back([&count] { count.fetch_add(1); });
    }
    pool.runBatch(std::move(jobs));
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForReusesACallerOwnedPool) {
    util::ThreadPool pool(4);
    for (int sweep = 0; sweep < 3; ++sweep) {
        std::vector<int> out(257, -1);
        util::parallelFor(&pool, static_cast<int>(out.size()),
                          [&](int i) { out[i] = i * i; });
        for (int i = 0; i < static_cast<int>(out.size()); ++i) {
            ASSERT_EQ(out[i], i * i) << "sweep " << sweep;
        }
    }
    // Null pool runs inline.
    int calls = 0;
    util::parallelFor(nullptr, 5, [&](int) { ++calls; });
    EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, ParallelForOnPoolRethrowsFirstError) {
    util::ThreadPool pool(4);
    EXPECT_THROW(util::parallelFor(&pool, 64,
                                   [](int i) {
                                       if (i == 13) throw ModelError("bad");
                                   }),
                 ModelError);
    // The pool survives the error and remains usable.
    std::atomic<int> count{0};
    util::parallelFor(&pool, 16, [&](int) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 16);
}

// ------------------------------------------- design-level bit-identity

void addInst(core::Design& d, const std::string& name,
             const std::string& cell,
             std::map<std::string, std::string> pins) {
    core::Instance in;
    in.name = name;
    in.cellName = cell;
    in.pinToNet = std::move(pins);
    d.addInstance(std::move(in));
}

// Chained coupled design (same shape as the bench's chained variant): two
// parallel chains whose stage nets couple ring-wise, every 4th net quiet so
// the pass-through path runs too.
std::string chainedSpef(int nets) {
    const auto quiet = [](int i) { return i % 4 == 3; };
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"sched\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = (8.0 + (i % 11)) * 2.2;
        const bool couple = !quiet(i) && !quiet(j);
        os << "*D_NET n" << i << " " << (6.5 + (couple ? cc : 0.0)) << "\n";
        os << "*CONN\n*I g" << i << ":y O\n*CAP\n";
        os << "1 g" << i << ":y 2.0\n2 n" << i << ":1 3.0\n";
        if (couple) {
            os << "3 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        }
        os << "*RES\n1 g" << i << ":y n" << i << ":1 40\n*END\n\n";
    }
    return os.str();
}

void buildChained(core::Design& d, int nets, int chains) {
    const int depth = (nets + chains - 1) / chains;
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        const int pos = i % depth;
        const std::string prev = pos == 0 ? "pi" + std::to_string(i / depth)
                                          : "n" + std::to_string(i - 1);
        addInst(d, "g" + n, "INV_X1", {{"a", prev}, {"y", "n" + n}});
        if (pos == depth - 1 || i == nets - 1) {
            addInst(d, "snk" + n, "INV_X2",
                    {{"a", "n" + n}, {"y", "po" + n}});
        }
    }
}

void expectSameReports(const std::vector<core::NetNoiseReport>& a,
                       const std::vector<core::NetNoiseReport>& b,
                       const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].net, b[i].net) << label << " i=" << i;
        EXPECT_EQ(a[i].aggressorNets, b[i].aggressorNets) << label;
        // Bit-identical, not merely close.
        EXPECT_EQ(a[i].cluster.margin, b[i].cluster.margin)
            << label << " net=" << a[i].net;
        EXPECT_EQ(a[i].cluster.nrcLimit, b[i].cluster.nrcLimit) << label;
        EXPECT_EQ(a[i].cluster.fails, b[i].cluster.fails) << label;
        EXPECT_EQ(a[i].cluster.worst.metrics.peak,
                  b[i].cluster.worst.metrics.peak)
            << label << " net=" << a[i].net;
        EXPECT_EQ(a[i].cluster.worst.metrics.width,
                  b[i].cluster.worst.metrics.width)
            << label;
        EXPECT_EQ(a[i].propagated.present, b[i].propagated.present) << label;
        EXPECT_EQ(a[i].propagated.fromNet, b[i].propagated.fromNet) << label;
        EXPECT_EQ(a[i].propagated.height, b[i].propagated.height) << label;
        EXPECT_EQ(a[i].propagated.localMargin, b[i].propagated.localMargin)
            << label;
        EXPECT_EQ(a[i].windows.constrained, b[i].windows.constrained)
            << label;
        EXPECT_EQ(a[i].windows.unconstrainedMargin,
                  b[i].windows.unconstrainedMargin)
            << label << " net=" << a[i].net;
        EXPECT_EQ(a[i].windows.windowedMargin, b[i].windows.windowedMargin)
            << label << " net=" << a[i].net;
        EXPECT_EQ(a[i].windows.excludedAggressors,
                  b[i].windows.excludedAggressors)
            << label;
        EXPECT_EQ(a[i].windows.droppedIncoming, b[i].windows.droppedIncoming)
            << label;
    }
}

TEST(WavefrontScheduling, TaskGraphBitIdenticalToBarrierAndReference) {
    const cell::CellLibrary lib(tech::tech130());
    const int nets = 12;
    const auto spef = parser::parseSpef(chainedSpef(nets));
    core::Design design(lib);
    buildChained(design, nets, 2);

    // Windows: blocks of two in disjoint slots, same as the bench.
    std::ostringstream ws;
    ws << "*T_UNIT 1 PS\n";
    for (int i = 0; i < nets; ++i) {
        ws << "n" << i << ((i / 2) % 2 == 0 ? " 0 300" : " 1500 1800")
           << "\n";
    }
    const core::TimingWindows windows = parser::parseTimingWindows(ws.str());

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    charlib::CharCache cache;  // shared: identical keys, results unaffected
    opt.cache = &cache;

    // Flat sweep: bit-identical to the brute-force reference at 1/4/8
    // threads (threading now goes through the shared per-call pool).
    opt.propagate = false;
    const auto ref = core::analyzeDesignReference(design, spef, opt);
    for (const int threads : {1, 4, 8}) {
        opt.threads = threads;
        expectSameReports(core::analyzeDesign(design, spef, opt), ref,
                          "flat t" + std::to_string(threads));
    }

    // Propagated and windowed wavefronts: scheduled == barrier at every
    // thread count, and == the barrier's serial (t=1) run across counts.
    opt.propagate = true;
    for (const core::TimingWindows* w :
         {static_cast<const core::TimingWindows*>(nullptr), &windows}) {
        opt.windows = w;
        const std::string variant = w == nullptr ? "prop" : "windowed";
        opt.threads = 1;
        opt.wavefront = core::WavefrontMode::levelBarrier;
        const auto barrier1 = core::analyzeDesign(design, spef, opt);
        for (const int threads : {1, 4, 8}) {
            opt.threads = threads;
            opt.wavefront = core::WavefrontMode::levelBarrier;
            const auto barrier = core::analyzeDesign(design, spef, opt);
            opt.wavefront = core::WavefrontMode::taskGraph;
            util::SchedulerStats stats;
            opt.schedulerStats = &stats;
            const auto sched = core::analyzeDesign(design, spef, opt);
            opt.schedulerStats = nullptr;
            const std::string label =
                variant + " t" + std::to_string(threads);
            expectSameReports(sched, barrier, label + " sched-vs-barrier");
            expectSameReports(sched, barrier1, label + " sched-vs-serial");
            // Every net of the level graph ran as a task.
            EXPECT_EQ(
                stats.tasksExecuted,
                core::DesignIndex(design, spef).taskGraph().nets.size())
                << label;
        }
    }
}

TEST(WavefrontScheduling, TaskGraphExposesScheduledAdjacency) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    // in -> x -> y -> z chain plus a cycle w <-> v hanging off y: the
    // broken edge must be absent from the scheduled adjacency.
    addInst(design, "g1", "INV_X1", {{"a", "in"}, {"y", "x"}});
    addInst(design, "g2", "INV_X1", {{"a", "x"}, {"y", "y"}});
    addInst(design, "g3", "INV_X1", {{"a", "y"}, {"y", "z"}});
    addInst(design, "g4", "NAND2_X1",
            {{"a", "y"}, {"b", "v"}, {"y", "w"}});
    addInst(design, "g5", "INV_X1", {{"a", "w"}, {"y", "v"}});
    const auto spef = parser::parseSpef(
        "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"adj\"\n"
        "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n");
    const core::DesignIndex index(design, spef);
    const core::NetTaskGraph& tg = index.taskGraph();
    const core::NetLevels& lv = index.levels();

    ASSERT_EQ(tg.nets.size(), lv.levelOf.size());
    ASSERT_EQ(lv.brokenEdges.size(), 1u);
    // Ids are (level, name)-ordered: strictly increasing level along ids.
    for (std::size_t id = 1; id < tg.nets.size(); ++id) {
        EXPECT_GE(lv.levelOf.at(tg.nets[id]), lv.levelOf.at(tg.nets[id - 1]));
    }
    int edges = 0;
    for (std::size_t id = 0; id < tg.nets.size(); ++id) {
        EXPECT_EQ(tg.graph.faninCount[id],
                  static_cast<int>(tg.faninIds[id].size()));
        // Scheduled fanins come from strictly lower levels.
        for (const int f : tg.faninIds[id]) {
            EXPECT_LT(lv.levelOf.at(tg.nets[f]), lv.levelOf.at(tg.nets[id]));
        }
        edges += static_cast<int>(tg.faninIds[id].size());
        // fanout/fanin agree.
        for (const int to : tg.graph.fanout[id]) {
            const auto& fi = tg.faninIds[to];
            EXPECT_TRUE(std::find(fi.begin(), fi.end(),
                                  static_cast<int>(id)) != fi.end());
        }
    }
    // The broken edge (into the cycle's smallest member) is not scheduled:
    // total scheduled edges = unique design edges minus the broken one.
    // Edges: in->x, x->y, y->z, y->w, v->w, w->v with w->v broken.
    EXPECT_EQ(edges, 5);
}

}  // namespace

// Tests for the SPICE and SPEF front-ends, including the cell-library
// round-trip (emit -> parse -> simulate -> same truth table).
#include <gtest/gtest.h>

#include "celllib/library.hpp"
#include "celllib/spice_text.hpp"
#include "parser/spef_parser.hpp"
#include "parser/spice_parser.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"

namespace {

using namespace sna;

// ----------------------------------------------------------------- spice

TEST(SpiceParser, ResistorDivider) {
    const auto net = parser::parseSpice(R"(
* comment line
v1 vdd 0 dc 3.0
r1 vdd mid 1k
r2 mid 0 2k
.end
)");
    const auto dc = spice::solveDc(net.circuit());
    EXPECT_NEAR(dc.voltage("mid"), 2.0, 1e-6);
}

TEST(SpiceParser, ContinuationAndUnits) {
    const auto net = parser::parseSpice(
        "v1 a 0\n+ dc 1.0\nr1 a b 500ohm\nc1 b 0 10f\n");
    EXPECT_NE(net.circuit().findDevice("r1"), nullptr);
    const auto* c1 =
        dynamic_cast<const spice::Capacitor*>(net.circuit().findDevice("c1"));
    ASSERT_NE(c1, nullptr);
    EXPECT_DOUBLE_EQ(c1->capacitance(), 10e-15);
}

TEST(SpiceParser, PwlSource) {
    const auto net =
        parser::parseSpice("v1 in 0 pwl(0 0 1n 0 1.1n 1.2 5n 1.2)\n");
    const auto* v =
        dynamic_cast<const spice::VSource*>(net.circuit().findDevice("v1"));
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->spec().value(0.5e-9), 0.0);
    EXPECT_NEAR(v->spec().value(1.05e-9), 0.6, 1e-9);
    EXPECT_DOUBLE_EQ(v->spec().value(4e-9), 1.2);
}

TEST(SpiceParser, ControlledSources) {
    const auto net = parser::parseSpice(R"(
v1 in 0 dc 0.5
e1 eo 0 in 0 2.0
g1 go 0 in 0 1m
rg go 0 1k
re eo 0 1k
)");
    const auto dc = spice::solveDc(net.circuit());
    EXPECT_NEAR(dc.voltage("eo"), 1.0, 1e-6);
    EXPECT_NEAR(dc.voltage("go"), -0.5, 1e-6);
}

TEST(SpiceParser, SubcktExpansion) {
    const auto net = parser::parseSpice(R"(
.subckt divider top mid bot
r1 top mid 1k
r2 mid bot 1k
.ends
v1 vdd 0 dc 2.0
x1 vdd m1 0 divider
x2 m1 m2 0 divider
)");
    const auto dc = spice::solveDc(net.circuit());
    // x2 loads x1's midpoint: m1 sees 1k to vdd and 1k || 2k to ground.
    EXPECT_NEAR(dc.voltage("m1"), 0.8, 1e-6);
    EXPECT_NEAR(dc.voltage("m2"), 0.4, 1e-6);
}

TEST(SpiceParser, NestedSubcktsCreateScopedNodes) {
    const auto net = parser::parseSpice(R"(
.subckt leaf a b
r1 a x 1k
r2 x b 1k
.ends
.subckt stack p q
x1 p m leaf
x2 m q leaf
.ends
v1 t 0 dc 4.0
xs t 0 stack
)");
    const auto dc = spice::solveDc(net.circuit());
    // Internal midpoint of the stack is at half the supply.
    EXPECT_NEAR(dc.voltage("xs.m"), 2.0, 1e-6);
    // Leaf-internal node got a hierarchical name.
    EXPECT_TRUE(net.circuit().findNode("xs.x1.x").has_value());
}

TEST(SpiceParser, MosfetWithModel) {
    const auto net = parser::parseSpice(R"(
.model mynmos nmos (level=1 vto=0.4 kp=200u lambda=0.05)
vd d 0 dc 1.2
vg g 0 dc 1.2
m1 d g 0 0 mynmos w=1u l=0.13u
)");
    const auto dc = spice::solveDc(net.circuit());
    // Saturation current of the square-law device.
    const double beta = 200e-6 * (1.0 / 0.13);
    const double expected = 0.5 * beta * (1.2 - 0.4) * (1.2 - 0.4) *
                            (1 + 0.05 * 1.2);
    // vd delivers the drain current into the drain node.
    EXPECT_NEAR(dc.sourceCurrent("vd"), expected, expected * 0.01);
}

struct BadNetlist {
    const char* text;
    const char* why;
};

class SpiceParserRejects : public ::testing::TestWithParam<BadNetlist> {};

TEST_P(SpiceParserRejects, ThrowsParseError) {
    EXPECT_THROW(parser::parseSpice(GetParam().text), ParseError)
        << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpiceParserRejects,
    ::testing::Values(
        BadNetlist{"r1 a b\n", "missing value"},
        BadNetlist{"r1 a b 1x2\n", "bad number"},
        BadNetlist{"+ r1 a b 1k\n", "leading continuation"},
        BadNetlist{"q1 a b c qmod\n", "unsupported element"},
        BadNetlist{".subckt s a\nr1 a 0 1k\n", "missing .ends"},
        BadNetlist{"x1 a b nosub\n", "unknown subckt"},
        BadNetlist{"m1 d g s b nomodel w=1u l=1u\n", "unknown model"},
        BadNetlist{".model m bjt (level=1)\n", "unsupported model type"},
        BadNetlist{".model m nmos (level=2)\n", "unsupported level"},
        BadNetlist{"v1 a 0 pwl(0 0 1n)\n", "odd pwl values"},
        BadNetlist{".temp 27\n", "unsupported directive"},
        BadNetlist{"e1 a 0 b 0\n", "VCVS missing gain"}));

TEST(SpiceParser, CellLibraryRoundTrip) {
    // Emit the whole library as SPICE text, parse it back, instantiate
    // NAND2_X1 via an X card, and verify one truth-table row electrically.
    const cell::CellLibrary lib(tech::tech130());
    std::string deck = cell::libraryText(lib);
    deck += R"(
vdd vdd 0 dc 1.2
va a 0 dc 1.2
vb b 0 dc 0.0
x1 a b y vdd 0 NAND2_X1
)";
    const auto net = parser::parseSpice(deck);
    const auto dc = spice::solveDc(net.circuit());
    EXPECT_NEAR(dc.voltage("y"), 1.2, 0.03);  // NAND(1,0) = 1
}

// ------------------------------------------------------------------ spef

const char* kSpef = R"(
*SPEF "IEEE 1481-1998"
*DESIGN "cluster0"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM

*D_NET victim 45.0
*CONN
*P vin I
*I u1:y O
*I u2:a I
*CAP
1 victim:1 15.0
2 victim:2 victim_2_agg 10.0 // coupling written as its own node pair
3 victim:2 aggr:2 20.0
*RES
1 victim:1 victim:2 62.5
2 victim:2 victim:3 62.5
*END

*D_NET aggr 30.0
*CONN
*I u3:y O
*CAP
1 aggr:1 30.0
*RES
1 aggr:1 aggr:2 125.0
*END
)";

TEST(SpefParser, ParsesNetsCapsRes) {
    const auto spef = parser::parseSpef(kSpef);
    EXPECT_EQ(spef.design(), "cluster0");
    ASSERT_EQ(spef.nets().size(), 2u);
    const auto& v = spef.net("victim");
    EXPECT_DOUBLE_EQ(v.totalCap, 45e-15);
    ASSERT_EQ(v.caps.size(), 3u);
    EXPECT_TRUE(v.caps[0].node2.empty());
    EXPECT_DOUBLE_EQ(v.caps[0].farads, 15e-15);
    EXPECT_DOUBLE_EQ(v.caps[2].farads, 20e-15);
    ASSERT_EQ(v.ress.size(), 2u);
    EXPECT_DOUBLE_EQ(v.ress[0].ohms, 62.5);
    ASSERT_EQ(v.conns.size(), 3u);
    EXPECT_EQ(v.conns[0].kind, parser::SpefConnKind::Port);
    EXPECT_EQ(v.conns[1].direction, 'O');
}

TEST(SpefParser, AggressorDiscoveryThroughCouplingCaps) {
    const auto spef = parser::parseSpef(kSpef);
    const auto aggs = spef.aggressorsOf("victim");
    // "victim_2_agg" is a dangling coupling node (its owner is not a
    // declared net — SNA-L103's finding), so only "aggr" is an aggressor.
    ASSERT_EQ(aggs.size(), 1u);
    EXPECT_NE(std::find(aggs.begin(), aggs.end(), "aggr"), aggs.end());
    // Discovery is symmetric even though the cap is listed under "victim".
    const auto& back = spef.aggressorsOf("aggr");
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0], "victim");
}

TEST(SpefParser, BuildIntoCircuitPreservesTotals) {
    const auto spef = parser::parseSpef(kSpef);
    spice::Circuit c;
    spef.buildInto(c);
    double rTotal = 0.0, cTotal = 0.0;
    for (const auto& dev : c.devices()) {
        if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
            rTotal += r->resistance();
        } else if (const auto* cap =
                       dynamic_cast<const spice::Capacitor*>(dev.get())) {
            cTotal += cap->capacitance();
        }
    }
    EXPECT_DOUBLE_EQ(rTotal, 62.5 + 62.5 + 125.0);
    EXPECT_DOUBLE_EQ(cTotal, (15.0 + 10.0 + 20.0 + 30.0) * 1e-15);
}

TEST(SpefParser, UnitScalingPf) {
    const auto spef = parser::parseSpef(R"(
*C_UNIT 1 PF
*R_UNIT 1 KOHM
*D_NET n1 0.5
*CAP
1 n1:1 0.5
*RES
1 n1:1 n1:2 0.1
*END
)");
    EXPECT_DOUBLE_EQ(spef.net("n1").caps[0].farads, 0.5e-12);
    EXPECT_DOUBLE_EQ(spef.net("n1").ress[0].ohms, 100.0);
}

class SpefParserRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(SpefParserRejects, ThrowsParseError) {
    EXPECT_THROW(parser::parseSpef(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpefParserRejects,
    ::testing::Values("*D_NET n1\n", "*D_NET n1 bogus\n",
                      "*D_NET a 1\n*CAP\n1 a:1\n*END\n",
                      "*D_NET a 1\n*RES\n1 a:1 5.0\n*END\n",
                      "1 a:1 a:2 5.0\n", "*C_UNIT 1 LIGHTYEAR\n",
                      "*D_NET a 1\n*D_NET a 1\n"));

TEST(SpefParser, UnknownNetThrowsModelError) {
    const auto spef = parser::parseSpef(kSpef);
    EXPECT_THROW(spef.net("nope"), ModelError);
}

}  // namespace

// Tests for cell characterization: load curves (the paper's Eq. (1)),
// holding resistance, Thevenin fits, propagation tables, NRCs, and input
// capacitance measurement.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/library.hpp"
#include "charlib/characterize.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using cell::CellLibrary;

const CellLibrary& lib130() {
    static const CellLibrary lib(tech::tech130());
    return lib;
}

charlib::LoadCurveSpec nandSpec(int n = 17) {
    charlib::LoadCurveSpec spec;
    spec.cell = &lib130().cell("NAND2_X1");
    spec.input = "a";
    spec.outputLevel = false;  // a=b=1, output held low
    spec.nVin = n;
    spec.nVout = n;
    return spec;
}

TEST(LoadCurve, ZeroCurrentAtTheHoldingPoint) {
    const auto table = charlib::characterizeLoadCurve(nandSpec());
    // At (vin = vdd, vout = 0) the cell is in its stable state: the current
    // vanishes up to bilinear interpolation error between grid points (the
    // restoring current is mA-scale two patches away).
    EXPECT_NEAR(table(1.2, 0.0), 0.0, 5e-6);
}

TEST(LoadCurve, RestoringCurrentGrowsWithOutputNoise) {
    const auto table = charlib::characterizeLoadCurve(nandSpec());
    // Output pushed above ground with full gate drive: the NMOS stack sinks
    // monotonically increasing current.
    double prev = -1e9;
    for (double v = 0.0; v <= 1.0; v += 0.1) {
        const double i = table(1.2, v);
        EXPECT_GE(i, prev - 1e-9) << "v=" << v;
        prev = i;
    }
    EXPECT_GT(table(1.2, 0.6), 1e-4);  // mA-scale restoring current
}

TEST(LoadCurve, InputGlitchWeakensRestoringCurrent) {
    // The cell non-linearity at the heart of the paper: a glitch on the
    // victim driver INPUT (vin dropping from vdd) reduces the output
    // restoring current — the interaction linear superposition misses.
    const auto table = charlib::characterizeLoadCurve(nandSpec());
    const double strong = table(1.2, 0.4);
    const double weak = table(0.7, 0.4);
    const double off = table(0.2, 0.4);
    EXPECT_GT(strong, weak);
    EXPECT_GT(weak, off);
    // With the input glitched below VT the pulldown is nearly off while the
    // pullup starts fighting: much smaller (possibly negative) current.
    EXPECT_LT(off, 0.25 * strong);
}

TEST(LoadCurve, PullupRestoresTowardVdd) {
    // With the input glitched low the NAND pullup turns on and restores the
    // output toward vdd: it SOURCES current while vout < vdd (negative
    // table entry) and SINKS it again once the output is dragged above vdd.
    const auto table = charlib::characterizeLoadCurve(nandSpec());
    EXPECT_LT(table(0.0, 0.6), 0.0);
    EXPECT_GT(table(0.0, 1.4), 0.0);
}

TEST(LoadCurve, GridMatchesDirectDcSolve) {
    // Interpolated table values reproduce fresh DC solves within bilinear
    // interpolation error.
    const auto table = charlib::characterizeLoadCurve(nandSpec(33));
    const auto fine = charlib::characterizeLoadCurve(nandSpec(9));
    for (const double vin : {0.15, 0.62, 1.05}) {
        for (const double vout : {0.08, 0.33, 0.91}) {
            EXPECT_NEAR(fine(vin, vout), table(vin, vout),
                        std::max(3e-5, 0.08 * std::abs(table(vin, vout))));
        }
    }
}

TEST(HoldingResistance, PositiveAndOrdered) {
    // NAND2 output-low holding resistance: the 2-stack of X1 is weaker
    // (higher R) than the X2 version.
    const auto t1 = charlib::characterizeLoadCurve(nandSpec());
    auto spec2 = nandSpec();
    spec2.cell = &lib130().cell("NAND2_X2");
    const auto t2 = charlib::characterizeLoadCurve(spec2);
    const double r1 = charlib::holdingResistance(t1, 1.2, 0.0);
    const double r2 = charlib::holdingResistance(t2, 1.2, 0.0);
    EXPECT_GT(r1, 10.0);
    EXPECT_LT(r1, 1e5);
    EXPECT_LT(r2, r1);
    EXPECT_NEAR(r2, 0.5 * r1, 0.2 * r1);
}

TEST(HoldingResistance, NonRestoringTableThrows) {
    // A synthetic load curve with dI/dVout <= 0 models a node that is not
    // actually held; the extraction must refuse it.
    const la::Grid2d bad({0.0, 1.0}, {0.0, 1.0}, {0.0, -1e-3, 0.0, -1e-3});
    EXPECT_THROW(charlib::holdingResistance(bad, 0.5, 0.5), ModelError);
}

TEST(Thevenin, FitReproducesCrossingTimes) {
    charlib::TheveninSpec spec;
    spec.cell = &lib130().cell("INV_X1");
    spec.input = "a";
    spec.outputRising = false;  // inverter output falls on rising input
    spec.loadCap = 30e-15;
    const auto model = charlib::characterizeThevenin(spec);
    EXPECT_GT(model.rth, 10.0);
    EXPECT_LT(model.rth, 1e4);
    EXPECT_GT(model.slew, 1e-12);
    EXPECT_LT(model.slew, 1e-9);
    EXPECT_DOUBLE_EQ(model.vStart, 1.2);
    EXPECT_DOUBLE_EQ(model.vEnd, 0.0);

    // Validate: the Thevenin circuit into the same load lands within 15% on
    // the 50% crossing of the golden transition (Dartu-Pileggi accuracy).
    spice::Circuit golden;
    {
        const auto vdd = golden.node("vdd");
        const auto in = golden.node("in");
        const auto out = golden.node("out");
        golden.addVSource("vs", vdd, spice::kGround, spice::SourceSpec::dc(1.2));
        golden.addVSource("vin", in, spice::kGround,
                          spice::SourceSpec::pwl(wave::saturatedRamp(
                              0, 1.2, 50e-12, 30e-12, 4e-9)));
        golden.addCapacitor("cl", out, spice::kGround, 30e-15);
        lib130().cell("INV_X1").instantiate(golden, "dut",
                                            {{"a", in}, {"y", out}}, vdd);
    }
    spice::TranOptions opt;
    opt.tstop = 4e-9;
    const auto goldenOut =
        spice::simulateTransient(golden, opt).waveform("out");

    spice::Circuit thev;
    {
        const auto src = thev.node("src");
        const auto out = thev.node("out");
        thev.addVSource("vth", src, spice::kGround,
                        spice::SourceSpec::pwl(
                            model.ramp(50e-12 + model.delay, 4e-9)));
        thev.addResistor("rth", src, out, model.rth);
        thev.addCapacitor("cl", out, spice::kGround, 30e-15);
    }
    const auto thevOut = spice::simulateTransient(thev, opt).waveform("out");

    auto cross50 = [](const wave::Waveform& w, bool falling) {
        const auto& s = w.samples();
        for (std::size_t i = 1; i < s.size(); ++i) {
            const bool crossed = falling ? (s[i - 1].v > 0.6 && s[i].v <= 0.6)
                                         : (s[i - 1].v < 0.6 && s[i].v >= 0.6);
            if (!crossed) continue;
            const double f = (0.6 - s[i - 1].v) / (s[i].v - s[i - 1].v);
            return s[i - 1].t + f * (s[i].t - s[i - 1].t);
        }
        return -1.0;
    };
    const double tg = cross50(goldenOut, true);
    const double tt = cross50(thevOut, true);
    ASSERT_GT(tg, 0.0);
    ASSERT_GT(tt, 0.0);
    EXPECT_NEAR(tt, tg, 0.15 * tg);
}

TEST(Thevenin, StrongerDriverFitsSmallerR) {
    // Compare at matched electrical operating points (load scaled with the
    // drive): the waveforms are then similar and the fitted R must scale
    // inversely with strength. With a fixed small load a strong driver is
    // slew-limited and R is not identifiable — that is physics, not a bug.
    charlib::TheveninSpec s1;
    s1.cell = &lib130().cell("INV_X1");
    s1.input = "a";
    s1.outputRising = true;
    s1.loadCap = 30e-15;
    auto s4 = s1;
    s4.cell = &lib130().cell("INV_X4");
    s4.loadCap = 120e-15;
    const double r1 = charlib::characterizeThevenin(s1).rth;
    const double r4 = charlib::characterizeThevenin(s4).rth;
    EXPECT_LT(r4, r1);
    EXPECT_NEAR(r4, r1 / 4.0, 0.35 * r1 / 4.0);
}

TEST(Propagation, TableIsMonotoneInHeight) {
    charlib::PropagationSpec spec;
    spec.cell = &lib130().cell("NAND2_X1");
    spec.input = "a";
    spec.outputLevel = false;
    spec.heights = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
    spec.widths = {100e-12, 200e-12, 400e-12};
    const auto table = charlib::characterizePropagation(spec);
    for (const double w : spec.widths) {
        double prev = -1.0;
        for (const double h : spec.heights) {
            const double p = std::abs(table.peak(h, w));
            EXPECT_GE(p, prev - 1e-4) << "h=" << h << " w=" << w;
            prev = p;
        }
    }
    // Output glitch on a low-held output is positive (toward vdd).
    EXPECT_GT(table.peak(1.2, 400e-12), 0.2);
    EXPECT_DOUBLE_EQ(table.outputBaseline, 0.0);
}

TEST(Propagation, SubthresholdGlitchBarelyPropagates) {
    charlib::PropagationSpec spec;
    spec.cell = &lib130().cell("INV_X1");
    spec.input = "a";
    spec.outputLevel = false;  // input high, output low
    spec.heights = {0.1, 0.25};
    spec.widths = {150e-12, 300e-12};
    const auto table = charlib::characterizePropagation(spec);
    EXPECT_LT(std::abs(table.peak(0.1, 300e-12)), 0.06);
}

TEST(Nrc, CurveIsMonotoneNonIncreasing) {
    charlib::NrcSpec spec;
    spec.cell = &lib130().cell("INV_X2");
    spec.input = "a";
    spec.quietLevel = false;  // quiet low input, upward glitch
    spec.widths = {50e-12, 100e-12, 200e-12, 400e-12, 800e-12};
    const auto nrc = charlib::characterizeNrc(spec);
    const auto& hs = nrc.ys();
    for (std::size_t i = 1; i < hs.size(); ++i) {
        EXPECT_LE(hs[i], hs[i - 1] + 1e-3) << "width idx " << i;
    }
    // Wide glitches fail near the switching threshold; narrow ones need
    // substantially more height.
    EXPECT_GT(hs.front(), hs.back() + 0.05);
    EXPECT_GT(hs.back(), 0.3);   // still above a third of the swing
    EXPECT_LT(hs.back(), 1.0);
}

TEST(InputCap, ChargeMethodAgreesWithAnalytic) {
    for (const char* name : {"INV_X1", "NAND2_X1", "NOR2_X1"}) {
        const auto& c = lib130().cell(name);
        const double analytic = c.inputCapacitance("a");
        const double measured = charlib::measureInputCapacitance(c, "a");
        EXPECT_GT(measured, 0.2 * analytic) << name;
        // The Miller effect can push the effective cap above the static sum;
        // agreement within ~2.5x is the expected physics, not slop.
        EXPECT_LT(measured, 2.5 * analytic) << name;
    }
}

}  // namespace

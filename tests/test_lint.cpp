// Design lint: every rule fires exactly once on its pathological fixture
// and stays silent on clean designs; waivers suppress by rule + object and
// report stale entries; the pipeline gate (off / warn / strict) leaves the
// analysis bit-identical in warn mode and throws before solving in strict.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "core/design_index.hpp"
#include "core/incremental.hpp"
#include "core/sna.hpp"
#include "la/interp.hpp"
#include "lint/lint.hpp"
#include "parser/spef_parser.hpp"
#include "parser/waivers_parser.hpp"
#include "tech/tech.hpp"
#include "util/error.hpp"

namespace {

using namespace sna;

void inst(core::Design& design, const std::string& name,
          const std::string& cellName,
          std::map<std::string, std::string> pins) {
    core::Instance in;
    in.name = name;
    in.cellName = cellName;
    in.pinToNet = std::move(pins);
    design.addInstance(std::move(in));
}

std::string spefHeader() {
    return "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"lint\"\n"
           "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
}

/// One SPEF net section with a driver node, a receiver node, grounded caps,
/// and optionally one coupling cap from its internal node to `coupleTo`.
std::string spefNet(const std::string& net, const std::string& driverNode,
                    const std::string& receiverNode,
                    const std::string& coupleTo = "") {
    std::ostringstream os;
    os << "*D_NET " << net << " 6.5\n*CONN\n";
    os << "*I " << driverNode << " O\n*I " << receiverNode << " I\n";
    os << "*CAP\n";
    os << "1 " << driverNode << " 2.0\n";
    os << "2 " << net << ":1 3.0\n";
    os << "3 " << receiverNode << " 1.5\n";
    int capId = 4;
    if (!coupleTo.empty()) {
        os << capId++ << " " << net << ":1 " << coupleTo << ":1 4.0\n";
    }
    os << "*RES\n";
    os << "1 " << driverNode << " " << net << ":1 40\n";
    os << "2 " << net << ":1 " << receiverNode << " 40\n";
    os << "*END\n\n";
    return os.str();
}

/// The clean baseline: d0 drives n0 into r0's input. No coupling, no
/// windows, default library — every lint stage must stay silent.
struct CleanPair {
    cell::CellLibrary lib{tech::tech130()};
    core::Design design{lib};
    parser::SpefFile spef;

    CleanPair() : spef(parser::parseSpef(spefHeader() +
                                         spefNet("n0", "d0:y", "r0:a"))) {
        inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});
        inst(design, "r0", "INV_X1", {{"a", "n0"}, {"y", "po0"}});
    }
};

// The 4-net coupled ring of test_design_index: the clean full-pipeline
// fixture for the bit-identity regression.
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << spefHeader();
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    return os.str();
}

void buildRingDesign(core::Design& design, int nets) {
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        inst(design, "d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
             {{"a", "pi" + n}, {"y", "n" + n}});
        inst(design, "r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
             {{"a", "n" + n}, {"y", "po" + n}});
    }
}

/// The single diagnostic of a report that must contain exactly one.
/// By value: the argument is usually a temporary.
lint::Diagnostic only(const lint::LintReport& r) {
    EXPECT_EQ(r.diagnostics.size(), 1u) << r.summary();
    return r.diagnostics.empty() ? lint::Diagnostic{} : r.diagnostics.front();
}

// ------------------------------------------------------------------- clean

TEST(Lint, CleanDesignIsSilent) {
    CleanPair f;
    const core::DesignIndex index(f.design, f.spef);
    const lint::LintReport r = lint::lintDesign(index, f.spef);
    EXPECT_TRUE(r.diagnostics.empty()) << r.summary();
    EXPECT_EQ(r.summary(), "lint: 0 errors, 0 warnings, 0 info");
}

TEST(Lint, CleanRingIsSilentIncludingDeepStage) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(2));
    core::Design design(lib);
    buildRingDesign(design, 2);
    const core::DesignIndex index(design, spef);
    lint::LintOptions opt;
    opt.characterization = true;  // really characterize and check monotone
    const lint::LintReport r = lint::lintDesign(index, spef, opt);
    EXPECT_TRUE(r.diagnostics.empty()) << r.summary();
}

// ------------------------------------------------- connectivity (SNA-L1xx)

TEST(Lint, L101UndrivenNetWithReceivers) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "r0", "INV_X1", {{"a", "n0"}, {"y", "po0"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "r0:a"));
    const core::DesignIndex index(design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L101");
    EXPECT_EQ(d.severity, lint::Severity::error);
    EXPECT_EQ(d.object, "n0");
}

TEST(Lint, L102DrivenNetWithoutReceivers) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "r0:a"));
    const core::DesignIndex index(design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L102");
    EXPECT_EQ(d.severity, lint::Severity::warning);
    EXPECT_EQ(d.object, "n0");
}

TEST(Lint, L103CouplingCapToUnknownOwner) {
    CleanPair f;
    const auto spef = parser::parseSpef(
        spefHeader() + spefNet("n0", "d0:y", "r0:a", "ghost"));
    const core::DesignIndex index(f.design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L103");
    EXPECT_EQ(d.severity, lint::Severity::error);
    EXPECT_EQ(d.object, "ghost");
    EXPECT_NE(d.message.find("'n0'"), std::string::npos) << d.message;
}

TEST(Lint, L104PinBoundToNoNet) {
    CleanPair f;
    inst(f.design, "u0", "INV_X1", {{"a", "pi1"}, {"y", ""}});
    const core::DesignIndex index(f.design, f.spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, f.spef));
    EXPECT_EQ(d.rule, "SNA-L104");
    EXPECT_EQ(d.severity, lint::Severity::error);
    EXPECT_EQ(d.object, "u0:y");
}

// ------------------------------------------------- graph health (SNA-L2xx)

TEST(Lint, L201BrokenCombinationalCycle) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "i1", "INV_X1", {{"a", "n2"}, {"y", "n1"}});
    inst(design, "i2", "INV_X1", {{"a", "n1"}, {"y", "n2"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n1", "i1:y", "i2:a", "n2") +
                                        spefNet("n2", "i2:y", "i1:a", "n1"));
    const core::DesignIndex index(design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L201");
    EXPECT_EQ(d.severity, lint::Severity::warning);
    EXPECT_NE(d.object.find("->"), std::string::npos) << d.object;
}

TEST(Lint, L202MultiplyDrivenNet) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});
    inst(design, "d1", "INV_X2", {{"a", "pi1"}, {"y", "n0"}});
    inst(design, "r0", "INV_X1", {{"a", "n0"}, {"y", "po0"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "r0:a"));
    const core::DesignIndex index(design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L202");
    EXPECT_EQ(d.severity, lint::Severity::warning);
    EXPECT_EQ(d.object, "n0");
    EXPECT_NE(d.message.find("'d1'"), std::string::npos) << d.message;
}

// ------------------------------------------------------ windows (SNA-L3xx)

TEST(Lint, L301NanAndInvertedWindows) {
    CleanPair f;
    const core::DesignIndex index(f.design, f.spef);
    core::TimingWindows w;
    w.set("n0", {std::numeric_limits<double>::quiet_NaN(), 1e-12});
    lint::LintOptions opt;
    opt.windows = &w;
    {
        const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
        EXPECT_EQ(d.rule, "SNA-L301");
        EXPECT_EQ(d.severity, lint::Severity::error);
        EXPECT_EQ(d.object, "n0");
        EXPECT_NE(d.message.find("NaN"), std::string::npos) << d.message;
    }
    core::TimingWindows inv;
    inv.set("n0", {5e-12, 1e-12});
    opt.windows = &inv;
    {
        const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
        EXPECT_EQ(d.rule, "SNA-L301");
        EXPECT_NE(d.message.find("inverted"), std::string::npos) << d.message;
    }
}

TEST(Lint, L302WindowOnUnknownNet) {
    CleanPair f;
    const core::DesignIndex index(f.design, f.spef);
    core::TimingWindows w;
    w.set("ghost", {0.0, 100e-12});
    lint::LintOptions opt;
    opt.windows = &w;
    const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
    EXPECT_EQ(d.rule, "SNA-L302");
    EXPECT_EQ(d.severity, lint::Severity::warning);
    EXPECT_EQ(d.object, "ghost");
}

TEST(Lint, L303WindowNarrowerThanFaninHull) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    // d0 -> n0 -> g1 -> n1 -> r1: n1's only fanin is n0 through g1, so its
    // hull is n0's window shifted by g1's characterized stage delay.
    inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});
    inst(design, "g1", "INV_X1", {{"a", "n0"}, {"y", "n1"}});
    inst(design, "r1", "INV_X1", {{"a", "n1"}, {"y", "po1"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "g1:a") +
                                        spefNet("n1", "g1:y", "r1:a"));
    const core::DesignIndex index(design, spef);
    core::TimingWindows w;
    w.set("n0", {0.0, 10e-12});
    // Far too tight: the hull's latest edge is at least n0's latest plus
    // g1's insertion delay, both strictly positive.
    w.set("n1", {0.0, 1e-15});
    lint::LintOptions opt;
    opt.windows = &w;
    const lint::Diagnostic d = only(lint::lintDesign(index, spef, opt));
    EXPECT_EQ(d.rule, "SNA-L303");
    EXPECT_EQ(d.severity, lint::Severity::info);
    EXPECT_EQ(d.object, "n1");
    EXPECT_NE(d.message.find("fanin hull"), std::string::npos) << d.message;
}

// ------------------------------------------------------ library (SNA-L4xx)

TEST(Lint, L401UncharacterizablePin) {
    const tech::Technology tech = tech::tech130();
    cell::CellLibrary lib(tech);
    // Constant-true logic: no holding vector pins the output low, and no
    // vector makes 'a' controlling — holdingVector throws for both levels.
    lib.addCell("TIE_HI",
                {{"a", cell::PinDir::Input}, {"y", cell::PinDir::Output}},
                {{"mp", spice::MosType::Pmos, "y", "a", "vdd", "vdd",
                  tech.wpUnit, tech.lmin}},
                [](const std::vector<bool>&) { return true; });
    core::Design design(lib);
    inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});
    inst(design, "u0", "TIE_HI", {{"a", "n0"}, {"y", "po0"}});
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "u0:a"));
    const core::DesignIndex index(design, spef);
    const lint::Diagnostic d = only(lint::lintDesign(index, spef));
    EXPECT_EQ(d.rule, "SNA-L401");
    EXPECT_EQ(d.severity, lint::Severity::error);
    EXPECT_EQ(d.object, "TIE_HI:a");
}

TEST(Lint, AddCellRejectsDuplicateNames) {
    cell::CellLibrary lib(tech::tech130());
    EXPECT_THROW(lib.addCell("INV_X1", {}, {}, nullptr), ModelError);
}

TEST(Lint, L402NonMonotoneLoadCurve) {
    // I_sink must be non-decreasing in v_out (second axis) at fixed v_in.
    const la::Grid2d broken({0.0, 1.0}, {0.0, 0.5, 1.0},
                            {0.0, 1e-3, 2e-3,    // v_in = 0: monotone
                             0.0, 2e-3, 1e-3});  // v_in = 1: drops
    const auto d = lint::checkLoadCurveMonotone(broken, "BAD_X1:a");
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "SNA-L402");
    EXPECT_EQ(d->severity, lint::Severity::warning);
    EXPECT_EQ(d->object, "BAD_X1:a");

    const la::Grid2d fine({0.0, 1.0}, {0.0, 0.5, 1.0},
                          {0.0, 1e-3, 2e-3, 0.0, 1e-3, 2e-3});
    EXPECT_FALSE(lint::checkLoadCurveMonotone(fine, "OK").has_value());
    // Solver noise below tolerance is not a finding.
    const la::Grid2d noisy({0.0, 1.0}, {0.0, 0.5, 1.0},
                           {1e-3, 1e-3 - 1e-12, 2e-3,
                            1e-3, 1e-3 - 1e-12, 2e-3});
    EXPECT_FALSE(lint::checkLoadCurveMonotone(noisy, "OK").has_value());
}

TEST(Lint, L402NonMonotoneNrc) {
    // The failing height must be non-increasing in width.
    const la::Grid1d broken({20e-12, 40e-12, 80e-12}, {0.9, 0.7, 0.8});
    const auto d = lint::checkNrcMonotone(broken, "BAD_X1");
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->rule, "SNA-L402");
    EXPECT_EQ(d->severity, lint::Severity::warning);
    EXPECT_EQ(d->object, "BAD_X1");

    const la::Grid1d fine({20e-12, 40e-12, 80e-12}, {0.9, 0.8, 0.8});
    EXPECT_FALSE(lint::checkNrcMonotone(fine, "OK").has_value());
    const la::Grid1d noisy({20e-12, 40e-12}, {0.8, 0.8 + 1e-7});
    EXPECT_FALSE(lint::checkNrcMonotone(noisy, "OK").has_value());
}

TEST(Lint, L403NrcGridCoverageAndValidity) {
    CleanPair f;
    const core::DesignIndex index(f.design, f.spef);
    lint::LintOptions opt;
    opt.nrc.widthMin = 100e-12;  // canonical widths start at 60 ps
    {
        const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
        EXPECT_EQ(d.rule, "SNA-L403");
        EXPECT_EQ(d.severity, lint::Severity::warning);
        EXPECT_EQ(d.object, "nrc-width-grid");
    }
    opt.nrc = core::NrcOptions{};
    opt.nrc.growth = 1.0;  // invalid: grid() itself throws
    {
        const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
        EXPECT_EQ(d.rule, "SNA-L403");
        EXPECT_EQ(d.severity, lint::Severity::error);
    }
    opt.nrc = core::NrcOptions{};
    opt.nrc.widthMin = 2e-9;  // single point below widthLimit
    opt.nrc.widthLimit = 2.1e-9;
    {
        const lint::Diagnostic d = only(lint::lintDesign(index, f.spef, opt));
        EXPECT_EQ(d.rule, "SNA-L403");
        EXPECT_EQ(d.severity, lint::Severity::error);
        EXPECT_NE(d.message.find("fewer than two"), std::string::npos);
    }
}

// -------------------------------------------------------- delta (SNA-L5xx)

TEST(Lint, L501L502DeltaNamesUnknownObjects) {
    CleanPair f;
    core::DesignDelta delta;
    delta.nets = {"nope", "nope"};  // duplicates report once
    delta.instances = {"ghost"};
    const lint::LintReport r = lint::lintDelta(f.design, f.spef, delta);
    ASSERT_EQ(r.diagnostics.size(), 2u) << r.summary();
    EXPECT_EQ(r.diagnostics[0].rule, "SNA-L501");
    EXPECT_EQ(r.diagnostics[0].object, "nope");
    EXPECT_EQ(r.diagnostics[1].rule, "SNA-L502");
    EXPECT_EQ(r.diagnostics[1].object, "ghost");
    EXPECT_EQ(r.errors(), 2u);

    core::DesignDelta ok;
    ok.nets = {"n0", "pi0"};  // SPEF net and design-only net both resolve
    ok.instances = {"r0"};
    EXPECT_TRUE(lint::lintDelta(f.design, f.spef, ok).diagnostics.empty());
}

TEST(Lint, IncrementalStrictModeGatesOnDeltaTypos) {
    CleanPair f;
    core::DesignDelta delta;
    delta.nets = {"typo_net"};
    core::AnalysisSnapshot snapshot;  // invalid: would fall back to full run
    core::DesignNoiseOptions opt;
    opt.lint = lint::Mode::strict;
    try {
        (void)core::analyzeDesignIncremental(f.design, f.spef, delta,
                                             snapshot, opt);
        FAIL() << "expected lint::LintError";
    } catch (const lint::LintError& e) {
        ASSERT_EQ(e.report().diagnostics.size(), 1u);
        EXPECT_EQ(e.report().diagnostics.front().rule, "SNA-L501");
    }
    EXPECT_FALSE(snapshot.valid);  // thrown before the snapshot was touched
}

// ------------------------------------------------------------------ waivers

TEST(Waivers, ParseFormatAndErrors) {
    const auto ws = parser::parseWaivers(
        "# comment\n"
        "// also a comment\n"
        "\n"
        "SNA-L202 clk_mux_out   # trailing comment\n"
        "SNA-L103\n");
    ASSERT_EQ(ws.size(), 2u);
    EXPECT_EQ(ws[0].rule, "SNA-L202");
    EXPECT_EQ(ws[0].object, "clk_mux_out");
    EXPECT_EQ(ws[0].line, 4);
    EXPECT_EQ(ws[1].rule, "SNA-L103");
    EXPECT_EQ(ws[1].object, "*");

    EXPECT_THROW(parser::parseWaivers("not-a-rule x\n"), ParseError);
    EXPECT_THROW(parser::parseWaivers("SNA-L101 a b\n"), ParseError);
    try {
        parser::parseWaivers("SNA-L101 ok\nbogus\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Waivers, ApplyByRuleAndObjectReportsUnused) {
    lint::LintReport r;
    lint::Diagnostic d;
    d.rule = "SNA-L202";
    d.severity = lint::Severity::warning;
    d.object = "n0";
    r.diagnostics = {d, d};
    r.diagnostics[1].object = "n1";

    const auto waivers = parser::parseWaivers(
        "SNA-L202 n0\n"          // matches diagnostics[0]
        "SNA-L101 n0\n"          // wrong rule: unused
        "SNA-L202 elsewhere\n"); // wrong object: unused
    const auto unused = lint::applyWaivers(r, waivers);
    EXPECT_TRUE(r.diagnostics[0].waived);
    EXPECT_FALSE(r.diagnostics[1].waived);
    EXPECT_EQ(r.warnings(), 1u);
    EXPECT_EQ(r.waivedCount(), 1u);
    ASSERT_EQ(unused.size(), 2u);
    EXPECT_EQ(unused[0].rule, "SNA-L101");
    EXPECT_EQ(unused[1].object, "elsewhere");

    // '*' matches every object of the rule.
    lint::LintReport r2;
    r2.diagnostics = {d, d};
    r2.diagnostics[1].object = "n1";
    const auto unused2 =
        lint::applyWaivers(r2, parser::parseWaivers("SNA-L202\n"));
    EXPECT_TRUE(unused2.empty());
    EXPECT_EQ(r2.waivedCount(), 2u);
    EXPECT_EQ(r2.warnings(), 0u);
}

// ------------------------------------------------------------ pipeline gate

TEST(LintGate, StrictThrowsBeforeSolvingAndWaiversUnblock) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "r0", "INV_X1", {{"a", "n0"}, {"y", "po0"}});  // no driver
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "r0:a"));
    core::DesignNoiseOptions opt;
    opt.lint = lint::Mode::strict;
    lint::LintReport out;
    opt.lintOut = &out;
    try {
        (void)core::analyzeDesign(design, spef, opt);
        FAIL() << "expected lint::LintError";
    } catch (const lint::LintError& e) {
        ASSERT_EQ(e.report().diagnostics.size(), 1u);
        EXPECT_EQ(e.report().diagnostics.front().rule, "SNA-L101");
        EXPECT_NE(std::string(e.what()).find("SNA-L101"), std::string::npos);
    }
    // lintOut is filled even on the throwing path.
    ASSERT_EQ(out.diagnostics.size(), 1u);

    const auto waivers = parser::parseWaivers("SNA-L101 n0\n");
    opt.lintWaivers = &waivers;
    const auto reports = core::analyzeDesign(design, spef, opt);  // no throw
    EXPECT_TRUE(reports.empty());  // the undriven net is not analyzable
    ASSERT_EQ(out.diagnostics.size(), 1u);
    EXPECT_TRUE(out.diagnostics.front().waived);
    EXPECT_FALSE(out.hasErrors());
}

TEST(LintGate, WarnModeIsBitIdenticalToOff) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);

    for (const bool propagate : {false, true}) {
        for (const int threads : {1, 4}) {
            core::DesignNoiseOptions off;
            off.threads = threads;
            off.propagate = propagate;
            const auto base = core::analyzeDesign(design, spef, off);

            core::DesignNoiseOptions warn = off;
            warn.lint = lint::Mode::warn;
            lint::LintReport out;
            warn.lintOut = &out;
            const auto checked = core::analyzeDesign(design, spef, warn);

            EXPECT_TRUE(out.diagnostics.empty()) << out.summary();
            ASSERT_EQ(checked.size(), base.size());
            for (std::size_t i = 0; i < base.size(); ++i) {
                EXPECT_EQ(checked[i].net, base[i].net);
                EXPECT_EQ(checked[i].aggressorNets, base[i].aggressorNets);
                // Bitwise equality, not EXPECT_NEAR: warn mode must not
                // perturb a single bit of the analysis.
                EXPECT_EQ(checked[i].cluster.margin, base[i].cluster.margin)
                    << "net " << base[i].net << " propagate=" << propagate
                    << " threads=" << threads;
                EXPECT_EQ(checked[i].cluster.fails, base[i].cluster.fails);
            }
        }
    }
}

TEST(LintGate, SnapshotCarriesWaiverAppliedDiagnostics) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    inst(design, "d0", "INV_X1", {{"a", "pi0"}, {"y", "n0"}});  // no receiver
    const auto spef = parser::parseSpef(spefHeader() +
                                        spefNet("n0", "d0:y", "r0:a"));
    core::AnalysisSnapshot snapshot;
    core::DesignNoiseOptions opt;
    opt.lint = lint::Mode::warn;
    opt.snapshot = &snapshot;
    (void)core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(snapshot.lint.size(), 1u);
    EXPECT_EQ(snapshot.lint.front().rule, "SNA-L102");
}

}  // namespace

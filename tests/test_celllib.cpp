// Tests for the standard-cell library: truth tables at the transistor level
// (every cell, every input vector, both technologies), holding vectors, and
// electrical sanity of drive strengths.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/library.hpp"
#include "celllib/spice_text.hpp"
#include "spice/dc.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using cell::CellLibrary;
using spice::SourceSpec;

struct CellCase {
    const tech::Technology* tech;
    std::string cellName;
};

void PrintTo(const CellCase& c, std::ostream* os) {
    *os << c.tech->name << "/" << c.cellName;
}

std::vector<CellCase> allCellCases() {
    std::vector<CellCase> cases;
    for (const auto* t : tech::allTechnologies()) {
        const CellLibrary lib(*t);
        for (const auto& name : lib.names()) cases.push_back({t, name});
    }
    return cases;
}

class CellTruthTable : public ::testing::TestWithParam<CellCase> {};

// Instantiate the cell with DC input sources for every possible input
// vector and compare the transistor-level output to the LogicFn.
TEST_P(CellTruthTable, MatchesLogicFunctionAtTransistorLevel) {
    const auto& p = GetParam();
    const CellLibrary lib(*p.tech);
    const cell::Cell& c = lib.cell(p.cellName);
    const auto inputs = c.inputNames();
    const double vdd = p.tech->vdd;

    for (std::size_t mask = 0; mask < (std::size_t{1} << inputs.size());
         ++mask) {
        spice::Circuit ckt;
        const auto vddNode = ckt.node("vdd");
        ckt.addVSource("vsupply", vddNode, spice::kGround, SourceSpec::dc(vdd));
        std::map<std::string, spice::NodeId> pinNodes;
        std::map<std::string, bool> assignment;
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const bool hi = ((mask >> i) & 1u) != 0;
            assignment[inputs[i]] = hi;
            const auto n = ckt.node(inputs[i]);
            pinNodes[inputs[i]] = n;
            ckt.addVSource("v_" + inputs[i], n, spice::kGround,
                           SourceSpec::dc(hi ? vdd : 0.0));
        }
        pinNodes[c.outputName()] = ckt.node("out");
        c.instantiate(ckt, "dut", pinNodes, vddNode);

        const auto dc = spice::solveDc(ckt);
        const bool expected = c.evaluate(assignment);
        const double vout = dc.voltage("out");
        EXPECT_NEAR(vout, expected ? vdd : 0.0, 0.02 * vdd)
            << "input mask " << mask;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellTruthTable,
                         ::testing::ValuesIn(allCellCases()));

class CellHoldingVector : public ::testing::TestWithParam<CellCase> {};

TEST_P(CellHoldingVector, SensitizedVectorsExistForEveryInput) {
    const auto& p = GetParam();
    const CellLibrary lib(*p.tech);
    const cell::Cell& c = lib.cell(p.cellName);
    for (const auto& in : c.inputNames()) {
        for (const bool level : {false, true}) {
            const auto vec = c.holdingVector(level, in);
            EXPECT_EQ(c.evaluate(vec), level);
            // Flipping the sensitized input flips the output.
            auto flipped = vec;
            flipped[in] = !flipped[in];
            EXPECT_EQ(c.evaluate(flipped), !level);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllCells, CellHoldingVector,
                         ::testing::ValuesIn(allCellCases()));

TEST(CellLibrary, UnknownCellThrows) {
    const CellLibrary lib(tech::tech130());
    EXPECT_THROW(lib.cell("XOR9_X7"), ModelError);
    EXPECT_FALSE(lib.has("XOR9_X7"));
    EXPECT_TRUE(lib.has("NAND2_X1"));
}

TEST(CellLibrary, InputCapScalesWithDriveStrength) {
    const CellLibrary lib(tech::tech130());
    const double c1 = lib.cell("INV_X1").inputCapacitance("a");
    const double c2 = lib.cell("INV_X2").inputCapacitance("a");
    const double c4 = lib.cell("INV_X4").inputCapacitance("a");
    EXPECT_GT(c1, 0.0);
    EXPECT_NEAR(c2 / c1, 2.0, 0.05);
    EXPECT_NEAR(c4 / c1, 4.0, 0.05);
    EXPECT_THROW(lib.cell("INV_X1").inputCapacitance("zz"), LogicError);
}

TEST(CellLibrary, StrongerInverterSwitchesFaster) {
    const auto& t = tech::tech130();
    const CellLibrary lib(t);
    auto delayOf = [&](const std::string& cellName) {
        spice::Circuit ckt;
        const auto vdd = ckt.node("vdd");
        const auto in = ckt.node("in");
        const auto out = ckt.node("out");
        ckt.addVSource("vs", vdd, spice::kGround, SourceSpec::dc(t.vdd));
        ckt.addVSource("vin", in, spice::kGround,
                       SourceSpec::pwl(wave::saturatedRamp(0, t.vdd, 1e-10,
                                                           3e-11, 4e-9)));
        ckt.addCapacitor("cl", out, spice::kGround, 20e-15);
        lib.cell(cellName).instantiate(ckt, "dut",
                                       {{"a", in}, {"y", out}}, vdd);
        spice::TranOptions opt;
        opt.tstop = 3e-9;
        const auto res = spice::simulateTransient(ckt, opt);
        for (const auto& s : res.waveform("out").samples()) {
            if (s.v < 0.5 * t.vdd) return s.t;
        }
        return opt.tstop;
    };
    const double d1 = delayOf("INV_X1");
    const double d4 = delayOf("INV_X4");
    EXPECT_LT(d4, d1);
}

TEST(CellLibrary, Nand2OutputLowHasStackedPulldownResistance) {
    // With y held low (a=b=1), raising y must sink current through the
    // NMOS stack; the small-signal resistance must be finite and positive.
    const auto& t = tech::tech130();
    const CellLibrary lib(t);
    const cell::Cell& nand2 = lib.cell("NAND2_X1");

    spice::Circuit ckt;
    const auto vdd = ckt.node("vdd");
    ckt.addVSource("vs", vdd, spice::kGround, SourceSpec::dc(t.vdd));
    const auto a = ckt.node("a");
    const auto b = ckt.node("b");
    const auto y = ckt.node("y");
    ckt.addVSource("va", a, spice::kGround, SourceSpec::dc(t.vdd));
    ckt.addVSource("vb", b, spice::kGround, SourceSpec::dc(t.vdd));
    auto& vy = ckt.addVSource("vy", y, spice::kGround, SourceSpec::dc(0.0));
    nand2.instantiate(ckt, "dut", {{"a", a}, {"b", b}, {"y", y}}, vdd);

    la::Vector warm;
    double iPrev = 0.0;
    for (double v = 0.0; v <= 0.4; v += 0.1) {
        vy.setSpec(SourceSpec::dc(v));
        const auto dc =
            spice::solveDc(ckt, {}, warm.empty() ? nullptr : &warm);
        warm = dc.raw();
        // vy must deliver increasing current into y as it is pulled up:
        // that current is sunk by the NMOS stack.
        const double i = dc.sourceCurrent("vy");
        if (v > 0.0) {
            EXPECT_GT(i, iPrev);
        }
        iPrev = i;
    }
}

TEST(SpiceText, EmitsModelsAndSubckts) {
    const CellLibrary lib(tech::tech130());
    const std::string text = cell::libraryText(lib);
    EXPECT_NE(text.find(".model nmos_cmos130 nmos"), std::string::npos);
    EXPECT_NE(text.find(".model pmos_cmos130 pmos"), std::string::npos);
    EXPECT_NE(text.find(".subckt NAND2_X1 a b y vdd gnd"), std::string::npos);
    EXPECT_NE(text.find(".ends NAND2_X1"), std::string::npos);
    // Every cell appears.
    for (const auto& name : lib.names()) {
        EXPECT_NE(text.find(".subckt " + name), std::string::npos) << name;
    }
}

}  // namespace

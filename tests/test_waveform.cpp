// Unit and property tests for waveforms, glitch metrics, and sources.
#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"
#include "waveform/waveform.hpp"

namespace {

using namespace sna;
using wave::Waveform;

// -------------------------------------------------------------- waveform

TEST(Waveform, EvaluatesWithClamping) {
    const Waveform w({{0, 0}, {1, 2}, {3, 0}});
    EXPECT_DOUBLE_EQ(w.value(-1), 0.0);
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(2.0), 1.0);
    EXPECT_DOUBLE_EQ(w.value(10), 0.0);
}

TEST(Waveform, RejectsNonMonotonicTimes) {
    EXPECT_THROW(Waveform({{0, 0}, {0, 1}}), LogicError);
    EXPECT_THROW(Waveform({{1, 0}, {0, 1}}), LogicError);
    Waveform w({{0, 0}});
    EXPECT_THROW(w.append(0.0, 1.0), LogicError);
}

TEST(Waveform, ShiftScaleOffset) {
    const Waveform w({{0, 1}, {1, 3}});
    EXPECT_DOUBLE_EQ(w.shifted(2.0).value(2.5), 2.0);
    EXPECT_DOUBLE_EQ(w.scaled(-2.0).value(1.0), -6.0);
    EXPECT_DOUBLE_EQ(w.offset(10.0).value(0.0), 11.0);
}

TEST(Waveform, PlusIsExactOnUnionBreakpoints) {
    const Waveform a({{0, 0}, {2, 2}});
    const Waveform b({{1, 10}, {3, 10}});
    const Waveform s = a.plus(b);
    EXPECT_DOUBLE_EQ(s.value(0.0), 10.0);  // b clamps to 10 before t=1
    EXPECT_DOUBLE_EQ(s.value(1.0), 11.0);
    EXPECT_DOUBLE_EQ(s.value(2.0), 12.0);
    EXPECT_DOUBLE_EQ(s.value(3.0), 12.0);
}

TEST(Waveform, WindowRestrictsSpan) {
    const Waveform w({{0, 0}, {10, 10}});
    const Waveform win = w.window(2.0, 4.0);
    EXPECT_DOUBLE_EQ(win.startTime(), 2.0);
    EXPECT_DOUBLE_EQ(win.endTime(), 4.0);
    EXPECT_DOUBLE_EQ(win.value(3.0), 3.0);
}

class WaveformAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(WaveformAlgebra, PlusMinusRoundTrip) {
    util::Rng rng(42 + GetParam());
    auto randomWave = [&rng]() {
        std::vector<wave::Sample> s;
        double t = 0.0;
        for (int i = 0; i < 12; ++i) {
            s.push_back({t, rng.uniform(-2, 2)});
            t += rng.uniform(0.05, 1.0);
        }
        return Waveform(std::move(s));
    };
    const Waveform a = randomWave();
    const Waveform b = randomWave();
    const Waveform round = a.plus(b).minus(b);
    // Round-trip must reproduce `a` on the common span (linearity).
    EXPECT_LE(wave::maxDifference(round.window(a.startTime(), a.endTime()),
                                  a),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveformAlgebra, ::testing::Range(0, 8));

// --------------------------------------------------------------- metrics

TEST(Metrics, TriangleGlitchAnalytic) {
    // Triangle of height 0.4 V, width 200 ps on a 0 V baseline.
    const Waveform g = wave::triangleGlitch(0.0, 0.4, 1e-10, 2e-10, 1e-9);
    const auto m = wave::measureGlitch(g, 0.0);
    EXPECT_NEAR(m.peak, 0.4, 1e-12);
    EXPECT_NEAR(m.peakTime, 2e-10, 1e-15);
    // Area = 1/2 * base * height.
    EXPECT_NEAR(m.area, 0.5 * 2e-10 * 0.4, 1e-15);
    // Width at 50% of a triangle = half the base.
    EXPECT_NEAR(m.width, 1e-10, 1e-15);
}

TEST(Metrics, NegativeGlitchIsSigned) {
    const Waveform g = wave::triangleGlitch(1.2, -0.5, 1e-10, 2e-10, 1e-9);
    const auto m = wave::measureGlitch(g, 1.2);
    EXPECT_NEAR(m.peak, -0.5, 1e-12);
    EXPECT_LT(m.area, 0.0);
    EXPECT_NEAR(m.width, 1e-10, 1e-15);
}

TEST(Metrics, OppositeLobeDoesNotCancelArea) {
    // Up-lobe then equal down-lobe: the up-glitch area must ignore the dip.
    const Waveform w({{0, 0}, {1, 1}, {2, 0}, {3, -1}, {4, 0}});
    const auto m = wave::measureGlitch(w, 0.0);
    EXPECT_NEAR(std::abs(m.peak), 1.0, 1e-12);
    EXPECT_NEAR(std::abs(m.area), 1.0, 1e-12);  // one triangle only
}

TEST(Metrics, QuietWaveformHasZeroMetrics) {
    const auto m = wave::measureGlitch(Waveform::constant(0.7, 0, 1), 0.7);
    EXPECT_DOUBLE_EQ(m.peak, 0.0);
    EXPECT_DOUBLE_EQ(m.area, 0.0);
    EXPECT_DOUBLE_EQ(m.width, 0.0);
}

TEST(Metrics, IntegrateTrapezoid) {
    const Waveform w({{0, 0}, {1, 1}, {2, 1}, {3, 0}});
    EXPECT_NEAR(wave::integrate(w), 2.0, 1e-12);
}

TEST(Metrics, TimeAboveThreshold) {
    const Waveform w({{0, 0}, {1, 1}, {2, 0}});
    EXPECT_NEAR(wave::timeAbove(w, 0.0, 1.0, 0.5), 1.0, 1e-12);
    EXPECT_NEAR(wave::timeAbove(w, 0.0, 1.0, 0.0), 2.0, 1e-12);
    EXPECT_NEAR(wave::timeAbove(w, 0.0, -1.0, 0.25), 0.0, 1e-12);
}

class GlitchScaling : public ::testing::TestWithParam<double> {};

TEST_P(GlitchScaling, MetricsScaleLinearly) {
    const double k = GetParam();
    const Waveform g = wave::trapezoidGlitch(0.0, 0.3, 0.1, 0.2, 0.3, 2.0);
    const auto m1 = wave::measureGlitch(g, 0.0);
    const auto mk = wave::measureGlitch(g.scaled(k), 0.0);
    EXPECT_NEAR(mk.peak, k * m1.peak, 1e-12);
    EXPECT_NEAR(mk.area, k * m1.area, 1e-12);
    EXPECT_NEAR(mk.width, m1.width, 1e-12);  // width is scale-invariant
}

INSTANTIATE_TEST_SUITE_P(Factors, GlitchScaling,
                         ::testing::Values(0.5, 1.0, 2.0, 3.5));

TEST(Metrics, ShiftInvariance) {
    const Waveform g = wave::triangleGlitch(0.0, 0.4, 0.2, 0.3, 2.0);
    const auto m1 = wave::measureGlitch(g, 0.0);
    const auto m2 = wave::measureGlitch(g.shifted(5.0), 0.0);
    EXPECT_NEAR(m1.peak, m2.peak, 1e-12);
    EXPECT_NEAR(m1.area, m2.area, 1e-12);
    EXPECT_NEAR(m1.width, m2.width, 1e-12);
    EXPECT_NEAR(m2.peakTime - m1.peakTime, 5.0, 1e-12);
}

// --------------------------------------------------------------- sources

TEST(Sources, SaturatedRampShape) {
    const Waveform r = wave::saturatedRamp(0.0, 1.2, 1e-10, 5e-11, 1e-9);
    EXPECT_DOUBLE_EQ(r.value(0.0), 0.0);
    EXPECT_DOUBLE_EQ(r.value(1e-10), 0.0);
    EXPECT_NEAR(r.value(1.25e-10), 0.6, 1e-12);
    EXPECT_DOUBLE_EQ(r.value(2e-10), 1.2);
    EXPECT_DOUBLE_EQ(r.value(1e-9), 1.2);
}

TEST(Sources, ExponentialGlitchPeaksAtHeight) {
    const Waveform g =
        wave::exponentialGlitch(0.0, 0.5, 0.0, 2e-11, 1e-10, 1e-9, 256);
    const auto m = wave::measureGlitch(g, 0.0);
    EXPECT_NEAR(m.peak, 0.5, 0.01);
    EXPECT_GT(m.width, 0.0);
}

TEST(Sources, RejectBadParameters) {
    EXPECT_THROW(wave::saturatedRamp(0, 1, 0, -1, 1), LogicError);
    EXPECT_THROW(wave::triangleGlitch(0, 1, 0.5, 1.0, 1.0), LogicError);
    EXPECT_THROW(wave::trapezoidGlitch(0, 1, 0, 0, 0, 1), LogicError);
}

// -------------------------------------------------------------- distance

TEST(Distance, MaxAndRms) {
    const Waveform a = Waveform::constant(1.0, 0, 1);
    const Waveform b = Waveform::constant(1.5, 0, 1);
    EXPECT_NEAR(wave::maxDifference(a, b), 0.5, 1e-12);
    EXPECT_NEAR(wave::rmsDifference(a, b), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(wave::maxDifference(a, a), 0.0);
}

}  // namespace

// Tests for the signoff-server resilience layer: cooperative cancellation
// and deadlines (token unit tests, scheduler-level skip accounting, partial
// AnalysisOutcome with bitwise-identical completed reports), per-net
// failure quarantine (fail-fast / quarantine-cone / degrade-to-passthrough
// at several thread counts, untouched cones bit-identical), the
// self-healing snacache v2 (CRC-rejected records, torn writes, randomized
// truncation, v1 read compatibility, two-process save contention over the
// advisory lock), and the fault-injection harness that drives all of it.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "charlib/char_cache.hpp"
#include "core/incremental.hpp"
#include "core/sna.hpp"
#include "lint/lint.hpp"
#include "util/cancel.hpp"
#include "util/crc32.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/task_scheduler.hpp"
#include "util/thread_pool.hpp"

// Sanitized builds run every body slower; shrink the long-chain fixtures
// so the suite stays inside CI budgets (the logic under test is identical).
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SNA_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#ifndef SNA_SANITIZED
#define SNA_SANITIZED 1
#endif
#endif
#endif

namespace {

using namespace sna;

void addInst(core::Design& d, const std::string& name,
             const std::string& cell,
             std::map<std::string, std::string> pins) {
    core::Instance i;
    i.name = name;
    i.cellName = cell;
    i.pinToNet = std::move(pins);
    d.addInstance(std::move(i));
}

// Chain of stage nets s0..s{n-1} through INV_X1 drivers, each stage coupled
// to one dedicated aggressor net — the propagated-wavefront fixture shared
// with test_propagate/test_incremental. Every stage net and every aggressor
// net is a victim cluster.
std::string chainSpef(int stages, double cc) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"chain\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < stages; ++i) {
        os << "*D_NET s" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I c" << i << ":y O\n*I c" << (i + 1) << ":a I\n";
        os << "*CAP\n1 c" << i << ":y 2.0\n2 s" << i << ":1 3.0\n";
        os << "3 c" << (i + 1) << ":a 1.5\n";
        os << "4 s" << i << ":1 g" << i << ":1 " << cc << "\n";
        os << "*RES\n1 c" << i << ":y s" << i << ":1 60\n";
        os << "2 s" << i << ":1 c" << (i + 1) << ":a 60\n*END\n\n";
        os << "*D_NET g" << i << " 6.0\n";
        os << "*CONN\n*I a" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n1 a" << i << ":y 2.0\n2 g" << i << ":1 2.0\n";
        os << "*RES\n1 a" << i << ":y g" << i << ":1 40\n";
        os << "2 g" << i << ":1 r" << i << ":a 40\n*END\n\n";
    }
    return os.str();
}

void buildChain(core::Design& d, int stages) {
    for (int i = 0; i < stages; ++i) {
        const std::string si = "s" + std::to_string(i);
        const std::string prev = i == 0 ? "pin" : "s" + std::to_string(i - 1);
        addInst(d, "c" + std::to_string(i), "INV_X1",
                {{"a", prev}, {"y", si}});
        const std::string g = "g" + std::to_string(i);
        addInst(d, "a" + std::to_string(i), "INV_X4",
                {{"a", g + "_in"}, {"y", g}});
        addInst(d, "r" + std::to_string(i), "INV_X1",
                {{"a", g}, {"y", g + "_o"}});
    }
    addInst(d, "c" + std::to_string(stages), "INV_X2",
            {{"a", "s" + std::to_string(stages - 1)}, {"y", "chain_out"}});
}

// Small coupled ring, the cheap fixture for the cache tests.
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n1 d" << i << ":y 2.0\n2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n4 n" << i << ":1 n" << j << ":1 " << cc
           << "\n";
        os << "*RES\n1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n*END\n\n";
    }
    return os.str();
}

void buildRingDesign(core::Design& design, int nets) {
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        addInst(design, "d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
                {{"a", "pi" + n}, {"y", "n" + n}});
        addInst(design, "r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
                {{"a", "n" + n}, {"y", "po" + n}});
    }
}

core::DesignNoiseOptions cheapOptions() {
    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    return opt;
}

void expectBitwiseEqual(const core::NetNoiseReport& a,
                        const core::NetNoiseReport& b,
                        const std::string& label) {
    EXPECT_EQ(a.net, b.net) << label;
    EXPECT_EQ(a.aggressorNets, b.aggressorNets) << label << " " << a.net;
    EXPECT_EQ(a.cluster.margin, b.cluster.margin) << label << " " << a.net;
    EXPECT_EQ(a.cluster.nrcLimit, b.cluster.nrcLimit)
        << label << " " << a.net;
    EXPECT_EQ(a.cluster.worst.metrics.peak, b.cluster.worst.metrics.peak)
        << label << " " << a.net;
    EXPECT_EQ(a.cluster.worst.metrics.width, b.cluster.worst.metrics.width)
        << label << " " << a.net;
    EXPECT_EQ(a.cluster.fails, b.cluster.fails) << label << " " << a.net;
    EXPECT_EQ(a.propagated.present, b.propagated.present)
        << label << " " << a.net;
    EXPECT_EQ(a.propagated.fromNet, b.propagated.fromNet)
        << label << " " << a.net;
    EXPECT_EQ(a.propagated.height, b.propagated.height)
        << label << " " << a.net;
    EXPECT_EQ(a.propagated.localMargin, b.propagated.localMargin)
        << label << " " << a.net;
}

std::map<std::string, const core::NetNoiseReport*> byNet(
    const std::vector<core::NetNoiseReport>& reports) {
    std::map<std::string, const core::NetNoiseReport*> m;
    for (const auto& r : reports) m.emplace(r.net, &r);
    return m;
}

std::string tmpPath(const std::string& name) {
    return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spit(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    ASSERT_TRUE(static_cast<bool>(out)) << path;
}

/// RAII disarm so one test's rules never leak into the next.
struct InjectorGuard {
    ~InjectorGuard() { util::FaultInjector::instance().disarm(); }
};

// -------------------------------------------------------- CancelToken unit

TEST(CancelToken, ExplicitCancelLatchesFlagAndReason) {
    util::CancelToken token;
    EXPECT_FALSE(token.stopRequested());
    EXPECT_EQ(token.reason(), util::CancelToken::Reason::none);
    token.cancel();
    EXPECT_TRUE(token.stopRequested());
    EXPECT_EQ(token.reason(), util::CancelToken::Reason::cancelled);
    token.cancel();  // idempotent
    EXPECT_EQ(token.reason(), util::CancelToken::Reason::cancelled);
    EXPECT_THROW(token.throwIfStopped(), util::CancelledError);
}

TEST(CancelToken, DeadlineLatchesWithDeadlineReason) {
    util::CancelToken token;
    token.setDeadlineAfter(1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(token.stopRequested());
    EXPECT_EQ(token.reason(), util::CancelToken::Reason::deadline);
}

TEST(CancelToken, FarDeadlineDoesNotTripAndZeroDisarms) {
    util::CancelToken token;
    token.setDeadlineAfter(3600.0);
    EXPECT_FALSE(token.stopRequested());
    token.setDeadlineAfter(0.0);
    EXPECT_FALSE(token.stopRequested());
}

TEST(CancelToken, ChildObservesParentCancellation) {
    util::CancelToken parent;
    util::CancelToken child(&parent);
    EXPECT_FALSE(child.stopRequested());
    parent.cancel();
    EXPECT_TRUE(child.stopRequested());
    EXPECT_EQ(child.reason(), util::CancelToken::Reason::cancelled);
}

TEST(CancelToken, AmbientScopePollThrowsOnlyInsideScope) {
    util::CancelToken token;
    token.cancel();
    EXPECT_NO_THROW(util::pollCancellation());  // no scope installed
    {
        const util::CancelScope scope(&token);
        EXPECT_EQ(util::currentCancelToken(), &token);
        EXPECT_THROW(util::pollCancellation(), util::CancelledError);
    }
    EXPECT_EQ(util::currentCancelToken(), nullptr);
    EXPECT_NO_THROW(util::pollCancellation());
}

// ------------------------------------------------------ scheduler + cancel

util::TaskGraph chainGraph(int n) {
    util::TaskGraph g;
    g.fanout.resize(static_cast<std::size_t>(n));
    g.faninCount.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i + 1 < n; ++i) {
        g.fanout[static_cast<std::size_t>(i)].push_back(i + 1);
        g.faninCount[static_cast<std::size_t>(i + 1)] = 1;
    }
    return g;
}

TEST(SchedulerCancel, SerialChainStopsAfterCancellingTask) {
    const int n = 200;
    const util::TaskGraph graph = chainGraph(n);
    util::CancelToken token;
    std::vector<int> executed;
    const auto stats = util::runTaskGraph(
        graph,
        [&](int i) {
            executed.push_back(i);
            if (i == 50) token.cancel();
        },
        nullptr, &token);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.tasksExecuted, 51u);
    EXPECT_EQ(stats.skippedTasks, 149u);
    ASSERT_EQ(executed.size(), 51u);
    for (int i = 0; i <= 50; ++i) EXPECT_EQ(executed[i], i);
}

TEST(SchedulerCancel, ParallelChainNeverExecutesPastTheCancel) {
    // On a pure chain, execution order equals index order even with many
    // workers, so the cancellation cut must be exact: the cancelling task
    // completes, nothing after it runs.
    const int n = 200;
    const util::TaskGraph graph = chainGraph(n);
    util::ThreadPool pool(4);
    util::CancelToken token;
    std::atomic<int> highest{-1};
    const auto stats = util::runTaskGraph(
        graph,
        [&](int i) {
            highest.store(i);
            if (i == 50) token.cancel();
        },
        &pool, &token);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.tasksExecuted + stats.skippedTasks,
              static_cast<std::size_t>(n));
    EXPECT_EQ(highest.load(), 50);
    EXPECT_EQ(stats.tasksExecuted, 51u);
}

TEST(SchedulerCancel, UncancelledRunKeepsHistoricalCounters) {
    const util::TaskGraph graph = chainGraph(32);
    util::CancelToken token;  // never tripped
    const auto stats =
        util::runTaskGraph(graph, [](int) {}, nullptr, &token);
    EXPECT_FALSE(stats.cancelled);
    EXPECT_EQ(stats.tasksExecuted, 32u);
    EXPECT_EQ(stats.skippedTasks, 0u);
}

TEST(SchedulerCancel, BodyThrownCancelledErrorCountsAsSkipped) {
    const util::TaskGraph graph = chainGraph(10);
    util::CancelToken token;
    const auto stats = util::runTaskGraph(
        graph,
        [&](int i) {
            if (i == 3) {
                token.cancel();
                util::pollCancellation();  // unwinds mid-body
            }
        },
        nullptr, &token);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.tasksExecuted, 3u);  // 0,1,2 completed
    EXPECT_EQ(stats.skippedTasks, 7u);   // 3 unwound + 4..9 skipped
}

TEST(ParallelForCancel, InlinePathStopsAfterCancellingIndex) {
    util::CancelToken token;
    std::vector<int> ran;
    util::parallelFor(
        nullptr, 100,
        [&](int i) {
            ran.push_back(i);
            if (i == 10) token.cancel();
        },
        &token);
    ASSERT_EQ(ran.size(), 11u);  // 0..10; index 11 is never claimed
    EXPECT_EQ(ran.back(), 10);
}

TEST(ParallelForCancel, PoolPathReturnsNormallyAndStops) {
    util::ThreadPool pool(4);
    util::CancelToken token;
    std::atomic<int> ran{0};
    util::parallelFor(
        &pool, 10000,
        [&](int i) {
            ran.fetch_add(1);
            if (i == 5) token.cancel();
        },
        &token);
    EXPECT_LT(ran.load(), 10000);  // the tail was skipped
}

TEST(ParallelForCancel, WithoutTokenCancelledErrorStillPropagates) {
    // Historical semantics: no token passed means CancelledError is an
    // ordinary exception, not a silent stop.
    EXPECT_THROW(util::parallelFor(nullptr, 4,
                                   [](int) {
                                       throw util::CancelledError("boom");
                                   }),
                 util::CancelledError);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjector, SkipFirstAndLimitAccounting) {
    const InjectorGuard guard;
    auto& inj = util::FaultInjector::instance();
    inj.arm("x.site:1.0:2:1");  // skip 1, then fire at most 2
    EXPECT_TRUE(inj.armed());
    EXPECT_FALSE(inj.shouldFail("x.site"));  // skipped
    EXPECT_TRUE(inj.shouldFail("x.site"));
    EXPECT_TRUE(inj.shouldFail("x.site"));
    EXPECT_FALSE(inj.shouldFail("x.site"));  // limit reached
    EXPECT_EQ(inj.fireCount(), 2u);
    inj.disarm();
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.shouldFail("x.site"));
}

TEST(FaultInjector, DetailMatchingIsExact) {
    const InjectorGuard guard;
    auto& inj = util::FaultInjector::instance();
    inj.arm("core.solve_net@s2");
    EXPECT_FALSE(inj.shouldFail("core.solve_net", "s1"));
    EXPECT_FALSE(inj.shouldFail("other.site", "s2"));
    EXPECT_TRUE(inj.shouldFail("core.solve_net", "s2"));
}

TEST(FaultInjector, MalformedSpecThrowsParseError) {
    const InjectorGuard guard;
    auto& inj = util::FaultInjector::instance();
    EXPECT_THROW(inj.arm("site:notanumber"), sna::ParseError);
    EXPECT_THROW(inj.arm("@detailonly"), sna::ParseError);
    EXPECT_THROW(inj.arm("site:2.0"), sna::ParseError);  // p out of [0,1]
    EXPECT_FALSE(inj.armed());
}

TEST(FaultInjector, ArmFromEnvironment) {
    const InjectorGuard guard;
    ::setenv("SNA_FAULT_INJECT", "env.site:1.0:1", 1);
    ::setenv("SNA_FAULT_SEED", "42", 1);
    auto& inj = util::FaultInjector::instance();
    EXPECT_TRUE(inj.armFromEnv());
    EXPECT_TRUE(inj.armed());
    EXPECT_TRUE(inj.shouldFail("env.site"));
    EXPECT_FALSE(inj.shouldFail("env.site"));  // limit 1
    ::unsetenv("SNA_FAULT_INJECT");
    ::unsetenv("SNA_FAULT_SEED");
    EXPECT_FALSE(inj.armFromEnv());
}

TEST(FaultInjector, FaultPointMacroThrowsTypedError) {
    const InjectorGuard guard;
    util::FaultInjector::instance().arm("macro.site");
    EXPECT_THROW(SNA_FAULT_POINT("macro.site", "d"),
                 util::FaultInjectedError);
    EXPECT_NO_THROW(SNA_FAULT_POINT("other.site", "d"));
}

// --------------------------------------- partial results under cancellation

#ifdef SNA_SANITIZED
constexpr int kChainStages = 10;
#else
constexpr int kChainStages = 28;
#endif

struct ChainFixture {
    cell::CellLibrary lib{tech::tech130()};
    parser::SpefFile spef;
    core::Design design;
    charlib::CharCache cache;

    ChainFixture() : design(lib) {
        spef = parser::parseSpef(chainSpef(kChainStages, 12.0));
        buildChain(design, kChainStages);
    }

    core::DesignNoiseOptions options(int threads) {
        auto opt = cheapOptions();
        opt.propagate = true;
        opt.threads = threads;
        opt.cache = &cache;
        return opt;
    }
};

TEST(PartialResults, PreCancelledTokenSolvesNothingButReturnsStructure) {
    ChainFixture fx;
    auto opt = fx.options(2);
    util::CancelToken token;
    token.cancel();
    opt.cancel = &token;
    const auto outcome = core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    EXPECT_EQ(outcome.reason, core::TerminationReason::cancelled);
    EXPECT_FALSE(outcome.complete());
    EXPECT_TRUE(outcome.reports.empty());
    EXPECT_EQ(outcome.unsolvedNets.size(),
              static_cast<std::size_t>(2 * kChainStages));
    // analyzeDesign (the throwing wrapper) surfaces the same condition.
    EXPECT_THROW(core::analyzeDesign(fx.design, fx.spef, opt),
                 util::CancelledError);
}

TEST(PartialResults, MidRunCancelReturnsBitwiseIdenticalCompletedReports) {
    ChainFixture fx;
    const auto baseline =
        core::analyzeDesign(fx.design, fx.spef, fx.options(4));
    ASSERT_EQ(baseline.size(), static_cast<std::size_t>(2 * kChainStages));
    const auto base = byNet(baseline);

    // Cancel from a watcher thread a fraction into the run: the outcome
    // must carry every completed report, each bitwise-equal to the full
    // run's, and account for every other net as unsolved.
    util::CancelToken token;
    auto opt = fx.options(4);
    opt.cancel = &token;
    std::thread watcher([&token] {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        token.cancel();
    });
    const auto outcome = core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    watcher.join();

    EXPECT_EQ(outcome.reports.size() + outcome.unsolvedNets.size(),
              baseline.size());
    for (const auto& r : outcome.reports) {
        ASSERT_EQ(r.status, core::NetNoiseReport::Status::ok) << r.net;
        const auto it = base.find(r.net);
        ASSERT_NE(it, base.end()) << r.net;
        expectBitwiseEqual(r, *it->second, "mid-run cancel");
    }
    if (!outcome.complete()) {
        EXPECT_EQ(outcome.reason, core::TerminationReason::cancelled);
        EXPECT_FALSE(outcome.unsolvedNets.empty());
    }
}

TEST(PartialResults, TinyDeadlineExpiresWithDeadlineReason) {
    ChainFixture fx;
    auto opt = fx.options(2);
    opt.deadline = 1e-4;  // far below one net's solve time
    const auto outcome = core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    EXPECT_EQ(outcome.reason, core::TerminationReason::deadlineExpired);
    EXPECT_FALSE(outcome.complete());
    EXPECT_FALSE(outcome.unsolvedNets.empty());
    EXPECT_EQ(outcome.reports.size() + outcome.unsolvedNets.size(),
              static_cast<std::size_t>(2 * kChainStages));
}

TEST(PartialResults, FlatPathHonorsCancellationToo) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(6));
    core::Design design(lib);
    buildRingDesign(design, 6);
    auto opt = cheapOptions();
    opt.threads = 2;
    util::CancelToken token;
    token.cancel();
    opt.cancel = &token;
    const auto outcome = core::analyzeDesignOutcome(design, spef, opt);
    EXPECT_EQ(outcome.reason, core::TerminationReason::cancelled);
    EXPECT_TRUE(outcome.reports.empty());
    EXPECT_EQ(outcome.unsolvedNets.size(), 6u);
}

TEST(PartialResults, SnapshotNotCapturedOnCancelledRun) {
    ChainFixture fx;
    core::AnalysisSnapshot snapshot;
    auto opt = fx.options(1);
    opt.snapshot = &snapshot;
    util::CancelToken token;
    token.cancel();
    opt.cancel = &token;
    (void)core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    EXPECT_FALSE(snapshot.valid);
}

// ------------------------------------------------- per-net fault quarantine

TEST(Quarantine, FailFastRethrowsTheInjectedFault) {
    const InjectorGuard guard;
    ChainFixture fx;
    util::FaultInjector::instance().arm("core.solve_net@s2");
    auto opt = fx.options(2);  // onNetFailure defaults to failFast
    EXPECT_THROW(core::analyzeDesign(fx.design, fx.spef, opt),
                 util::FaultInjectedError);
}

TEST(Quarantine, CleanRunUnderNonFailFastPolicyIsBitIdentical) {
    ChainFixture fx;
    const auto baseline =
        core::analyzeDesign(fx.design, fx.spef, fx.options(2));
    for (const auto policy : {core::NetFailurePolicy::quarantineCone,
                              core::NetFailurePolicy::degradeToPassthrough}) {
        auto opt = fx.options(2);
        opt.onNetFailure = policy;
        const auto outcome =
            core::analyzeDesignOutcome(fx.design, fx.spef, opt);
        ASSERT_TRUE(outcome.complete());
        ASSERT_TRUE(outcome.failedNets.empty());
        ASSERT_EQ(outcome.reports.size(), baseline.size());
        const auto base = byNet(baseline);
        for (const auto& r : outcome.reports) {
            expectBitwiseEqual(r, *base.at(r.net), "clean non-failFast");
        }
    }
}

TEST(Quarantine, ConeSuppressedAndUntouchedNetsBitIdenticalAcrossThreads) {
    const InjectorGuard guard;
    ChainFixture fx;
    const auto baseline =
        core::analyzeDesign(fx.design, fx.spef, fx.options(4));
    const auto base = byNet(baseline);

    for (const int threads : {1, 4, 8}) {
        util::FaultInjector::instance().arm("core.solve_net@s2");
        auto opt = fx.options(threads);
        opt.onNetFailure = core::NetFailurePolicy::quarantineCone;
        util::SchedulerStats sched;
        opt.schedulerStats = &sched;
        const auto outcome =
            core::analyzeDesignOutcome(fx.design, fx.spef, opt);
        util::FaultInjector::instance().disarm();

        ASSERT_TRUE(outcome.complete());
        ASSERT_EQ(outcome.failedNets, std::vector<std::string>{"s2"});
        // The scheduled cone of s2 is the rest of the stage chain plus the
        // pass-through output net; the aggressor nets are graph roots and
        // stay untouched. Only the victim members get stub reports.
        std::vector<std::string> coneVictims;
        for (int i = 3; i < kChainStages; ++i) {
            coneVictims.push_back("s" + std::to_string(i));
        }
        std::sort(coneVictims.begin(), coneVictims.end());
        std::vector<std::string> coneAll = coneVictims;
        coneAll.push_back("chain_out");
        std::sort(coneAll.begin(), coneAll.end());
        EXPECT_EQ(outcome.quarantinedNets, coneAll) << "threads=" << threads;
        EXPECT_TRUE(outcome.degradedNets.empty());
        EXPECT_EQ(sched.failedTasks, 1u);
        EXPECT_EQ(sched.quarantinedTasks, coneAll.size());

        std::size_t okCount = 0;
        for (const auto& r : outcome.reports) {
            if (r.status == core::NetNoiseReport::Status::failed) {
                EXPECT_EQ(r.net, "s2");
                EXPECT_NE(r.error.find("injected fault"), std::string::npos);
                continue;
            }
            if (r.status == core::NetNoiseReport::Status::quarantined) {
                EXPECT_NE(std::find(coneVictims.begin(), coneVictims.end(),
                                    r.net),
                          coneVictims.end())
                    << r.net;
                continue;
            }
            ASSERT_EQ(r.status, core::NetNoiseReport::Status::ok) << r.net;
            ++okCount;
            expectBitwiseEqual(r, *base.at(r.net),
                               "quarantine untouched, threads=" +
                                   std::to_string(threads));
        }
        EXPECT_EQ(okCount,
                  baseline.size() - 1 /*failed*/ - coneVictims.size());
    }
}

TEST(Quarantine, PassthroughDegradesDownstreamInsteadOfSuppressing) {
    const InjectorGuard guard;
    ChainFixture fx;
    const auto baseline =
        core::analyzeDesign(fx.design, fx.spef, fx.options(2));
    const auto base = byNet(baseline);

    util::FaultInjector::instance().arm("core.solve_net@s2");
    auto opt = fx.options(2);
    opt.onNetFailure = core::NetFailurePolicy::degradeToPassthrough;
    const auto outcome = core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    util::FaultInjector::instance().disarm();

    ASSERT_TRUE(outcome.complete());
    ASSERT_EQ(outcome.failedNets, std::vector<std::string>{"s2"});
    EXPECT_TRUE(outcome.quarantinedNets.empty());
    // Downstream stages (and the pass-through output net) solved across
    // the bridge.
    std::vector<std::string> expectDegraded = {"chain_out"};
    for (int i = 3; i < kChainStages; ++i) {
        expectDegraded.push_back("s" + std::to_string(i));
    }
    std::sort(expectDegraded.begin(), expectDegraded.end());
    EXPECT_EQ(outcome.degradedNets, expectDegraded);
    for (const auto& r : outcome.reports) {
        if (r.status != core::NetNoiseReport::Status::ok) continue;
        expectBitwiseEqual(r, *base.at(r.net), "passthrough untouched");
    }
    // A degraded report still carries real numbers (it solved).
    const auto degraded = byNet(outcome.reports);
    ASSERT_NE(degraded.find("s3"), degraded.end());
    EXPECT_EQ(degraded.at("s3")->status,
              core::NetNoiseReport::Status::degraded);
    EXPECT_GT(degraded.at("s3")->cluster.nrcLimit, 0.0);
}

TEST(Quarantine, ResilienceLintRulesReportFailures) {
    const InjectorGuard guard;
    ChainFixture fx;
    util::FaultInjector::instance().arm("core.solve_net@s2");
    auto opt = fx.options(1);
    opt.onNetFailure = core::NetFailurePolicy::quarantineCone;
    opt.lint = lint::Mode::warn;
    lint::LintReport report;
    opt.lintOut = &report;
    (void)core::analyzeDesignOutcome(fx.design, fx.spef, opt);
    util::FaultInjector::instance().disarm();

    std::size_t l701 = 0, l702 = 0;
    for (const auto& d : report.diagnostics) {
        if (d.rule == "SNA-L701") {
            ++l701;
            EXPECT_EQ(d.object, "s2");
            EXPECT_EQ(d.severity, lint::Severity::warning);
        }
        if (d.rule == "SNA-L702") ++l702;
    }
    EXPECT_EQ(l701, 1u);
    // The whole scheduled cone is flagged: downstream stages + chain_out.
    EXPECT_EQ(l702, static_cast<std::size_t>(kChainStages - 3 + 1));
}

TEST(Quarantine, IncrementalFaultPoisonsTheSnapshot) {
    const InjectorGuard guard;
    ChainFixture fx;
    core::AnalysisSnapshot snapshot;
    auto opt = fx.options(2);
    opt.snapshot = &snapshot;
    (void)core::analyzeDesign(fx.design, fx.spef, opt);
    ASSERT_TRUE(snapshot.valid);

    // Dirty-cone re-run hits an injected solver fault: the outcome carries
    // it, and the snapshot must be invalidated (the index was patched in
    // place), so the NEXT iteration rebuilds instead of splicing.
    util::FaultInjector::instance().arm("core.solve_net@s2");
    core::DesignDelta delta;
    delta.nets = {"s2"};
    auto iopt = fx.options(2);
    iopt.onNetFailure = core::NetFailurePolicy::quarantineCone;
    core::IncrementalStats stats;
    const auto outcome = core::analyzeDesignIncrementalOutcome(
        fx.design, fx.spef, delta, snapshot, iopt, &stats);
    util::FaultInjector::instance().disarm();
    EXPECT_FALSE(stats.indexRebuilt);
    EXPECT_EQ(outcome.failedNets, std::vector<std::string>{"s2"});
    EXPECT_FALSE(snapshot.valid);

    core::IncrementalStats stats2;
    const auto recovered = core::analyzeDesignIncrementalOutcome(
        fx.design, fx.spef, delta, snapshot, fx.options(2), &stats2);
    EXPECT_TRUE(stats2.indexRebuilt);
    EXPECT_TRUE(recovered.complete());
    EXPECT_TRUE(recovered.failedNets.empty());
    EXPECT_TRUE(snapshot.valid);
}

// ----------------------------------------------------- snacache v2 healing

TEST(Crc32, MatchesTheStandardCheckValue) {
    EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(util::crc32(""), 0x00000000u);
}

/// Populates a cache with real characterizations (threads 1 so the fixture
/// is fork-safe) and saves it; returns the save path.
class CacheFileTest : public ::testing::Test {
protected:
    void SetUp() override {
        const cell::CellLibrary lib(tech::tech130());
        spef_ = parser::parseSpef(ringSpef(4));
        design_ = std::make_unique<core::Design>(lib);
        buildRingDesign(*design_, 4);
        auto opt = cheapOptions();
        opt.cache = &cache_;
        (void)core::analyzeDesign(*design_, spef_, opt);
        path_ = tmpPath("sna_resilience.snacache");
        const auto saved = cache_.save(path_);
        ASSERT_TRUE(saved.ok) << saved.error;
        total_ = saved.entries;
        ASSERT_GT(total_, 0u);
    }

    parser::SpefFile spef_;
    std::unique_ptr<core::Design> design_;
    charlib::CharCache cache_;
    std::string path_;
    std::size_t total_ = 0;
};

TEST_F(CacheFileTest, RoundTripIsCleanV2) {
    EXPECT_EQ(slurp(path_).rfind("snacache v2", 0), 0u);
    charlib::CharCache warm;
    const auto loaded = warm.load(path_);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, total_);
    EXPECT_EQ(loaded.corrupt, 0u);
    EXPECT_EQ(warm.stats().corruptRecords, 0u);
}

TEST_F(CacheFileTest, FlippedPayloadByteIsRejectedRestStillLoads) {
    std::string text = slurp(path_);
    // Flip a byte squarely inside the first record's payload: one past the
    // first entry line's newline.
    const std::size_t entryLine = text.find("entry ");
    ASSERT_NE(entryLine, std::string::npos);
    const std::size_t payloadStart = text.find('\n', entryLine) + 1;
    ASSERT_LT(payloadStart + 8, text.size());
    text[payloadStart + 4] ^= 0x5a;
    spit(path_, text);

    charlib::CharCache warm;
    const auto loaded = warm.load(path_);
    EXPECT_TRUE(loaded.ok) << loaded.error;  // framing intact, file complete
    EXPECT_EQ(loaded.corrupt, 1u);
    EXPECT_EQ(loaded.entries, total_ - 1);
    EXPECT_EQ(warm.stats().corruptRecords, 1u);
}

TEST_F(CacheFileTest, TornWriteFaultLeavesRecoverablePrefix) {
    const InjectorGuard guard;
    util::FaultInjector::instance().arm("charcache.save.torn");
    const auto torn = cache_.save(path_);
    EXPECT_FALSE(torn.ok);
    EXPECT_NE(torn.error.find("torn"), std::string::npos);
    util::FaultInjector::instance().disarm();

    // The torn file loads without crashing: a valid prefix (or nothing),
    // never a half-parsed record.
    charlib::CharCache warm;
    const auto loaded = warm.load(path_);
    EXPECT_FALSE(loaded.ok);
    EXPECT_LT(loaded.entries, total_);

    // A clean re-save heals the file completely.
    const auto healed = cache_.save(path_);
    ASSERT_TRUE(healed.ok) << healed.error;
    charlib::CharCache warm2;
    const auto reloaded = warm2.load(path_);
    EXPECT_TRUE(reloaded.ok) << reloaded.error;
    EXPECT_EQ(reloaded.entries, total_);
}

TEST_F(CacheFileTest, OpenFaultsSurfaceAsErrorsNotCrashes) {
    const InjectorGuard guard;
    util::FaultInjector::instance().arm("charcache.save.open");
    const auto saved = cache_.save(path_);
    EXPECT_FALSE(saved.ok);
    EXPECT_NE(saved.error.find("injected"), std::string::npos);

    util::FaultInjector::instance().arm("charcache.load.open");
    charlib::CharCache warm;
    const auto loaded = warm.load(path_);
    EXPECT_FALSE(loaded.ok);
    EXPECT_NE(loaded.error.find("injected"), std::string::npos);
    EXPECT_EQ(loaded.entries, 0u);
}

TEST_F(CacheFileTest, RandomTruncationNeverCrashesOrTearsARecord) {
    const std::string full = slurp(path_);
    ASSERT_GT(full.size(), 100u);
    util::Rng rng(0xdecafbadULL);
    const std::string cut = tmpPath("sna_truncated.snacache");
    for (int trial = 0; trial < 50; ++trial) {
        const auto offset = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<int>(full.size()) - 1));
        spit(cut, full.substr(0, offset));
        charlib::CharCache warm;
        const auto loaded = warm.load(cut);
        // Some prefix of the records (possibly none) loads; the file is
        // reported incomplete; nothing throws and nothing is half-read.
        EXPECT_FALSE(loaded.ok) << "offset " << offset;
        EXPECT_LE(loaded.entries + loaded.skipped + loaded.corrupt, total_)
            << "offset " << offset;
    }
    std::remove(cut.c_str());
}

TEST_F(CacheFileTest, LegacyV1FilesStillLoad) {
    // Down-convert the v2 file to v1 by walking the real framing: rewrite
    // the header, drop each record's CRC field, and copy payloads by their
    // declared byte counts.
    const std::string v2 = slurp(path_);
    std::ostringstream v1;
    v1 << "snacache v1\n";
    std::size_t pos = v2.find('\n') + 1;
    while (pos < v2.size()) {
        const std::size_t nl = v2.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const std::string line = v2.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.rfind("end ", 0) == 0) {
            v1 << line << '\n';
            break;
        }
        char kind[32] = {0};
        unsigned long long payloadBytes = 0;
        unsigned crc = 0;
        int keyStart = -1;
        ASSERT_EQ(std::sscanf(line.c_str(), "entry %31s %llu %8x %n", kind,
                              &payloadBytes, &crc, &keyStart),
                  3);
        v1 << "entry " << kind << ' ' << payloadBytes << ' '
           << line.substr(static_cast<std::size_t>(keyStart)) << '\n';
        v1 << v2.substr(pos, payloadBytes) << '\n';
        pos += payloadBytes + 1;
    }
    const std::string v1Path = tmpPath("sna_legacy.snacache");
    spit(v1Path, v1.str());

    charlib::CharCache warm;
    const auto loaded = warm.load(v1Path);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, total_);
    std::remove(v1Path.c_str());
}

TEST_F(CacheFileTest, TwoProcessesSavingTheSamePathBothLeaveValidFiles) {
    // Each child warm-starts from the fixture file into its own cache and
    // then hammers save() on a shared contended path. The advisory flock
    // serializes the writers; whatever the interleaving, the surviving
    // file must always be a complete, CRC-valid snapshot.
    const std::string contended = tmpPath("sna_contended.snacache");
    std::remove(contended.c_str());
    const auto child = [&]() -> pid_t {
        const pid_t pid = ::fork();
        if (pid != 0) return pid;
        charlib::CharCache mine;
        const auto warm = mine.load(path_);
        if (!warm.ok || warm.entries == 0) ::_exit(2);
        for (int i = 0; i < 8; ++i) {
            if (!mine.save(contended).ok) ::_exit(3);
        }
        ::_exit(0);
    };
    const pid_t a = child();
    ASSERT_GE(a, 0);
    const pid_t b = child();
    ASSERT_GE(b, 0);
    int statusA = 0, statusB = 0;
    ASSERT_EQ(::waitpid(a, &statusA, 0), a);
    ASSERT_EQ(::waitpid(b, &statusB, 0), b);
    EXPECT_TRUE(WIFEXITED(statusA) && WEXITSTATUS(statusA) == 0)
        << WEXITSTATUS(statusA);
    EXPECT_TRUE(WIFEXITED(statusB) && WEXITSTATUS(statusB) == 0)
        << WEXITSTATUS(statusB);

    charlib::CharCache survivor;
    const auto loaded = survivor.load(contended);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, total_);
    EXPECT_EQ(loaded.corrupt, 0u);
    std::remove(contended.c_str());
    std::remove((contended + ".lock").c_str());
}

}  // namespace

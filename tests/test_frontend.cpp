// Tests for the industry front end: Liberty / Verilog / SDC parsing
// (fixture round-trips and error paths), NLDM-to-Thevenin binding and
// math, SDC-seeded windows vs a hand-written windows file, front-end lint
// rules (SNA-L6xx), and end-to-end fixture analysis bit-identical across
// thread counts with NLDM-seeded characterization.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "charlib/nldm_source.hpp"
#include "core/frontend.hpp"
#include "core/propagate.hpp"
#include "core/sna.hpp"
#include "parser/liberty_parser.hpp"
#include "parser/sdc_parser.hpp"
#include "parser/spef_parser.hpp"
#include "parser/verilog_parser.hpp"
#include "parser/windows_parser.hpp"
#include "util/error.hpp"

namespace {

using namespace sna;

std::string fixture(const std::string& name) {
    const std::string path =
        std::string(SNA_SOURCE_DIR) + "/examples/fixtures/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

// ---------------------------------------------------------------- Liberty

TEST(LibertyParser, ParsesMiniFixtureWithSiConversion) {
    const auto lib = parser::parseLiberty(fixture("mini.lib"));
    EXPECT_EQ(lib.name, "mini130");
    EXPECT_DOUBLE_EQ(lib.timeScale, 1e-9);
    EXPECT_DOUBLE_EQ(lib.capScale, 1e-12);
    ASSERT_EQ(lib.cells.size(), 3u);

    const auto* inv = lib.findCell("INV_X1");  // case-insensitive lookup
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->name, "inv_x1");
    ASSERT_EQ(inv->pins.size(), 2u);
    const auto& a = inv->pins.at("a");
    EXPECT_EQ(a.dir, parser::LibertyPinDir::input);
    EXPECT_NEAR(a.capacitance, 0.0020e-12, 1e-20);  // pF -> F
    const auto* y = inv->outputPin();
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(y->name, "y");
    EXPECT_EQ(y->function, "!A");

    const auto* arc = inv->arcFrom("a");
    ASSERT_NE(arc, nullptr);
    EXPECT_TRUE(arc->complete());
    // Template axes converted to SI: ns -> s, pF -> F.
    ASSERT_EQ(arc->cellRise.xs().size(), 3u);
    EXPECT_NEAR(arc->cellRise.xs()[0], 0.010e-9, 1e-22);
    EXPECT_NEAR(arc->cellRise.ys()[0], 0.005e-12, 1e-25);
    // Spot-check a value: cell_rise row 1 (0.030 ns slew) col 1 (0.030 pF).
    EXPECT_NEAR(arc->cellRise.at(1, 1), 0.061e-9, 1e-21);
}

TEST(LibertyParser, RejectsMalformedInput) {
    // Top-level group must be `library`.
    EXPECT_THROW(parser::parseLiberty("cell (c) { }"), ParseError);
    // Unbalanced braces.
    EXPECT_THROW(parser::parseLiberty("library (l) { cell (c) {"),
                 ParseError);
    // Ragged table rows.
    EXPECT_THROW(parser::parseLiberty(
                     "library (l) {\n"
                     "  lu_table_template (t) {\n"
                     "    variable_1 : input_net_transition;\n"
                     "    variable_2 : total_output_net_capacitance;\n"
                     "    index_1 (\"0.01, 0.03\");\n"
                     "    index_2 (\"0.01, 0.03\");\n"
                     "  }\n"
                     "  cell (c) {\n"
                     "    pin (y) {\n"
                     "      direction : output;\n"
                     "      timing () {\n"
                     "        related_pin : \"a\";\n"
                     "        cell_rise (t) {\n"
                     "          values (\"0.1, 0.2\", \"0.3\");\n"
                     "        }\n"
                     "      }\n"
                     "    }\n"
                     "  }\n"
                     "}\n"),
                 ParseError);
}

TEST(LibertyParser, ErrorsCarryLineNumbers) {
    try {
        parser::parseLiberty("library (l) {\n  cell (c) {\n    pin;\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_GT(e.line(), 0);
    }
}

// ---------------------------------------------------------------- Verilog

TEST(VerilogParser, ParsesMiniFixture) {
    const auto m = parser::parseVerilog(fixture("mini.v"));
    EXPECT_EQ(m.name, "signoff_demo");
    EXPECT_EQ(m.ports.size(), 14u);
    EXPECT_EQ(m.inputs.size(), 7u);
    EXPECT_EQ(m.outputs.size(), 7u);
    EXPECT_EQ(m.wires.size(), 8u);
    ASSERT_EQ(m.instances.size(), 15u);
    EXPECT_TRUE(m.isInput("in"));
    EXPECT_FALSE(m.isInput("out"));

    const auto& u1 = m.instances.front();
    EXPECT_EQ(u1.cellName, "inv_x1");  // lower-cased
    EXPECT_EQ(u1.name, "u_s1");
    ASSERT_EQ(u1.pinNets.size(), 2u);
    EXPECT_EQ(u1.pinNets.at("a"), "in");
    EXPECT_EQ(u1.pinNets.at("y"), "vic1");
}

TEST(VerilogParser, RejectsUnsupportedConstructs) {
    // Behavioral / continuous assignment.
    EXPECT_THROW(parser::parseVerilog("module m (a);\n"
                                      "  input a;\n"
                                      "  assign b = a;\n"
                                      "endmodule\n"),
                 ParseError);
    // Bus ranges.
    EXPECT_THROW(parser::parseVerilog("module m (a);\n"
                                      "  input [3:0] a;\n"
                                      "endmodule\n"),
                 ParseError);
    // Positional pin connections.
    EXPECT_THROW(parser::parseVerilog("module m (a, y);\n"
                                      "  input a;\n  output y;\n"
                                      "  INV_X1 u1 (a, y);\n"
                                      "endmodule\n"),
                 ParseError);
    // Same pin connected twice.
    EXPECT_THROW(parser::parseVerilog("module m (a, y);\n"
                                      "  input a;\n  output y;\n"
                                      "  INV_X1 u1 (.A(a), .A(y));\n"
                                      "endmodule\n"),
                 ParseError);
    // Missing endmodule.
    EXPECT_THROW(parser::parseVerilog("module m (a);\n  input a;\n"),
                 ParseError);
}

// ---------------------------------------------------------------- SDC

TEST(SdcParser, ParsesMiniFixture) {
    const auto sdc = parser::parseSdc(fixture("mini.sdc"));
    EXPECT_DOUBLE_EQ(sdc.timeScale, 1e-9);
    ASSERT_EQ(sdc.clocks.size(), 1u);
    EXPECT_EQ(sdc.clocks[0].name, "clk");
    EXPECT_NEAR(sdc.clocks[0].period, 2.5e-9, 1e-21);
    // One record per (statement, port): 2 for `in`, 6 per aggressor trio.
    EXPECT_EQ(sdc.inputDelays.size(), 14u);
    EXPECT_TRUE(sdc.outputDelays.empty());
}

TEST(SdcParser, InputWindowsMatchHandWrittenWindowsFile) {
    // The acceptance seam: SDC-seeded windows must agree with what an STA
    // export in the windows-file format supplies (same ports, same bounds;
    // tolerance covers the ns-vs-ps unit conversion rounding).
    const auto sdc = parser::parseSdc(fixture("mini.sdc"));
    const auto fromSdc = sdc.toInputWindows();
    const auto fromFile = parser::parseTimingWindows(fixture("mini.windows"));
    ASSERT_EQ(fromSdc.size(), fromFile.size());
    for (const auto& [net, w] : fromFile.all()) {
        const auto* s = fromSdc.find(net);
        ASSERT_NE(s, nullptr) << net;
        EXPECT_NEAR(s->earliest, w.earliest, 1e-22) << net;
        EXPECT_NEAR(s->latest, w.latest, 1e-22) << net;
    }
}

TEST(SdcParser, MinMaxPairBecomesHull) {
    const auto sdc = parser::parseSdc(
        "set_input_delay -clock clk -min 0.2 [get_ports {a}]\n"
        "set_input_delay -clock clk -max 0.9 [get_ports {a}]\n");
    const auto w = sdc.toInputWindows();
    ASSERT_EQ(w.size(), 1u);
    EXPECT_NEAR(w.of("a").earliest, 0.2e-9, 1e-22);
    EXPECT_NEAR(w.of("a").latest, 0.9e-9, 1e-22);
}

TEST(SdcParser, RejectsUnknownCommandsAndFlags) {
    EXPECT_THROW(parser::parseSdc("set_false_path -from a -to b\n"),
                 ParseError);
    EXPECT_THROW(parser::parseSdc("create_clock -bogus 1\n"), ParseError);
    EXPECT_THROW(parser::parseSdc("set_input_delay -clock clk\n"),
                 ParseError);  // no value
}

// ---------------------------------------------------------------- NLDM

TEST(NldmSource, BindsMiniFixtureCleanly) {
    const auto liberty = parser::parseLiberty(fixture("mini.lib"));
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    EXPECT_TRUE(nldm.issues().empty());
    const std::vector<std::string> want = {"INV_X1", "INV_X2", "INV_X4"};
    EXPECT_EQ(nldm.boundCells(), want);
}

TEST(NldmSource, TheveninMathMatchesTablesAtGridPoint) {
    const auto liberty = parser::parseLiberty(fixture("mini.lib"));
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);

    // Query exactly on the table grid (slew 0.030 ns, load 0.030 pF) so the
    // interpolator returns the raw table entries.
    const double slewIn = 30e-12, load = 30e-15;
    const auto m = nldm.theveninFor("INV_X1", "a", true, load, slewIn);
    ASSERT_TRUE(m.has_value());
    const double d = 0.061e-9;   // cell_rise[1][1]
    const double tr = 0.065e-9;  // rise_transition[1][1]
    EXPECT_NEAR(m->slew, tr, 1e-21);
    EXPECT_NEAR(m->delay, d + slewIn / 2 - tr / 2, 1e-21);
    EXPECT_NEAR(m->rth, tr / (std::log(4.0) * load), 1e-3);
    EXPECT_DOUBLE_EQ(m->vStart, 0.0);
    EXPECT_DOUBLE_EQ(m->vEnd, lib.technology().vdd);

    // Falling output reads the fall tables and swaps the rails.
    const auto f = nldm.theveninFor("INV_X1", "a", false, load, slewIn);
    ASSERT_TRUE(f.has_value());
    EXPECT_NEAR(f->slew, 0.056e-9, 1e-21);  // fall_transition[1][1]
    EXPECT_DOUBLE_EQ(f->vStart, lib.technology().vdd);
    EXPECT_DOUBLE_EQ(f->vEnd, 0.0);

    EXPECT_FALSE(nldm.theveninFor("NAND2_X1", "a", true, load, slewIn));
}

TEST(NldmSource, ReportsUnboundAndMismatchedCells) {
    const auto liberty = parser::parseLiberty(
        "library (l) {\n"
        "  cell (FOO_X9) { pin (a) { direction : input; } }\n"
        "  cell (INV_X1) { pin (q) { direction : input; } }\n"
        "}\n");
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    using Kind = charlib::NldmSource::Issue::Kind;
    bool sawUnbound = false, sawMismatch = false;
    for (const auto& i : nldm.issues()) {
        sawUnbound |= i.kind == Kind::unboundCell && i.cell == "foo_x9";
        sawMismatch |= i.kind == Kind::pinMismatch && i.cell == "inv_x1";
    }
    EXPECT_TRUE(sawUnbound);
    EXPECT_TRUE(sawMismatch);
    EXPECT_TRUE(nldm.boundCells().empty());
}

TEST(NldmSource, SeedsCacheAtQueriedSpec) {
    const auto liberty = parser::parseLiberty(fixture("mini.lib"));
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    charlib::CharCache cache;
    // 3 bound cells x 1 input pin x 2 directions.
    EXPECT_EQ(core::seedNldmCharacterization(nldm, cache), 6u);
    // Re-seeding finds every key present.
    EXPECT_EQ(core::seedNldmCharacterization(nldm, cache), 0u);

    charlib::TheveninSpec spec;
    spec.cell = &lib.cell("INV_X1");
    spec.input = "a";
    spec.outputRising = true;
    spec.loadCap = core::kPropagationLoadCap;
    const auto before = cache.stats().theveninRuns;
    const auto model = cache.thevenin(spec);
    EXPECT_EQ(cache.stats().theveninRuns, before);  // served, not swept
    EXPECT_EQ(cache.stats().theveninDiskHits, 1u);
    const auto direct = nldm.theveninFor("INV_X1", "a", true, spec.loadCap,
                                         spec.inputSlew);
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(model->slew, direct->slew);
    EXPECT_EQ(model->delay, direct->delay);
}

// ---------------------------------------------------------------- frontend

TEST(FrontEnd, BuildDesignResolvesCanonicalCells) {
    const auto module = parser::parseVerilog(fixture("mini.v"));
    const cell::CellLibrary lib(tech::tech130());
    const auto design = core::buildDesign(module, lib);
    ASSERT_EQ(design.instances().size(), 15u);
    const auto* drv = design.driverOf("vic1");
    ASSERT_NE(drv, nullptr);
    EXPECT_EQ(drv->name, "u_s1");
    EXPECT_EQ(drv->cellName, "INV_X1");  // library spelling, not netlist's
}

TEST(FrontEnd, BuildDesignRejectsBrokenNetlists) {
    const cell::CellLibrary lib(tech::tech130());
    EXPECT_THROW(core::buildDesign(
                     parser::parseVerilog("module m (a, y);\n"
                                          "  input a;\n  output y;\n"
                                          "  MYSTERY u1 (.A(a), .Y(y));\n"
                                          "endmodule\n"),
                     lib),
                 ModelError);
    EXPECT_THROW(core::buildDesign(
                     parser::parseVerilog("module m (a, y);\n"
                                          "  input a;\n  output y;\n"
                                          "  INV_X1 u1 (.A(a), .Q(y));\n"
                                          "endmodule\n"),
                     lib),
                 ModelError);
    EXPECT_THROW(core::buildDesign(
                     parser::parseVerilog("module m (a, y);\n"
                                          "  input a;\n  output y;\n"
                                          "  INV_X1 u1 (.Y(y));\n"
                                          "endmodule\n"),
                     lib),
                 ModelError);
}

TEST(FrontEnd, LintFlagsBindingProblems) {
    const auto liberty = parser::parseLiberty(
        "library (l) {\n"
        "  cell (FOO_X9) { pin (a) { direction : input; } }\n"
        "}\n");
    const auto module =
        parser::parseVerilog("module m (a, y);\n"
                             "  input a;\n  output y;\n"
                             "  MYSTERY u1 (.A(a), .Y(y));\n"
                             "  INV_X1 u2 (.A(a), .Q(y));\n"
                             "endmodule\n");
    const auto sdc = parser::parseSdc(
        "set_input_delay -clock clk -min 0 [get_ports {a nosuchport}]\n");
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    lint::LintReport report;
    core::lintFrontEnd(nldm, module, lib, &sdc, report);

    auto has = [&](const std::string& rule, const std::string& object) {
        for (const auto& d : report.diagnostics) {
            if (d.rule == rule && d.object == object) return true;
        }
        return false;
    };
    EXPECT_TRUE(has("SNA-L601", "foo_x9"));   // .lib cell binds nowhere
    EXPECT_TRUE(has("SNA-L611", "u1"));       // undefined cell
    EXPECT_TRUE(has("SNA-L612", "u2:q"));     // unknown pin
    EXPECT_TRUE(has("SNA-L615", "nosuchport"));
    EXPECT_FALSE(has("SNA-L615", "a"));
    EXPECT_TRUE(report.hasErrors());
}

TEST(FrontEnd, MiniFixtureLintsClean) {
    const auto liberty = parser::parseLiberty(fixture("mini.lib"));
    const auto module = parser::parseVerilog(fixture("mini.v"));
    const auto sdc = parser::parseSdc(fixture("mini.sdc"));
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    lint::LintReport report;
    core::lintFrontEnd(nldm, module, lib, &sdc, report);
    EXPECT_TRUE(report.diagnostics.empty()) << report.summary();
}

// ------------------------------------------------------------- end to end

void expectSameReports(const std::vector<core::NetNoiseReport>& a,
                       const std::vector<core::NetNoiseReport>& b,
                       const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].net, b[i].net) << label;
        EXPECT_EQ(a[i].aggressorNets, b[i].aggressorNets)
            << label << " " << a[i].net;
        // Bit-identical, not merely close.
        EXPECT_EQ(a[i].cluster.margin, b[i].cluster.margin)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.worst.metrics.peak,
                  b[i].cluster.worst.metrics.peak)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.fails, b[i].cluster.fails)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].propagated.height, b[i].propagated.height)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].windows.windowedMargin, b[i].windows.windowedMargin)
            << label << " " << a[i].net;
    }
}

TEST(FrontEnd, FixtureAnalysisBitIdenticalAcrossThreads) {
    const auto liberty = parser::parseLiberty(fixture("mini.lib"));
    const auto module = parser::parseVerilog(fixture("mini.v"));
    const auto sdc = parser::parseSdc(fixture("mini.sdc"));
    const auto spef = parser::parseSpef(fixture("mini.spef"));
    const cell::CellLibrary lib(tech::tech130());
    const charlib::NldmSource nldm(liberty, lib);
    const auto design = core::buildDesign(module, lib);
    const auto windows = sdc.toInputWindows();

    std::vector<core::NetNoiseReport> baseline;
    for (const int threads : {1, 4, 8}) {
        charlib::CharCache cache;
        ASSERT_GT(core::seedNldmCharacterization(nldm, cache), 0u);
        core::DesignNoiseOptions opt;
        opt.propagate = true;
        opt.windows = &windows;
        opt.cache = &cache;
        opt.threads = threads;
        opt.maxAggressors = 2;
        opt.report.searchAlignment = false;
        opt.report.macromodel.loadCurveGrid = 9;
        auto reports = core::analyzeDesign(design, spef, opt);
        ASSERT_FALSE(reports.empty());
        // The propagation wavefront consumed the NLDM-seeded thevenins.
        EXPECT_GT(cache.stats().theveninDiskHits, 0u)
            << "threads=" << threads;
        if (threads == 1) {
            baseline = std::move(reports);
        } else {
            expectSameReports(baseline, reports,
                              "threads=" + std::to_string(threads));
        }
    }
}

}  // namespace

// Tests for model-order reduction: analytic moments, Pi-model synthesis and
// moment preservation, coupling conservation, PRIMA moment matching, and
// reduced-vs-full transient accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "interconnect/parallel_bus.hpp"
#include "mor/coupled_pi.hpp"
#include "mor/linear_network.hpp"
#include "mor/pi_model.hpp"
#include "mor/prima.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using ic::RcNetwork;

// Single RC section: R then C to ground. Y(s) = sC/(1+sRC):
// y1 = C, y2 = -RC^2, y3 = R^2C^3.
RcNetwork singleSection(double r, double c) {
    RcNetwork net;
    const int n0 = net.addNode("w:0");
    const int n1 = net.addNode("w:1");
    net.addRes(n0, n1, r);
    net.addCap(n1, RcNetwork::kGroundNode, c);
    net.addWire("w", n0, n1);
    return net;
}

TEST(Moments, SingleSectionAnalytic) {
    const double r = 100.0, c = 50e-15;
    const mor::LinearNetwork lin(singleSection(r, c));
    const auto y = lin.admittanceMoments(0, {}, 3);
    ASSERT_EQ(y.size(), 3u);
    EXPECT_NEAR(y[0], c, 1e-20);
    EXPECT_NEAR(y[1], -r * c * c, 1e-26);
    EXPECT_NEAR(y[2], r * r * c * c * c, 1e-32);
}

TEST(Moments, ResistiveLeakThrowsModelError) {
    RcNetwork net;
    const int n0 = net.addNode("w:0");
    const int n1 = net.addNode("w:1");
    const int x0 = net.addNode("x:0");
    net.addRes(n0, n1, 100.0);
    net.addRes(n1, x0, 100.0);
    net.addCap(n1, RcNetwork::kGroundNode, 1e-15);
    net.addWire("w", n0, n1);
    net.addWire("x", x0, x0);
    const mor::LinearNetwork lin(net);
    EXPECT_THROW(lin.admittanceMoments(n0, {x0}, 3), ModelError);
}

TEST(PiModel, SynthesisInvertsSingleSection) {
    // For a single RC section the Pi model is exact: C1 = 0, R, C2 = C.
    const double r = 125.0, c = 40e-15;
    const auto pi = mor::piFromMoments({c, -r * c * c, r * r * c * c * c});
    EXPECT_NEAR(pi.c2, c, c * 1e-9);
    EXPECT_NEAR(pi.r, r, r * 1e-9);
    EXPECT_NEAR(pi.c1, 0.0, c * 1e-9);
}

TEST(PiModel, RealizedMomentsMatchRequested) {
    util::Rng rng(11);
    for (int k = 0; k < 50; ++k) {
        const double c1 = rng.uniform(1e-15, 50e-15);
        const double c2 = rng.uniform(1e-15, 80e-15);
        const double r = rng.uniform(10.0, 500.0);
        const mor::PiModel ref{c1, r, c2};
        const auto back = mor::piFromMoments(ref.admittanceMoments());
        EXPECT_NEAR(back.c1, c1, c1 * 1e-6);
        EXPECT_NEAR(back.r, r, r * 1e-6);
        EXPECT_NEAR(back.c2, c2, c2 * 1e-6);
    }
}

TEST(PiModel, LadderMomentsPreserved) {
    // Property: the Pi synthesized from a ladder's moments realizes those
    // moments exactly (the O'Brien-Savarino guarantee).
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 1;
    for (const int segments : {2, 4, 8, 16, 32}) {
        spec.segments = segments;
        const RcNetwork net = buildParallelBus(spec);
        const mor::LinearNetwork lin(net);
        const auto y = lin.admittanceMoments(net.driverNode(0), {}, 3);
        const auto pi = mor::piFromMoments(y);
        const auto back = pi.admittanceMoments();
        EXPECT_NEAR(back[0], y[0], std::abs(y[0]) * 1e-9) << segments;
        EXPECT_NEAR(back[1], y[1], std::abs(y[1]) * 1e-9) << segments;
        EXPECT_NEAR(back[2], y[2], std::abs(y[2]) * 1e-9) << segments;
    }
}

TEST(PiModel, RejectsNonRealizable) {
    EXPECT_THROW(mor::piFromMoments({-1e-15, -1e-27, 1e-40}), ModelError);
    EXPECT_THROW(mor::piFromMoments({1e-15, +1e-27, 1e-40}), ModelError);
    EXPECT_THROW(mor::piFromMoments({1e-15}), ModelError);
}

TEST(Moments, TransferM1EqualsCouplingCap) {
    // First transfer moment between two coupled wires equals the total
    // coupling capacitance (all of wire A at 1 V at DC, B shorted).
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 2;
    spec.segments = 12;
    const RcNetwork net = buildParallelBus(spec);
    const mor::LinearNetwork lin(net);
    const auto t =
        lin.transferMoments(net.driverNode(0), net.driverNode(1), 2);
    EXPECT_NEAR(std::abs(t[0]), net.couplingCapBetween(0, 1),
                net.couplingCapBetween(0, 1) * 1e-9);
}

TEST(CoupledPi, SelfCapacitancePreserved) {
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 3;
    spec.segments = 16;
    const RcNetwork net = buildParallelBus(spec);
    const auto reduced = mor::reduceCluster(net);
    ASSERT_EQ(reduced.nets.size(), 3u);
    for (int w = 0; w < 3; ++w) {
        double cc = 0.0;
        for (int o = 0; o < 3; ++o) {
            if (o != w) cc += net.couplingCapBetween(w, o);
        }
        // Pi caps + coupling = original self admittance m1 = cg + cc.
        const double expected = net.totalGroundCapOf(w) + cc;
        EXPECT_NEAR(reduced.nets[w].pi.totalCap() + cc, expected,
                    expected * 1e-6);
    }
    // Coupling entries preserve pair totals.
    for (const auto& cp : reduced.couplings) {
        EXPECT_NEAR(cp.nearCap + cp.farCap,
                    net.couplingCapBetween(cp.netA, cp.netB),
                    1e-24);
    }
}

// Golden-vs-reduced comparison circuit: aggressor driven by a Thevenin
// ramp, victim held by a resistor; returns victim driving-point waveform.
wave::Waveform clusterResponse(const RcNetwork& net, bool reduced,
                               bool usePrima, int blocks = 3) {
    spice::Circuit c;
    const auto vicDp = c.node("vic_dp");
    const auto aggDp = c.node("agg_dp");
    const auto aggSrc = c.node("agg_src");
    c.addVSource("vagg", aggSrc, spice::kGround,
                 spice::SourceSpec::pwl(
                     wave::saturatedRamp(0, 1.2, 2e-10, 6e-11, 4e-9)));
    c.addResistor("rth", aggSrc, aggDp, 150.0);
    c.addResistor("rhold", vicDp, spice::kGround, 400.0);

    if (!reduced) {
        const auto ids = net.buildInto(c, "full:");
        c.addResistor("vic_tie", vicDp, ids[net.driverNode(0)], 1e-3);
        c.addResistor("agg_tie", aggDp, ids[net.driverNode(1)], 1e-3);
    } else if (usePrima) {
        const mor::LinearNetwork lin(net);
        const std::vector<int> ports{net.driverNode(0), net.driverNode(1)};
        mor::attachReduced(c, "prima", lin, ports, {vicDp, aggDp}, blocks);
    } else {
        const auto model = mor::reduceCluster(net);
        model.buildInto(c, "pi:", {vicDp, aggDp});
    }
    spice::TranOptions opt;
    opt.tstop = 3e-9;
    const auto res = spice::simulateTransient(c, opt);
    return res.waveform("vic_dp");
}

class ReducedAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(ReducedAccuracy, PiAndPrimaTrackFullModel) {
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 2;
    spec.segments = GetParam();
    spec.netNames = {"vic", "agg"};
    const RcNetwork net = buildParallelBus(spec);

    const auto full = clusterResponse(net, false, false);
    const auto pi = clusterResponse(net, true, false);
    const auto prima = clusterResponse(net, true, true);

    const auto mFull = wave::measureGlitch(full, 0.0);
    const auto mPi = wave::measureGlitch(pi, 0.0);
    const auto mPrima = wave::measureGlitch(prima, 0.0);
    ASSERT_GT(mFull.peak, 0.02);
    // Driving-point reductions track the full model within a few percent.
    EXPECT_NEAR(mPi.peak, mFull.peak, 0.06 * mFull.peak);
    EXPECT_NEAR(mPrima.peak, mFull.peak, 0.04 * mFull.peak);
    EXPECT_NEAR(mPi.area, mFull.area, 0.08 * std::abs(mFull.area));
    EXPECT_NEAR(mPrima.area, mFull.area, 0.05 * std::abs(mFull.area));
}

INSTANTIATE_TEST_SUITE_P(Segments, ReducedAccuracy,
                         ::testing::Values(4, 8, 16, 32));

TEST(Prima, MoreBlocksDoNotDegrade) {
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 2;
    spec.segments = 24;
    spec.netNames = {"vic", "agg"};
    const RcNetwork net = buildParallelBus(spec);
    const auto full = clusterResponse(net, false, false);
    const auto q2 = clusterResponse(net, true, true, 2);
    const auto q5 = clusterResponse(net, true, true, 5);
    const double e2 = wave::rmsDifference(full, q2);
    const double e5 = wave::rmsDifference(full, q5);
    EXPECT_LE(e5, e2 * 1.5 + 1e-6);  // no catastrophic degradation
    EXPECT_LT(e5, 0.01);             // and genuinely accurate
}

TEST(Prima, ReducedModelIsSmall) {
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 3;
    spec.segments = 32;
    const RcNetwork net = buildParallelBus(spec);
    const mor::LinearNetwork lin(net);
    const std::vector<int> ports{net.driverNode(0), net.driverNode(1),
                                 net.driverNode(2)};
    const auto model = mor::primaReduce(lin, ports, 3);
    EXPECT_LE(model.order(), 9);
    EXPECT_EQ(model.ports(), 3);
    EXPECT_GT(lin.size(), 3 * 32);  // full model is much larger
}

TEST(Elmore, MatchesAnalyticLadder) {
    // Uniform ladder: Elmore = sum_k C_k * R_upstream; for total R, C split
    // into N segments this approaches R*C/2 (+ end corrections).
    ic::ParallelBusSpec spec;
    spec.layer = &tech::tech130().layer("M4");
    spec.wires = 1;
    spec.segments = 64;
    const RcNetwork net = buildParallelBus(spec);
    const mor::LinearNetwork lin(net);
    const double r = net.totalResistanceOf(0);
    const double c = net.totalGroundCapOf(0);
    EXPECT_NEAR(lin.elmoreDelay(net, 0), 0.5 * r * c, 0.03 * 0.5 * r * c);
}

}  // namespace

// Tests for timing-window-aware alignment (FRAME-style temporal
// correlation): the windows file loader, window propagation on a
// hand-computed chain, empty-overlap aggressor exclusion and incoming-glitch
// dropping, bit-identity of the no-windows wavefront at threads 1/4 and
// under all-unbounded windows, deterministic multi-driver handling under
// instance permutation, and the alignment-search clamping / tie-break /
// dead-axis fixes.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "charlib/char_cache.hpp"
#include "charlib/characterize.hpp"
#include "core/alignment.hpp"
#include "core/design_index.hpp"
#include "core/propagate.hpp"
#include "core/sna.hpp"
#include "parser/windows_parser.hpp"
#include "util/error.hpp"

namespace {

using namespace sna;

constexpr double kInf = std::numeric_limits<double>::infinity();

void addInst(core::Design& d, const std::string& name,
             const std::string& cell,
             std::map<std::string, std::string> pins) {
    core::Instance i;
    i.name = name;
    i.cellName = cell;
    i.pinToNet = std::move(pins);
    d.addInstance(std::move(i));
}

std::string emptySpefHeader(const std::string& design) {
    return "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"" + design +
           "\"\n*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n";
}

// ---------------------------------------------------------------- parser

TEST(WindowsParser, UnitsBoundsAndDefaults) {
    const auto w = parser::parseTimingWindows(
        "# comment line\n"
        "// also a comment\n"
        "*T_UNIT 1 PS\n"
        "n1 100 200\n"
        "n2 * 500\n"
        "n3 -50 *\n");
    ASSERT_EQ(w.size(), 3u);
    EXPECT_DOUBLE_EQ(w.of("n1").earliest, 100e-12);
    EXPECT_DOUBLE_EQ(w.of("n1").latest, 200e-12);
    EXPECT_EQ(w.of("n2").earliest, -kInf);
    EXPECT_DOUBLE_EQ(w.of("n2").latest, 500e-12);
    EXPECT_DOUBLE_EQ(w.of("n3").earliest, -50e-12);
    EXPECT_EQ(w.of("n3").latest, kInf);
    // Unlisted nets fall back to the unbounded default.
    EXPECT_EQ(w.find("other"), nullptr);
    EXPECT_EQ(w.of("other"), core::TimingWindow::unbounded());

    // Default unit is seconds.
    const auto s = parser::parseTimingWindows("a 1e-9 2e-9\n");
    EXPECT_DOUBLE_EQ(s.of("a").earliest, 1e-9);
    EXPECT_DOUBLE_EQ(s.of("a").latest, 2e-9);
}

TEST(WindowsParser, MalformedInputsThrowWithLineNumbers) {
    EXPECT_THROW(parser::parseTimingWindows("n1 200 100\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("n1 1 2\nn1 3 4\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("n1 xyz 100\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("n1 100\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("*T_UNIT 1 LIGHTYEARS\nn1 1 2\n"),
                 ParseError);
    try {
        parser::parseTimingWindows("# ok\nn1 200 100\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_NE(std::string(e.what()).find("inverted"), std::string::npos);
    }
}

TEST(WindowsParser, NonFiniteBoundsRejected) {
    // strtod accepts "nan"/"inf" spellings; a NaN bound silently defeats
    // every overlap test and an explicit infinity is '*''s job — both are
    // malformed here, with the offending token named.
    EXPECT_THROW(parser::parseTimingWindows("n1 nan 100\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("n1 0 NaN\n"), ParseError);
    EXPECT_THROW(parser::parseTimingWindows("n1 -inf 100\n"), ParseError);
    try {
        parser::parseTimingWindows("n1 0 inf\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 1);
        EXPECT_NE(std::string(e.what()).find("'inf'"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
    }
    // The wildcard stays the supported unbounded spelling.
    const auto w = parser::parseTimingWindows("n1 * 100\nn2 50 *\n");
    EXPECT_TRUE(std::isinf(w.find("n1")->earliest));
    EXPECT_TRUE(std::isinf(w.find("n2")->latest));
}

TEST(WindowsOps, IntervalAlgebra) {
    const core::TimingWindow a{1e-9, 3e-9};
    const core::TimingWindow b{2e-9, 5e-9};
    const core::TimingWindow c{4e-9, 6e-9};
    EXPECT_EQ(a.intersect(b), (core::TimingWindow{2e-9, 3e-9}));
    EXPECT_TRUE(a.intersect(c).empty());
    EXPECT_EQ(a.unite(c), (core::TimingWindow{1e-9, 6e-9}));
    EXPECT_EQ(a.shifted(10e-12, 50e-12),
              (core::TimingWindow{1.01e-9, 3.05e-9}));
    EXPECT_FALSE(core::TimingWindow::unbounded().bounded());
    EXPECT_FALSE(core::TimingWindow::unbounded().empty());
    // Infinite bounds survive shifting untouched.
    const auto u = core::TimingWindow::unbounded().shifted(1e-12, 2e-12);
    EXPECT_EQ(u, core::TimingWindow::unbounded());
}

// ----------------------------------------------------- window propagation

TEST(WindowPropagation, HandComputedChainAndHull) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    // in -> g1 -> x -> g2 -> y, plus a branch in -> g3 -> w and a
    // reconvergent NAND(y, w) -> v (hull of two shifted fanin windows).
    addInst(design, "g1", "INV_X1", {{"a", "in"}, {"y", "x"}});
    addInst(design, "g2", "INV_X2", {{"a", "x"}, {"y", "y"}});
    addInst(design, "g3", "INV_X4", {{"a", "in"}, {"y", "w"}});
    addInst(design, "g4", "NAND2_X1", {{"a", "y"}, {"b", "w"}, {"y", "v"}});
    const auto spef = parser::parseSpef(emptySpefHeader("wp"));

    core::TimingWindows in;
    in.set("in", {100e-12, 200e-12});
    const core::DesignIndex index(design, spef, &in);
    charlib::CharCache cache;
    const auto windows = core::propagateWindows(index, &cache);

    // Hand-compose the expected shifts from the same Thevenin models the
    // propagation uses: dMin = min direction delay, dMax = max direction
    // delay + slew, at the canonical propagation load.
    const auto stageShift = [&](const std::string& cellName,
                                const std::string& pin) {
        double dMin = kInf;
        double dMax = -kInf;
        for (const bool rising : {false, true}) {
            charlib::TheveninSpec ts;
            ts.cell = &lib.cell(cellName);
            ts.input = pin;
            ts.outputRising = rising;
            ts.loadCap = core::kPropagationLoadCap;
            const auto m = *cache.thevenin(ts);
            dMin = std::min(dMin, m.delay);
            dMax = std::max(dMax, m.delay + m.slew);
        }
        return std::pair<double, double>{dMin, dMax};
    };

    EXPECT_EQ(windows.at("in"), (core::TimingWindow{100e-12, 200e-12}));
    const auto [d1lo, d1hi] = stageShift("INV_X1", "a");
    ASSERT_GT(d1lo, 0.0);
    ASSERT_GT(d1hi, d1lo);
    const core::TimingWindow wx{100e-12 + d1lo, 200e-12 + d1hi};
    EXPECT_EQ(windows.at("x"), wx);

    const auto [d2lo, d2hi] = stageShift("INV_X2", "a");
    const core::TimingWindow wy{wx.earliest + d2lo, wx.latest + d2hi};
    EXPECT_EQ(windows.at("y"), wy);

    const auto [d3lo, d3hi] = stageShift("INV_X4", "a");
    const core::TimingWindow ww{100e-12 + d3lo, 200e-12 + d3hi};
    EXPECT_EQ(windows.at("w"), ww);

    // Reconvergence: the hull of both shifted fanin windows.
    const auto [d4alo, d4ahi] = stageShift("NAND2_X1", "a");
    const auto [d4blo, d4bhi] = stageShift("NAND2_X1", "b");
    const core::TimingWindow va{wy.earliest + d4alo, wy.latest + d4ahi};
    const core::TimingWindow vb{ww.earliest + d4blo, ww.latest + d4bhi};
    EXPECT_EQ(windows.at("v"), va.unite(vb));

    // Windows only widen down a chain (slew widening), and shift later.
    EXPECT_GT(wx.earliest, 100e-12);
    EXPECT_GT(wy.latest - wy.earliest, wx.latest - wx.earliest);

    // Without any explicit window everything stays unbounded and nothing
    // is characterized.
    const core::DesignIndex bare(design, spef);
    charlib::CharCache bareCache;
    const auto unbounded = core::propagateWindows(bare, &bareCache);
    EXPECT_EQ(unbounded.at("v"), core::TimingWindow::unbounded());
    EXPECT_EQ(bareCache.stats().theveninRuns, 0u);
}

// ------------------------------------------------- design-level windows

// Chain of stage nets s0..s{n-1} through INV_X1 drivers; stage i gets
// `aggsAt[i]` dedicated aggressor nets coupled at ccAt[i] fF each (same
// builder as test_propagate).
std::string chainSpef(const std::vector<int>& aggsAt,
                      const std::vector<double>& ccAt) {
    const int n = static_cast<int>(aggsAt.size());
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"chain\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < n; ++i) {
        os << "*D_NET s" << i << " " << (6.5 + aggsAt[i] * ccAt[i]) << "\n";
        os << "*CONN\n*I c" << i << ":y O\n*I c" << (i + 1) << ":a I\n";
        os << "*CAP\n1 c" << i << ":y 2.0\n2 s" << i << ":1 3.0\n";
        os << "3 c" << (i + 1) << ":a 1.5\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << (4 + a) << " s" << i << ":1 g" << i << "_" << a << ":1 "
               << ccAt[i] << "\n";
        }
        os << "*RES\n1 c" << i << ":y s" << i << ":1 60\n";
        os << "2 s" << i << ":1 c" << (i + 1) << ":a 60\n*END\n\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << "*D_NET g" << i << "_" << a << " 6.0\n";
            os << "*CONN\n*I a" << i << "_" << a << ":y O\n*I r" << i << "_"
               << a << ":a I\n";
            os << "*CAP\n1 a" << i << "_" << a << ":y 2.0\n2 g" << i << "_"
               << a << ":1 2.0\n";
            os << "*RES\n1 a" << i << "_" << a << ":y g" << i << "_" << a
               << ":1 40\n2 g" << i << "_" << a << ":1 r" << i << "_" << a
               << ":a 40\n*END\n\n";
        }
    }
    return os.str();
}

void buildChain(core::Design& d, const std::vector<int>& aggsAt) {
    const int n = static_cast<int>(aggsAt.size());
    for (int i = 0; i < n; ++i) {
        const std::string si = "s" + std::to_string(i);
        const std::string prev = i == 0 ? "pin" : "s" + std::to_string(i - 1);
        addInst(d, "c" + std::to_string(i), "INV_X1",
                {{"a", prev}, {"y", si}});
        for (int a = 0; a < aggsAt[i]; ++a) {
            const std::string g =
                "g" + std::to_string(i) + "_" + std::to_string(a);
            addInst(d, "a" + std::to_string(i) + "_" + std::to_string(a),
                    "INV_X4", {{"a", g + "_in"}, {"y", g}});
        }
    }
    addInst(d, "c" + std::to_string(n), "INV_X2",
            {{"a", "s" + std::to_string(n - 1)}, {"y", "chain_out"}});
}

core::DesignNoiseOptions fastPropagateOptions() {
    core::DesignNoiseOptions opt;
    opt.maxAggressors = 3;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    opt.propagate = true;
    return opt;
}

TEST(WindowedDesign, EmptyOverlapAggressorExcludedRecoversMargin) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{3};
    const auto spef = parser::parseSpef(chainSpef(aggs, {35.0}));
    core::Design design(lib);
    buildChain(design, aggs);

    auto opt = fastPropagateOptions();
    charlib::CharCache cache;
    opt.cache = &cache;

    // Unconstrained baseline.
    const auto base = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(base.size(), 1u);
    EXPECT_FALSE(base[0].windows.constrained);

    // Victim sensitive early; one aggressor can only switch late.
    core::TimingWindows w;
    w.set("s0", {0.0, 300e-12});
    w.set("g0_0", {1.5e-9, 2.0e-9});
    opt.windows = &w;
    const auto rep = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(rep.size(), 1u);
    const auto& r = rep[0];
    EXPECT_TRUE(r.windows.constrained);
    EXPECT_EQ(r.windows.window, (core::TimingWindow{0.0, 300e-12}));
    ASSERT_EQ(r.windows.excludedAggressors,
              (std::vector<std::string>{"g0_0"}));
    // The unconstrained margin reproduces the windows-less run bitwise, and
    // silencing one of three aggressors strictly recovers margin.
    EXPECT_EQ(r.windows.unconstrainedMargin, base[0].cluster.margin);
    EXPECT_GT(r.windows.windowedMargin, r.windows.unconstrainedMargin);
    // The governing verdict is the windowed one, and both margins are on
    // the report.
    EXPECT_EQ(r.cluster.margin, r.windows.windowedMargin);
}

TEST(WindowedDesign, DisjointIncomingGlitchDropped) {
    const cell::CellLibrary lib(tech::tech130());
    // Same shape as test_propagate's combined-failure chain: stage 0 leaves
    // a big surviving glitch, stage 1 fails only when it rides along.
    const std::vector<int> aggs{3, 3};
    const auto spef = parser::parseSpef(chainSpef(aggs, {35.0, 12.0}));
    core::Design design(lib);
    buildChain(design, aggs);

    auto opt = fastPropagateOptions();
    charlib::CharCache cache;
    opt.cache = &cache;
    const auto base = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(base.size(), 2u);
    ASSERT_TRUE(base[1].propagated.present);
    ASSERT_TRUE(base[1].cluster.fails);
    ASSERT_FALSE(base[1].propagated.localFails);

    // Stage 0 switches late, stage 1 is sensitive early: the surviving
    // glitch cannot collide with stage 1 and must be dropped there.
    core::TimingWindows w;
    w.set("s0", {1.5e-9, 1.6e-9});
    w.set("s1", {0.0, 300e-12});
    opt.windows = &w;
    const auto rep = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(rep.size(), 2u);
    const auto& s1 = rep[1];
    ASSERT_EQ(s1.net, "s1");
    EXPECT_TRUE(s1.windows.constrained);
    EXPECT_EQ(s1.windows.droppedIncoming,
              (std::vector<std::string>{"s0"}));
    // With the glitch dropped the combined verdict falls back to the local
    // one and the net passes — the pessimism the windows recovered.
    EXPECT_FALSE(s1.propagated.present);
    EXPECT_FALSE(s1.cluster.fails);
    EXPECT_EQ(s1.cluster.margin, s1.propagated.localMargin);
    EXPECT_GT(s1.windows.windowedMargin, s1.windows.unconstrainedMargin);
    EXPECT_EQ(s1.windows.unconstrainedMargin, base[1].cluster.margin);

    // Stage 0 itself keeps its aggressors (their unbounded windows overlap
    // its late window): the windowed run changes nothing there.
    EXPECT_EQ(rep[0].windows.windowedMargin,
              rep[0].windows.unconstrainedMargin);
    EXPECT_TRUE(rep[0].windows.excludedAggressors.empty());
}

TEST(WindowedDesign, NoWindowsBitIdenticalAtThreads14) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{3, 0, 2};
    const auto spef = parser::parseSpef(chainSpef(aggs, {35.0, 0.0, 10.0}));
    core::Design design(lib);
    buildChain(design, aggs);

    auto opt = fastPropagateOptions();
    charlib::CharCache c1;
    opt.cache = &c1;
    opt.threads = 1;
    const auto t1 = core::analyzeDesign(design, spef, opt);

    charlib::CharCache c4;
    opt.cache = &c4;
    opt.threads = 4;
    const auto t4 = core::analyzeDesign(design, spef, opt);

    ASSERT_EQ(t1.size(), t4.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(t1[i].net, t4[i].net);
        EXPECT_EQ(t1[i].cluster.margin, t4[i].cluster.margin);
        EXPECT_EQ(t1[i].cluster.worst.metrics.peak,
                  t4[i].cluster.worst.metrics.peak);
        EXPECT_EQ(t1[i].propagated.localMargin, t4[i].propagated.localMargin);
        EXPECT_FALSE(t1[i].windows.constrained);
    }

    // All-unbounded windows must reproduce the windows-less margins bitwise
    // (the constraints degenerate to the full search range).
    core::TimingWindows unbounded;
    unbounded.set("pin", core::TimingWindow::unbounded());
    auto wopt = opt;
    charlib::CharCache cw;
    wopt.cache = &cw;
    wopt.threads = 1;
    wopt.windows = &unbounded;
    const auto wrep = core::analyzeDesign(design, spef, wopt);
    ASSERT_EQ(wrep.size(), t1.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
        EXPECT_EQ(wrep[i].net, t1[i].net);
        EXPECT_TRUE(wrep[i].windows.constrained);
        EXPECT_EQ(wrep[i].cluster.margin, t1[i].cluster.margin);
        EXPECT_EQ(wrep[i].windows.windowedMargin,
                  wrep[i].windows.unconstrainedMargin);
        EXPECT_TRUE(wrep[i].windows.excludedAggressors.empty());
        EXPECT_TRUE(wrep[i].windows.droppedIncoming.empty());
    }
}

// ----------------------------------------------------------- multi-driver

// 4-net coupled ring (same as test_propagate's regression fixture).
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n*END\n\n";
    }
    return os.str();
}

TEST(MultiDriver, DeterministicWinnerUnderInstancePermutation) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));

    // n0 is driven by both d0 and zz_dup; the lexicographically smallest
    // instance (d0) must win no matter the insertion order, and the loser
    // must be surfaced, not silently dropped.
    const auto build = [&](bool dupFirst) {
        core::Design design(lib);
        const auto dup = [&] {
            addInst(design, "zz_dup", "INV_X4",
                    {{"a", "dup_in"}, {"y", "n0"}});
        };
        if (dupFirst) dup();
        for (int i = 0; i < 4; ++i) {
            const std::string n = std::to_string(i);
            addInst(design, "d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
                    {{"a", "pi" + n}, {"y", "n" + n}});
            addInst(design, "r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
                    {{"a", "n" + n}, {"y", "po" + n}});
        }
        if (!dupFirst) dup();
        return design;
    };

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;

    std::vector<std::vector<core::NetNoiseReport>> runs;
    for (const bool dupFirst : {false, true}) {
        const core::Design design = build(dupFirst);
        const core::DesignIndex index(design, spef);
        ASSERT_NE(index.driverOf("n0"), nullptr);
        EXPECT_EQ(index.driverOf("n0")->name, "d0");
        EXPECT_EQ(index.extraDriversOf("n0"),
                  (std::vector<std::string>{"zz_dup"}));
        EXPECT_TRUE(index.extraDriversOf("n1").empty());
        EXPECT_EQ(design.driverOf("n0")->name, "d0");
        // The level graph uses the same winner: n0's fanin comes through
        // d0, and the levelization is insertion-order independent.
        for (const auto& e : index.faninOf("n0")) {
            EXPECT_EQ(e.inst->name, "d0");
        }
        runs.push_back(core::analyzeDesign(design, spef, opt));
    }
    ASSERT_EQ(runs[0].size(), runs[1].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
        EXPECT_EQ(runs[0][i].net, runs[1][i].net);
        EXPECT_EQ(runs[0][i].cluster.margin, runs[1][i].cluster.margin);
        EXPECT_EQ(runs[0][i].otherDrivers, runs[1][i].otherDrivers);
    }
    // The warning is surfaced per net on the report.
    ASSERT_EQ(runs[0][0].net, "n0");
    EXPECT_EQ(runs[0][0].otherDrivers,
              (std::vector<std::string>{"zz_dup"}));
    EXPECT_TRUE(runs[0][1].otherDrivers.empty());

    // The brute-force reference makes the same deterministic choice.
    const auto ref =
        core::analyzeDesignReference(build(true), spef, opt);
    ASSERT_EQ(ref.size(), runs[0].size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].cluster.margin, runs[0][i].cluster.margin);
        EXPECT_EQ(ref[i].otherDrivers, runs[0][i].otherDrivers);
    }
}

// ------------------------------------------------------ alignment fixes

core::ClusterSpec oneAggressorSpec() {
    core::ClusterSpec spec;
    spec.victim.driverCell = "INV_X1";
    spec.victim.receiverCell = "INV_X2";
    spec.aggressors.push_back({});
    return spec;
}

core::MacromodelOptions fastModel() {
    core::MacromodelOptions m;
    m.loadCurveGrid = 9;
    return m;
}

TEST(Alignment, SlowRampCandidatesClampedNonNegative) {
    // A very slow aggressor ramp: delay + slew exceeds the peak-alignment
    // center, so the unclamped initial guess would sit at t < 0 where the
    // stimulus is truncated and the objective misleading.
    core::ClusterSpec spec = oneAggressorSpec();
    spec.aggressors[0].inputSlew = 1.5e-9;
    const core::ClusterMacromodel model(spec, fastModel());
    const auto& m = model.aggressorModels()[0];
    ASSERT_GT(m.delay + m.slew, 0.35 * spec.tstop)
        << "fixture no longer forces a negative initial time";

    const auto res = core::findWorstAlignment(model);
    ASSERT_EQ(res.aggressorSwitchTimes.size(), 1u);
    EXPECT_GE(res.aggressorSwitchTimes[0], 0.0);
    EXPECT_GE(res.glitchTime, 0.0);
    // Free-candidate guarantee: never worse than the spec's own alignment.
    const double specVal = std::abs(
        model.analyzeAt({spec.aggressors[0].switchTime},
                        spec.victim.glitchTime).metrics.peak);
    EXPECT_GE(std::abs(res.worst.metrics.peak), specVal);
}

TEST(Alignment, SpecCandidateWinsTiesOnDegenerateGrid) {
    // The slow ramp clamps the initial guess to t = 0, and the spec's own
    // switch time is that same instant: the free candidate ties the init
    // candidate exactly (identical times, identical deterministic sim) and
    // must survive as the returned alignment. A zero-width refinement grid
    // then re-probes only the incumbent's time — every probe ties, none may
    // displace it, and consecutive duplicates dedupe to one evaluation per
    // axis per round.
    core::ClusterSpec spec = oneAggressorSpec();
    spec.aggressors[0].inputSlew = 1.5e-9;  // init would be negative
    spec.aggressors[0].switchTime = 0.0;    // == the clamped init time
    const core::ClusterMacromodel model(spec, fastModel());

    core::AlignmentOptions opt;
    opt.window = 0.0;
    const auto res = core::findWorstAlignment(model, opt);
    EXPECT_EQ(res.aggressorSwitchTimes[0], 0.0);
    EXPECT_EQ(res.evaluations, 2 + opt.rounds * 1);

    // The spec candidate also never loses outright: a spec alignment
    // strictly better than every probe is returned verbatim.
    core::ClusterSpec far = oneAggressorSpec();
    far.aggressors[0].switchTime = 1.2e-9;
    const core::ClusterMacromodel farModel(far, fastModel());
    core::AlignmentOptions tiny;
    tiny.window = 1e-12;  // refinement cannot wander off the winner
    const auto farRes = core::findWorstAlignment(farModel, tiny);
    const double specVal = std::abs(
        farModel.analyzeAt({1.2e-9}, far.victim.glitchTime).metrics.peak);
    EXPECT_GE(std::abs(farRes.worst.metrics.peak), specVal);
}

TEST(Alignment, DeadGlitchAxisSkipped) {
    core::ClusterSpec spec = oneAggressorSpec();
    spec.aggressors.push_back({});
    spec.aggressors[1].couplingScale = 0.7;

    // Identical cluster except for the glitch: the glitch-less search must
    // spend strictly fewer evaluations (no dead axis), and the glitch-time
    // spec field must have no influence at all when glitchHeight == 0.
    core::ClusterSpec glitched = spec;
    glitched.victim.glitchHeight = 0.35;
    glitched.victim.glitchWidth = 200e-12;

    const core::ClusterMacromodel quiet(spec, fastModel());
    const core::ClusterMacromodel withGlitch(glitched, fastModel());
    const auto rQuiet = core::findWorstAlignment(quiet);
    const auto rGlitch = core::findWorstAlignment(withGlitch);
    EXPECT_LT(rQuiet.evaluations, rGlitch.evaluations);

    core::ClusterSpec moved = spec;
    moved.victim.glitchTime = 1.3e-9;  // dead knob: height is 0
    const core::ClusterMacromodel movedModel(moved, fastModel());
    const auto rMoved = core::findWorstAlignment(movedModel);
    EXPECT_EQ(rMoved.evaluations, rQuiet.evaluations);
    EXPECT_EQ(rMoved.worst.metrics.peak, rQuiet.worst.metrics.peak);
    EXPECT_EQ(rMoved.aggressorSwitchTimes, rQuiet.aggressorSwitchTimes);
}

TEST(Alignment, WindowConstraintsBoundAndExcludeAxes) {
    core::ClusterSpec spec = oneAggressorSpec();
    const core::ClusterMacromodel model(spec, fastModel());
    const auto& m = model.aggressorModels()[0];

    // Constrained: the OUTPUT transition [t + delay, t + delay + slew] must
    // overlap the window, bounding the input switch time.
    core::AlignmentOptions opt;
    opt.aggressorWindows = {{500e-12, 900e-12}};
    const auto res = core::findWorstAlignment(model, opt);
    const double t = res.aggressorSwitchTimes[0];
    EXPECT_GE(t + m.delay + m.slew, 500e-12);
    EXPECT_LE(t + m.delay, 900e-12);

    const auto free = core::findWorstAlignment(model);
    EXPECT_LE(std::abs(res.worst.metrics.peak),
              std::abs(free.worst.metrics.peak));

    // Excluded: an empty window holds the aggressor quiet entirely.
    core::AlignmentOptions excl;
    excl.aggressorWindows = {{900e-12, 500e-12}};
    const auto quiet = core::findWorstAlignment(model, excl);
    EXPECT_TRUE(std::isinf(quiet.aggressorSwitchTimes[0]));
    EXPECT_LT(std::abs(quiet.worst.metrics.peak),
              0.25 * std::abs(free.worst.metrics.peak));
}

}  // namespace

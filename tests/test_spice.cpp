// Tests for the SPICE engine: MNA assembly, DC Newton, transient accuracy,
// device physics, and KCL invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;
using spice::Circuit;
using spice::SourceSpec;

// ---------------------------------------------------------------- DC basics

TEST(Dc, ResistorDivider) {
    Circuit c;
    const auto vdd = c.node("vdd");
    const auto mid = c.node("mid");
    c.addVSource("v1", vdd, spice::kGround, SourceSpec::dc(3.0));
    c.addResistor("r1", vdd, mid, 1000.0);
    c.addResistor("r2", mid, spice::kGround, 2000.0);
    const auto dc = spice::solveDc(c);
    // gmin (1e-12 S per node) loads the divider by a few nV; that is the
    // accepted SPICE-engine behavior, not an error.
    EXPECT_NEAR(dc.voltage("mid"), 2.0, 1e-7);
    EXPECT_NEAR(dc.voltage("vdd"), 3.0, 1e-12);
    // Source delivers V/(R1+R2) = 1 mA.
    EXPECT_NEAR(dc.sourceCurrent("v1"), 1e-3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
    Circuit c;
    const auto n = c.node("n");
    c.addISource("i1", spice::kGround, n, SourceSpec::dc(2e-3));
    c.addResistor("r1", n, spice::kGround, 500.0);
    const auto dc = spice::solveDc(c);
    EXPECT_NEAR(dc.voltage("n"), 1.0, 1e-9);
}

TEST(Dc, FloatingVSourceUsesBranchEquation) {
    // 3 V across a floating source stacked on a 1 V grounded source.
    Circuit c;
    const auto a = c.node("a");
    const auto b = c.node("b");
    c.addVSource("vbase", a, spice::kGround, SourceSpec::dc(1.0));
    c.addVSource("vstack", b, a, SourceSpec::dc(3.0));
    c.addResistor("rl", b, spice::kGround, 1e4);
    const auto dc = spice::solveDc(c);
    EXPECT_NEAR(dc.voltage("b"), 4.0, 1e-9);
}

TEST(Dc, VcvsAmplifies) {
    Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.addVSource("vin", in, spice::kGround, SourceSpec::dc(0.25));
    c.addVcvs("e1", out, spice::kGround, in, spice::kGround, 4.0);
    c.addResistor("rl", out, spice::kGround, 1e3);
    const auto dc = spice::solveDc(c);
    EXPECT_NEAR(dc.voltage("out"), 1.0, 1e-9);
}

TEST(Dc, LinearVccs) {
    Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.addVSource("vin", in, spice::kGround, SourceSpec::dc(1.0));
    // i = gm*vin pulled out of `out` node through the source into ground.
    c.addVccs("g1", out, spice::kGround, in, spice::kGround, 1e-3);
    c.addResistor("rl", out, spice::kGround, 1e3);
    const auto dc = spice::solveDc(c);
    // KCL: current leaves `out` through the VCCS, resistor pulls it up from
    // ground: v(out) = -gm*vin*R = -1 V.
    EXPECT_NEAR(dc.voltage("out"), -1.0, 1e-9);
}

TEST(Dc, TwoSourcesOnOneNodeIsModelError) {
    Circuit c;
    const auto n = c.node("n");
    c.addVSource("v1", n, spice::kGround, SourceSpec::dc(1.0));
    c.addVSource("v2", n, spice::kGround, SourceSpec::dc(2.0));
    EXPECT_THROW(spice::solveDc(c), ModelError);
}

TEST(Dc, TableVccsPullsNodeToTableRoot) {
    // Table i(vin, vout) = (vout - 0.5) * 1e-3 regardless of vin: a 1 kOhm
    // Norton equivalent pulling the node to 0.5 V.
    std::vector<double> vin{0.0, 1.0};
    std::vector<double> vout{0.0, 1.0};
    std::vector<double> z;
    for (double x : vin) {
        (void)x;
        for (double y : vout) z.push_back((y - 0.5) * 1e-3);
    }
    Circuit c;
    const auto out = c.node("out");
    const auto in = c.node("in");
    c.addVSource("vin", in, spice::kGround, SourceSpec::dc(0.3));
    c.addTableVccs("t1", out, in, la::Grid2d(vin, vout, z));
    const auto dc = spice::solveDc(c);
    EXPECT_NEAR(dc.voltage("out"), 0.5, 1e-6);
}

// ---------------------------------------------------------------- MOSFET

spice::MosModel nmosModel() {
    spice::MosModel m;
    m.type = spice::MosType::Nmos;
    m.vt0 = 0.4;
    m.kp = 200e-6;
    m.lambda = 0.05;
    m.gamma = 0.2;
    m.phi = 0.7;
    return m;
}

spice::MosModel pmosModel() {
    spice::MosModel m = nmosModel();
    m.type = spice::MosType::Pmos;
    m.vt0 = 0.42;
    m.kp = 80e-6;
    return m;
}

TEST(Mosfet, RegionsOfLevel1) {
    const auto m = nmosModel();
    const double beta = m.kp * 2.0;  // W/L = 2
    // Cutoff.
    EXPECT_DOUBLE_EQ(spice::evalLevel1(m, beta, 0.2, 0.5, 0.0).ids, 0.0);
    // Saturation: vds > vgst.
    const auto sat = spice::evalLevel1(m, beta, 1.0, 1.0, 0.0);
    const double vgst = 1.0 - m.vt0;
    EXPECT_NEAR(sat.ids, 0.5 * beta * vgst * vgst * (1 + m.lambda * 1.0), 1e-12);
    EXPECT_GT(sat.gm, 0.0);
    EXPECT_GT(sat.gds, 0.0);
    // Triode: vds < vgst.
    const auto tri = spice::evalLevel1(m, beta, 1.2, 0.1, 0.0);
    EXPECT_NEAR(tri.ids, beta * ((1.2 - m.vt0) - 0.05) * 0.1 * (1 + 0.005),
                1e-12);
}

TEST(Mosfet, ContinuousAcrossTriodeSatBoundary) {
    const auto m = nmosModel();
    const double beta = m.kp;
    const double vgst = 0.6;
    const auto below = spice::evalLevel1(m, beta, vgst + m.vt0, vgst - 1e-9, 0.0);
    const auto above = spice::evalLevel1(m, beta, vgst + m.vt0, vgst + 1e-9, 0.0);
    EXPECT_NEAR(below.ids, above.ids, 1e-9);
    EXPECT_NEAR(below.gm, above.gm, 1e-6);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
    const auto m = nmosModel();
    const auto noBias = spice::evalLevel1(m, m.kp, 0.8, 1.0, 0.0);
    const auto revBias = spice::evalLevel1(m, m.kp, 0.8, 1.0, -0.5);
    EXPECT_GT(noBias.ids, revBias.ids);
    EXPECT_GT(revBias.gmbs, 0.0);
}

class MosfetMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(MosfetMonotonic, IdsIncreasesWithVgsAndVds) {
    const auto m = nmosModel();
    const double vds = GetParam();
    double prev = -1.0;
    for (double vgs = 0.0; vgs <= 1.3; vgs += 0.05) {
        const double ids = spice::evalLevel1(m, m.kp, vgs, vds, 0.0).ids;
        EXPECT_GE(ids, prev - 1e-15);
        prev = ids;
    }
    double prevD = -1.0;
    for (double v = 0.0; v <= 1.3; v += 0.05) {
        const double ids = spice::evalLevel1(m, m.kp, 1.2, v, 0.0).ids;
        EXPECT_GE(ids, prevD - 1e-15);
        prevD = ids;
    }
}

INSTANTIATE_TEST_SUITE_P(VdsSweep, MosfetMonotonic,
                         ::testing::Values(0.05, 0.2, 0.6, 1.0, 1.2));

TEST(Mosfet, LinearizationMatchesFiniteDifference) {
    Circuit c;
    const auto d = c.node("d");
    const auto g = c.node("g");
    const auto s = c.node("s");
    const auto b = c.node("b");
    auto& fet = c.addMosfet("m1", d, g, s, b, nmosModel(), 1e-6, 0.13e-6,
                            /*withParasitics=*/false);
    util::Rng rng(3);
    for (int k = 0; k < 50; ++k) {
        const double vd = rng.uniform(-0.3, 1.5);
        const double vg = rng.uniform(-0.3, 1.5);
        const double vs = rng.uniform(-0.3, 1.5);
        const double vb = rng.uniform(-0.3, 0.0);
        const auto lin = fet.linearize(vd, vg, vs, vb);
        const double h = 1e-7;
        const double dId =
            (fet.linearize(vd + h, vg, vs, vb).id - fet.linearize(vd - h, vg, vs, vb).id) /
            (2 * h);
        const double dIg =
            (fet.linearize(vd, vg + h, vs, vb).id - fet.linearize(vd, vg - h, vs, vb).id) /
            (2 * h);
        const double dIs =
            (fet.linearize(vd, vg, vs + h, vb).id - fet.linearize(vd, vg, vs - h, vb).id) /
            (2 * h);
        // Finite differences straddling a region boundary are allowed to
        // disagree; tolerate a small absolute band.
        EXPECT_NEAR(lin.dVd, dId, 5e-4 + 0.02 * std::abs(dId));
        EXPECT_NEAR(lin.dVg, dIg, 5e-4 + 0.02 * std::abs(dIg));
        EXPECT_NEAR(lin.dVs, dIs, 5e-4 + 0.02 * std::abs(dIs));
    }
}

// Build a CMOS inverter: returns (circuit, in, out nodes).
struct InverterFixture {
    Circuit c;
    spice::NodeId in, out, vdd;
    double supply = 1.2;

    explicit InverterFixture(double wp = 2e-6, double wn = 1e-6) {
        vdd = c.node("vdd");
        in = c.node("in");
        out = c.node("out");
        c.addVSource("vsupply", vdd, spice::kGround, SourceSpec::dc(supply));
        c.addMosfet("mp", out, in, vdd, vdd, pmosModel(), wp, 0.13e-6);
        c.addMosfet("mn", out, in, spice::kGround, spice::kGround, nmosModel(),
                    wn, 0.13e-6);
    }
};

TEST(Dc, InverterRails) {
    InverterFixture f;
    f.c.addVSource("vin", f.in, spice::kGround, SourceSpec::dc(0.0));
    auto dc = spice::solveDc(f.c);
    EXPECT_NEAR(dc.voltage("out"), 1.2, 1e-3);

    InverterFixture g;
    g.c.addVSource("vin", g.in, spice::kGround, SourceSpec::dc(1.2));
    dc = spice::solveDc(g.c);
    EXPECT_NEAR(dc.voltage("out"), 0.0, 1e-3);
}

TEST(Dc, InverterVtcIsMonotonicDecreasing) {
    InverterFixture f;
    auto& vin = f.c.addVSource("vin", f.in, spice::kGround, SourceSpec::dc(0.0));
    double prev = 1e9;
    la::Vector warm;
    for (double v = 0.0; v <= 1.2 + 1e-9; v += 0.05) {
        vin.setSpec(SourceSpec::dc(v));
        const auto dc = spice::solveDc(f.c, {},
                                       warm.empty() ? nullptr : &warm);
        warm = dc.raw();
        const double out = dc.voltage("out");
        EXPECT_LE(out, prev + 1e-6) << "VTC not monotonic at vin=" << v;
        prev = out;
    }
}

TEST(Dc, KclHoldsAtEveryInternalNode) {
    // Property: at DC, the device currents into every free node sum to ~0.
    InverterFixture f;
    f.c.addVSource("vin", f.in, spice::kGround, SourceSpec::dc(0.6));
    const auto dc = spice::solveDc(f.c);
    // Rebuild an eval context equivalent via sourceCurrent: use KCL through
    // the public API: current delivered by supply equals current sunk by
    // the NMOS (out node is internal, so check via the two fets directly).
    const double iSupply = dc.sourceCurrent("vsupply");
    EXPECT_GT(std::abs(iSupply), 1e-9);  // inverter mid-swing draws current
    // Input draws no DC current.
    EXPECT_NEAR(dc.sourceCurrent("vin"), 0.0, 1e-9);
}

// -------------------------------------------------------------- transient

TEST(Tran, RcStepMatchesAnalytic) {
    // R = 1k, C = 1pF driven by a fast ramp step to 1 V: v(t) ~ 1-exp(-t/RC).
    Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    const double r = 1000.0, cap = 1e-12;
    c.addVSource("vin", in, spice::kGround,
                 SourceSpec::pwl(wave::saturatedRamp(0, 1, 1e-11, 1e-12, 1e-8)));
    c.addResistor("r1", in, out, r);
    c.addCapacitor("c1", out, spice::kGround, cap);
    spice::TranOptions opt;
    opt.tstop = 8e-9;
    const auto res = spice::simulateTransient(c, opt);
    const auto& w = res.waveform("out");
    const double t0 = 1.1e-11;  // after the input settles
    for (double t = 2e-10; t < 7e-9; t += 3e-10) {
        const double expected = 1.0 - std::exp(-(t - t0) / (r * cap));
        EXPECT_NEAR(w.value(t), expected, 6e-3) << "t=" << t;
    }
}

TEST(Tran, RcChargeConservation) {
    // Current integral through the resistor equals the final capacitor
    // charge: integrate (vin - vout)/R dt ~= C * vout(tstop).
    Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    const double r = 2000.0, cap = 2e-12;
    c.addVSource("vin", in, spice::kGround,
                 SourceSpec::pwl(wave::saturatedRamp(0, 1, 0, 1e-11, 1e-7)));
    c.addResistor("r1", in, out, r);
    c.addCapacitor("c1", out, spice::kGround, cap);
    spice::TranOptions opt;
    opt.tstop = 5e-8;  // >> RC: fully charged
    const auto res = spice::simulateTransient(c, opt);
    const auto diff = res.waveform("in").minus(res.waveform("out"));
    const double charge = wave::integrate(diff) / r;
    EXPECT_NEAR(charge, cap * res.waveform("out").value(5e-8), cap * 0.02);
}

TEST(Tran, CoupledCapsInjectGlitch) {
    // Classic two-net crosstalk: victim held by a resistor, aggressor steps.
    Circuit c;
    const auto agg = c.node("agg");
    const auto vic = c.node("vic");
    c.addVSource("va", agg, spice::kGround,
                 SourceSpec::pwl(wave::saturatedRamp(0, 1.2, 1e-10, 5e-11, 1e-8)));
    c.addResistor("rhold", vic, spice::kGround, 1000.0);
    c.addCapacitor("cc", agg, vic, 20e-15);
    c.addCapacitor("cg", vic, spice::kGround, 30e-15);
    spice::TranOptions opt;
    opt.tstop = 2e-9;
    const auto res = spice::simulateTransient(c, opt);
    const auto m = wave::measureGlitch(res.waveform("vic"), 0.0);
    EXPECT_GT(m.peak, 0.05);   // a visible upward glitch
    EXPECT_LT(m.peak, 1.2);    // but bounded by the aggressor swing
    // Glitch decays back to the baseline.
    EXPECT_NEAR(res.waveform("vic").value(2e-9), 0.0, 1e-3);
}

TEST(Tran, InverterSwitchesWithDelay) {
    InverterFixture f;
    f.c.addVSource("vin", f.in, spice::kGround,
                   SourceSpec::pwl(wave::saturatedRamp(0, 1.2, 2e-10, 5e-11,
                                                       4e-9)));
    f.c.addCapacitor("cload", f.out, spice::kGround, 10e-15);
    spice::TranOptions opt;
    opt.tstop = 4e-9;
    const auto res = spice::simulateTransient(f.c, opt);
    const auto& out = res.waveform("out");
    EXPECT_NEAR(out.value(0.0), 1.2, 2e-2);
    EXPECT_NEAR(out.value(4e-9), 0.0, 2e-2);
    // Output crosses VDD/2 after the input does (causality / finite delay).
    const double tInCross = 2e-10 + 5e-11 * 0.5;
    double tOutCross = 0.0;
    for (const auto& s : out.samples()) {
        if (s.v < 0.6) {
            tOutCross = s.t;
            break;
        }
    }
    EXPECT_GT(tOutCross, tInCross);
}

TEST(Tran, TrapezoidalBeatsEulerOnEnergy) {
    // LC-free sanity: adaptive trap keeps the RC response within tolerance
    // even with a coarse dtMax (the LTE controller must refine).
    Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    c.addVSource("vin", in, spice::kGround,
                 SourceSpec::pwl(wave::saturatedRamp(0, 1, 0, 1e-11, 1e-7)));
    c.addResistor("r1", in, out, 1e4);
    c.addCapacitor("c1", out, spice::kGround, 1e-12);
    spice::TranOptions opt;
    opt.tstop = 5e-8;
    opt.dtMax = 5e-9;
    const auto res = spice::simulateTransient(c, opt);
    for (double t = 5e-9; t < 5e-8; t += 5e-9) {
        const double expected = 1.0 - std::exp(-t / 1e-8);
        EXPECT_NEAR(res.waveform("out").value(t), expected, 8e-3);
    }
}

TEST(Tran, StatsAreReported) {
    Circuit c;
    const auto n = c.node("n");
    c.addVSource("v", n, spice::kGround, SourceSpec::dc(1.0));
    c.addResistor("r", n, spice::kGround, 1.0);
    spice::TranOptions opt;
    opt.tstop = 1e-9;
    const auto res = spice::simulateTransient(c, opt);
    EXPECT_GT(res.stats().accepted, 10u);
    EXPECT_TRUE(res.has("n"));
    EXPECT_FALSE(res.has("nope"));
    EXPECT_THROW(res.waveform("nope"), LogicError);
}

TEST(Tran, RejectsNonPositiveStop) {
    Circuit c;
    c.addResistor("r", c.node("a"), spice::kGround, 1.0);
    spice::TranOptions opt;
    opt.tstop = 0.0;
    EXPECT_THROW(spice::simulateTransient(c, opt), LogicError);
}

}  // namespace

// Unit and property tests for dense/sparse linear algebra and interpolation.
#include <gtest/gtest.h>

#include <cmath>

#include "la/dense.hpp"
#include "la/interp.hpp"
#include "la/sparse.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace sna;
using la::DenseMatrix;
using la::SparseMatrix;
using la::Vector;

// ----------------------------------------------------------------- dense

TEST(Dense, IdentitySolve) {
    const auto id = DenseMatrix::identity(4);
    const Vector b{1, 2, 3, 4};
    const Vector x = la::solveDense(id, b);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Dense, SolveKnownSystem) {
    DenseMatrix a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    const Vector x = la::solveDense(a, {5, 10});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, PivotingHandlesZeroDiagonal) {
    DenseMatrix a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    const Vector x = la::solveDense(a, {3, 7});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, SingularThrows) {
    DenseMatrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW(la::solveDense(a, {1, 2}), ConvergenceError);
}

TEST(Dense, DeterminantWithPivotSign) {
    DenseMatrix a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    la::DenseLu lu(a);
    EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

class DenseRandomSolve : public ::testing::TestWithParam<int> {};

TEST_P(DenseRandomSolve, ResidualIsTiny) {
    const int n = GetParam();
    util::Rng rng(1000 + n);
    DenseMatrix a(n, n);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) a(r, c) = rng.uniform(-1, 1);
        a(r, r) += n;  // diagonally dominant: well-conditioned
    }
    Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-5, 5);
    const Vector x = la::solveDense(a, b);
    const Vector ax = a.multiply(x);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseRandomSolve,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Dense, MultiplyAndTranspose) {
    DenseMatrix a(2, 3);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(0, 2) = 3;
    a(1, 0) = 4;
    a(1, 1) = 5;
    a(1, 2) = 6;
    const DenseMatrix at = a.transposed();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
    const DenseMatrix aat = a.multiply(at);
    EXPECT_DOUBLE_EQ(aat(0, 0), 14.0);
    EXPECT_DOUBLE_EQ(aat(0, 1), 32.0);
    EXPECT_DOUBLE_EQ(aat(1, 1), 77.0);
}

// ---------------------------------------------------------------- sparse

TEST(Sparse, DuplicateStampsAccumulate) {
    SparseMatrix m(2);
    m.add(0, 0, 1.0);
    m.add(0, 0, 2.0);
    m.add(1, 1, 1.0);
    EXPECT_DOUBLE_EQ(m.toDense()(0, 0), 3.0);
    const auto rows = m.consolidatedRows();
    ASSERT_EQ(rows[0].size(), 1u);
    EXPECT_DOUBLE_EQ(rows[0][0].value, 3.0);
}

TEST(Sparse, SolveMatchesDenseOnLadder) {
    // RC-ladder-like tridiagonal conductance matrix.
    const int n = 50;
    SparseMatrix m(n);
    Vector b(n, 0.0);
    for (int i = 0; i < n; ++i) {
        m.add(i, i, 2.0 + 0.01 * i);
        if (i > 0) {
            m.add(i, i - 1, -1.0);
            m.add(i - 1, i, -1.0);
        }
    }
    b[0] = 1.0;
    const Vector xs = la::SparseLu(m).solve(b);
    const Vector xd = la::solveDense(m.toDense(), b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
}

class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, RandomSparseSystemsAgree) {
    const int n = GetParam();
    util::Rng rng(7 + n);
    SparseMatrix m(n);
    // Random sparse symmetric-pattern system with dominant diagonal; this is
    // the regime MNA matrices live in.
    for (int i = 0; i < n; ++i) m.add(i, i, 4.0 + rng.uniform(0, 1));
    const int extras = 3 * n;
    for (int k = 0; k < extras; ++k) {
        const int r = rng.uniformInt(0, n - 1);
        const int c = rng.uniformInt(0, n - 1);
        if (r == c) continue;
        const double v = rng.uniform(-0.5, 0.5);
        m.add(r, c, v);
        m.add(c, r, v);
    }
    Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = rng.uniform(-1, 1);
    const Vector xs = la::SparseLu(m).solve(b);
    const Vector xd = la::solveDense(m.toDense(), b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-8) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDense,
                         ::testing::Values(2, 5, 10, 20, 40, 80, 160));

TEST(Sparse, MultiplyAgreesWithDense) {
    util::Rng rng(99);
    const int n = 30;
    SparseMatrix m(n);
    for (int k = 0; k < 5 * n; ++k) {
        m.add(rng.uniformInt(0, n - 1), rng.uniformInt(0, n - 1),
              rng.uniform(-1, 1));
    }
    Vector x(n);
    for (int i = 0; i < n; ++i) x[i] = rng.uniform(-1, 1);
    const Vector ys = m.multiply(x);
    const Vector yd = m.toDense().multiply(x);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Sparse, ZeroPivotFallsBackInSolveSparse) {
    // Structurally singular diagonal (a branch-equation-like row).
    SparseMatrix m(2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 1.0);
    EXPECT_THROW(la::SparseLu lu(m), ConvergenceError);
    const Vector x = la::solveSparse(m, {2.0, 5.0});
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Sparse, FactorNnzReportedForBandedSystem) {
    const int n = 20;
    SparseMatrix m(n);
    for (int i = 0; i < n; ++i) {
        m.add(i, i, 2.0);
        if (i > 0) {
            m.add(i, i - 1, -1.0);
            m.add(i - 1, i, -1.0);
        }
    }
    la::SparseLu lu(m);
    // A tridiagonal factor has at most ~3n entries; assert no fill blow-up.
    EXPECT_LE(lu.factorNnz(), static_cast<std::size_t>(4 * n));
}

// ---------------------------------------------------------------- interp

TEST(Grid1d, InterpolatesAndClamps) {
    la::Grid1d g({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(g(0.5), 5.0);
    EXPECT_DOUBLE_EQ(g(1.5), 5.0);
    EXPECT_DOUBLE_EQ(g(-1.0), 0.0);  // clamped
    EXPECT_DOUBLE_EQ(g(3.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(g.derivative(0.25), 10.0);
    EXPECT_DOUBLE_EQ(g.derivative(1.75), -10.0);
}

TEST(Grid2d, ExactOnGridPoints) {
    const std::vector<double> xs{0, 1, 2};
    const std::vector<double> ys{0, 2};
    std::vector<double> z(6);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            z[i * 2 + j] = 3.0 * xs[i] - 1.5 * ys[j] + 0.25;
        }
    }
    la::Grid2d g(xs, ys, z);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_NEAR(g(xs[i], ys[j]), z[i * 2 + j], 1e-12);
        }
    }
}

TEST(Grid2d, ReproducesBilinearFunctionExactly) {
    // f(x,y) = 2 + x - 3y + 0.5xy is bilinear, so interpolation is exact
    // everywhere inside the grid, and the partials match analytically.
    auto f = [](double x, double y) { return 2 + x - 3 * y + 0.5 * x * y; };
    std::vector<double> xs{-1, 0, 2, 3};
    std::vector<double> ys{-2, 1, 4};
    std::vector<double> z;
    for (double x : xs) {
        for (double y : ys) z.push_back(f(x, y));
    }
    la::Grid2d g(xs, ys, z);
    util::Rng rng(5);
    for (int k = 0; k < 200; ++k) {
        const double x = rng.uniform(-1, 3);
        const double y = rng.uniform(-2, 4);
        const auto v = g.eval(x, y);
        EXPECT_NEAR(v.z, f(x, y), 1e-12);
        EXPECT_NEAR(v.dzdx, 1 + 0.5 * y, 1e-12);
        EXPECT_NEAR(v.dzdy, -3 + 0.5 * x, 1e-12);
    }
}

TEST(Grid2d, ClampsOutsideDomain) {
    la::Grid2d g({0, 1}, {0, 1}, {0, 0, 1, 1});  // z = x
    EXPECT_DOUBLE_EQ(g(5.0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(g(-5.0, 0.5), 0.0);
}

TEST(Grid2d, RejectsBadConstruction) {
    EXPECT_THROW(la::Grid2d({0, 1}, {0, 1}, {1, 2, 3}), LogicError);
    EXPECT_THROW(la::Grid2d({1, 0}, {0, 1}, {1, 2, 3, 4}), LogicError);
}

// ----------------------------------------------------------------- norms

TEST(Norms, Basics) {
    EXPECT_DOUBLE_EQ(la::norm2({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(la::normInf({-7, 3}), 7.0);
    EXPECT_DOUBLE_EQ(la::norm2({}), 0.0);
}

}  // namespace

// Tests for the persistent characterization cache and the incremental
// ECO-loop fast path: snacache save/load round trip (warm start replaces
// every characterization run), version-mismatch / truncated-file /
// wrong-technology fall-through to clean recomputation, concurrent load()
// into a cache that workers are characterizing, overflow accounting under
// tiny limits, dirty-cone expansion, and bit-identity of
// analyzeDesignIncremental with a cold full run at several thread counts
// for the flat, propagated, and windowed pipelines.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "charlib/char_cache.hpp"
#include "core/design_index.hpp"
#include "core/incremental.hpp"
#include "core/sna.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sna;

void addInst(core::Design& d, const std::string& name,
             const std::string& cell,
             std::map<std::string, std::string> pins) {
    core::Instance i;
    i.name = name;
    i.cellName = cell;
    i.pinToNet = std::move(pins);
    d.addInstance(std::move(i));
}

// 4-net coupled ring: every net is a victim, two drive strengths, no
// propagation needed — the cheap fixture for the cache tests.
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    return os.str();
}

void buildRingDesign(core::Design& design, int nets) {
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        addInst(design, "d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
                {{"a", "pi" + n}, {"y", "n" + n}});
        addInst(design, "r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
                {{"a", "n" + n}, {"y", "po" + n}});
    }
}

// Chain of stage nets s0..s{n-1} through INV_X1 drivers; stage i gets
// `aggsAt[i]` dedicated aggressor nets coupled at ccAt[i] fF each. Same
// fixture as test_propagate — the incremental tests mutate stage 0 and
// check the cone.
std::string chainSpef(const std::vector<int>& aggsAt,
                      const std::vector<double>& ccAt) {
    const int n = static_cast<int>(aggsAt.size());
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"chain\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < n; ++i) {
        os << "*D_NET s" << i << " " << (6.5 + aggsAt[i] * ccAt[i]) << "\n";
        os << "*CONN\n*I c" << i << ":y O\n*I c" << (i + 1) << ":a I\n";
        os << "*CAP\n1 c" << i << ":y 2.0\n2 s" << i << ":1 3.0\n";
        os << "3 c" << (i + 1) << ":a 1.5\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << (4 + a) << " s" << i << ":1 g" << i << "_" << a << ":1 "
               << ccAt[i] << "\n";
        }
        os << "*RES\n1 c" << i << ":y s" << i << ":1 60\n";
        os << "2 s" << i << ":1 c" << (i + 1) << ":a 60\n*END\n\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << "*D_NET g" << i << "_" << a << " 6.0\n";
            os << "*CONN\n*I a" << i << "_" << a << ":y O\n*I r" << i << "_"
               << a << ":a I\n";
            os << "*CAP\n1 a" << i << "_" << a << ":y 2.0\n2 g" << i << "_"
               << a << ":1 2.0\n";
            os << "*RES\n1 a" << i << "_" << a << ":y g" << i << "_" << a
               << ":1 40\n2 g" << i << "_" << a << ":1 r" << i << "_" << a
               << ":a 40\n*END\n\n";
        }
    }
    return os.str();
}

void buildChain(core::Design& d, const std::vector<int>& aggsAt) {
    const int n = static_cast<int>(aggsAt.size());
    for (int i = 0; i < n; ++i) {
        const std::string si = "s" + std::to_string(i);
        const std::string prev = i == 0 ? "pin" : "s" + std::to_string(i - 1);
        addInst(d, "c" + std::to_string(i), "INV_X1",
                {{"a", prev}, {"y", si}});
        for (int a = 0; a < aggsAt[i]; ++a) {
            const std::string g =
                "g" + std::to_string(i) + "_" + std::to_string(a);
            addInst(d, "a" + std::to_string(i) + "_" + std::to_string(a),
                    "INV_X4", {{"a", g + "_in"}, {"y", g}});
        }
    }
    addInst(d, "c" + std::to_string(n), "INV_X2",
            {{"a", "s" + std::to_string(n - 1)}, {"y", "chain_out"}});
}

core::DesignNoiseOptions cheapOptions() {
    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    return opt;
}

void expectSameReports(const std::vector<core::NetNoiseReport>& a,
                       const std::vector<core::NetNoiseReport>& b,
                       const std::string& label) {
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].net, b[i].net) << label;
        EXPECT_EQ(a[i].aggressorNets, b[i].aggressorNets)
            << label << " " << a[i].net;
        // Bit-identical, not merely close.
        EXPECT_EQ(a[i].cluster.margin, b[i].cluster.margin)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.nrcLimit, b[i].cluster.nrcLimit)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.worst.metrics.peak,
                  b[i].cluster.worst.metrics.peak)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.worst.metrics.width,
                  b[i].cluster.worst.metrics.width)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].cluster.fails, b[i].cluster.fails)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].propagated.present, b[i].propagated.present)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].propagated.fromNet, b[i].propagated.fromNet)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].propagated.height, b[i].propagated.height)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].propagated.localMargin, b[i].propagated.localMargin)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].windows.constrained, b[i].windows.constrained)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].windows.windowedMargin, b[i].windows.windowedMargin)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].windows.unconstrainedMargin,
                  b[i].windows.unconstrainedMargin)
            << label << " " << a[i].net;
        EXPECT_EQ(a[i].windows.excludedAggressors,
                  b[i].windows.excludedAggressors)
            << label << " " << a[i].net;
    }
}

std::string tmpPath(const std::string& name) {
    return testing::TempDir() + name;
}

// ------------------------------------------------------- cache persistence

TEST(CachePersist, SaveLoadRoundTripWarmStartReplacesAllRuns) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);
    auto opt = cheapOptions();

    charlib::CharCache cold;
    opt.cache = &cold;
    const auto reports = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(reports.size(), 4u);
    const auto coldStats = cold.stats();
    EXPECT_GT(coldStats.totalRuns(), 0u);
    EXPECT_EQ(coldStats.totalDiskHits(), 0u);

    const std::string path = tmpPath("sna_roundtrip.snacache");
    const auto saved = cold.save(path);
    ASSERT_TRUE(saved.ok) << saved.error;
    EXPECT_EQ(saved.entries, coldStats.totalRuns());
    EXPECT_EQ(saved.skipped, 0u);

    charlib::CharCache warm;
    const auto loaded = warm.load(path);
    ASSERT_TRUE(loaded.ok) << loaded.error;
    EXPECT_EQ(loaded.entries, saved.entries);

    opt.cache = &warm;
    const auto again = core::analyzeDesign(design, spef, opt);
    const auto warmStats = warm.stats();
    // Every characterization the cold run performed is served from disk.
    EXPECT_EQ(warmStats.totalRuns(), 0u);
    EXPECT_GT(warmStats.totalDiskHits(), 0u);
    expectSameReports(again, reports, "warm");
    std::remove(path.c_str());
}

TEST(CachePersist, VersionMismatchLoadsNothingAndRecomputes) {
    const std::string path = tmpPath("sna_version.snacache");
    {
        std::ofstream os(path);
        os << "snacache v9\n"
           << "entry loadcurve 4 k\nabcd\n"
           << "end 1\n";
    }
    charlib::CharCache cache;
    const auto loaded = cache.load(path);
    EXPECT_FALSE(loaded.ok);
    EXPECT_EQ(loaded.entries, 0u);
    EXPECT_FALSE(loaded.error.empty());

    // The cache is still a perfectly good empty cache.
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);
    auto opt = cheapOptions();
    opt.cache = &cache;
    const auto reports = core::analyzeDesign(design, spef, opt);
    EXPECT_GT(cache.stats().totalRuns(), 0u);
    EXPECT_EQ(cache.stats().totalDiskHits(), 0u);

    charlib::CharCache fresh;
    opt.cache = &fresh;
    expectSameReports(core::analyzeDesign(design, spef, opt), reports,
                      "after bad load");
    std::remove(path.c_str());
}

TEST(CachePersist, TruncatedFileKeepsValidPrefixAndRecomputesRest) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);
    auto opt = cheapOptions();

    charlib::CharCache cold;
    opt.cache = &cold;
    const auto reports = core::analyzeDesign(design, spef, opt);
    const std::string path = tmpPath("sna_truncated.snacache");
    ASSERT_TRUE(cold.save(path).ok);

    // Chop the file mid-way: the valid prefix must load, the tail must be
    // skipped, and the analysis must recompute the difference exactly.
    std::string full;
    {
        std::ifstream is(path);
        std::ostringstream os;
        os << is.rdbuf();
        full = os.str();
    }
    {
        std::ofstream os(path, std::ios::trunc);
        os << full.substr(0, full.size() / 2);
    }
    charlib::CharCache warm;
    const auto loaded = warm.load(path);
    EXPECT_FALSE(loaded.ok);  // no trailer: reported as incomplete
    EXPECT_LT(loaded.entries, cold.stats().totalRuns());

    opt.cache = &warm;
    const auto again = core::analyzeDesign(design, spef, opt);
    const auto warmStats = warm.stats();
    EXPECT_GT(warmStats.totalRuns(), 0u);   // the chopped tail
    EXPECT_GT(warmStats.totalDiskHits(), 0u);  // the surviving prefix
    expectSameReports(again, reports, "truncated");
    std::remove(path.c_str());
}

TEST(CachePersist, WrongTechnologyKeysNeverHit) {
    const auto spef = parser::parseSpef(ringSpef(4));
    auto opt = cheapOptions();

    const std::string path = tmpPath("sna_wrongtech.snacache");
    {
        const cell::CellLibrary lib130(tech::tech130());
        core::Design design(lib130);
        buildRingDesign(design, 4);
        charlib::CharCache cache;
        opt.cache = &cache;
        core::analyzeDesign(design, spef, opt);
        ASSERT_TRUE(cache.save(path).ok);
    }

    // A perturbed supply is a different electrical identity: every key from
    // the file misses and the run re-characterizes everything.
    tech::Technology corner = tech::tech130();
    corner.vdd = 1.08;
    const cell::CellLibrary lib(corner);
    core::Design design(lib);
    buildRingDesign(design, 4);

    charlib::CharCache warm;
    ASSERT_TRUE(warm.load(path).ok);
    opt.cache = &warm;
    core::analyzeDesign(design, spef, opt);
    const auto stats = warm.stats();
    EXPECT_EQ(stats.totalDiskHits(), 0u);
    EXPECT_GT(stats.totalRuns(), 0u);
    std::remove(path.c_str());
}

TEST(CachePersist, ConcurrentLoadIntoWarmCacheKeepsResultsIdentical) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);
    auto opt = cheapOptions();

    charlib::CharCache reference;
    opt.cache = &reference;
    const auto expected = core::analyzeDesign(design, spef, opt);
    const std::string path = tmpPath("sna_concurrent.snacache");
    ASSERT_TRUE(reference.save(path).ok);

    // load() races against four workers characterizing into the same cache;
    // present keys are skipped, so single-flight survives and the margins
    // cannot change.
    charlib::CharCache shared;
    opt.cache = &shared;
    opt.threads = 4;
    std::thread loader([&] {
        for (int i = 0; i < 5; ++i) shared.load(path);
    });
    const auto reports = core::analyzeDesign(design, spef, opt);
    loader.join();
    expectSameReports(reports, expected, "concurrent load");

    // Whatever mixture of disk and computed entries won the race, the work
    // adds up: every request was a run, a memory hit, or a disk hit.
    const auto stats = shared.stats();
    EXPECT_GT(stats.totalRuns() + stats.totalDiskHits(), 0u);
    std::remove(path.c_str());
}

TEST(CachePersist, TinyLimitsCountOverflowAndStayCorrect) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);
    auto opt = cheapOptions();

    charlib::CharCache unbounded;
    opt.cache = &unbounded;
    const auto expected = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(unbounded.stats().totalOverflow(), 0u);

    charlib::CharCache tiny;
    charlib::CharCache::Limits limits;
    limits.loadCurves = 1;
    limits.thevenins = 1;
    limits.nrcs = 1;
    limits.propagations = 1;
    tiny.setLimits(limits);
    EXPECT_EQ(tiny.limits().loadCurves, 1u);
    opt.cache = &tiny;
    const auto reports = core::analyzeDesign(design, spef, opt);
    const auto stats = tiny.stats();
    // Two drive strengths at two levels need more than one entry per table:
    // the bound forces compute-without-store, counted as overflow…
    EXPECT_GT(stats.totalOverflow(), 0u);
    // …and a bounded cache can only lose speed, never accuracy.
    expectSameReports(reports, expected, "tiny limits");

    // A save() of the bounded cache only carries what was stored.
    const std::string path = tmpPath("sna_tiny.snacache");
    const auto saved = tiny.save(path);
    ASSERT_TRUE(saved.ok) << saved.error;
    EXPECT_LE(saved.entries, 4u);
    std::remove(path.c_str());
}

// ------------------------------------------------------------- dirty cone

TEST(DirtyCone, SeedsNeighborsAndDownstreamClosure) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{1, 1, 0};
    const auto spef = parser::parseSpef(chainSpef(aggs, {20.0, 10.0, 0.0}));
    core::Design design(lib);
    buildChain(design, aggs);
    core::DesignIndex index(design, spef);

    // Flat mode: the seed and the clusters that read it as an aggressor.
    std::size_t neighbors = 0;
    const auto flat =
        core::expandDirtyCone(index, {"s0"}, false, &neighbors);
    EXPECT_TRUE(flat.count("s0"));
    EXPECT_TRUE(flat.count("g0_0"));  // coupled neighbor
    EXPECT_FALSE(flat.count("s1"));   // downstream only
    EXPECT_FALSE(flat.count("g1_0"));
    EXPECT_EQ(neighbors, 1u);

    // Wavefront: everything downstream of a re-solved net re-solves too,
    // but coupling dirtiness does not spread from the downstream adds.
    const auto wave = core::expandDirtyCone(index, {"s0"}, true);
    EXPECT_TRUE(wave.count("s0"));
    EXPECT_TRUE(wave.count("g0_0"));
    EXPECT_TRUE(wave.count("s1"));
    EXPECT_TRUE(wave.count("s2"));
    EXPECT_TRUE(wave.count("chain_out"));
    EXPECT_FALSE(wave.count("g1_0"));  // aggressor of a downstream net
    EXPECT_FALSE(wave.count("pin"));   // upstream of the seed

    // A seed the index has never heard of marks nothing extra.
    const auto unknown = core::expandDirtyCone(index, {"no_such"}, true);
    EXPECT_EQ(unknown.size(), 1u);
}

// ----------------------------------------------------------- replaceCell

TEST(ReplaceCell, SwapsPinCompatibleCellsAndRejectsOthers) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    addInst(design, "u1", "INV_X1", {{"a", "in"}, {"y", "out"}});
    addInst(design, "u2", "NAND2_X1",
            {{"a", "in"}, {"b", "in2"}, {"y", "out2"}});

    design.replaceCell("u1", "INV_X2");
    EXPECT_EQ(design.instances()[0].cellName, "INV_X2");
    design.replaceCell("u1", "INV_X2");  // same cell: no-op
    EXPECT_EQ(design.instances()[0].cellName, "INV_X2");

    // Different pin list — the connectivity would dangle.
    EXPECT_THROW(design.replaceCell("u1", "NAND2_X1"), ModelError);
    EXPECT_THROW(design.replaceCell("u2", "INV_X1"), ModelError);
    EXPECT_THROW(design.replaceCell("nope", "INV_X1"), ModelError);
    EXPECT_THROW(design.replaceCell("u1", "NOT_A_CELL"), ModelError);
}

// ------------------------------------------------- incremental re-analysis

// Cold-run + mutate + incremental vs cold-run-on-mutated, at several thread
// counts, for one option set. `lastStats` (optional) receives the
// incremental stats of the last thread count.
void checkIncrementalBitIdentity(const core::DesignNoiseOptions& baseOpt,
                                 bool couplingDelta,
                                 core::IncrementalStats* lastStats = nullptr) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{2, 1, 1, 0};
    const auto spef = parser::parseSpef(chainSpef(aggs, {30.0, 10.0, 8.0, 0.0}));
    const auto spefEco =
        parser::parseSpef(chainSpef(aggs, {18.0, 10.0, 8.0, 0.0}));
    core::IncrementalStats last;

    for (const int threads : {1, 4, 8}) {
        core::Design design(lib);
        buildChain(design, aggs);
        auto opt = baseOpt;
        opt.threads = threads;
        charlib::CharCache cache;
        opt.cache = &cache;

        core::AnalysisSnapshot snapshot;
        opt.snapshot = &snapshot;
        core::analyzeDesign(design, spef, opt);
        ASSERT_TRUE(snapshot.valid) << "threads=" << threads;
        opt.snapshot = nullptr;

        // The ECO: resize the chain-tail driver (s2's receiver and s3's
        // driver — victims s0 and s1 stay clean), and optionally
        // re-extract s0.
        design.replaceCell("c3", "INV_X2");
        core::DesignDelta delta;
        delta.instances.push_back("c3");
        const parser::SpefFile* ecoSpef = &spef;
        if (couplingDelta) {
            delta.nets.push_back("s0");
            ecoSpef = &spefEco;
        }

        core::IncrementalStats stats;
        const auto fast = core::analyzeDesignIncremental(
            design, *ecoSpef, delta, snapshot, opt, &stats);
        const auto full = core::analyzeDesign(design, *ecoSpef, opt);
        expectSameReports(fast, full,
                          "threads=" + std::to_string(threads));

        EXPECT_FALSE(stats.indexRebuilt) << "threads=" << threads;
        EXPECT_GT(stats.dirtyTasks, 0u);
        EXPECT_LT(stats.dirtyTasks, stats.totalTasks)
            << "threads=" << threads;
        if (!couplingDelta) {
            // Stage 0 is upstream of the resized driver: spliced, not
            // re-solved.
            EXPECT_GT(stats.reusedVictimReports, 0u);
        }
        last = stats;
    }
    if (lastStats != nullptr) *lastStats = last;
}

TEST(Incremental, FlatSweepBitIdenticalAcrossThreads) {
    auto opt = cheapOptions();
    opt.propagate = false;
    core::IncrementalStats stats;
    checkIncrementalBitIdentity(opt, false, &stats);
    // Flat mode has no downstream closure: the cone is the pins of the
    // replaced instance plus coupled neighbors.
    EXPECT_LE(stats.dirtyTasks, 5u);
}

TEST(Incremental, WavefrontBitIdenticalAcrossThreads) {
    auto opt = cheapOptions();
    opt.propagate = true;
    core::IncrementalStats stats;
    checkIncrementalBitIdentity(opt, false, &stats);
    EXPECT_GT(stats.scheduler.tasksExecuted, 0u);
    EXPECT_EQ(stats.scheduler.tasksExecuted, stats.dirtyTasks);
}

TEST(Incremental, WavefrontWithCouplingDeltaBitIdentical) {
    auto opt = cheapOptions();
    opt.propagate = true;
    checkIncrementalBitIdentity(opt, true);
}

TEST(Incremental, WindowedWavefrontBitIdentical) {
    core::TimingWindows windows;
    windows.set("g0_0_in", {0.0, 150e-12});
    windows.set("g1_0_in", {50e-12, 400e-12});
    windows.set("pin", {0.0, 100e-12});
    auto opt = cheapOptions();
    opt.propagate = true;
    opt.windows = &windows;
    checkIncrementalBitIdentity(opt, false);
}

TEST(Incremental, ConnectivityChangeFallsBackToFullRunAndRecaptures) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{2, 1};
    const auto spef = parser::parseSpef(chainSpef(aggs, {30.0, 10.0}));
    core::Design design(lib);
    buildChain(design, aggs);
    auto opt = cheapOptions();
    opt.propagate = true;
    charlib::CharCache cache;
    opt.cache = &cache;

    core::AnalysisSnapshot snapshot;
    opt.snapshot = &snapshot;
    core::analyzeDesign(design, spef, opt);
    ASSERT_TRUE(snapshot.valid);
    opt.snapshot = nullptr;

    // A new receiver on s1 is a structural change: the caller flags it and
    // the engine rebuilds instead of splicing.
    addInst(design, "spy", "INV_X1", {{"a", "s1"}, {"y", "spy_out"}});
    core::DesignDelta delta;
    delta.connectivityChanged = true;
    core::IncrementalStats stats;
    const auto fast = core::analyzeDesignIncremental(design, spef, delta,
                                                     snapshot, opt, &stats);
    EXPECT_TRUE(stats.indexRebuilt);
    EXPECT_TRUE(snapshot.valid);
    const auto full = core::analyzeDesign(design, spef, opt);
    expectSameReports(fast, full, "connectivity");

    // Even without the flag, the instance-count check refuses the splice —
    // the snapshot was captured before the spy existed.
    addInst(design, "spy2", "INV_X1", {{"a", "s0"}, {"y", "spy2_out"}});
    core::IncrementalStats stats2;
    const auto fast2 = core::analyzeDesignIncremental(
        design, spef, {}, snapshot, opt, &stats2);
    EXPECT_TRUE(stats2.indexRebuilt);
    expectSameReports(fast2, core::analyzeDesign(design, spef, opt),
                      "stale count");
}

TEST(Incremental, OptionChangeInvalidatesTheSplice) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{1, 1};
    const auto spef = parser::parseSpef(chainSpef(aggs, {20.0, 10.0}));
    core::Design design(lib);
    buildChain(design, aggs);
    auto opt = cheapOptions();
    opt.propagate = true;

    core::AnalysisSnapshot snapshot;
    opt.snapshot = &snapshot;
    core::analyzeDesign(design, spef, opt);
    opt.snapshot = nullptr;

    // Same design, different analysis knob: clean nets would carry verdicts
    // of the old option set, so the engine must run full.
    opt.maxAggressors = 1;
    core::IncrementalStats stats;
    const auto fast = core::analyzeDesignIncremental(design, spef, {},
                                                     snapshot, opt, &stats);
    EXPECT_TRUE(stats.indexRebuilt);
    expectSameReports(fast, core::analyzeDesign(design, spef, opt),
                      "option change");

    // The refreshed snapshot carries the new fingerprint: a following
    // incremental call with the same options splices again.
    core::IncrementalStats stats2;
    design.replaceCell("c0", "INV_X2");
    core::DesignDelta delta;
    delta.instances.push_back("c0");
    core::analyzeDesignIncremental(design, spef, delta, snapshot, opt,
                                   &stats2);
    EXPECT_FALSE(stats2.indexRebuilt);
}

// ------------------------------------------------------ thread resolution

TEST(Threads, ZeroResolvesToHardwareConcurrency) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    const int expected = hw > 0 ? hw : 1;
    EXPECT_EQ(util::resolveThreadCount(0), expected);
    EXPECT_EQ(util::resolveThreadCount(1), 1);
    EXPECT_EQ(util::resolveThreadCount(-3), 1);
    EXPECT_EQ(util::resolveThreadCount(6), 6);
}

TEST(Threads, SchedulerStatsReportResolvedWorkerCount) {
    const cell::CellLibrary lib(tech::tech130());
    const std::vector<int> aggs{1, 1};
    const auto spef = parser::parseSpef(chainSpef(aggs, {20.0, 10.0}));
    core::Design design(lib);
    buildChain(design, aggs);
    auto opt = cheapOptions();
    opt.propagate = true;

    util::SchedulerStats ss;
    opt.schedulerStats = &ss;
    opt.threads = 4;
    core::analyzeDesign(design, spef, opt);
    EXPECT_EQ(ss.workers, 4);

    opt.threads = 1;
    core::analyzeDesign(design, spef, opt);
    EXPECT_EQ(ss.workers, 1);

    opt.threads = 0;
    core::analyzeDesign(design, spef, opt);
    EXPECT_EQ(ss.workers, util::resolveThreadCount(0));
}

}  // namespace

// Sanity tests for the synthetic technology descriptions.
#include <gtest/gtest.h>

#include "tech/tech.hpp"
#include "util/error.hpp"

namespace {

using namespace sna;

TEST(Tech, NodesAreDistinct) {
    const auto& t130 = tech::tech130();
    const auto& t90 = tech::tech90();
    EXPECT_NE(t130.name, t90.name);
    EXPECT_GT(t130.vdd, t90.vdd);
    EXPECT_GT(t130.lmin, t90.lmin);
}

class TechSanity : public ::testing::TestWithParam<const tech::Technology*> {};

TEST_P(TechSanity, DevicePolarityAndStrength) {
    const auto& t = *GetParam();
    EXPECT_EQ(t.nmos.type, spice::MosType::Nmos);
    EXPECT_EQ(t.pmos.type, spice::MosType::Pmos);
    // NMOS is stronger per width than PMOS (mobility ratio).
    EXPECT_GT(t.nmos.kp, t.pmos.kp);
    // Thresholds leave headroom at the nominal supply.
    EXPECT_LT(t.nmos.vt0, 0.5 * t.vdd);
    EXPECT_LT(t.pmos.vt0, 0.5 * t.vdd);
    // PMOS is drawn wider to balance the inverter.
    EXPECT_GT(t.wpUnit, t.wnUnit);
}

TEST_P(TechSanity, LayersArePhysical) {
    const auto& t = *GetParam();
    ASSERT_FALSE(t.layers.empty());
    for (const auto& l : t.layers) {
        EXPECT_GT(l.rPerUm, 0.0);
        EXPECT_GT(l.cgPerUm, 0.0);
        // At minimum spacing the coupling component dominates ground cap
        // (the premise of the paper's crosstalk problem).
        EXPECT_GT(l.ccPerUm, l.cgPerUm);
    }
    EXPECT_NO_THROW(t.layer("M4"));
    EXPECT_THROW(t.layer("M99"), ModelError);
}

TEST_P(TechSanity, M4MatchesPaperScale) {
    // The paper's test case: 500 um of M4. Total parasitics should be in
    // the classic deep-submicron range (tens of ohms to a few hundred,
    // tens of fF).
    const auto& t = *GetParam();
    const auto& m4 = t.layer("M4");
    const double r = m4.rPerUm * 500.0;
    const double cc = m4.ccPerUm * 500.0;
    EXPECT_GT(r, 20.0);
    EXPECT_LT(r, 1000.0);
    EXPECT_GT(cc, 20e-15);
    EXPECT_LT(cc, 200e-15);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, TechSanity,
                         ::testing::ValuesIn(tech::allTechnologies()));

}  // namespace

// Cross-module integration tests: model serialization round-trips, full
// polarity coverage of the noise flow (victim held high, falling
// aggressors, mixed directions — the paper's "aggressors with different
// switching directions and phase alignments"), characterization across the
// whole cell library, and end-to-end engine robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "celllib/library.hpp"
#include "charlib/model_io.hpp"
#include "core/baselines.hpp"
#include "core/report.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/sources.hpp"

namespace {

using namespace sna;

// ------------------------------------------------------------- model io

TEST(ModelIo, LoadCurveRoundTripIsExact) {
    const cell::CellLibrary lib(tech::tech130());
    charlib::LoadCurveSpec spec;
    spec.cell = &lib.cell("NAND2_X1");
    spec.input = "a";
    spec.nVin = 9;
    spec.nVout = 9;
    const auto table = charlib::characterizeLoadCurve(spec);
    const auto text = charlib::saveLoadCurve(table, "nand2 a out-low");
    const auto back = charlib::loadLoadCurve(text);
    ASSERT_EQ(back.xs().size(), table.xs().size());
    for (std::size_t i = 0; i < table.xs().size(); ++i) {
        for (std::size_t j = 0; j < table.ys().size(); ++j) {
            EXPECT_EQ(back.at(i, j), table.at(i, j));  // exact (hex floats)
        }
    }
    EXPECT_NE(text.find("# nand2 a out-low"), std::string::npos);
}

TEST(ModelIo, TheveninRoundTrip) {
    charlib::TheveninModel m;
    m.vStart = 1.2;
    m.vEnd = 0.0;
    m.slew = 37.5e-12;
    m.rth = 1234.5;
    m.delay = 21e-12;
    const auto back = charlib::loadThevenin(charlib::saveThevenin(m));
    EXPECT_EQ(back.vStart, m.vStart);
    EXPECT_EQ(back.vEnd, m.vEnd);
    EXPECT_EQ(back.slew, m.slew);
    EXPECT_EQ(back.rth, m.rth);
    EXPECT_EQ(back.delay, m.delay);
}

TEST(ModelIo, PropagationAndNrcRoundTrip) {
    charlib::PropagationTable p;
    p.outputBaseline = 1.2;
    p.peak = la::Grid2d({0.1, 0.2}, {1e-10, 2e-10}, {0.1, 0.2, 0.3, 0.4});
    p.area = la::Grid2d({0.1, 0.2}, {1e-10, 2e-10}, {1e-12, 2e-12, 3e-12,
                                                     4e-12});
    const auto backP = charlib::loadPropagation(charlib::savePropagation(p));
    EXPECT_EQ(backP.outputBaseline, 1.2);
    EXPECT_EQ(backP.peak.at(1, 1), 0.4);
    EXPECT_EQ(backP.area.at(0, 1), 2e-12);

    const la::Grid1d nrc({1e-10, 2e-10, 4e-10}, {0.9, 0.7, 0.6});
    const auto backN = charlib::loadNrc(charlib::saveNrc(nrc));
    EXPECT_EQ(backN.ys()[2], 0.6);
}

class ModelIoRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelIoRejects, ThrowsParseError) {
    EXPECT_THROW(charlib::loadLoadCurve(GetParam()), ParseError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ModelIoRejects,
    ::testing::Values("", "wrongheader\n", "snamodel v2 loadcurve\n",
                      "snamodel v1 thevenin\n",
                      "snamodel v1 loadcurve\nxaxis 0 1\nyaxis 0 1\nvalues "
                      "1 2 3\n",
                      "snamodel v1 loadcurve\nxaxis 0 zz\n"));

TEST(ModelIo, WaveformCsvRoundTrip) {
    const auto w = wave::triangleGlitch(0.0, 0.5, 1e-10, 2e-10, 1e-9);
    const auto back = charlib::fromCsv(charlib::toCsv(w));
    EXPECT_EQ(back.size(), w.size());
    EXPECT_DOUBLE_EQ(back.value(2e-10), w.value(2e-10));
    EXPECT_THROW(charlib::fromCsv("time,value\n1,2,3\n"), ParseError);
}

// ---------------------------------------------- polarity / direction sweep

struct PolarityCase {
    bool victimHigh;        // output held high (PMOS holds) vs low
    bool aggressorRising;   // aggressor direction
    const char* name;
};

void PrintTo(const PolarityCase& c, std::ostream* os) { *os << c.name; }

class NoisePolarity : public ::testing::TestWithParam<PolarityCase> {};

TEST_P(NoisePolarity, MacromodelTracksGoldenInAllQuadrants) {
    const auto& p = GetParam();
    core::ClusterSpec spec;
    spec.victim.driverCell = "NAND2_X1";
    spec.victim.glitchInput = "a";
    spec.victim.outputLevel = p.victimHigh;
    spec.victim.glitchHeight = 0.6 * 1.2;
    spec.victim.glitchWidth = 250e-12;
    core::AggressorSpec agg;
    agg.driverCell = "INV_X2";
    agg.outputRising = p.aggressorRising;
    spec.aggressors.push_back(agg);
    spec.segments = 10;

    const core::ClusterMacromodel model(spec);
    const auto align = core::findWorstAlignment(model);
    core::ClusterSpec goldenSpec = spec;
    goldenSpec.aggressors[0].switchTime = align.aggressorSwitchTimes[0];
    goldenSpec.victim.glitchTime = align.glitchTime;
    const auto golden = core::simulateGolden(goldenSpec);
    const auto macro_ =
        model.analyzeAt(align.aggressorSwitchTimes, align.glitchTime);

    // Glitch direction: away from the held rail when the disturbances work
    // together (rising aggressor vs low victim, falling vs high).
    if (p.victimHigh == !p.aggressorRising) {
        const double expectedSign = p.victimHigh ? -1.0 : +1.0;
        EXPECT_GT(expectedSign * golden.metrics.peak, 0.1);
    }
    ASSERT_GT(std::abs(golden.metrics.peak), 0.04);
    // 15% band: quadrants where the glitched input engages a series stack
    // (NAND pulldown with the output held high) carry internal-node charge
    // the DC load curve cannot track; the error is conservative
    // (overestimating) there — see bench_accuracy_sweep's discussion.
    EXPECT_NEAR(macro_.metrics.peak, golden.metrics.peak,
                0.15 * std::abs(golden.metrics.peak))
        << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    Quadrants, NoisePolarity,
    ::testing::Values(PolarityCase{false, true, "low_victim_rising_agg"},
                      PolarityCase{false, false, "low_victim_falling_agg"},
                      PolarityCase{true, true, "high_victim_rising_agg"},
                      PolarityCase{true, false, "high_victim_falling_agg"}));

TEST(NoisePolarity, MixedDirectionAggressorsPartiallyCancel) {
    // Two aggressors switching in opposite directions inject opposing
    // noise; the worst case must be no worse than the two-rising case.
    auto makeSpec = [](bool secondRising) {
        core::ClusterSpec spec;
        spec.victim.driverCell = "NAND2_X1";
        spec.victim.glitchInput = "a";
        spec.victim.outputLevel = false;
        spec.victim.glitchHeight = 0.0;
        core::AggressorSpec a1, a2;
        a1.driverCell = a2.driverCell = "INV_X2";
        a1.outputRising = true;
        a2.outputRising = secondRising;
        spec.aggressors = {a1, a2};
        spec.segments = 10;
        return spec;
    };
    const core::ClusterMacromodel same(makeSpec(true));
    const core::ClusterMacromodel mixed(makeSpec(false));
    const std::vector<double> t{0.4e-9, 0.4e-9};
    const auto rSame = same.analyzeAt(t, 0.0);
    const auto rMixed = mixed.analyzeAt(t, 0.0);
    EXPECT_LT(std::abs(rMixed.metrics.peak), std::abs(rSame.metrics.peak));
}

// ---------------------------------------- characterization across library

struct LibraryArc {
    const char* cellName;
    const char* input;
};

void PrintTo(const LibraryArc& a, std::ostream* os) {
    *os << a.cellName << "/" << a.input;
}

class AllCellLoadCurves : public ::testing::TestWithParam<LibraryArc> {};

TEST_P(AllCellLoadCurves, HoldingPointQuietAndRestoringMonotone) {
    const auto& arc = GetParam();
    const cell::CellLibrary lib(tech::tech130());
    charlib::LoadCurveSpec spec;
    spec.cell = &lib.cell(arc.cellName);
    spec.input = arc.input;
    spec.outputLevel = false;
    spec.nVin = 17;
    spec.nVout = 17;
    const auto table = charlib::characterizeLoadCurve(spec);
    const auto hold = spec.cell->holdingVector(false, arc.input);
    const double vinHold = hold.at(arc.input) ? 1.2 : 0.0;
    EXPECT_NEAR(table(vinHold, 0.0), 0.0, 2e-5);
    // Restoring current is monotone in vout at full drive.
    double prev = -1e9;
    for (double v = 0.0; v <= 0.9; v += 0.15) {
        const double i = table(vinHold, v);
        EXPECT_GE(i, prev - 1e-7);
        prev = i;
    }
    // And the holding resistance extraction succeeds.
    EXPECT_GT(charlib::holdingResistance(table, vinHold, 0.0), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Arcs, AllCellLoadCurves,
    ::testing::Values(LibraryArc{"INV_X1", "a"}, LibraryArc{"INV_X4", "a"},
                      LibraryArc{"BUF_X2", "a"}, LibraryArc{"NAND2_X1", "a"},
                      LibraryArc{"NAND2_X1", "b"}, LibraryArc{"NAND2_X2", "a"},
                      LibraryArc{"NAND3_X1", "b"}, LibraryArc{"NOR2_X1", "a"},
                      LibraryArc{"NOR2_X2", "b"}, LibraryArc{"NOR3_X1", "c"},
                      LibraryArc{"AOI21_X1", "c"},
                      LibraryArc{"OAI21_X1", "a"}));

// --------------------------------------------------- engine edge behavior

TEST(EngineRobustness, StepBudgetIsEnforced) {
    spice::Circuit c;
    const auto n = c.node("n");
    c.addVSource("v", n, spice::kGround, spice::SourceSpec::dc(1.0));
    c.addResistor("r", n, spice::kGround, 100.0);
    spice::TranOptions opt;
    opt.tstop = 1e-6;
    opt.dtMax = 1e-15;  // forces > maxSteps steps
    opt.maxSteps = 500;
    EXPECT_THROW(spice::simulateTransient(c, opt), ConvergenceError);
}

TEST(EngineRobustness, BreakpointsAreHitExactly) {
    // A source corner at an awkward time must appear as a sample.
    spice::Circuit c;
    const auto in = c.node("in");
    const auto out = c.node("out");
    const double tCorner = 0.333333e-9;
    c.addVSource("v", in, spice::kGround,
                 spice::SourceSpec::pwl(wave::Waveform(
                     {{0.0, 0.0}, {tCorner, 0.0}, {tCorner + 1e-11, 1.0},
                      {2e-9, 1.0}})));
    c.addResistor("r", in, out, 1e3);
    c.addCapacitor("cl", out, spice::kGround, 1e-13);
    spice::TranOptions opt;
    opt.tstop = 2e-9;
    const auto res = spice::simulateTransient(c, opt);
    bool hit = false;
    for (const auto& s : res.waveform("out").samples()) {
        if (std::abs(s.t - tCorner) < 1e-15) hit = true;
    }
    EXPECT_TRUE(hit);
}

TEST(EngineRobustness, DeterministicAcrossRuns) {
    // Same circuit, two runs: bit-identical waveforms (no hidden state).
    auto run = [] {
        core::ClusterSpec spec;
        spec.victim.driverCell = "INV_X1";
        spec.victim.glitchInput = "a";
        core::AggressorSpec agg;
        spec.aggressors.push_back(agg);
        spec.segments = 6;
        const core::ClusterMacromodel model(spec);
        return model.analyzeAt({0.4e-9}, 0.0).metrics.peak;
    };
    EXPECT_EQ(run(), run());
}

TEST(EngineRobustness, GoldenHandles90nmSupply) {
    core::ClusterSpec spec;
    spec.technology = &tech::tech90();
    spec.victim.driverCell = "NAND2_X1";
    spec.victim.glitchInput = "a";
    spec.victim.glitchHeight = 0.6;
    core::AggressorSpec agg;
    spec.aggressors.push_back(agg);
    spec.segments = 8;
    const auto golden = core::simulateGolden(spec);
    EXPECT_GT(golden.metrics.peak, 0.0);
    EXPECT_LT(golden.metrics.peak, 1.0);  // within the 1.0 V supply
}

}  // namespace

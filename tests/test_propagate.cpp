// Tests for the levelized design graph and the propagated-noise wavefront:
// Kahn levels vs hand-computed, deterministic cycle breaking, bit-identical
// propagate=false regression at several thread counts, a combined-noise
// failure that local-only analysis misses, once-per-(cell, pin, level)
// propagation-table characterization, and the NRC width-grid knob.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <sstream>

#include "charlib/char_cache.hpp"
#include "core/design_index.hpp"
#include "core/propagate.hpp"
#include "core/sna.hpp"

namespace {

using namespace sna;

void addInst(core::Design& d, const std::string& name,
             const std::string& cell,
             std::map<std::string, std::string> pins) {
    core::Instance i;
    i.name = name;
    i.cellName = cell;
    i.pinToNet = std::move(pins);
    d.addInstance(std::move(i));
}

// ------------------------------------------------------------ levelization

TEST(Levelize, DagLevelsMatchHandComputed) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    // in -> g1 -> x -> g2 -> y -> g3 -> z, plus a branch x -> g4 -> w and a
    // reconvergence NAND(y, w) -> v. Hand-computed levels:
    //   in: 0, x: 1, y: 2, w: 2, z: 3, v: 3.
    addInst(design, "g1", "INV_X1", {{"a", "in"}, {"y", "x"}});
    addInst(design, "g2", "INV_X1", {{"a", "x"}, {"y", "y"}});
    addInst(design, "g3", "INV_X1", {{"a", "y"}, {"y", "z"}});
    addInst(design, "g4", "INV_X2", {{"a", "x"}, {"y", "w"}});
    addInst(design, "g5", "NAND2_X1", {{"a", "y"}, {"b", "w"}, {"y", "v"}});
    const auto spef = parser::parseSpef(
        "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"lv\"\n"
        "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n");
    const core::DesignIndex index(design, spef);
    const core::NetLevels& lv = index.levels();

    EXPECT_TRUE(lv.brokenEdges.empty());
    ASSERT_EQ(lv.levels.size(), 4u);
    EXPECT_EQ(lv.levels[0], (std::vector<std::string>{"in"}));
    EXPECT_EQ(lv.levels[1], (std::vector<std::string>{"x"}));
    EXPECT_EQ(lv.levels[2], (std::vector<std::string>{"w", "y"}));
    EXPECT_EQ(lv.levels[3], (std::vector<std::string>{"v", "z"}));
    EXPECT_EQ(lv.levelOf.at("in"), 0);
    EXPECT_EQ(lv.levelOf.at("x"), 1);
    EXPECT_EQ(lv.levelOf.at("w"), 2);
    EXPECT_EQ(lv.levelOf.at("v"), 3);

    // Fanin edges of the reconvergent net, sorted by (fromNet, inst, pin).
    const auto& fanin = index.faninOf("v");
    ASSERT_EQ(fanin.size(), 2u);
    EXPECT_EQ(fanin[0].fromNet, "w");
    EXPECT_EQ(fanin[0].pin, "b");
    EXPECT_EQ(fanin[1].fromNet, "y");
    EXPECT_EQ(fanin[1].pin, "a");
    EXPECT_EQ(index.fanoutOf("x"),
              (std::vector<std::string>{"w", "y"}));
}

TEST(Levelize, CycleBrokenDeterministically) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(
        "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n"
        "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n");

    // A 3-inverter ring: a -> b -> c -> a. Kahn stalls immediately; the
    // break must land on the lexicographically smallest stalled net.
    const auto levelsOf = [&](const std::vector<int>& order) {
        core::Design design(lib);
        const std::vector<std::array<std::string, 3>> gates = {
            {"i1", "a", "b"}, {"i2", "b", "c"}, {"i3", "c", "a"}};
        for (const int k : order) {
            addInst(design, gates[k][0], "INV_X1",
                    {{"a", gates[k][1]}, {"y", gates[k][2]}});
        }
        return core::DesignIndex(design, spef).levels();
    };

    const auto lv = levelsOf({0, 1, 2});
    ASSERT_EQ(lv.levels.size(), 3u);
    EXPECT_EQ(lv.levels[0], (std::vector<std::string>{"a"}));
    EXPECT_EQ(lv.levels[1], (std::vector<std::string>{"b"}));
    EXPECT_EQ(lv.levels[2], (std::vector<std::string>{"c"}));
    ASSERT_EQ(lv.brokenEdges.size(), 1u);
    EXPECT_EQ(lv.brokenEdges[0],
              (std::pair<std::string, std::string>{"c", "a"}));

    // Instance insertion order must not change the break or the levels.
    for (const auto& order :
         {std::vector<int>{2, 1, 0}, {1, 2, 0}, {2, 0, 1}}) {
        const auto perm = levelsOf(order);
        EXPECT_EQ(perm.levels, lv.levels);
        EXPECT_EQ(perm.brokenEdges, lv.brokenEdges);
    }
}

TEST(Levelize, SelectIncomingKeepsTheParetoFront) {
    const cell::CellLibrary lib(tech::tech130());
    core::Design design(lib);
    // NAND3 driver of "out" with inputs on three noisy nets: tall-narrow,
    // middling, and short-wide glitches. None dominates another (the NRC
    // falls with width), so all three must come back for solving.
    addInst(design, "g1", "INV_X1", {{"a", "pa"}, {"y", "na"}});
    addInst(design, "g2", "INV_X1", {{"a", "pb"}, {"y", "nb"}});
    addInst(design, "g3", "INV_X1", {{"a", "pc"}, {"y", "nc"}});
    addInst(design, "g4", "NAND3_X1",
            {{"a", "na"}, {"b", "nb"}, {"c", "nc"}, {"y", "out"}});
    const auto spef = parser::parseSpef(
        "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"sel\"\n"
        "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n");
    const core::DesignIndex index(design, spef);

    std::unordered_map<std::string, core::SurvivingSet> surviving;
    surviving["na"] = {{0.9, 50e-12}};   // tallest
    surviving["nb"] = {{0.3, 900e-12}};  // widest
    surviving["nc"] = {{0.5, 130e-12}};  // between — dominated by neither
    auto picks = core::selectIncoming(index, "out", surviving);
    ASSERT_EQ(picks.size(), 3u);
    // Height-descending (width ascending on a Pareto front).
    EXPECT_EQ(picks[0].fromNet, "na");
    EXPECT_EQ(picks[0].inputPin, "a");
    EXPECT_DOUBLE_EQ(picks[0].height, 0.9);
    EXPECT_EQ(picks[1].fromNet, "nc");
    EXPECT_EQ(picks[2].fromNet, "nb");
    EXPECT_DOUBLE_EQ(picks[2].width, 900e-12);

    // A glitch shorter AND narrower than another is dominated and dropped.
    surviving["nb"] = {{0.2, 40e-12}};
    surviving["nc"] = {{0.5, 30e-12}};
    picks = core::selectIncoming(index, "out", surviving);
    ASSERT_EQ(picks.size(), 1u);
    EXPECT_EQ(picks[0].fromNet, "na");

    // No upstream noise: empty.
    surviving.clear();
    EXPECT_TRUE(core::selectIncoming(index, "out", surviving).empty());
}

TEST(Levelize, MergeSurvivingKeepsNonDominatedFront) {
    core::SurvivingSet set;
    core::mergeSurviving(set, {0.5, 100e-12});
    core::mergeSurviving(set, {0.4, 50e-12});  // dominated: dropped
    ASSERT_EQ(set.size(), 1u);
    core::mergeSurviving(set, {0.3, 300e-12});  // incomparable: kept
    ASSERT_EQ(set.size(), 2u);
    core::mergeSurviving(set, {0.6, 400e-12});  // dominates both: evicts
    ASSERT_EQ(set.size(), 1u);
    EXPECT_DOUBLE_EQ(set[0].height, 0.6);

    // The cap keeps the extremes of an oversized front.
    core::SurvivingSet big;
    for (int i = 0; i < 8; ++i) {
        core::mergeSurviving(
            big, {1.0 - 0.1 * i, (50.0 + 100.0 * i) * 1e-12});
    }
    ASSERT_EQ(big.size(), core::kMaxSurviving);
    EXPECT_DOUBLE_EQ(big.front().height, 1.0);   // tallest kept
    EXPECT_DOUBLE_EQ(big.back().width, 750e-12);  // widest kept
}

// --------------------------------------------------- regression (off path)

// Same 4-net coupled ring as test_design_index's regression.
std::string ringSpef(int nets) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"ring\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < nets; ++i) {
        const int j = (i + 1) % nets;
        const double cc = 6.0 + 2.0 * i;
        os << "*D_NET n" << i << " " << (6.5 + cc) << "\n";
        os << "*CONN\n*I d" << i << ":y O\n*I r" << i << ":a I\n";
        os << "*CAP\n";
        os << "1 d" << i << ":y 2.0\n";
        os << "2 n" << i << ":1 3.0\n";
        os << "3 r" << i << ":a 1.5\n";
        os << "4 n" << i << ":1 n" << j << ":1 " << cc << "\n";
        os << "*RES\n";
        os << "1 d" << i << ":y n" << i << ":1 40\n";
        os << "2 n" << i << ":1 r" << i << ":a 40\n";
        os << "*END\n\n";
    }
    return os.str();
}

void buildRingDesign(core::Design& design, int nets) {
    for (int i = 0; i < nets; ++i) {
        const std::string n = std::to_string(i);
        addInst(design, "d" + n, (i % 2 == 0) ? "INV_X1" : "INV_X2",
                {{"a", "pi" + n}, {"y", "n" + n}});
        addInst(design, "r" + n, (i % 2 == 0) ? "INV_X2" : "INV_X1",
                {{"a", "n" + n}, {"y", "po" + n}});
    }
}

TEST(PropagateOff, BitIdenticalToReferenceAtAnyThreadCount) {
    const cell::CellLibrary lib(tech::tech130());
    const auto spef = parser::parseSpef(ringSpef(4));
    core::Design design(lib);
    buildRingDesign(design, 4);

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 2;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    opt.propagate = false;

    const auto ref = core::analyzeDesignReference(design, spef, opt);
    ASSERT_EQ(ref.size(), 4u);
    for (const int threads : {1, 4}) {
        opt.threads = threads;
        const auto fast = core::analyzeDesign(design, spef, opt);
        ASSERT_EQ(fast.size(), ref.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(fast[i].net, ref[i].net);
            EXPECT_EQ(fast[i].aggressorNets, ref[i].aggressorNets);
            // Bit-identical, not merely close: the cached pipeline must
            // reproduce the brute-force sweep exactly.
            EXPECT_EQ(fast[i].cluster.margin, ref[i].cluster.margin)
                << fast[i].net << " threads=" << threads;
            EXPECT_EQ(fast[i].cluster.nrcLimit, ref[i].cluster.nrcLimit);
            EXPECT_EQ(fast[i].cluster.worst.metrics.peak,
                      ref[i].cluster.worst.metrics.peak);
            EXPECT_EQ(fast[i].cluster.worst.metrics.width,
                      ref[i].cluster.worst.metrics.width);
            EXPECT_EQ(fast[i].cluster.fails, ref[i].cluster.fails);
            // Without propagation the local mirror equals the verdict.
            EXPECT_FALSE(fast[i].propagated.present);
            EXPECT_EQ(fast[i].propagated.localMargin,
                      fast[i].cluster.margin);
        }
    }
}

// --------------------------------------------------------- wavefront (on)

// Chain of stage nets s0..s{n-1} through INV_X1 drivers; stage i gets
// `aggsAt[i]` dedicated aggressor nets coupled at ccAt[i] fF each.
std::string chainSpef(const std::vector<int>& aggsAt,
                      const std::vector<double>& ccAt) {
    const int n = static_cast<int>(aggsAt.size());
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n*DESIGN \"chain\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    for (int i = 0; i < n; ++i) {
        os << "*D_NET s" << i << " " << (6.5 + aggsAt[i] * ccAt[i]) << "\n";
        os << "*CONN\n*I c" << i << ":y O\n*I c" << (i + 1) << ":a I\n";
        os << "*CAP\n1 c" << i << ":y 2.0\n2 s" << i << ":1 3.0\n";
        os << "3 c" << (i + 1) << ":a 1.5\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << (4 + a) << " s" << i << ":1 g" << i << "_" << a << ":1 "
               << ccAt[i] << "\n";
        }
        os << "*RES\n1 c" << i << ":y s" << i << ":1 60\n";
        os << "2 s" << i << ":1 c" << (i + 1) << ":a 60\n*END\n\n";
        for (int a = 0; a < aggsAt[i]; ++a) {
            os << "*D_NET g" << i << "_" << a << " 6.0\n";
            os << "*CONN\n*I a" << i << "_" << a << ":y O\n*I r" << i << "_"
               << a << ":a I\n";
            os << "*CAP\n1 a" << i << "_" << a << ":y 2.0\n2 g" << i << "_"
               << a << ":1 2.0\n";
            os << "*RES\n1 a" << i << "_" << a << ":y g" << i << "_" << a
               << ":1 40\n2 g" << i << "_" << a << ":1 r" << i << "_" << a
               << ":a 40\n*END\n\n";
        }
    }
    return os.str();
}

void buildChain(core::Design& d, const std::vector<int>& aggsAt) {
    const int n = static_cast<int>(aggsAt.size());
    for (int i = 0; i < n; ++i) {
        const std::string si = "s" + std::to_string(i);
        const std::string prev = i == 0 ? "pin" : "s" + std::to_string(i - 1);
        addInst(d, "c" + std::to_string(i), "INV_X1",
                {{"a", prev}, {"y", si}});
        for (int a = 0; a < aggsAt[i]; ++a) {
            const std::string g =
                "g" + std::to_string(i) + "_" + std::to_string(a);
            addInst(d, "a" + std::to_string(i) + "_" + std::to_string(a),
                    "INV_X4", {{"a", g + "_in"}, {"y", g}});
        }
    }
    addInst(d, "c" + std::to_string(n), "INV_X2",
            {{"a", "s" + std::to_string(n - 1)}, {"y", "chain_out"}});
}

TEST(PropagateOn, CombinedNoiseFailureLocalOnlyMisses) {
    const cell::CellLibrary lib(tech::tech130());
    // Stage 0: hammered by three strong aggressors (big surviving glitch,
    // still passing its own NRC). Stage 1: moderate local coupling that
    // passes on its own but fails once stage 0's glitch rides along.
    const std::vector<int> aggs{3, 3};
    const auto spef = parser::parseSpef(chainSpef(aggs, {35.0, 12.0}));
    core::Design design(lib);
    buildChain(design, aggs);

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 3;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    opt.propagate = true;
    charlib::CharCache cache;
    opt.cache = &cache;

    const auto reports = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(reports.size(), 2u);
    const auto& s0 = reports[0];
    const auto& s1 = reports[1];
    ASSERT_EQ(s0.net, "s0");
    ASSERT_EQ(s1.net, "s1");

    // Stage 0 passes and has no upstream noise.
    EXPECT_FALSE(s0.propagated.present);
    EXPECT_FALSE(s0.cluster.fails);

    // Stage 1: local-only passes, combined fails — the verdict the flat
    // per-net sweep misses entirely.
    EXPECT_TRUE(s1.propagated.present);
    EXPECT_EQ(s1.propagated.fromNet, "s0");
    EXPECT_EQ(s1.propagated.inputPin, "a");
    EXPECT_EQ(s1.propagated.height,
              std::abs(s0.cluster.worst.metrics.peak));
    EXPECT_FALSE(s1.propagated.localFails);
    EXPECT_GT(s1.propagated.localMargin, 0.0);
    EXPECT_TRUE(s1.cluster.fails);
    EXPECT_LT(s1.cluster.margin, 0.0);
    EXPECT_LT(s1.cluster.margin, s1.propagated.localMargin);
    // The injected glitch is echoed on the governing cluster report.
    EXPECT_EQ(s1.cluster.glitchInHeight, s1.propagated.height);

    // The wavefront is deterministic at any thread count.
    opt.threads = 4;
    charlib::CharCache cache4;
    opt.cache = &cache4;
    const auto reports4 = core::analyzeDesign(design, spef, opt);
    ASSERT_EQ(reports4.size(), reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(reports4[i].cluster.margin, reports[i].cluster.margin);
        EXPECT_EQ(reports4[i].propagated.localMargin,
                  reports[i].propagated.localMargin);
        EXPECT_EQ(reports4[i].propagated.fromNet,
                  reports[i].propagated.fromNet);
    }
}

TEST(PropagateOn, PassThroughNetsCarryNoiseAndTablesCharacterizeOnce) {
    const cell::CellLibrary lib(tech::tech130());
    // Stage 1 has no coupling: it is not a victim cluster, but stage 0's
    // glitch must still reach stage 2 through the propagation tables.
    const std::vector<int> aggs{3, 0, 2};
    const auto spef = parser::parseSpef(chainSpef(aggs, {35.0, 0.0, 10.0}));
    core::Design design(lib);
    buildChain(design, aggs);

    core::DesignNoiseOptions opt;
    opt.maxAggressors = 3;
    opt.report.searchAlignment = false;
    opt.report.macromodel.loadCurveGrid = 9;
    opt.propagate = true;
    charlib::CharCache cache;
    opt.cache = &cache;

    const auto reports = core::analyzeDesign(design, spef, opt);
    // s0 and s2 are victim clusters (SPEF order); the quiet net s1 gets a
    // propagated-only entry (its receiver is still NRC-checked) appended
    // after them.
    ASSERT_EQ(reports.size(), 3u);
    const auto& s2 = reports[1];
    ASSERT_EQ(s2.net, "s2");
    EXPECT_TRUE(s2.propagated.present);
    EXPECT_EQ(s2.propagated.fromNet, "s1");  // via the pass-through net
    EXPECT_GT(s2.propagated.height, 0.0);
    EXPECT_LT(s2.cluster.margin, s2.propagated.localMargin);

    const auto& s1 = reports[2];
    ASSERT_EQ(s1.net, "s1");
    EXPECT_TRUE(s1.aggressorNets.empty());  // no cluster: NRC check only
    EXPECT_TRUE(s1.propagated.present);
    EXPECT_EQ(s1.propagated.fromNet, "s0");
    EXPECT_GT(s1.cluster.nrcLimit, 0.0);
    // The glitch on s1 (after the driver) is what the receiver sees.
    EXPECT_GT(s1.cluster.worst.metrics.peak, 0.0);
    EXPECT_EQ(s1.propagated.localPeak, 0.0);
    EXPECT_DOUBLE_EQ(s1.propagated.localMargin, s1.cluster.nrcLimit);

    // The only pass-through driver is c1 (INV_X1, pin a), characterized at
    // both holding levels: exactly one table per (cell, pin, level).
    // chain_out is a leaf nothing consumes, so c2's tables are never built.
    const auto stats = cache.stats();
    EXPECT_EQ(stats.propagationRuns, 2u);

    // A second run through the same cache re-characterizes nothing and
    // reproduces the identical verdicts.
    const auto again = core::analyzeDesign(design, spef, opt);
    const auto stats2 = cache.stats();
    EXPECT_EQ(stats2.propagationRuns, stats.propagationRuns);
    EXPECT_GT(stats2.propagationHits, stats.propagationHits);
    ASSERT_EQ(again.size(), reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i) {
        EXPECT_EQ(again[i].cluster.margin, reports[i].cluster.margin);
    }
}

// ------------------------------------------------------------- NRC knob

TEST(NrcGrid, CustomGridChangesProbesStaysNearExact) {
    core::ClusterSpec spec;
    spec.victim.receiverCell = "INV_X2";
    spec.victim.outputLevel = false;

    wave::GlitchMetrics m;
    m.width = 300e-12;  // off both grids' nodes, inside both ranges

    core::NrcOptions defaults;
    core::NrcOptions octave;
    octave.growth = 2.0;
    core::NrcOptions exact;
    exact.interp = core::NrcOptions::Interp::kExact;

    // The knob really changes the probe points.
    EXPECT_GT(defaults.grid().size(), octave.grid().size());
    EXPECT_DOUBLE_EQ(defaults.grid().front(), 20e-12);
    EXPECT_DOUBLE_EQ(octave.grid().front(), 20e-12);

    const double limExact = core::nrcLimitFor(spec, m, nullptr, exact);
    const double limDefault = core::nrcLimitFor(spec, m, nullptr, defaults);
    const double limOctave = core::nrcLimitFor(spec, m, nullptr, octave);
    ASSERT_GT(limExact, 0.0);
    // Half-octave log-width interpolation: ~0.15% bound, allow 1%.
    EXPECT_NEAR(limDefault, limExact, 0.01 * limExact);
    // Octave spacing is coarser but must stay within a few percent.
    EXPECT_NEAR(limOctave, limExact, 0.04 * limExact);

    // Linear-width interpolation on the default grid stays close too.
    core::NrcOptions linear;
    linear.interp = core::NrcOptions::Interp::kLinearWidth;
    const double limLinear = core::nrcLimitFor(spec, m, nullptr, linear);
    EXPECT_NEAR(limLinear, limExact, 0.02 * limExact);

    // The default knobs reproduce the pre-knob canonical grid bitwise.
    const auto grid = defaults.grid();
    std::vector<double> legacy;
    for (double p = 20e-12; p < 2.561e-9; p *= std::sqrt(2.0)) {
        legacy.push_back(p);
    }
    EXPECT_EQ(grid, legacy);
}

}  // namespace

#include "mor/pi_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sna::mor {

std::vector<double> PiModel::admittanceMoments() const {
    return {c1 + c2, -r * c2 * c2, r * r * c2 * c2 * c2};
}

PiModel piFromMoments(const std::vector<double>& moments) {
    if (moments.size() < 3) {
        throw ModelError("Pi synthesis needs three admittance moments");
    }
    const double y1 = moments[0];
    const double y2 = moments[1];
    const double y3 = moments[2];
    if (y1 <= 0.0) {
        throw ModelError("Pi synthesis: y1 must be positive (total cap)");
    }
    // Lumped-network degeneracy: no resistive shielding to represent.
    if (std::abs(y2) < 1e-12 * y1 * y1 || y3 <= 0.0) {
        return {y1, 0.0, 0.0};
    }
    if (y2 >= 0.0) {
        throw ModelError("Pi synthesis: y2 must be negative for RC nets");
    }
    PiModel pi;
    pi.c2 = (y2 * y2) / y3;
    pi.r = -(y3 * y3) / (y2 * y2 * y2);
    pi.c1 = y1 - pi.c2;
    if (pi.c1 < 0.0) {
        // Heavily far-loaded nets can push C1 slightly negative through
        // rounding; clamp tiny violations, reject real ones.
        if (pi.c1 < -0.05 * y1) {
            throw ModelError("Pi synthesis produced negative near cap");
        }
        pi.c1 = 0.0;
    }
    return pi;
}

}  // namespace sna::mor

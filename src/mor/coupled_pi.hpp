// Coupled-Pi reduction of a noise-cluster interconnect.
//
// Our realization of the paper's coupled driving-point macromodel: each net
// collapses to a Pi section that preserves its first three driving-point
// admittance moments (with the other nets' drivers shorted, i.e. held by
// their low-impedance drivers), and each coupled pair keeps its TOTAL
// coupling capacitance (the first transfer moment, preserved exactly),
// split between near and far Pi nodes according to the spatial distribution
// of the coupling along the run (0.5/0.5 for uniform parallel wires).
#pragma once

#include <string>
#include <vector>

#include "interconnect/rc_network.hpp"
#include "mor/pi_model.hpp"
#include "spice/circuit.hpp"

namespace sna::mor {

struct CoupledPiModel {
    struct NetPi {
        std::string netName;
        PiModel pi;
        double elmore = 0.0;  ///< driver->receiver Elmore delay, s
    };
    struct Coupling {
        int netA = 0;
        int netB = 0;
        double nearCap = 0.0;  ///< between the two driving-point nodes
        double farCap = 0.0;   ///< between the two far nodes
    };

    std::vector<NetPi> nets;
    std::vector<Coupling> couplings;

    /// Total node count of the reduced model (2 per net).
    int nodeCount() const { return 2 * static_cast<int>(nets.size()); }

    /// Materialize as R/C devices. `portNodes[i]` is the existing circuit
    /// node of net i's driving point; far nodes are created as
    /// "<prefix><net>:far". Returns the far-node ids (receiver-side probes).
    std::vector<spice::NodeId> buildInto(
        spice::Circuit& c, const std::string& prefix,
        const std::vector<spice::NodeId>& portNodes) const;
};

/// Reduce a cluster: one Pi per wire (other drivers shorted), total
/// coupling preserved. `nearSplit` in [0,1] forces the near-node coupling
/// fraction; negative (default) follows each Pi's own C1/C2 distribution.
CoupledPiModel reduceCluster(const ic::RcNetwork& net, double nearSplit = -1.0);

}  // namespace sna::mor

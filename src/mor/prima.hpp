// PRIMA-style passive reduced-order interconnect macromodel.
//
// Block-Arnoldi Krylov projection of the (G, C) system about a positive
// expansion point s0 (shift needed because pure-RC noise-cluster nets are
// capacitively floating, making G alone singular): V spans the block Krylov
// space of (G + s0 C)^{-1} C with starting block (G + s0 C)^{-1} B. The
// congruence transform Ghat = V^T G V, Chat = V^T C V preserves passivity
// and matches block moments at s0. The higher-fidelity alternative to the
// coupled-Pi model for the A1 ablation, and the engine that also exposes
// receiver-node responses.
#pragma once

#include <vector>

#include "la/dense.hpp"
#include "mor/linear_network.hpp"
#include "spice/device.hpp"

namespace sna::mor {

struct PrimaModel {
    la::DenseMatrix ghat;  ///< q x q
    la::DenseMatrix chat;  ///< q x q
    la::DenseMatrix bhat;  ///< q x p (ports inject currents)

    int order() const { return static_cast<int>(ghat.rows()); }
    int ports() const { return static_cast<int>(bhat.cols()); }
};

/// Reduce with `blocks` Krylov block iterations (order q <= blocks * p after
/// deflation). s0 is the expansion point in rad/s; the default targets the
/// 10 ps - 1 ns glitch scale of deep-submicron noise.
PrimaModel primaReduce(const LinearNetwork& net, const std::vector<int>& ports,
                       int blocks, double s0 = 1e10);

/// Multi-terminal linear device realizing a PrimaModel inside any engine of
/// the library. Adds q reduced-state unknowns plus p port-current unknowns:
///   Ghat xh + Chat xh' - Bhat u = 0,   Bhat^T xh = v(ports),
/// with trapezoidal/BE companions on xh' and the port currents u entering
/// the attachment nodes' KCL.
class ReducedMultiport : public spice::Device {
public:
    ReducedMultiport(std::string name, std::vector<spice::NodeId> portNodes,
                     PrimaModel model);

    std::size_t branchCount() const override;
    std::size_t stateCount() const override;
    void stamp(spice::Stamper& s, const spice::EvalContext& ctx) const override;
    void updateState(const spice::EvalContext& ctx) const override;
    double currentInto(spice::NodeId n, const spice::EvalContext& ctx)
        const override;

    const PrimaModel& model() const { return model_; }

private:
    PrimaModel model_;
};

/// Convenience: reduce and attach in one step. portNodes[i] is the circuit
/// node for network node ports[i].
ReducedMultiport& attachReduced(spice::Circuit& c, const std::string& name,
                                const LinearNetwork& net,
                                const std::vector<int>& ports,
                                const std::vector<spice::NodeId>& portNodes,
                                int blocks, double s0 = 1e10);

}  // namespace sna::mor

// O'Brien–Savarino Pi-model synthesis from driving-point moments.
//
// A Pi section (near cap C1, series R, far cap C2) whose input admittance
// Y(s) = sC1 + sC2 / (1 + sRC2) matches the first three admittance moments
// of the original RC network exactly:
//   y1 = C1 + C2,   y2 = -R C2^2,   y3 = R^2 C2^3.
// This is the per-net piece of the paper's "coupled-S model obtained with
// moment-matching techniques" at the victim/aggressor driving points.
#pragma once

#include <vector>

namespace sna::mor {

struct PiModel {
    double c1 = 0.0;  ///< near (driving-point side) capacitance, F
    double r = 0.0;   ///< series resistance, ohm
    double c2 = 0.0;  ///< far capacitance, F

    /// Total capacitance seen at DC.
    double totalCap() const { return c1 + c2; }

    /// Admittance moments y1..y3 realized by this Pi (for verification).
    std::vector<double> admittanceMoments() const;
};

/// Synthesize from y1..y3 (moments.size() >= 3). Throws sna::ModelError if
/// the moments are not RC-realizable (y1 <= 0, y2 >= 0, or y3 <= 0). A
/// numerically lumped network (|y2| negligible vs y1^2 * 1 ohm) collapses to
/// a capacitor: r = 0, c2 = 0, c1 = y1.
PiModel piFromMoments(const std::vector<double>& moments);

}  // namespace sna::mor

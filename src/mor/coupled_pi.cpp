#include "mor/coupled_pi.hpp"

#include <algorithm>

#include "mor/linear_network.hpp"
#include "util/error.hpp"

namespace sna::mor {

std::vector<spice::NodeId> CoupledPiModel::buildInto(
    spice::Circuit& c, const std::string& prefix,
    const std::vector<spice::NodeId>& portNodes) const {
    SNA_REQUIRE(portNodes.size() == nets.size(),
                "need one driving-point node per reduced net");
    std::vector<spice::NodeId> far(nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) {
        const auto& n = nets[i];
        const std::string base = prefix + n.netName;
        if (n.pi.r > 0.0 && n.pi.c2 > 0.0) {
            far[i] = c.node(base + ":far");
            c.addResistor(base + ":rpi", portNodes[i], far[i], n.pi.r);
            c.addCapacitor(base + ":c2", far[i], spice::kGround, n.pi.c2);
        } else {
            far[i] = portNodes[i];  // lumped: no resistive shielding
        }
        if (n.pi.c1 > 0.0) {
            c.addCapacitor(base + ":c1", portNodes[i], spice::kGround,
                           n.pi.c1);
        }
    }
    int k = 0;
    for (const auto& cp : couplings) {
        if (cp.nearCap > 0.0) {
            c.addCapacitor(prefix + "ccn" + std::to_string(++k),
                           portNodes[cp.netA], portNodes[cp.netB], cp.nearCap);
        }
        if (cp.farCap > 0.0) {
            c.addCapacitor(prefix + "ccf" + std::to_string(++k),
                           far[cp.netA], far[cp.netB], cp.farCap);
        }
    }
    return far;
}

CoupledPiModel reduceCluster(const ic::RcNetwork& net, double nearSplit) {
    SNA_REQUIRE(nearSplit < 0.0 || nearSplit <= 1.0,
                "nearSplit must be a fraction or negative for auto");
    SNA_REQUIRE(net.wireCount() >= 1, "cluster needs at least one wire");
    const LinearNetwork lin(net);

    CoupledPiModel out;
    std::vector<double> fracNear(net.wireCount(), 0.5);
    for (int w = 0; w < net.wireCount(); ++w) {
        std::vector<int> shorted;
        for (int o = 0; o < net.wireCount(); ++o) {
            if (o != w) shorted.push_back(net.driverNode(o));
        }
        const auto moments =
            lin.admittanceMoments(net.driverNode(w), shorted, 3);
        CoupledPiModel::NetPi np;
        np.netName = net.wireName(w);
        np.pi = piFromMoments(moments);
        np.elmore = lin.elmoreDelay(net, w);

        // The moments above see coupling caps as grounded (neighbors are
        // shorted); the explicit coupling caps added below would otherwise
        // be counted twice. Remove the coupling image from the Pi caps so
        // that the reduced self-admittance m1 stays exact. The near/far
        // split follows the Pi's own charge distribution (auto mode) — for
        // a uniform line the O'Brien-Savarino Pi lumps ~5/6 of the cap at
        // the far node, and the coupling is distributed the same way.
        const double total = np.pi.totalCap();
        const double frac =
            (nearSplit >= 0.0) ? nearSplit
                               : (total > 0.0 ? np.pi.c1 / total : 0.5);
        fracNear[w] = frac;
        double ccTotal = 0.0;
        for (int o = 0; o < net.wireCount(); ++o) {
            if (o != w) ccTotal += net.couplingCapBetween(w, o);
        }
        double nearCut = frac * ccTotal;
        double farCut = (1.0 - frac) * ccTotal;
        if (np.pi.c2 < farCut) {  // shift the unrepresentable share near
            nearCut += farCut - np.pi.c2;
            farCut = np.pi.c2;
        }
        if (np.pi.c1 + 1e-21 < nearCut) {
            throw ModelError("coupled-Pi reduction: coupling exceeds the "
                             "net capacitance of '" + np.netName + "'");
        }
        np.pi.c1 = std::max(0.0, np.pi.c1 - nearCut);
        np.pi.c2 -= farCut;
        out.nets.push_back(std::move(np));
    }
    for (int a = 0; a < net.wireCount(); ++a) {
        for (int b = a + 1; b < net.wireCount(); ++b) {
            const double cc = net.couplingCapBetween(a, b);
            if (cc <= 0.0) continue;
            CoupledPiModel::Coupling cp;
            cp.netA = a;
            cp.netB = b;
            const double frac = 0.5 * (fracNear[a] + fracNear[b]);
            cp.nearCap = frac * cc;
            cp.farCap = (1.0 - frac) * cc;
            out.couplings.push_back(cp);
        }
    }
    return out;
}

}  // namespace sna::mor

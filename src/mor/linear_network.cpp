#include "mor/linear_network.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "util/error.hpp"

namespace sna::mor {

LinearNetwork::LinearNetwork(const ic::RcNetwork& net)
    : n_(net.nodeCount()), g_(net.nodeCount(), net.nodeCount()),
      c_(net.nodeCount(), net.nodeCount()) {
    for (const auto& r : net.resistors()) {
        const double g = 1.0 / r.ohms;
        g_(r.a, r.a) += g;
        g_(r.b, r.b) += g;
        g_(r.a, r.b) -= g;
        g_(r.b, r.a) -= g;
    }
    for (const auto& cap : net.caps()) {
        c_(cap.a, cap.a) += cap.farads;
        if (cap.b != ic::RcNetwork::kGroundNode) {
            c_(cap.b, cap.b) += cap.farads;
            c_(cap.a, cap.b) -= cap.farads;
            c_(cap.b, cap.a) -= cap.farads;
        }
    }
}

namespace {

// Shared solver for port-excitation moment recursions: F = fixed nodes with
// voltages vF; returns the per-order internal solutions x_0..x_{count-1}.
struct MomentSolution {
    std::vector<int> internalOf;           // node -> internal index or -1
    std::vector<int> internalNodes;        // internal index -> node
    std::vector<la::Vector> x;             // internal solutions per order
};

MomentSolution solveMoments(const la::DenseMatrix& g, const la::DenseMatrix& c,
                            const std::vector<int>& fixedNodes,
                            const std::vector<double>& fixedValues,
                            int count) {
    const int n = static_cast<int>(g.rows());
    MomentSolution sol;
    sol.internalOf.assign(n, -1);
    std::vector<char> isFixed(n, 0);
    for (std::size_t i = 0; i < fixedNodes.size(); ++i) {
        isFixed[fixedNodes[i]] = 1;
    }
    for (int i = 0; i < n; ++i) {
        if (!isFixed[i]) {
            sol.internalOf[i] = static_cast<int>(sol.internalNodes.size());
            sol.internalNodes.push_back(i);
        }
    }
    const int ni = static_cast<int>(sol.internalNodes.size());

    la::DenseMatrix gii(ni, ni);
    for (int a = 0; a < ni; ++a) {
        for (int b = 0; b < ni; ++b) {
            gii(a, b) = g(sol.internalNodes[a], sol.internalNodes[b]);
        }
    }
    std::unique_ptr<la::DenseLu> lu;
    try {
        lu = std::make_unique<la::DenseLu>(gii);
    } catch (const ConvergenceError&) {
        throw ModelError(
            "moment computation: an internal node has no resistive path to "
            "any fixed port (short the other drivers first)");
    }

    // Order 0: G_II x0 = -G_IF vF.
    la::Vector rhs(ni, 0.0);
    for (int a = 0; a < ni; ++a) {
        double acc = 0.0;
        for (std::size_t f = 0; f < fixedNodes.size(); ++f) {
            acc -= g(sol.internalNodes[a], fixedNodes[f]) * fixedValues[f];
        }
        rhs[a] = acc;
    }
    sol.x.push_back(lu->solve(rhs));

    // Higher orders: G_II xk = -C_II x_{k-1} - [k==1] C_IF vF.
    for (int k = 1; k < count; ++k) {
        for (int a = 0; a < ni; ++a) {
            double acc = 0.0;
            for (int b = 0; b < ni; ++b) {
                acc -= c(sol.internalNodes[a], sol.internalNodes[b]) *
                       sol.x[k - 1][b];
            }
            if (k == 1) {
                for (std::size_t f = 0; f < fixedNodes.size(); ++f) {
                    acc -= c(sol.internalNodes[a], fixedNodes[f]) *
                           fixedValues[f];
                }
            }
            rhs[a] = acc;
        }
        sol.x.push_back(lu->solve(rhs));
    }
    return sol;
}

// Current into observation node `obs` (a fixed node) per moment order.
std::vector<double> observeCurrents(const la::DenseMatrix& g,
                                    const la::DenseMatrix& c, int obs,
                                    const std::vector<int>& fixedNodes,
                                    const std::vector<double>& fixedValues,
                                    const MomentSolution& sol, int count) {
    std::vector<double> y(count + 1, 0.0);  // y[0] unused slot for k offset
    for (int k = 0; k <= count; ++k) {
        double acc = 0.0;
        // G row terms at order k (from x_k), C row terms (from x_{k-1}).
        if (k < static_cast<int>(sol.x.size())) {
            for (std::size_t b = 0; b < sol.internalNodes.size(); ++b) {
                acc += g(obs, sol.internalNodes[b]) * sol.x[k][b];
            }
        }
        if (k >= 1) {
            for (std::size_t b = 0; b < sol.internalNodes.size(); ++b) {
                acc += c(obs, sol.internalNodes[b]) * sol.x[k - 1][b];
            }
        }
        if (k == 0) {
            for (std::size_t f = 0; f < fixedNodes.size(); ++f) {
                acc += g(obs, fixedNodes[f]) * fixedValues[f];
            }
        }
        if (k == 1) {
            for (std::size_t f = 0; f < fixedNodes.size(); ++f) {
                acc += c(obs, fixedNodes[f]) * fixedValues[f];
            }
        }
        y[k] = acc;
    }
    return y;
}

}  // namespace

std::vector<double> LinearNetwork::admittanceMoments(
    int port, const std::vector<int>& shortedPorts, int count) const {
    SNA_REQUIRE(port >= 0 && port < n_, "port out of range");
    SNA_REQUIRE(count >= 1, "need at least one moment");
    std::vector<int> fixed{port};
    std::vector<double> values{1.0};
    for (int p : shortedPorts) {
        SNA_REQUIRE(p != port, "port cannot short itself");
        fixed.push_back(p);
        values.push_back(0.0);
    }
    // y_k needs the order-k internal solution for its G-row term.
    const auto sol = solveMoments(g_, c_, fixed, values, count + 1);
    auto y = observeCurrents(g_, c_, port, fixed, values, sol, count);
    // y[0] must vanish for RC nets with no resistive ground path; a nonzero
    // value would mean a resistive leak the reduction cannot represent.
    if (std::abs(y[0]) > 1e-9) {
        throw ModelError("driving-point y0 != 0: net has a resistive path "
                         "to a fixed node; Pi reduction does not apply");
    }
    return {y.begin() + 1, y.end()};  // y_1..y_count
}

std::vector<double> LinearNetwork::transferMoments(int driven, int shorted,
                                                   int count) const {
    SNA_REQUIRE(driven >= 0 && driven < n_ && shorted >= 0 && shorted < n_,
                "port out of range");
    const std::vector<int> fixed{driven, shorted};
    const std::vector<double> values{1.0, 0.0};
    const auto sol = solveMoments(g_, c_, fixed, values, count + 1);
    const auto y =
        observeCurrents(g_, c_, shorted, fixed, values, sol, count);
    return {y.begin() + 1, y.end()};
}

double LinearNetwork::elmoreDelay(const ic::RcNetwork& net, int wire) const {
    // Tree traversal from the driver accumulating upstream resistance.
    const int root = net.driverNode(wire);
    std::vector<double> upstream(net.nodeCount(), -1.0);
    std::vector<std::vector<std::pair<int, double>>> adj(net.nodeCount());
    for (const auto& r : net.resistors()) {
        adj[r.a].push_back({r.b, r.ohms});
        adj[r.b].push_back({r.a, r.ohms});
    }
    std::queue<int> q;
    upstream[root] = 0.0;
    q.push(root);
    while (!q.empty()) {
        const int a = q.front();
        q.pop();
        for (const auto& [b, ohms] : adj[a]) {
            if (upstream[b] >= 0.0) continue;
            upstream[b] = upstream[a] + ohms;
            q.push(b);
        }
    }
    double delay = 0.0;
    for (const auto& cap : net.caps()) {
        // Count the cap at each of its terminals that belongs to this wire
        // (coupling caps load both nets; for Elmore we treat them as ground
        // loads — the standard conservative convention).
        for (const int nd : {cap.a, cap.b}) {
            if (nd == ic::RcNetwork::kGroundNode) continue;
            if (net.wireOfNode(nd) != wire || upstream[nd] < 0.0) continue;
            delay += cap.farads * upstream[nd];
        }
    }
    return delay;
}

}  // namespace sna::mor

#include "mor/prima.hpp"

#include <cmath>

#include "spice/mna.hpp"
#include "util/error.hpp"

namespace sna::mor {

PrimaModel primaReduce(const LinearNetwork& net, const std::vector<int>& ports,
                       int blocks, double s0) {
    SNA_REQUIRE(!ports.empty(), "PRIMA needs at least one port");
    SNA_REQUIRE(blocks >= 1, "PRIMA needs at least one block iteration");
    SNA_REQUIRE(s0 > 0.0, "expansion point must be positive for RC nets");
    const int n = net.size();
    const int p = static_cast<int>(ports.size());

    // A = (G + s0 C), factorized once.
    la::DenseMatrix a(n, n);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            a(r, c) = net.G()(r, c) + s0 * net.C()(r, c);
        }
    }
    la::DenseLu lu(std::move(a));

    // Starting block: A^{-1} B with B = port current injections.
    std::vector<la::Vector> v;  // orthonormal basis columns
    std::vector<la::Vector> block;
    for (int i = 0; i < p; ++i) {
        la::Vector b(n, 0.0);
        b[ports[i]] = 1.0;
        block.push_back(lu.solve(b));
    }

    auto orthonormalize = [&](la::Vector& w) -> bool {
        // Modified Gram-Schmidt with one re-orthogonalization pass.
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto& q : v) {
                double dot = 0.0;
                for (int i = 0; i < n; ++i) dot += q[i] * w[i];
                for (int i = 0; i < n; ++i) w[i] -= dot * q[i];
            }
        }
        const double nrm = la::norm2(w);
        if (nrm < 1e-13) return false;  // deflated direction
        for (int i = 0; i < n; ++i) w[i] /= nrm;
        return true;
    };

    for (int k = 0; k < blocks; ++k) {
        std::vector<la::Vector> next;
        for (auto& w : block) {
            if (orthonormalize(w)) {
                v.push_back(w);
                // Next Krylov direction: A^{-1} C w.
                next.push_back(lu.solve(net.C().multiply(w)));
            }
        }
        if (v.empty()) {
            throw ModelError("PRIMA: starting block fully deflated");
        }
        block = std::move(next);
        if (block.empty()) break;
    }

    const int q = static_cast<int>(v.size());
    PrimaModel m;
    m.ghat = la::DenseMatrix(q, q);
    m.chat = la::DenseMatrix(q, q);
    m.bhat = la::DenseMatrix(q, p);
    // Ghat = V^T G V etc. (dense triple products; q and n are small).
    for (int i = 0; i < q; ++i) {
        const la::Vector gv = net.G().multiply(v[i]);
        const la::Vector cv = net.C().multiply(v[i]);
        for (int j = 0; j < q; ++j) {
            double gg = 0.0, cc = 0.0;
            for (int r = 0; r < n; ++r) {
                gg += v[j][r] * gv[r];
                cc += v[j][r] * cv[r];
            }
            m.ghat(j, i) = gg;
            m.chat(j, i) = cc;
        }
        for (int c = 0; c < p; ++c) {
            m.bhat(i, c) = v[i][ports[c]];
        }
    }
    // Tiny Tikhonov term keeps Ghat regular for capacitively floating nets
    // (their DC null space is pinned by the port constraints, but the DC
    // operating-point solve benefits from a regular diagonal).
    for (int i = 0; i < q; ++i) m.ghat(i, i) += 1e-12;
    return m;
}

// ------------------------------------------------------------ the device

ReducedMultiport::ReducedMultiport(std::string name,
                                   std::vector<spice::NodeId> portNodes,
                                   PrimaModel model)
    : Device(std::move(name), std::move(portNodes)), model_(std::move(model)) {
    SNA_REQUIRE(static_cast<int>(nodes().size()) == model_.ports(),
                "port node count must match the reduced model: " +
                    this->name());
}

std::size_t ReducedMultiport::branchCount() const {
    return static_cast<std::size_t>(model_.order() + model_.ports());
}

std::size_t ReducedMultiport::stateCount() const {
    return static_cast<std::size_t>(2 * model_.order());  // xh and xh'
}

void ReducedMultiport::stamp(spice::Stamper& s,
                             const spice::EvalContext& ctx) const {
    const int q = model_.order();
    const int p = model_.ports();
    const int base = ctx.branchRow(*this);

    // Companion coefficient for xh' and its history contribution.
    double a = 0.0;
    const bool tran = ctx.transient();
    const bool trap = tran && ctx.method() == spice::Integration::Trapezoidal;
    if (tran) a = (trap ? 2.0 : 1.0) / ctx.dt();

    for (int k = 0; k < q; ++k) {
        const int row = base + k;
        for (int j = 0; j < q; ++j) {
            const double coeff = model_.ghat(k, j) + a * model_.chat(k, j);
            if (coeff != 0.0) s.branchPair(row, base + j, coeff);
        }
        for (int i = 0; i < p; ++i) {
            const double b = model_.bhat(k, i);
            if (b != 0.0) s.branchPair(row, base + q + i, -b);
        }
        if (tran) {
            double hist = 0.0;
            for (int j = 0; j < q; ++j) {
                const double xp = ctx.state(*this, static_cast<std::size_t>(j));
                const double xdp =
                    ctx.state(*this, static_cast<std::size_t>(q + j));
                hist += model_.chat(k, j) * (a * xp + (trap ? xdp : 0.0));
            }
            s.branchRhs(row, hist);
        }
    }
    // Port-voltage constraints: Bhat^T xh - v(port) = 0.
    for (int i = 0; i < p; ++i) {
        const int row = base + q + i;
        for (int j = 0; j < q; ++j) {
            const double b = model_.bhat(j, i);
            if (b != 0.0) s.branchPair(row, base + j, b);
        }
        s.branchControl(row, nodes()[i], -1.0);
        // Port current u_i leaves the attachment node into the network.
        s.nodeBranch(nodes()[i], base + q + i, +1.0);
    }
}

void ReducedMultiport::updateState(const spice::EvalContext& ctx) const {
    const int q = model_.order();
    const int base = ctx.branchRow(*this);
    if (!ctx.transient()) {
        for (int j = 0; j < q; ++j) {
            ctx.setState(*this, static_cast<std::size_t>(j),
                         ctx.unknown(base + j));
            ctx.setState(*this, static_cast<std::size_t>(q + j), 0.0);
        }
        return;
    }
    const bool trap = ctx.method() == spice::Integration::Trapezoidal;
    const double inv = 1.0 / ctx.dt();
    for (int j = 0; j < q; ++j) {
        const double xn = ctx.unknown(base + j);
        const double xp = ctx.state(*this, static_cast<std::size_t>(j));
        const double xdp = ctx.state(*this, static_cast<std::size_t>(q + j));
        const double xd =
            trap ? (2.0 * inv * (xn - xp) - xdp) : (inv * (xn - xp));
        ctx.setState(*this, static_cast<std::size_t>(j), xn);
        ctx.setState(*this, static_cast<std::size_t>(q + j), xd);
    }
}

double ReducedMultiport::currentInto(spice::NodeId n,
                                     const spice::EvalContext& ctx) const {
    const int q = model_.order();
    const int base = ctx.branchRow(*this);
    for (int i = 0; i < model_.ports(); ++i) {
        if (nodes()[i] == n) {
            return -ctx.unknown(base + q + i);  // u_i flows into the network
        }
    }
    return 0.0;
}

ReducedMultiport& attachReduced(spice::Circuit& c, const std::string& name,
                                const LinearNetwork& net,
                                const std::vector<int>& ports,
                                const std::vector<spice::NodeId>& portNodes,
                                int blocks, double s0) {
    PrimaModel model = primaReduce(net, ports, blocks, s0);
    // Circuit has no generic emplace for external device types; ownership
    // still lives in the circuit via the add API below.
    return c.addDevice<ReducedMultiport>(name, portNodes, std::move(model));
}

}  // namespace sna::mor

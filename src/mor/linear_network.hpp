// Dense (G, C) view of a coupled RC network and its moments.
//
// The moment-matching machinery of the paper's interconnect reduction ([8]
// in the paper: Forzan et al., CICC'98): driving-point admittance moments
// are computed by recursive DC-like solves against the conductance matrix
// with the ports held at fixed voltages, which is well-posed even for
// floating (capacitively loaded) nets because every internal node has a
// resistive path to a port.
#pragma once

#include <vector>

#include "interconnect/rc_network.hpp"
#include "la/dense.hpp"

namespace sna::mor {

class LinearNetwork {
public:
    explicit LinearNetwork(const ic::RcNetwork& net);

    int size() const { return n_; }
    const la::DenseMatrix& G() const { return g_; }
    const la::DenseMatrix& C() const { return c_; }

    /// Admittance moments y_1..y_count at `port` (y_0 = 0 for RC nets with
    /// no resistive ground path, and is checked): y(s) = sum_k y_k s^k where
    /// y(s) is the current into the port at unit port voltage and all
    /// `shortedPorts` grounded.
    std::vector<double> admittanceMoments(int port,
                                          const std::vector<int>& shortedPorts,
                                          int count) const;

    /// Transfer admittance moments: current into `shorted` observation port
    /// (held at 0) when `driven` port is at unit voltage; t(s) = sum t_k s^k.
    std::vector<double> transferMoments(int driven, int shorted,
                                        int count) const;

    /// Elmore-style delay of the path driver->receiver of a wire when only
    /// that wire is driven (others floating): sum over the wire's nodes of
    /// node-total-cap times upstream resistance. Used by tests and the
    /// Pi-model receiver estimate.
    double elmoreDelay(const ic::RcNetwork& net, int wire) const;

private:
    int n_ = 0;
    la::DenseMatrix g_;
    la::DenseMatrix c_;
};

}  // namespace sna::mor

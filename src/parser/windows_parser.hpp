// Text loader for per-net switching windows (core::TimingWindows).
//
// A deliberately small line format — the piece an STA tool would export:
//
//   // comment (also: # comment); blank lines ignored
//   *T_UNIT 1 PS          optional, SPEF-style; default is seconds
//   <net> <earliest> <latest>
//   <net> * <latest>      '*' leaves that bound unbounded
//
// Times are multiplied by the unit directive. `earliest > latest` and
// duplicate nets are reported as parse errors with line numbers.
#pragma once

#include <string>

#include "core/timing_windows.hpp"

namespace sna::parser {

/// Parse a windows file. Throws sna::ParseError with line numbers.
core::TimingWindows parseTimingWindows(const std::string& text);

}  // namespace sna::parser

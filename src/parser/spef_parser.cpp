#include "parser/spef_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

double SpefNet::sectionCapTotal() const {
    double total = 0.0;
    for (const auto& c : caps) total += c.farads;
    return total;
}

const SpefNet& SpefFile::net(const std::string& name) const {
    const auto it = nets_.find(str::toLower(name));
    if (it == nets_.end()) {
        throw ModelError("SPEF has no net '" + name + "'");
    }
    return it->second;
}

const std::vector<std::string>& SpefFile::aggressorsOf(
    const std::string& name) const {
    net(name);  // ModelError for unknown nets, as before
    static const std::vector<std::string> kEmpty;
    const auto it = coupled_.find(str::toLower(name));
    return it == coupled_.end() ? kEmpty : it->second;
}

void SpefFile::indexCoupling() {
    auto ownerOf = [](const std::string& node) {
        const std::size_t colon = node.find(':');
        return node.substr(0, colon);
    };
    auto pushUnique = [](std::vector<std::string>& v, const std::string& s) {
        if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
    };
    // Coupling caps are listed once, under whichever net the writer chose;
    // index every section so discovery is symmetric. A node whose owner is
    // not a declared net is dangling (lint rule SNA-L103's territory) and
    // names no aggressor.
    coupled_.clear();
    for (const auto& [netName, spefNet] : nets_) {
        for (const auto& cap : spefNet.caps) {
            if (cap.node2.empty()) continue;
            const std::string o1 = ownerOf(cap.node1);
            const std::string o2 = ownerOf(cap.node2);
            if (o1 == o2) continue;
            if (nets_.count(o1) == 0 || nets_.count(o2) == 0) continue;
            pushUnique(coupled_[o1], o2);
            pushUnique(coupled_[o2], o1);
        }
    }
}

void SpefFile::buildInto(spice::Circuit& c) const {
    for (const auto& [name, net] : nets_) {
        int idx = 0;
        for (const auto& r : net.ress) {
            c.addResistor("spef:" + name + ":r" + std::to_string(++idx),
                          c.node(r.node1), c.node(r.node2), r.ohms);
        }
        idx = 0;
        for (const auto& cap : net.caps) {
            const auto n1 = c.node(cap.node1);
            const auto n2 = cap.node2.empty() ? spice::kGround
                                              : c.node(cap.node2);
            c.addCapacitor("spef:" + name + ":c" + std::to_string(++idx), n1,
                           n2, cap.farads);
        }
    }
}

namespace {

double unitScale(const std::vector<std::string_view>& tokens, int line) {
    // "*X_UNIT <mult> <unit>", e.g. "*C_UNIT 1 FF".
    if (tokens.size() != 3) {
        throw ParseError("unit directive needs '<mult> <unit>'", line);
    }
    const auto mult = str::parseSpiceNumber(tokens[1]);
    if (!mult) throw ParseError("bad unit multiplier", line);
    const std::string u = str::toLower(tokens[2]);
    double scale = 1.0;
    if (u == "ff") {
        scale = 1e-15;
    } else if (u == "pf") {
        scale = 1e-12;
    } else if (u == "ps") {
        scale = 1e-12;
    } else if (u == "ns") {
        scale = 1e-9;
    } else if (u == "ohm") {
        scale = 1.0;
    } else if (u == "kohm") {
        scale = 1e3;
    } else {
        throw ParseError("unknown unit '" + u + "'", line);
    }
    return *mult * scale;
}

}  // namespace

SpefFile parseSpef(const std::string& text) {
    SpefFile out;
    double capScale = 1e-15;  // SPEF default conventions
    double resScale = 1.0;

    enum class Section { None, Conn, Cap, Res };
    SpefNet* current = nullptr;
    Section section = Section::None;

    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        const std::size_t comment = raw.find("//");
        if (comment != std::string::npos) raw.resize(comment);
        const std::string line = std::string(str::trim(raw));
        if (line.empty()) continue;
        const auto tokens = str::split(line);
        const std::string head = str::toLower(tokens[0]);

        if (head == "*spef" || head == "*date" || head == "*vendor" ||
            head == "*program" || head == "*version" ||
            head == "*design_flow" || head == "*divider" ||
            head == "*delimiter" || head == "*bus_delimiter" ||
            head == "*l_unit" || head == "*i_unit" || head == "*v_unit") {
            continue;  // tolerated, unused
        }
        if (head == "*design") {
            std::string name = (tokens.size() > 1) ? std::string(tokens[1])
                                                   : "";
            name.erase(std::remove(name.begin(), name.end(), '"'),
                       name.end());
            out.design_ = name;
            continue;
        }
        if (head == "*t_unit") continue;  // times unused in parasitics
        if (head == "*c_unit") {
            capScale = unitScale(tokens, lineNo);
            continue;
        }
        if (head == "*r_unit") {
            resScale = unitScale(tokens, lineNo);
            continue;
        }
        if (head == "*d_net") {
            if (tokens.size() != 3) {
                throw ParseError("*D_NET needs a name and a total cap",
                                 lineNo);
            }
            SpefNet net;
            net.name = str::toLower(tokens[1]);
            const auto total = str::parseSpiceNumber(tokens[2]);
            if (!total) throw ParseError("bad *D_NET total cap", lineNo);
            net.totalCap = *total * capScale;
            auto [it, fresh] = out.nets_.emplace(net.name, std::move(net));
            if (!fresh) {
                throw ParseError("duplicate *D_NET '" + it->first + "'",
                                 lineNo);
            }
            current = &it->second;
            section = Section::None;
            continue;
        }
        if (head == "*conn") {
            section = Section::Conn;
            continue;
        }
        if (head == "*cap") {
            section = Section::Cap;
            continue;
        }
        if (head == "*res") {
            section = Section::Res;
            continue;
        }
        if (head == "*end") {
            current = nullptr;
            section = Section::None;
            continue;
        }
        if (head == "*p" || head == "*i") {
            if (current == nullptr || section != Section::Conn) {
                throw ParseError("connection outside *CONN", lineNo);
            }
            if (tokens.size() < 3) {
                throw ParseError("connection needs a name and direction",
                                 lineNo);
            }
            SpefConn conn;
            conn.kind = (head == "*p") ? SpefConnKind::Port
                                       : SpefConnKind::InternalPin;
            conn.name = str::toLower(tokens[1]);
            conn.direction = static_cast<char>(
                std::toupper(static_cast<unsigned char>(tokens[2][0])));
            current->conns.push_back(std::move(conn));
            continue;
        }

        // Numbered cap/res entries.
        if (current == nullptr) {
            throw ParseError("unexpected line outside a *D_NET block",
                             lineNo);
        }
        if (section == Section::Cap) {
            if (tokens.size() == 3) {
                const auto v = str::parseSpiceNumber(tokens[2]);
                if (!v) throw ParseError("bad cap value", lineNo);
                current->caps.push_back(
                    {str::toLower(tokens[1]), "", *v * capScale});
            } else if (tokens.size() == 4) {
                const auto v = str::parseSpiceNumber(tokens[3]);
                if (!v) throw ParseError("bad coupling cap value", lineNo);
                current->caps.push_back({str::toLower(tokens[1]),
                                         str::toLower(tokens[2]),
                                         *v * capScale});
            } else {
                throw ParseError("*CAP entry: <idx> n1 [n2] value", lineNo);
            }
            continue;
        }
        if (section == Section::Res) {
            if (tokens.size() != 4) {
                throw ParseError("*RES entry: <idx> n1 n2 value", lineNo);
            }
            const auto v = str::parseSpiceNumber(tokens[3]);
            if (!v) throw ParseError("bad res value", lineNo);
            current->ress.push_back({str::toLower(tokens[1]),
                                     str::toLower(tokens[2]), *v * resScale});
            continue;
        }
        throw ParseError("unparsed line '" + line + "'", lineNo);
    }
    out.indexCoupling();
    return out;
}

}  // namespace sna::parser

// SDC (Synopsys Design Constraints) ingestion — the subset that seeds
// switching windows at the primary inputs.
//
// Supported commands: `create_clock -period P -name N [-waveform {..}]
// [get_ports {...}]`, `set_input_delay` / `set_output_delay` with `-clock`,
// `-min`, `-max`, and `[get_ports {...}]` or bare port operands, and
// `set_units -time UNIT`. `#` comments and backslash line continuations.
// Unknown commands throw a line-numbered ParseError (a constraint the
// reader would silently drop could hide a real window), and port names are
// lower-cased to match the Verilog/SPEF convention.
//
// Window semantics: a port's input delay bounds when its net can switch
// after the (virtual) clock edge at t = 0, so [min over -min values, max
// over -max values] becomes the port net's TimingWindow in absolute
// seconds — exactly what a hand-written windows file supplies.
#pragma once

#include <string>
#include <vector>

#include "core/timing_windows.hpp"

namespace sna::parser {

struct SdcClock {
    std::string name;
    double period = 0.0;  ///< s
    std::vector<std::string> ports;  ///< empty: virtual clock
    int line = 0;
};

struct SdcIoDelay {
    std::string port;   ///< lower-cased
    std::string clock;  ///< -clock argument ("" when omitted)
    double minDelay = 0.0;  ///< s
    double maxDelay = 0.0;  ///< s
    int line = 0;
};

struct SdcConstraints {
    double timeScale = 1e-9;  ///< SDC time unit in seconds (default ns)
    std::vector<SdcClock> clocks;
    std::vector<SdcIoDelay> inputDelays;
    std::vector<SdcIoDelay> outputDelays;

    /// Per-port switching windows from the input delays: each constrained
    /// port gets the hull [smallest, largest] over all its set_input_delay
    /// values, so the usual -min/-max statement pair becomes [min, max].
    /// Ports with no set_input_delay get no entry (unbounded by default).
    core::TimingWindows toInputWindows() const;
};

/// Parse SDC text. Throws sna::ParseError with line numbers.
SdcConstraints parseSdc(const std::string& text);

}  // namespace sna::parser

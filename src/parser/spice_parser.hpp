// SPICE-subset netlist parser.
//
// Supported cards (case-insensitive, '+' continuations, '*'/'$' comments):
//   R<name> n1 n2 value            resistor
//   C<name> n1 n2 value            capacitor
//   V<name> n+ n- dc <v> | pwl(t1 v1 t2 v2 ...)   voltage source
//   I<name> n+ n- dc <v> | pwl(...)               current source
//   E<name> p n cp cn gain         VCVS
//   G<name> p n cp cn gm           linear VCCS
//   M<name> d g s b model w=<m> l=<m>             level-1 MOSFET
//   X<name> pin... subname         subcircuit instance
//   .model <name> nmos|pmos (level=1 key=value ...)
//   .subckt <name> pins... / .ends
//   .end
// Numbers accept engineering suffixes (k, meg, u, n, p, f, ...).
//
// This is the library-exchange input path: the celllib emits exactly this
// dialect (round-trip tested) and examples load cells/netlists through it.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace sna::parser {

/// A parsed .subckt template.
struct Subckt {
    std::string name;
    std::vector<std::string> ports;
    std::vector<std::string> body;  ///< raw element cards
};

/// Parse result: a fully lowered circuit plus the model/subckt tables.
class SpiceNetlist {
public:
    spice::Circuit& circuit() { return circuit_; }
    const spice::Circuit& circuit() const { return circuit_; }

    const std::map<std::string, spice::MosModel>& models() const {
        return models_;
    }
    const std::map<std::string, Subckt>& subckts() const { return subckts_; }

    /// Mutable access for the parser building this result.
    std::map<std::string, spice::MosModel>& models() { return models_; }
    std::map<std::string, Subckt>& subckts() { return subckts_; }

private:
    spice::Circuit circuit_;
    std::map<std::string, spice::MosModel> models_;
    std::map<std::string, Subckt> subckts_;
};

/// Parse a netlist text. Throws sna::ParseError with 1-based line numbers.
SpiceNetlist parseSpice(const std::string& text);

}  // namespace sna::parser

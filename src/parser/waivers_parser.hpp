// Lint waiver file loader.
//
// Signoff teams never run a clean design: known-benign diagnostics are
// waived by rule ID + object so the remaining errors keep gating the run.
// The format is deliberately minimal — one waiver per line:
//
//     # comment (or //)
//     SNA-L202 clk_mux_out     # waive one rule on one object
//     SNA-L103 *               # waive a rule on every object
//
// The object is the diagnostic's net/instance/cell:pin name, '*' matches
// any object, and a line with only a rule ID waives it everywhere. Waivers
// that match nothing are reported back by lint::applyWaivers — a stale
// waiver hides future regressions, so it is itself a finding.
//
// Lives in parser/ (no core dependency) like the other text front ends.
#pragma once

#include <string>
#include <vector>

namespace sna::parser {

/// One waiver line: suppress `rule` on `object` ('*' = any object).
struct Waiver {
    std::string rule;    ///< e.g. "SNA-L202"
    std::string object;  ///< exact object name, or "*"
    int line = 0;        ///< 1-based line in the waiver file (for reporting)

    bool operator==(const Waiver& o) const {
        return rule == o.rule && object == o.object;
    }
};

/// Parse waiver text. Throws sna::ParseError (line-numbered) on lines that
/// are neither a comment nor "RULE [OBJECT]", or on a rule token that does
/// not look like a lint rule ID.
std::vector<Waiver> parseWaivers(const std::string& text);

}  // namespace sna::parser

// Simplified SPEF (IEEE 1481) parasitics parser.
//
// Supports the subset a noise flow needs: header unit directives (*T_UNIT,
// *C_UNIT, *R_UNIT), *D_NET blocks with *CONN, *CAP (grounded and coupled)
// and *RES sections. Values are converted to SI at parse time. This is the
// input path for extracted coupled interconnect in the sign-off example —
// the "EDA parsers exist" piece of the reproduction.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace sna::parser {

enum class SpefConnKind { Port, InternalPin };

struct SpefConn {
    SpefConnKind kind = SpefConnKind::Port;
    std::string name;   ///< "in1" or "u1:a"
    char direction = 'B';  ///< I / O / B
};

struct SpefCap {
    std::string node1;
    std::string node2;  ///< empty: grounded cap; else coupling cap
    double farads = 0.0;
};

struct SpefRes {
    std::string node1;
    std::string node2;
    double ohms = 0.0;
};

struct SpefNet {
    std::string name;
    double totalCap = 0.0;  ///< as stated on the *D_NET line, F
    std::vector<SpefConn> conns;
    std::vector<SpefCap> caps;
    std::vector<SpefRes> ress;

    /// Sum of grounded + coupling caps in the *CAP section, F.
    double sectionCapTotal() const;
};

class SpefFile {
public:
    const std::string& design() const { return design_; }
    const std::map<std::string, SpefNet>& nets() const { return nets_; }
    const SpefNet& net(const std::string& name) const;

    /// Names of nets coupled to `name` through at least one coupling cap.
    /// Served from a map built once at parse time (O(log n) per query, not
    /// a rescan of every cap section). Only nodes whose owner is a net
    /// declared in this SPEF count: a coupling node with an unknown owner
    /// is dangling (what lint rule SNA-L103 reports), not an aggressor.
    /// Throws ModelError when `name` itself is not a SPEF net.
    const std::vector<std::string>& aggressorsOf(
        const std::string& name) const;

    /// Lower every net's RC into a circuit; SPEF nodes become circuit nodes
    /// of the same (lower-cased) name.
    void buildInto(spice::Circuit& c) const;

private:
    friend SpefFile parseSpef(const std::string& text);

    /// Populate coupled_ from every net's cap section (called once, at the
    /// end of parseSpef).
    void indexCoupling();

    std::string design_;
    std::map<std::string, SpefNet> nets_;
    /// net -> nets coupled to it through at least one coupling cap, in the
    /// order the old per-query scan discovered them (sections in net-name
    /// order, caps in file order). Nets with no coupling have no entry.
    std::map<std::string, std::vector<std::string>> coupled_;
};

/// Parse SPEF text. Throws sna::ParseError with line numbers.
SpefFile parseSpef(const std::string& text);

}  // namespace sna::parser

// Simplified SPEF (IEEE 1481) parasitics parser.
//
// Supports the subset a noise flow needs: header unit directives (*T_UNIT,
// *C_UNIT, *R_UNIT), *D_NET blocks with *CONN, *CAP (grounded and coupled)
// and *RES sections. Values are converted to SI at parse time. This is the
// input path for extracted coupled interconnect in the sign-off example —
// the "EDA parsers exist" piece of the reproduction.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace sna::parser {

enum class SpefConnKind { Port, InternalPin };

struct SpefConn {
    SpefConnKind kind = SpefConnKind::Port;
    std::string name;   ///< "in1" or "u1:a"
    char direction = 'B';  ///< I / O / B
};

struct SpefCap {
    std::string node1;
    std::string node2;  ///< empty: grounded cap; else coupling cap
    double farads = 0.0;
};

struct SpefRes {
    std::string node1;
    std::string node2;
    double ohms = 0.0;
};

struct SpefNet {
    std::string name;
    double totalCap = 0.0;  ///< as stated on the *D_NET line, F
    std::vector<SpefConn> conns;
    std::vector<SpefCap> caps;
    std::vector<SpefRes> ress;

    /// Sum of grounded + coupling caps in the *CAP section, F.
    double sectionCapTotal() const;
};

class SpefFile {
public:
    const std::string& design() const { return design_; }
    const std::map<std::string, SpefNet>& nets() const { return nets_; }
    const SpefNet& net(const std::string& name) const;

    /// Names of nets coupled to `name` through at least one coupling cap.
    std::vector<std::string> aggressorsOf(const std::string& name) const;

    /// Lower every net's RC into a circuit; SPEF nodes become circuit nodes
    /// of the same (lower-cased) name.
    void buildInto(spice::Circuit& c) const;

private:
    friend SpefFile parseSpef(const std::string& text);
    std::string design_;
    std::map<std::string, SpefNet> nets_;
};

/// Parse SPEF text. Throws sna::ParseError with line numbers.
SpefFile parseSpef(const std::string& text);

}  // namespace sna::parser

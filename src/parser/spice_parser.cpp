#include "parser/spice_parser.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "waveform/waveform.hpp"

namespace sna::parser {

namespace {

struct Line {
    int number = 0;       // 1-based line of the first physical line
    std::string text;     // continuation-joined logical line
};

// Join '+' continuations, drop comments and blanks.
std::vector<Line> logicalLines(const std::string& text) {
    std::vector<Line> out;
    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    while (std::getline(is, raw)) {
        ++lineNo;
        // Strip end-of-line comments introduced by '$' or ';'.
        const std::size_t dollar = raw.find_first_of("$;");
        if (dollar != std::string::npos) raw.resize(dollar);
        const std::string_view t = str::trim(raw);
        if (t.empty() || t.front() == '*') continue;
        if (t.front() == '+') {
            if (out.empty()) {
                throw ParseError("continuation with no preceding card",
                                 lineNo);
            }
            out.back().text += ' ';
            out.back().text += std::string(t.substr(1));
        } else {
            out.push_back({lineNo, std::string(t)});
        }
    }
    return out;
}

double number(std::string_view token, int line) {
    const auto v = str::parseSpiceNumber(token);
    if (!v) {
        throw ParseError("malformed number '" + std::string(token) + "'",
                         line);
    }
    return *v;
}

// Parse "key=value" pairs from tokens[start..].
std::map<std::string, double> keyValues(
    const std::vector<std::string_view>& tokens, std::size_t start, int line) {
    std::map<std::string, double> kv;
    for (std::size_t i = start; i < tokens.size(); ++i) {
        const std::string_view t = tokens[i];
        const std::size_t eq = t.find('=');
        if (eq == std::string_view::npos) {
            throw ParseError("expected key=value, got '" + std::string(t) +
                                 "'",
                             line);
        }
        kv[str::toLower(t.substr(0, eq))] = number(t.substr(eq + 1), line);
    }
    return kv;
}

// Parse "dc 1.2" or "pwl(t v t v ...)" or a bare number.
spice::SourceSpec sourceSpec(const std::string& rest, int line) {
    const std::string low = str::toLower(str::trim(rest));
    if (low.rfind("pwl", 0) == 0) {
        const std::size_t open = low.find('(');
        const std::size_t close = low.rfind(')');
        if (open == std::string::npos || close == std::string::npos ||
            close <= open) {
            throw ParseError("malformed pwl() source", line);
        }
        // Bind the substring first: split() returns views into its argument.
        const std::string payload = low.substr(open + 1, close - open - 1);
        const auto nums = str::split(payload, " \t,");
        if (nums.size() < 4 || nums.size() % 2 != 0) {
            throw ParseError("pwl() needs an even number (>= 4) of values",
                             line);
        }
        std::vector<wave::Sample> samples;
        for (std::size_t i = 0; i < nums.size(); i += 2) {
            samples.push_back({number(nums[i], line), number(nums[i + 1],
                                                             line)});
        }
        try {
            return spice::SourceSpec::pwl(wave::Waveform(std::move(samples)));
        } catch (const Error& e) {
            throw ParseError(std::string("bad pwl source: ") + e.what(), line);
        }
    }
    auto tokens = str::split(low);
    if (!tokens.empty() && str::iequals(tokens[0], "dc")) {
        tokens.erase(tokens.begin());
    }
    if (tokens.size() != 1) {
        throw ParseError("expected 'dc <value>', 'pwl(...)' or a value",
                         line);
    }
    return spice::SourceSpec::dc(number(tokens[0], line));
}

class SpiceParser {
public:
    SpiceNetlist run(const std::string& text) {
        const auto lines = logicalLines(text);
        std::size_t i = 0;
        while (i < lines.size()) {
            const Line& ln = lines[i];
            const auto tokens = str::split(ln.text);
            const std::string first = str::toLower(tokens[0]);
            if (first == ".subckt") {
                i = parseSubckt(lines, i);
                continue;
            }
            if (first == ".model") {
                parseModel(tokens, ln.number);
            } else if (first == ".end") {
                break;
            } else if (first[0] == '.') {
                throw ParseError("unsupported directive '" + first + "'",
                                 ln.number);
            } else {
                element(ln.text, ln.number, /*prefix=*/"",
                        /*portMap=*/{});
            }
            ++i;
        }
        return std::move(result_);
    }

private:
    // ---- directives -------------------------------------------------------

    std::size_t parseSubckt(const std::vector<Line>& lines, std::size_t i) {
        const Line& head = lines[i];
        const auto tokens = str::split(head.text);
        if (tokens.size() < 3) {
            throw ParseError(".subckt needs a name and ports", head.number);
        }
        Subckt sub;
        sub.name = str::toLower(tokens[1]);
        for (std::size_t k = 2; k < tokens.size(); ++k) {
            sub.ports.push_back(str::toLower(tokens[k]));
        }
        ++i;
        while (i < lines.size()) {
            const auto t = str::split(lines[i].text);
            if (str::iequals(t[0], ".ends")) {
                result_.subckts()[sub.name] = std::move(sub);
                return i + 1;
            }
            if (!t.empty() && t[0][0] == '.') {
                throw ParseError("directives are not allowed inside .subckt",
                                 lines[i].number);
            }
            sub.body.push_back(lines[i].text);
            ++i;
        }
        throw ParseError(".subckt '" + sub.name + "' missing .ends",
                         head.number);
    }

    void parseModel(const std::vector<std::string_view>& tokens, int line) {
        if (tokens.size() < 3) {
            throw ParseError(".model needs a name and a type", line);
        }
        const std::string name = str::toLower(tokens[1]);
        const std::string type = str::toLower(tokens[2]);
        spice::MosModel m;
        if (type == "nmos") {
            m.type = spice::MosType::Nmos;
        } else if (type == "pmos") {
            m.type = spice::MosType::Pmos;
        } else {
            throw ParseError("unsupported model type '" + type + "'", line);
        }
        // Re-join the parameter tail and strip parentheses.
        std::string tail;
        for (std::size_t k = 3; k < tokens.size(); ++k) {
            tail += ' ';
            tail += std::string(tokens[k]);
        }
        tail.erase(std::remove(tail.begin(), tail.end(), '('), tail.end());
        tail.erase(std::remove(tail.begin(), tail.end(), ')'), tail.end());
        const auto kv = keyValues(str::split(tail), 0, line);
        for (const auto& [key, value] : kv) {
            if (key == "level") {
                if (value != 1.0) {
                    throw ParseError("only level=1 models are supported",
                                     line);
                }
            } else if (key == "vto") {
                m.vt0 = value;
            } else if (key == "kp") {
                m.kp = value;
            } else if (key == "lambda") {
                m.lambda = value;
            } else if (key == "gamma") {
                m.gamma = value;
            } else if (key == "phi") {
                m.phi = value;
            } else if (key == "cox") {
                m.cox = value;
            } else if (key == "cgso") {
                m.cgso = value;
            } else if (key == "cgdo") {
                m.cgdo = value;
            } else if (key == "cj") {
                m.cj = value;
            } else if (key == "cjsw") {
                m.cjsw = value;
            } else if (key == "ldiff") {
                m.ldiff = value;
            } else {
                throw ParseError("unknown model parameter '" + key + "'",
                                 line);
            }
        }
        result_.models()[name] = m;
    }

    // ---- elements ---------------------------------------------------------

    // Resolve a node token against an enclosing-instance port map.
    spice::NodeId nodeOf(std::string_view token, const std::string& prefix,
                         const std::map<std::string, std::string>& portMap) {
        std::string name = str::toLower(token);
        const auto it = portMap.find(name);
        if (it != portMap.end()) {
            name = it->second;
        } else if (name != "0" && name != "gnd" && !prefix.empty()) {
            name = prefix + name;  // subckt-local node
        }
        return result_.circuit().node(name);
    }

    void element(const std::string& text, int line, const std::string& prefix,
                 const std::map<std::string, std::string>& portMap) {
        const auto tokens = str::split(text);
        const char kind =
            static_cast<char>(std::tolower(static_cast<unsigned char>(
                tokens[0][0])));
        const std::string name = prefix + str::toLower(tokens[0]);
        auto node = [&](std::size_t i) {
            if (i >= tokens.size()) {
                throw ParseError("missing node operand", line);
            }
            return nodeOf(tokens[i], prefix, portMap);
        };
        switch (kind) {
            case 'r': {
                if (tokens.size() != 4) {
                    throw ParseError("R card: Rname n1 n2 value", line);
                }
                result_.circuit().addResistor(name, node(1), node(2),
                                             number(tokens[3], line));
                break;
            }
            case 'c': {
                if (tokens.size() != 4) {
                    throw ParseError("C card: Cname n1 n2 value", line);
                }
                result_.circuit().addCapacitor(name, node(1), node(2),
                                              number(tokens[3], line));
                break;
            }
            case 'v':
            case 'i': {
                if (tokens.size() < 4) {
                    throw ParseError("source card: name n+ n- value", line);
                }
                // Everything after the two nodes is the source description.
                std::string rest;
                for (std::size_t k = 3; k < tokens.size(); ++k) {
                    rest += std::string(tokens[k]);
                    rest += ' ';
                }
                const auto spec = sourceSpec(rest, line);
                if (kind == 'v') {
                    result_.circuit().addVSource(name, node(1), node(2), spec);
                } else {
                    result_.circuit().addISource(name, node(1), node(2), spec);
                }
                break;
            }
            case 'e': {
                if (tokens.size() != 6) {
                    throw ParseError("E card: Ename p n cp cn gain", line);
                }
                result_.circuit().addVcvs(name, node(1), node(2), node(3),
                                         node(4), number(tokens[5], line));
                break;
            }
            case 'g': {
                if (tokens.size() != 6) {
                    throw ParseError("G card: Gname p n cp cn gm", line);
                }
                result_.circuit().addVccs(name, node(1), node(2), node(3),
                                         node(4), number(tokens[5], line));
                break;
            }
            case 'm': {
                if (tokens.size() != 8) {
                    throw ParseError(
                        "M card: Mname d g s b model w=<val> l=<val>", line);
                }
                const std::string modelName = str::toLower(tokens[5]);
                const auto it = result_.models().find(modelName);
                if (it == result_.models().end()) {
                    throw ParseError("unknown model '" + modelName + "'",
                                     line);
                }
                const auto kv = keyValues(tokens, 6, line);
                if (kv.count("w") == 0 || kv.count("l") == 0) {
                    throw ParseError("M card needs w= and l=", line);
                }
                result_.circuit().addMosfet(name, node(1), node(2), node(3),
                                           node(4), it->second, kv.at("w"),
                                           kv.at("l"));
                break;
            }
            case 'x': {
                if (tokens.size() < 3) {
                    throw ParseError("X card: Xname nodes... subname", line);
                }
                expandSubckt(tokens, line, prefix, portMap, name);
                break;
            }
            default:
                throw ParseError("unsupported element '" +
                                     std::string(tokens[0]) + "'",
                                 line);
        }
    }

    void expandSubckt(const std::vector<std::string_view>& tokens, int line,
                      const std::string& prefix,
                      const std::map<std::string, std::string>& portMap,
                      const std::string& instName) {
        const std::string subName = str::toLower(tokens.back());
        const auto it = result_.subckts().find(subName);
        if (it == result_.subckts().end()) {
            throw ParseError("unknown subckt '" + subName + "'", line);
        }
        const Subckt& sub = it->second;
        if (tokens.size() - 2 != sub.ports.size()) {
            throw ParseError("subckt '" + subName + "' expects " +
                                 std::to_string(sub.ports.size()) +
                                 " connections",
                             line);
        }
        if (++depth_ > 32) {
            throw ParseError("subckt nesting too deep (recursive netlist?)",
                             line);
        }
        // Map formal port -> actual node name in the enclosing scope.
        std::map<std::string, std::string> map;
        for (std::size_t k = 0; k < sub.ports.size(); ++k) {
            const std::string actual = str::toLower(tokens[1 + k]);
            const auto outer = portMap.find(actual);
            std::string resolved;
            if (outer != portMap.end()) {
                resolved = outer->second;
            } else if (actual == "0" || actual == "gnd") {
                resolved = "0";
            } else {
                resolved = prefix + actual;
            }
            map[sub.ports[k]] = resolved;
        }
        const std::string inner = instName + ".";
        for (const auto& card : sub.body) {
            element(card, line, inner, map);
        }
        --depth_;
    }

    SpiceNetlist result_;
    int depth_ = 0;
};

}  // namespace

SpiceNetlist parseSpice(const std::string& text) {
    return SpiceParser().run(text);
}

}  // namespace sna::parser

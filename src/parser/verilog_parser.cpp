#include "parser/verilog_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

bool VerilogModule::isInput(const std::string& net) const {
    const std::string low = str::toLower(net);
    return std::find(inputs.begin(), inputs.end(), low) != inputs.end();
}

namespace {

struct Token {
    enum Kind { Word, Punct, End } kind = End;
    std::string text;
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) {}

    Token next() {
        skipGaps();
        Token t;
        t.line = line_;
        if (pos_ >= text_.size()) return t;
        const char c = text_[pos_];
        if (std::strchr("();,.[]=#{}", c) != nullptr) {
            t.kind = Token::Punct;
            t.text = c;
            ++pos_;
            return t;
        }
        if (c == '\\') {
            // Escaped identifier: backslash to the next whitespace.
            t.kind = Token::Word;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isspace(static_cast<unsigned char>(text_[pos_])) ==
                       0) {
                t.text += text_[pos_++];
            }
            if (t.text.empty()) {
                throw ParseError("empty escaped identifier", t.line);
            }
            return t;
        }
        t.kind = Token::Word;
        while (pos_ < text_.size() &&
               std::strchr("();,.[]=#{}", text_[pos_]) == nullptr &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
            t.text += text_[pos_++];
        }
        return t;
    }

private:
    void skipGaps() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '*') {
                const int start = line_;
                pos_ += 2;
                while (pos_ + 1 < text_.size() &&
                       !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
                    if (text_[pos_] == '\n') ++line_;
                    ++pos_;
                }
                if (pos_ + 1 >= text_.size()) {
                    throw ParseError("unterminated /* comment", start);
                }
                pos_ += 2;
            } else {
                return;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

class NetlistParser {
public:
    explicit NetlistParser(const std::string& text) : lex_(text) {
        advance();
    }

    VerilogModule parse() {
        expectWord("module");
        VerilogModule m;
        m.name = str::toLower(expectIdent("module name"));
        if (atPunct('(')) {
            advance();
            while (!atPunct(')')) {
                m.ports.push_back(str::toLower(expectIdent("port name")));
                if (atPunct(',')) advance();
            }
            advance();  // ')'
        }
        expectPunct(';');

        while (!(cur_.kind == Token::Word && cur_.text == "endmodule")) {
            if (cur_.kind == Token::End) {
                throw ParseError("missing endmodule", cur_.line);
            }
            parseItem(m);
        }
        advance();  // endmodule
        if (cur_.kind != Token::End) {
            throw ParseError(
                "unexpected text after endmodule (one module per file)",
                cur_.line);
        }
        return m;
    }

private:
    void advance() { cur_ = lex_.next(); }

    bool atPunct(char c) const {
        return cur_.kind == Token::Punct && cur_.text[0] == c;
    }

    void expectPunct(char c) {
        if (!atPunct(c)) {
            throw ParseError(std::string("expected '") + c + "'", cur_.line);
        }
        advance();
    }

    void expectWord(const std::string& w) {
        if (cur_.kind != Token::Word || cur_.text != w) {
            throw ParseError("expected '" + w + "'", cur_.line);
        }
        advance();
    }

    std::string expectIdent(const char* what) {
        if (cur_.kind != Token::Word) {
            throw ParseError(std::string("expected ") + what, cur_.line);
        }
        std::string out = cur_.text;
        advance();
        return out;
    }

    // input/output/wire declaration or a cell instantiation.
    void parseItem(VerilogModule& m) {
        if (cur_.kind == Token::Punct) {
            if (atPunct('[')) {
                throw ParseError(
                    "bus ranges ([msb:lsb]) are not supported — flatten "
                    "the netlist to scalar nets",
                    cur_.line);
            }
            throw ParseError("unexpected '" + cur_.text + "'", cur_.line);
        }
        const std::string head = cur_.text;
        if (head == "assign" || head == "always" || head == "initial") {
            throw ParseError("'" + head +
                                 "' is not structural — only gate "
                                 "instantiations are supported",
                             cur_.line);
        }
        if (head == "input" || head == "output" || head == "wire") {
            advance();
            if (atPunct('[')) {
                throw ParseError(
                    "bus ranges ([msb:lsb]) are not supported — flatten "
                    "the netlist to scalar nets",
                    cur_.line);
            }
            auto& list = head == "input"
                             ? m.inputs
                             : (head == "output" ? m.outputs : m.wires);
            list.push_back(str::toLower(expectIdent("net name")));
            while (atPunct(',')) {
                advance();
                list.push_back(str::toLower(expectIdent("net name")));
            }
            expectPunct(';');
            return;
        }
        parseInstance(m, head);
    }

    // CELL inst ( .pin(net), ... ) ;
    void parseInstance(VerilogModule& m, const std::string& cellName) {
        VerilogInstance inst;
        inst.cellName = str::toLower(cellName);
        inst.line = cur_.line;
        advance();  // cell name
        if (atPunct('#')) {
            throw ParseError("parameter overrides (#(...)) are not supported",
                             cur_.line);
        }
        inst.name = str::toLower(expectIdent("instance name"));
        expectPunct('(');
        while (!atPunct(')')) {
            if (!atPunct('.')) {
                throw ParseError(
                    "positional connections are not supported — use named "
                    "connections (.pin(net))",
                    cur_.line);
            }
            advance();  // '.'
            const std::string pin =
                str::toLower(expectIdent("pin name"));
            expectPunct('(');
            std::string net;
            if (!atPunct(')')) {
                net = str::toLower(expectIdent("net name"));
            }
            expectPunct(')');
            if (!inst.pinNets.emplace(pin, net).second) {
                throw ParseError("pin '" + pin + "' connected twice on '" +
                                     inst.name + "'",
                                 cur_.line);
            }
            if (atPunct(',')) advance();
        }
        advance();  // ')'
        expectPunct(';');
        m.instances.push_back(std::move(inst));
    }

    Lexer lex_;
    Token cur_;
};

}  // namespace

VerilogModule parseVerilog(const std::string& text) {
    return NetlistParser(text).parse();
}

}  // namespace sna::parser

#include "parser/windows_parser.hpp"

#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

namespace {

double unitScale(std::string_view unit, int line) {
    if (str::iequals(unit, "S")) return 1.0;
    if (str::iequals(unit, "MS")) return 1e-3;
    if (str::iequals(unit, "US")) return 1e-6;
    if (str::iequals(unit, "NS")) return 1e-9;
    if (str::iequals(unit, "PS")) return 1e-12;
    if (str::iequals(unit, "FS")) return 1e-15;
    throw ParseError("unknown time unit '" + std::string(unit) + "'", line);
}

/// One window bound: a number in file units, or '*' for "unbounded".
double parseBound(std::string_view tok, double scale, bool isEarliest,
                  int line) {
    if (tok == "*") {
        return isEarliest ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    }
    const auto v = str::parseSpiceNumber(tok);
    // The number parser accepts "nan"/"inf" spellings; a NaN bound makes
    // every overlap test false and an explicit infinity is '*''s job, so
    // both are malformed input here, not numbers.
    if (!v.has_value() || !std::isfinite(*v)) {
        throw ParseError("bad window bound '" + std::string(tok) +
                             "' (must be a finite number or '*')",
                         line);
    }
    return *v * scale;
}

}  // namespace

core::TimingWindows parseTimingWindows(const std::string& text) {
    core::TimingWindows out;
    std::istringstream is(text);
    std::string rawLine;
    double scale = 1.0;  // default: seconds
    int lineNo = 0;
    while (std::getline(is, rawLine)) {
        ++lineNo;
        std::string_view line = str::trim(rawLine);
        if (line.empty() || line.front() == '#' ||
            line.substr(0, 2) == "//") {
            continue;
        }
        const auto toks = str::split(line);
        if (str::iequals(toks.front(), "*T_UNIT")) {
            if (toks.size() != 3) {
                throw ParseError("*T_UNIT needs a multiplier and a unit",
                                 lineNo);
            }
            const auto mult = str::parseSpiceNumber(toks[1]);
            if (!mult.has_value() || *mult <= 0.0) {
                throw ParseError("bad *T_UNIT multiplier '" +
                                     std::string(toks[1]) + "'",
                                 lineNo);
            }
            scale = *mult * unitScale(toks[2], lineNo);
            continue;
        }
        if (toks.size() != 3) {
            throw ParseError(
                "expected '<net> <earliest> <latest>', got '" +
                    std::string(line) + "'",
                lineNo);
        }
        const std::string net(toks[0]);
        core::TimingWindow w;
        w.earliest = parseBound(toks[1], scale, true, lineNo);
        w.latest = parseBound(toks[2], scale, false, lineNo);
        if (w.earliest > w.latest) {
            throw ParseError("window of net '" + net +
                                 "' is inverted: earliest " +
                                 std::string(toks[1]) + " > latest " +
                                 std::string(toks[2]),
                             lineNo);
        }
        if (out.find(net) != nullptr) {
            throw ParseError("duplicate window for net '" + net + "'",
                             lineNo);
        }
        out.set(net, w);
    }
    return out;
}

}  // namespace sna::parser

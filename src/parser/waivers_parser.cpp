#include "parser/waivers_parser.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

namespace {

bool looksLikeRuleId(std::string_view tok) {
    // "SNA-L" followed by at least one digit; keeps typo'd lines (a net
    // name in the rule column) from silently waiving nothing forever.
    if (tok.substr(0, 5) != "SNA-L") return false;
    if (tok.size() == 5) return false;
    for (std::size_t i = 5; i < tok.size(); ++i) {
        if (tok[i] < '0' || tok[i] > '9') return false;
    }
    return true;
}

}  // namespace

std::vector<Waiver> parseWaivers(const std::string& text) {
    std::vector<Waiver> out;
    std::istringstream is(text);
    std::string rawLine;
    int lineNo = 0;
    while (std::getline(is, rawLine)) {
        ++lineNo;
        // Strip a trailing comment, then the usual whole-line forms.
        std::string_view line = str::trim(rawLine);
        if (const auto hash = line.find('#'); hash != std::string_view::npos) {
            line = str::trim(line.substr(0, hash));
        }
        if (line.empty() || line.substr(0, 2) == "//") continue;
        const auto toks = str::split(line);
        if (toks.size() > 2) {
            throw ParseError("expected 'RULE [OBJECT]', got '" +
                                 std::string(line) + "'",
                             lineNo);
        }
        if (!looksLikeRuleId(toks.front())) {
            throw ParseError("'" + std::string(toks.front()) +
                                 "' is not a lint rule ID (SNA-Lxxx)",
                             lineNo);
        }
        Waiver w;
        w.rule = std::string(toks.front());
        w.object = toks.size() == 2 ? std::string(toks[1]) : "*";
        w.line = lineNo;
        out.push_back(std::move(w));
    }
    return out;
}

}  // namespace sna::parser

#include "parser/sdc_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

core::TimingWindows SdcConstraints::toInputWindows() const {
    core::TimingWindows out;
    for (const auto& d : inputDelays) {
        const core::TimingWindow* prev = out.find(d.port);
        core::TimingWindow w =
            prev != nullptr
                ? core::TimingWindow{std::min(prev->earliest, d.minDelay),
                                     std::max(prev->latest, d.maxDelay)}
                : core::TimingWindow{d.minDelay, d.maxDelay};
        out.set(d.port, w);
    }
    return out;
}

namespace {

// "1ns" / "ns" / "10ps" -> seconds.
double parseSdcTimeUnit(const std::string& text, int line) {
    std::size_t digits = 0;
    while (digits < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[digits])) != 0 ||
            text[digits] == '.')) {
        ++digits;
    }
    double mult = 1.0;
    if (digits > 0) {
        const auto v = str::parseDoubleToken(text.substr(0, digits));
        if (!v) throw ParseError("bad time unit '" + text + "'", line);
        mult = *v;
    }
    const std::string unit = str::toLower(text.substr(digits));
    double scale = 0.0;
    if (unit == "s") scale = 1.0;
    if (unit == "ms") scale = 1e-3;
    if (unit == "us") scale = 1e-6;
    if (unit == "ns") scale = 1e-9;
    if (unit == "ps") scale = 1e-12;
    if (unit == "fs") scale = 1e-15;
    if (scale == 0.0) {
        throw ParseError("unknown time unit '" + text + "'", line);
    }
    return mult * scale;
}

struct Command {
    std::vector<std::string> tokens;
    int line = 0;  ///< line the command started on
};

/// Split into commands: one per logical line ('\' continues, '#' comments,
/// ';' also terminates). Brackets and braces separate tokens — the only
/// bracketed construct interpreted is [get_ports {...}], whose contents
/// flatten into the token stream as "get_ports" followed by the port names.
std::vector<Command> tokenize(const std::string& text) {
    std::vector<Command> out;
    std::istringstream is(text);
    std::string raw;
    int lineNo = 0;
    Command cur;
    const auto flush = [&] {
        if (!cur.tokens.empty()) out.push_back(std::move(cur));
        cur = Command{};
    };
    while (std::getline(is, raw)) {
        ++lineNo;
        if (!raw.empty() && raw.back() == '\r') raw.pop_back();
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos) raw.resize(hash);
        bool continued = false;
        std::string_view body = str::trim(raw);
        if (!body.empty() && body.back() == '\\') {
            continued = true;
            body.remove_suffix(1);
        }
        std::string spaced;
        spaced.reserve(body.size());
        for (const char c : body) {
            if (c == '[' || c == ']' || c == '{' || c == '}') {
                spaced += ' ';
            } else if (c == ';') {
                spaced += '\n';  // handled below as a command break
            } else {
                spaced += c;
            }
        }
        const auto pieces = str::split(spaced, "\n");
        for (std::size_t p = 0; p < pieces.size(); ++p) {
            for (const auto tok : str::split(pieces[p])) {
                if (cur.tokens.empty()) cur.line = lineNo;
                cur.tokens.emplace_back(tok);
            }
            if (p + 1 < pieces.size()) flush();  // ';' ended a command
        }
        if (!continued) flush();
    }
    flush();
    return out;
}

double number(const std::string& tok, int line) {
    const auto v = str::parseDoubleToken(tok);
    if (!v) throw ParseError("malformed number '" + tok + "'", line);
    return *v;
}

bool isFlag(const std::string& tok) {
    // A flag starts with '-' and is not a negative number.
    return tok.size() > 1 && tok[0] == '-' &&
           !str::parseDoubleToken(tok).has_value();
}

void parseCreateClock(const Command& cmd, SdcConstraints& sdc) {
    SdcClock clock;
    clock.line = cmd.line;
    bool sawPeriod = false;
    for (std::size_t i = 1; i < cmd.tokens.size(); ++i) {
        const std::string& tok = cmd.tokens[i];
        if (tok == "-period") {
            if (++i >= cmd.tokens.size()) {
                throw ParseError("-period needs a value", cmd.line);
            }
            clock.period = number(cmd.tokens[i], cmd.line) * sdc.timeScale;
            sawPeriod = true;
        } else if (tok == "-name") {
            if (++i >= cmd.tokens.size()) {
                throw ParseError("-name needs a value", cmd.line);
            }
            clock.name = cmd.tokens[i];
        } else if (tok == "-waveform") {
            // Edge list: consume the following numbers (unused — windows
            // are anchored at the t=0 edge).
            while (i + 1 < cmd.tokens.size() &&
                   str::parseDoubleToken(cmd.tokens[i + 1]).has_value()) {
                ++i;
            }
        } else if (tok == "get_ports") {
            while (i + 1 < cmd.tokens.size() && !isFlag(cmd.tokens[i + 1]) &&
                   cmd.tokens[i + 1] != "get_ports") {
                clock.ports.push_back(str::toLower(cmd.tokens[++i]));
            }
        } else if (isFlag(tok)) {
            throw ParseError("unsupported create_clock option '" + tok + "'",
                             cmd.line);
        } else {
            clock.ports.push_back(str::toLower(tok));
        }
    }
    if (!sawPeriod) throw ParseError("create_clock needs -period", cmd.line);
    if (clock.name.empty()) {
        if (clock.ports.empty()) {
            throw ParseError("create_clock needs -name or a port", cmd.line);
        }
        clock.name = clock.ports.front();
    }
    sdc.clocks.push_back(std::move(clock));
}

void parseIoDelay(const Command& cmd, SdcConstraints& sdc, bool isInput) {
    bool sawValue = false;
    double value = 0.0;
    std::string clockName;
    std::vector<std::string> ports;
    for (std::size_t i = 1; i < cmd.tokens.size(); ++i) {
        const std::string& tok = cmd.tokens[i];
        if (tok == "-clock") {
            if (++i >= cmd.tokens.size()) {
                throw ParseError("-clock needs a value", cmd.line);
            }
            clockName = cmd.tokens[i];
        } else if (tok == "-min" || tok == "-max") {
            // Each statement's value enters the port's window hull either
            // way; the flags are accepted so min/max statement pairs parse.
        } else if (tok == "-add_delay") {
            // Accumulation is this reader's default behavior.
        } else if (tok == "get_ports") {
            while (i + 1 < cmd.tokens.size() && !isFlag(cmd.tokens[i + 1]) &&
                   cmd.tokens[i + 1] != "get_ports") {
                ports.push_back(str::toLower(cmd.tokens[++i]));
            }
        } else if (isFlag(tok)) {
            throw ParseError("unsupported option '" + tok + "'", cmd.line);
        } else if (!sawValue &&
                   str::parseDoubleToken(tok).has_value()) {
            value = number(tok, cmd.line) * sdc.timeScale;
            sawValue = true;
        } else {
            ports.push_back(str::toLower(tok));
        }
    }
    if (!sawValue) {
        throw ParseError(std::string(isInput ? "set_input_delay"
                                             : "set_output_delay") +
                             " needs a delay value",
                         cmd.line);
    }
    if (ports.empty()) {
        throw ParseError("no ports given (use [get_ports {...}])", cmd.line);
    }
    for (const auto& port : ports) {
        SdcIoDelay d;
        d.port = port;
        d.clock = clockName;
        d.line = cmd.line;
        // One value per statement, recorded as a degenerate [v, v] window;
        // toInputWindows hulls the records, so a -min 0 / -max 2 pair
        // yields [0, 2].
        d.minDelay = value;
        d.maxDelay = value;
        (isInput ? sdc.inputDelays : sdc.outputDelays).push_back(d);
    }
}

}  // namespace

SdcConstraints parseSdc(const std::string& text) {
    SdcConstraints sdc;
    for (const Command& cmd : tokenize(text)) {
        const std::string& verb = cmd.tokens.front();
        if (verb == "set_units") {
            for (std::size_t i = 1; i < cmd.tokens.size(); ++i) {
                if (cmd.tokens[i] == "-time") {
                    if (++i >= cmd.tokens.size()) {
                        throw ParseError("-time needs a unit", cmd.line);
                    }
                    sdc.timeScale = parseSdcTimeUnit(cmd.tokens[i], cmd.line);
                }
                // Other unit kinds (capacitance, resistance) are unused.
            }
        } else if (verb == "create_clock") {
            parseCreateClock(cmd, sdc);
        } else if (verb == "set_input_delay") {
            parseIoDelay(cmd, sdc, /*isInput=*/true);
        } else if (verb == "set_output_delay") {
            parseIoDelay(cmd, sdc, /*isInput=*/false);
        } else {
            throw ParseError("unsupported SDC command '" + verb + "'",
                             cmd.line);
        }
    }
    return sdc;
}

}  // namespace sna::parser

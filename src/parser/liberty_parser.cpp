#include "parser/liberty_parser.hpp"

#include <cctype>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::parser {

const LibertyTimingArc* LibertyCell::arcFrom(
    const std::string& inputPin) const {
    const std::string low = str::toLower(inputPin);
    for (const auto& [pinName, pin] : pins) {
        for (const auto& arc : pin.arcs) {
            if (arc.relatedPin == low) return &arc;
        }
    }
    return nullptr;
}

const LibertyPin* LibertyCell::outputPin() const {
    const LibertyPin* out = nullptr;
    for (const auto& [pinName, pin] : pins) {
        if (pin.dir != LibertyPinDir::output) continue;
        if (out != nullptr) return nullptr;  // multi-output: unsupported
        out = &pin;
    }
    return out;
}

const LibertyCell* LibertyLibrary::findCell(const std::string& name) const {
    const auto it = cells.find(str::toLower(name));
    return it == cells.end() ? nullptr : &it->second;
}

namespace {

// ---- tokenizer -----------------------------------------------------------

struct Token {
    enum Kind { Word, Punct, End } kind = End;
    std::string text;  ///< word text (quotes stripped) or 1-char punct
    int line = 0;
};

class Lexer {
public:
    explicit Lexer(const std::string& text) : text_(text) {}

    Token next() {
        skipGaps();
        Token t;
        t.line = line_;
        if (pos_ >= text_.size()) return t;  // End
        const char c = text_[pos_];
        if (c == '"') {
            t.kind = Token::Word;
            ++pos_;
            while (pos_ < text_.size() && text_[pos_] != '"') {
                if (text_[pos_] == '\n') ++line_;
                // Continuations inside strings (multi-line values lists).
                if (text_[pos_] == '\\' && pos_ + 1 < text_.size() &&
                    text_[pos_ + 1] == '\n') {
                    ++line_;
                    pos_ += 2;
                    continue;
                }
                t.text += text_[pos_++];
            }
            if (pos_ >= text_.size()) {
                throw ParseError("unterminated string", t.line);
            }
            ++pos_;  // closing quote
            return t;
        }
        if (std::strchr("(){},;:", c) != nullptr) {
            t.kind = Token::Punct;
            t.text = c;
            ++pos_;
            return t;
        }
        // A bare word: identifier, number, or unit ("1ns").
        t.kind = Token::Word;
        while (pos_ < text_.size() &&
               std::strchr("(){},;:\"", text_[pos_]) == nullptr &&
               std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
            t.text += text_[pos_++];
        }
        return t;
    }

private:
    void skipGaps() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++pos_;
            } else if (c == '\\' && pos_ + 1 < text_.size() &&
                       (text_[pos_ + 1] == '\n' ||
                        (text_[pos_ + 1] == '\r' && pos_ + 2 < text_.size() &&
                         text_[pos_ + 2] == '\n'))) {
                pos_ += text_[pos_ + 1] == '\n' ? 2 : 3;
                ++line_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '*') {
                const int start = line_;
                pos_ += 2;
                while (pos_ + 1 < text_.size() &&
                       !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
                    if (text_[pos_] == '\n') ++line_;
                    ++pos_;
                }
                if (pos_ + 1 >= text_.size()) {
                    throw ParseError("unterminated /* comment", start);
                }
                pos_ += 2;
            } else {
                return;
            }
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    int line_ = 1;
};

// ---- generic group tree --------------------------------------------------

struct LibAttr {
    std::string name;                 ///< lower-cased
    std::vector<std::string> values;  ///< 1 for simple, n for complex
    int line = 0;
};

struct LibGroup {
    std::string kind;               ///< lower-cased ("library", "cell", ...)
    std::vector<std::string> args;  ///< as written (quotes stripped)
    std::vector<LibAttr> attrs;
    std::vector<LibGroup> children;
    int line = 0;

    const LibAttr* attr(const std::string& name) const {
        for (const auto& a : attrs) {
            if (a.name == name) return &a;
        }
        return nullptr;
    }
};

class GroupParser {
public:
    explicit GroupParser(const std::string& text) : lex_(text) {
        advance();
    }

    /// The single top-level group (Liberty files are one `library`).
    LibGroup parseTop() {
        LibGroup g = parseGroup();
        if (cur_.kind != Token::End) {
            throw ParseError("trailing text after the top-level group",
                             cur_.line);
        }
        return g;
    }

private:
    void advance() { cur_ = lex_.next(); }

    void expectPunct(char c) {
        if (cur_.kind != Token::Punct || cur_.text[0] != c) {
            throw ParseError(std::string("expected '") + c + "'", cur_.line);
        }
        advance();
    }

    bool atPunct(char c) const {
        return cur_.kind == Token::Punct && cur_.text[0] == c;
    }

    // name ( args ) { statements }
    LibGroup parseGroup() {
        if (cur_.kind != Token::Word) {
            throw ParseError("expected a group name", cur_.line);
        }
        LibGroup g;
        g.kind = str::toLower(cur_.text);
        g.line = cur_.line;
        advance();
        expectPunct('(');
        while (!atPunct(')')) {
            if (cur_.kind != Token::Word) {
                throw ParseError("expected a group argument", cur_.line);
            }
            g.args.push_back(cur_.text);
            advance();
            if (atPunct(',')) advance();
        }
        advance();  // ')'
        expectPunct('{');
        while (!atPunct('}')) {
            if (cur_.kind == Token::End) {
                throw ParseError("unterminated group '" + g.kind + "'",
                                 g.line);
            }
            parseStatement(g);
        }
        advance();  // '}'
        return g;
    }

    // One of:  attr : value ;   |   attr ( v, ... ) ;   |   nested group
    void parseStatement(LibGroup& g) {
        if (cur_.kind != Token::Word) {
            throw ParseError("expected an attribute or group name",
                             cur_.line);
        }
        const Token name = cur_;
        advance();
        if (atPunct(':')) {
            advance();
            if (cur_.kind != Token::Word) {
                throw ParseError("expected a value after ':'", cur_.line);
            }
            LibAttr a;
            a.name = str::toLower(name.text);
            a.line = name.line;
            a.values.push_back(cur_.text);
            advance();
            expectPunct(';');
            g.attrs.push_back(std::move(a));
            return;
        }
        if (!atPunct('(')) {
            throw ParseError("expected ':' or '(' after '" + name.text + "'",
                             name.line);
        }
        // Look past the argument list: '{' makes it a nested group.
        advance();
        std::vector<std::string> values;
        while (!atPunct(')')) {
            if (cur_.kind != Token::Word) {
                throw ParseError("expected a value in '" + name.text + "'",
                                 cur_.line);
            }
            values.push_back(cur_.text);
            advance();
            if (atPunct(',')) advance();
        }
        advance();  // ')'
        if (atPunct('{')) {
            LibGroup child;
            child.kind = str::toLower(name.text);
            child.line = name.line;
            child.args = std::move(values);
            advance();  // '{'
            while (!atPunct('}')) {
                if (cur_.kind == Token::End) {
                    throw ParseError(
                        "unterminated group '" + child.kind + "'",
                        child.line);
                }
                parseStatement(child);
            }
            advance();  // '}'
            g.children.push_back(std::move(child));
            return;
        }
        if (atPunct(';')) advance();  // the ';' is optional in the wild
        LibAttr a;
        a.name = str::toLower(name.text);
        a.line = name.line;
        a.values = std::move(values);
        g.attrs.push_back(std::move(a));
    }

    Lexer lex_;
    Token cur_;
};

// ---- interpretation ------------------------------------------------------

double parseNumber(const std::string& text, int line) {
    const auto v = str::parseDoubleToken(str::trim(text));
    if (!v) throw ParseError("malformed number '" + text + "'", line);
    return *v;
}

std::vector<double> parseNumberList(const std::string& text, int line) {
    std::vector<double> out;
    for (const auto tok : str::split(text, ", \t")) {
        out.push_back(parseNumber(std::string(tok), line));
    }
    return out;
}

// "1ns" / "10ps" -> seconds.
double parseTimeUnit(const std::string& text, int line) {
    std::size_t digits = 0;
    while (digits < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[digits])) != 0 ||
            text[digits] == '.')) {
        ++digits;
    }
    const double mult = digits == 0 ? 1.0
                                    : parseNumber(text.substr(0, digits),
                                                  line);
    const std::string unit = str::toLower(text.substr(digits));
    double scale = 0.0;
    if (unit == "s") scale = 1.0;
    if (unit == "ms") scale = 1e-3;
    if (unit == "us") scale = 1e-6;
    if (unit == "ns") scale = 1e-9;
    if (unit == "ps") scale = 1e-12;
    if (unit == "fs") scale = 1e-15;
    if (scale == 0.0) {
        throw ParseError("unknown time unit '" + text + "'", line);
    }
    return mult * scale;
}

struct Template {
    std::vector<double> index1;  ///< .lib units
    std::vector<double> index2;
    std::string var1, var2;
};

Template parseTemplate(const LibGroup& g) {
    Template t;
    if (const auto* a = g.attr("variable_1")) {
        t.var1 = str::toLower(a->values.at(0));
    }
    if (const auto* a = g.attr("variable_2")) {
        t.var2 = str::toLower(a->values.at(0));
    }
    if (const auto* a = g.attr("index_1")) {
        t.index1 = parseNumberList(a->values.at(0), a->line);
    }
    if (const auto* a = g.attr("index_2")) {
        t.index2 = parseNumberList(a->values.at(0), a->line);
    }
    return t;
}

la::Grid2d parseTable(const LibGroup& g,
                      const std::map<std::string, Template>& templates,
                      double timeScale, double capScale) {
    Template t;
    if (!g.args.empty()) {
        const auto it = templates.find(str::toLower(g.args[0]));
        if (it == templates.end() && str::toLower(g.args[0]) != "scalar") {
            throw ParseError("unknown lu_table_template '" + g.args[0] + "'",
                             g.line);
        }
        if (it != templates.end()) t = it->second;
    }
    // In-group index_1/index_2 override the template's.
    if (const auto* a = g.attr("index_1")) {
        t.index1 = parseNumberList(a->values.at(0), a->line);
    }
    if (const auto* a = g.attr("index_2")) {
        t.index2 = parseNumberList(a->values.at(0), a->line);
    }
    // The supported NLDM layout: rows = input slew, columns = output load.
    // Templates that do not name their variables get the benefit of the
    // doubt (the common convention); named ones must match.
    if (!t.var1.empty() && t.var1 != "input_net_transition") {
        throw ParseError("unsupported variable_1 '" + t.var1 +
                             "' (want input_net_transition)",
                         g.line);
    }
    if (!t.var2.empty() && t.var2 != "total_output_net_capacitance") {
        throw ParseError("unsupported variable_2 '" + t.var2 +
                             "' (want total_output_net_capacitance)",
                         g.line);
    }
    const auto* values = g.attr("values");
    if (values == nullptr) {
        throw ParseError("table '" + g.kind + "' has no values", g.line);
    }
    std::vector<double> z;
    std::size_t columns = 0;
    for (const auto& row : values->values) {
        const auto nums = parseNumberList(row, values->line);
        if (columns == 0) columns = nums.size();
        if (nums.size() != columns) {
            throw ParseError("ragged values rows in '" + g.kind + "'",
                             values->line);
        }
        for (const double v : nums) z.push_back(v * timeScale);
    }
    if (t.index1.size() != values->values.size() ||
        t.index2.size() != columns) {
        throw ParseError("values shape does not match index_1 x index_2 in '" +
                             g.kind + "'",
                         values->line);
    }
    std::vector<double> xs, ys;
    xs.reserve(t.index1.size());
    for (const double v : t.index1) xs.push_back(v * timeScale);
    ys.reserve(t.index2.size());
    for (const double v : t.index2) ys.push_back(v * capScale);
    try {
        return la::Grid2d(std::move(xs), std::move(ys), std::move(z));
    } catch (const Error& e) {
        throw ParseError(std::string("bad table axes: ") + e.what(), g.line);
    }
}

LibertyTimingArc parseTimingArc(const LibGroup& g,
                                const std::map<std::string, Template>& tpl,
                                double timeScale, double capScale) {
    LibertyTimingArc arc;
    arc.line = g.line;
    if (const auto* a = g.attr("related_pin")) {
        arc.relatedPin = str::toLower(a->values.at(0));
    } else {
        throw ParseError("timing group has no related_pin", g.line);
    }
    for (const auto& child : g.children) {
        if (child.kind == "cell_rise") {
            arc.cellRise = parseTable(child, tpl, timeScale, capScale);
        } else if (child.kind == "cell_fall") {
            arc.cellFall = parseTable(child, tpl, timeScale, capScale);
        } else if (child.kind == "rise_transition") {
            arc.riseTransition = parseTable(child, tpl, timeScale, capScale);
        } else if (child.kind == "fall_transition") {
            arc.fallTransition = parseTable(child, tpl, timeScale, capScale);
        }
        // rise_constraint etc.: not a delay arc, skipped.
    }
    return arc;
}

LibertyPin parsePin(const LibGroup& g,
                    const std::map<std::string, Template>& tpl,
                    double timeScale, double capScale) {
    if (g.args.empty()) throw ParseError("pin group has no name", g.line);
    LibertyPin pin;
    pin.name = str::toLower(g.args[0]);
    pin.line = g.line;
    if (const auto* a = g.attr("direction")) {
        const std::string d = str::toLower(a->values.at(0));
        if (d == "input") {
            pin.dir = LibertyPinDir::input;
        } else if (d == "output") {
            pin.dir = LibertyPinDir::output;
        } else if (d == "inout") {
            pin.dir = LibertyPinDir::inout;
        } else if (d == "internal") {
            pin.dir = LibertyPinDir::internal;
        } else {
            throw ParseError("unknown pin direction '" + d + "'", a->line);
        }
    }
    if (const auto* a = g.attr("capacitance")) {
        pin.capacitance = parseNumber(a->values.at(0), a->line) * capScale;
    }
    if (const auto* a = g.attr("function")) {
        pin.function = a->values.at(0);
    }
    for (const auto& child : g.children) {
        if (child.kind == "timing") {
            pin.arcs.push_back(
                parseTimingArc(child, tpl, timeScale, capScale));
        }
    }
    return pin;
}

}  // namespace

LibertyLibrary parseLiberty(const std::string& text) {
    GroupParser parser(text);
    const LibGroup top = parser.parseTop();
    if (top.kind != "library") {
        throw ParseError("top-level group must be 'library', got '" +
                             top.kind + "'",
                         top.line);
    }
    LibertyLibrary lib;
    if (!top.args.empty()) lib.name = top.args[0];

    if (const auto* a = top.attr("time_unit")) {
        lib.timeScale = parseTimeUnit(a->values.at(0), a->line);
    }
    if (const auto* a = top.attr("capacitive_load_unit")) {
        if (a->values.size() != 2) {
            throw ParseError("capacitive_load_unit needs (value, unit)",
                             a->line);
        }
        const double mult = parseNumber(a->values[0], a->line);
        const std::string unit = str::toLower(a->values[1]);
        double scale = 0.0;
        if (unit == "ff") scale = 1e-15;
        if (unit == "pf") scale = 1e-12;
        if (scale == 0.0) {
            throw ParseError("unknown capacitance unit '" + unit + "'",
                             a->line);
        }
        lib.capScale = mult * scale;
    }

    std::map<std::string, Template> templates;
    for (const auto& child : top.children) {
        if (child.kind != "lu_table_template") continue;
        if (child.args.empty()) {
            throw ParseError("lu_table_template has no name", child.line);
        }
        templates[str::toLower(child.args[0])] = parseTemplate(child);
    }

    for (const auto& child : top.children) {
        if (child.kind != "cell") continue;
        if (child.args.empty()) {
            throw ParseError("cell group has no name", child.line);
        }
        LibertyCell cell;
        cell.name = str::toLower(child.args[0]);
        cell.line = child.line;
        for (const auto& sub : child.children) {
            if (sub.kind != "pin") continue;
            LibertyPin pin =
                parsePin(sub, templates, lib.timeScale, lib.capScale);
            const std::string key = pin.name;
            if (!cell.pins.emplace(key, std::move(pin)).second) {
                throw ParseError("duplicate pin '" + key + "' in cell '" +
                                     cell.name + "'",
                                 sub.line);
            }
        }
        const std::string key = cell.name;
        if (!lib.cells.emplace(key, std::move(cell)).second) {
            throw ParseError("duplicate cell '" + key + "'", child.line);
        }
    }
    return lib;
}

}  // namespace sna::parser

// Structural gate-level Verilog netlist reader.
//
// Supported grammar: one `module` with a port list, `input` / `output` /
// `wire` declarations, and cell instantiations with named pin connections
// (`INV_X1 u1 (.A(n1), .Y(n2));`). `//` and `/* */` comments. Everything a
// synthesized flat netlist needs — and nothing more: `assign`, behavioral
// blocks, bus ranges (`[3:0]`), positional connections, and parameter
// overrides throw a line-numbered ParseError naming the construct, so an
// unsupported netlist fails loudly instead of dropping logic. All names are
// lower-cased to match the SPEF reader's convention.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sna::parser {

struct VerilogInstance {
    std::string cellName;  ///< lower-cased cell/module reference
    std::string name;      ///< lower-cased instance name
    /// pin name -> net name, both lower-cased. An explicitly unconnected
    /// pin (`.A()`) maps to the empty string.
    std::map<std::string, std::string> pinNets;
    int line = 0;
};

struct VerilogModule {
    std::string name;  ///< lower-cased
    std::vector<std::string> ports;    ///< port-list order
    std::vector<std::string> inputs;   ///< declaration order
    std::vector<std::string> outputs;  ///< declaration order
    std::vector<std::string> wires;    ///< declaration order
    std::vector<VerilogInstance> instances;  ///< file order

    bool isInput(const std::string& net) const;
};

/// Parse one structural module. Throws sna::ParseError with line numbers.
VerilogModule parseVerilog(const std::string& text);

}  // namespace sna::parser

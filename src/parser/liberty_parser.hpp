// Liberty (.lib) library parser — the NLDM subset the noise flow consumes.
//
// Supported grammar: the group/attribute skeleton (`name (args) { ... }`,
// `attr : value ;`, `attr (v1, v2, ...);`), `/* */` and `//` comments,
// quoted strings, and backslash line continuations. Interpreted groups:
// `library` (time_unit, capacitive_load_unit, lu_table_template), `cell`,
// `pin` (direction, capacitance, function), and `timing` with the four NLDM
// tables `cell_rise` / `cell_fall` / `rise_transition` / `fall_transition`
// indexed by (input_net_transition, total_output_net_capacitance).
// Everything else is tolerated and skipped, so real vendor libraries parse
// even though only the delay/slew model is consumed. All values are
// converted to SI at parse time; cell and pin names are lower-cased (the
// SPEF and Verilog readers do the same). Errors throw line-numbered
// sna::ParseError.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "la/interp.hpp"

namespace sna::parser {

enum class LibertyPinDir { input, output, inout, internal };

/// One `timing () { ... }` group on an output pin. Tables are in SI:
/// axis 1 = input slew (s), axis 2 = output load (F), values in seconds.
/// A table the group does not define stays empty (lint rule SNA-L603).
struct LibertyTimingArc {
    std::string relatedPin;  ///< lower-cased input pin name
    la::Grid2d cellRise;        ///< 50%->50% delay, output rising
    la::Grid2d cellFall;        ///< 50%->50% delay, output falling
    la::Grid2d riseTransition;  ///< output slew, rising
    la::Grid2d fallTransition;  ///< output slew, falling
    int line = 0;

    bool complete() const {
        return !cellRise.empty() && !cellFall.empty() &&
               !riseTransition.empty() && !fallTransition.empty();
    }
};

struct LibertyPin {
    std::string name;  ///< lower-cased
    LibertyPinDir dir = LibertyPinDir::input;
    double capacitance = 0.0;  ///< F (input pins)
    std::string function;      ///< boolean function text, as written
    std::vector<LibertyTimingArc> arcs;  ///< output pins only
    int line = 0;
};

struct LibertyCell {
    std::string name;  ///< lower-cased
    std::map<std::string, LibertyPin> pins;
    int line = 0;

    /// The arc driving this cell's output from `inputPin`, or nullptr.
    const LibertyTimingArc* arcFrom(const std::string& inputPin) const;
    /// The single output pin, or nullptr when none / more than one.
    const LibertyPin* outputPin() const;
};

struct LibertyLibrary {
    std::string name;
    double timeScale = 1e-9;  ///< .lib time unit in seconds (default ns)
    double capScale = 1e-12;  ///< .lib load unit in farads (default pF)
    std::map<std::string, LibertyCell> cells;  ///< keyed lower-cased

    /// Case-insensitive cell lookup, or nullptr.
    const LibertyCell* findCell(const std::string& name) const;
};

/// Parse Liberty text. Throws sna::ParseError with line numbers.
LibertyLibrary parseLiberty(const std::string& text);

}  // namespace sna::parser

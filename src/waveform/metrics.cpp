#include "waveform/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::wave {

namespace {

// Crossing time of sign*(v-baseline) == threshold between two samples,
// assuming the segment actually crosses.
double crossingTime(const Sample& a, const Sample& b, double baseline,
                    double sign, double threshold) {
    const double fa = sign * (a.v - baseline) - threshold;
    const double fb = sign * (b.v - baseline) - threshold;
    const double span = fb - fa;
    if (span == 0.0) return a.t;
    const double f = -fa / span;
    return a.t + f * (b.t - a.t);
}

}  // namespace

GlitchMetrics measureGlitch(const Waveform& w, double baseline) {
    SNA_REQUIRE(!w.empty(), "cannot measure an empty waveform");
    GlitchMetrics m;
    m.baseline = baseline;

    // Locate the extremum deviation; breakpoints are sufficient because the
    // waveform is piecewise linear.
    double bestAbs = 0.0;
    for (const auto& s : w.samples()) {
        const double dev = s.v - baseline;
        if (std::abs(dev) > bestAbs) {
            bestAbs = std::abs(dev);
            m.peak = dev;
            m.peakTime = s.t;
        }
    }
    if (bestAbs == 0.0) return m;  // perfectly quiet net

    const double sign = (m.peak >= 0.0) ? 1.0 : -1.0;
    m.area = sign * integrateDeviation(w, baseline, sign);
    m.width = timeAbove(w, baseline, sign, 0.5 * bestAbs);
    return m;
}

double integrate(const Waveform& w) {
    SNA_REQUIRE(!w.empty(), "cannot integrate an empty waveform");
    double acc = 0.0;
    const auto& s = w.samples();
    for (std::size_t i = 1; i < s.size(); ++i) {
        acc += 0.5 * (s[i].v + s[i - 1].v) * (s[i].t - s[i - 1].t);
    }
    return acc;
}

double integrateDeviation(const Waveform& w, double baseline, double sign) {
    SNA_REQUIRE(!w.empty(), "cannot integrate an empty waveform");
    const auto& s = w.samples();
    double acc = 0.0;
    for (std::size_t i = 1; i < s.size(); ++i) {
        double fa = sign * (s[i - 1].v - baseline);
        double fb = sign * (s[i].v - baseline);
        double ta = s[i - 1].t;
        double tb = s[i].t;
        if (fa <= 0.0 && fb <= 0.0) continue;
        if (fa < 0.0) {  // clip at the zero crossing
            ta = crossingTime(s[i - 1], s[i], baseline, sign, 0.0);
            fa = 0.0;
        } else if (fb < 0.0) {
            tb = crossingTime(s[i - 1], s[i], baseline, sign, 0.0);
            fb = 0.0;
        }
        acc += 0.5 * (fa + fb) * (tb - ta);
    }
    return acc;
}

double timeAbove(const Waveform& w, double baseline, double sign,
                 double threshold) {
    SNA_REQUIRE(threshold >= 0.0, "threshold must be non-negative");
    const auto& s = w.samples();
    double acc = 0.0;
    for (std::size_t i = 1; i < s.size(); ++i) {
        const double fa = sign * (s[i - 1].v - baseline) - threshold;
        const double fb = sign * (s[i].v - baseline) - threshold;
        if (fa >= 0.0 && fb >= 0.0) {
            acc += s[i].t - s[i - 1].t;
        } else if (fa >= 0.0 || fb >= 0.0) {
            const double tc =
                crossingTime(s[i - 1], s[i], baseline, sign, threshold);
            acc += (fa >= 0.0) ? (tc - s[i - 1].t) : (s[i].t - tc);
        }
    }
    return acc;
}

double maxDifference(const Waveform& a, const Waveform& b) {
    SNA_REQUIRE(!a.empty() && !b.empty(), "comparing empty waveforms");
    std::vector<double> times;
    for (const auto& s : a.samples()) times.push_back(s.t);
    for (const auto& s : b.samples()) times.push_back(s.t);
    std::sort(times.begin(), times.end());
    double m = 0.0;
    for (double t : times) m = std::max(m, std::abs(a.value(t) - b.value(t)));
    return m;
}

double rmsDifference(const Waveform& a, const Waveform& b, std::size_t n) {
    SNA_REQUIRE(!a.empty() && !b.empty(), "comparing empty waveforms");
    SNA_REQUIRE(n >= 2, "rms grid needs at least two points");
    const double t0 = std::min(a.startTime(), b.startTime());
    const double t1 = std::max(a.endTime(), b.endTime());
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                                  static_cast<double>(n - 1);
        const double d = a.value(t) - b.value(t);
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(n));
}

}  // namespace sna::wave

#include "waveform/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::wave {

Waveform::Waveform(std::vector<Sample> samples) : samples_(std::move(samples)) {
    for (std::size_t i = 1; i < samples_.size(); ++i) {
        SNA_REQUIRE(samples_[i].t > samples_[i - 1].t,
                    "waveform times must be strictly increasing");
    }
}

Waveform Waveform::constant(double value, double t0, double t1) {
    SNA_REQUIRE(t1 > t0, "constant waveform needs a positive span");
    return Waveform({{t0, value}, {t1, value}});
}

double Waveform::startTime() const {
    SNA_REQUIRE(!samples_.empty(), "empty waveform has no start time");
    return samples_.front().t;
}

double Waveform::endTime() const {
    SNA_REQUIRE(!samples_.empty(), "empty waveform has no end time");
    return samples_.back().t;
}

double Waveform::value(double t) const {
    SNA_REQUIRE(!samples_.empty(), "cannot evaluate an empty waveform");
    if (t <= samples_.front().t) return samples_.front().v;
    if (t >= samples_.back().t) return samples_.back().v;
    const auto it = std::lower_bound(
        samples_.begin(), samples_.end(), t,
        [](const Sample& s, double time) { return s.t < time; });
    const Sample& hi = *it;
    const Sample& lo = *(it - 1);
    const double f = (t - lo.t) / (hi.t - lo.t);
    return lo.v + f * (hi.v - lo.v);
}

void Waveform::append(double t, double v) {
    SNA_REQUIRE(samples_.empty() || t > samples_.back().t,
                "appended time must advance");
    samples_.push_back({t, v});
}

Waveform Waveform::shifted(double dt) const {
    std::vector<Sample> out = samples_;
    for (auto& s : out) s.t += dt;
    return Waveform(std::move(out));
}

Waveform Waveform::scaled(double k) const {
    std::vector<Sample> out = samples_;
    for (auto& s : out) s.v *= k;
    return Waveform(std::move(out));
}

Waveform Waveform::offset(double dv) const {
    std::vector<Sample> out = samples_;
    for (auto& s : out) s.v += dv;
    return Waveform(std::move(out));
}

namespace {
Waveform combine(const Waveform& a, const Waveform& b, double sign) {
    SNA_REQUIRE(!a.empty() && !b.empty(), "combining empty waveforms");
    std::vector<double> times;
    times.reserve(a.size() + b.size());
    for (const auto& s : a.samples()) times.push_back(s.t);
    for (const auto& s : b.samples()) times.push_back(s.t);
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    std::vector<Sample> out;
    out.reserve(times.size());
    for (double t : times) out.push_back({t, a.value(t) + sign * b.value(t)});
    return Waveform(std::move(out));
}
}  // namespace

Waveform Waveform::plus(const Waveform& other) const {
    return combine(*this, other, +1.0);
}

Waveform Waveform::minus(const Waveform& other) const {
    return combine(*this, other, -1.0);
}

Waveform Waveform::window(double t0, double t1) const {
    SNA_REQUIRE(t1 > t0, "window needs a positive span");
    std::vector<Sample> out;
    out.push_back({t0, value(t0)});
    for (const auto& s : samples_) {
        if (s.t > t0 && s.t < t1) out.push_back(s);
    }
    out.push_back({t1, value(t1)});
    return Waveform(std::move(out));
}

Waveform Waveform::resampled(std::size_t n) const {
    SNA_REQUIRE(n >= 2, "resample needs at least two points");
    const double t0 = startTime();
    const double t1 = endTime();
    std::vector<Sample> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = t0 + (t1 - t0) * static_cast<double>(i) /
                                  static_cast<double>(n - 1);
        out.push_back({t, value(t)});
    }
    return Waveform(std::move(out));
}

}  // namespace sna::wave

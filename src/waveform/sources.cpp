#include "waveform/sources.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sna::wave {

Waveform saturatedRamp(double v0, double v1, double t0, double transition,
                       double tEnd) {
    SNA_REQUIRE(transition > 0.0, "ramp transition must be positive");
    SNA_REQUIRE(tEnd > t0 + transition, "ramp must finish before tEnd");
    std::vector<Sample> s;
    if (t0 > 0.0) s.push_back({0.0, v0});
    s.push_back({t0, v0});
    s.push_back({t0 + transition, v1});
    s.push_back({tEnd, v1});
    return Waveform(std::move(s));
}

Waveform triangleGlitch(double baseline, double height, double t0,
                        double width, double tEnd) {
    SNA_REQUIRE(width > 0.0, "glitch width must be positive");
    SNA_REQUIRE(tEnd > t0 + width, "glitch must finish before tEnd");
    std::vector<Sample> s;
    if (t0 > 0.0) s.push_back({0.0, baseline});
    s.push_back({t0, baseline});
    s.push_back({t0 + 0.5 * width, baseline + height});
    s.push_back({t0 + width, baseline});
    s.push_back({tEnd, baseline});
    return Waveform(std::move(s));
}

Waveform trapezoidGlitch(double baseline, double height, double t0,
                         double edge, double plateau, double tEnd) {
    SNA_REQUIRE(edge > 0.0 && plateau >= 0.0, "bad trapezoid parameters");
    SNA_REQUIRE(tEnd > t0 + 2 * edge + plateau, "glitch must finish before tEnd");
    std::vector<Sample> s;
    if (t0 > 0.0) s.push_back({0.0, baseline});
    s.push_back({t0, baseline});
    s.push_back({t0 + edge, baseline + height});
    if (plateau > 0.0) s.push_back({t0 + edge + plateau, baseline + height});
    s.push_back({t0 + 2 * edge + plateau, baseline});
    s.push_back({tEnd, baseline});
    return Waveform(std::move(s));
}

Waveform exponentialGlitch(double baseline, double height, double t0,
                           double tauRise, double tauFall, double tEnd,
                           std::size_t n) {
    SNA_REQUIRE(tauRise > 0.0 && tauFall > 0.0, "time constants must be positive");
    SNA_REQUIRE(tEnd > t0 && n >= 8, "bad exponential glitch span");
    // Double-exponential pulse normalized so its maximum equals `height`.
    const double tPeak =
        (tauRise * tauFall / (tauFall - tauRise + 1e-30)) *
        std::log(tauFall / tauRise);
    const double norm =
        std::exp(-tPeak / tauFall) - std::exp(-tPeak / tauRise);
    SNA_REQUIRE(std::abs(norm) > 1e-12, "degenerate exponential glitch");
    std::vector<Sample> s;
    if (t0 > 0.0) s.push_back({0.0, baseline});
    for (std::size_t i = 0; i <= n; ++i) {
        const double t =
            t0 + (tEnd - t0) * static_cast<double>(i) / static_cast<double>(n);
        const double x = t - t0;
        const double pulse =
            (std::exp(-x / tauFall) - std::exp(-x / tauRise)) / norm;
        if (!s.empty() && t <= s.back().t) continue;
        s.push_back({t, baseline + height * pulse});
    }
    return Waveform(std::move(s));
}

}  // namespace sna::wave

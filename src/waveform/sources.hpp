// Canonical stimulus shapes used across characterization and noise analysis.
#pragma once

#include "waveform/waveform.hpp"

namespace sna::wave {

/// Saturated ramp: v0 until t0, linear to v1 over `transition`, then v1.
/// This is the aggressor Thevenin source shape (V_TH in the paper, after
/// Dartu–Pileggi).
Waveform saturatedRamp(double v0, double v1, double t0, double transition,
                       double tEnd);

/// Triangular glitch on a baseline: rises from `baseline` at t0 to
/// baseline+height at t0+width/2, back at t0+width. The standard shape for
/// noise-propagation table characterization and NRC probing.
Waveform triangleGlitch(double baseline, double height, double t0,
                        double width, double tEnd);

/// Trapezoidal glitch: ramp up over `edge`, hold for `plateau`, ramp down.
Waveform trapezoidGlitch(double baseline, double height, double t0,
                         double edge, double plateau, double tEnd);

/// Single-pole decaying-exponential glitch sampled as PWL (n samples); models
/// realistic crosstalk pulses with a fast rise and RC tail.
Waveform exponentialGlitch(double baseline, double height, double t0,
                           double tauRise, double tauFall, double tEnd,
                           std::size_t n = 64);

}  // namespace sna::wave

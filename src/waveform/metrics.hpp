// Glitch metrics: the quantities the paper's tables report.
//
// A noise glitch is a deviation from a quiet baseline voltage. Metrics are
// computed on the deviation |v(t) - baseline|, signed by the dominant
// direction. `peak` is the paper's "Peak (V)", `area` its "Area (V·ps)"
// (reported in SI V·s here; benches convert), `width` the time spent above
// half of the peak deviation (the conventional glitch width in SNA noise
// rejection curves).
#pragma once

#include "waveform/waveform.hpp"

namespace sna::wave {

struct GlitchMetrics {
    double peak = 0.0;      ///< max deviation from baseline, volts (signed)
    double peakTime = 0.0;  ///< time of the peak
    double area = 0.0;      ///< integral of deviation in the glitch direction, V·s
    double width = 0.0;     ///< time above 50% of |peak|, seconds
    double baseline = 0.0;  ///< the quiet level the metrics are relative to
};

/// Measure the glitch in `w` relative to `baseline`. The glitch direction is
/// the sign of the largest deviation; area integrates only the same-signed
/// deviation (standard SNA practice, so pre/post ringing of the opposite
/// sign does not cancel the glitch).
GlitchMetrics measureGlitch(const Waveform& w, double baseline);

/// Trapezoidal integral of the waveform over its span.
double integrate(const Waveform& w);

/// Integral of max(sign*(v - baseline), 0): one-sided deviation area.
double integrateDeviation(const Waveform& w, double baseline, double sign);

/// Total time with sign*(v(t)-baseline) >= threshold (threshold >= 0).
double timeAbove(const Waveform& w, double baseline, double sign,
                 double threshold);

/// Max |a(t) - b(t)| over the union of spans (engine-vs-engine comparisons).
double maxDifference(const Waveform& a, const Waveform& b);

/// Root-mean-square difference on a uniform n-point grid.
double rmsDifference(const Waveform& a, const Waveform& b, std::size_t n = 512);

}  // namespace sna::wave

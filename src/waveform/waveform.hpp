// Piecewise-linear waveform: the common currency of the noise flow.
//
// Every engine in OpenSNA (SPICE golden, cluster macromodel, linear
// baselines) produces node voltages as Waveform objects; every metric the
// paper reports (glitch peak, area, width) is computed from them by
// waveform/metrics.hpp. Samples are (t, v) breakpoints with strictly
// increasing time; evaluation outside the span clamps to the end values,
// which matches how SPICE treats PWL sources.
#pragma once

#include <cstddef>
#include <vector>

namespace sna::wave {

struct Sample {
    double t;
    double v;
};

class Waveform {
public:
    Waveform() = default;

    /// Builds from breakpoints; requires strictly increasing times.
    explicit Waveform(std::vector<Sample> samples);

    static Waveform constant(double value, double t0, double t1);

    bool empty() const { return samples_.empty(); }
    std::size_t size() const { return samples_.size(); }
    const std::vector<Sample>& samples() const { return samples_; }

    double startTime() const;
    double endTime() const;

    /// Linear interpolation; clamps outside [startTime, endTime].
    double value(double t) const;

    /// Append a breakpoint; time must exceed the current endTime.
    void append(double t, double v);

    // ---- transformations (all return new waveforms) ----

    /// Time shift by dt (positive = later).
    Waveform shifted(double dt) const;

    /// Value scale by k.
    Waveform scaled(double k) const;

    /// Value offset by dv.
    Waveform offset(double dv) const;

    /// Pointwise sum on the union of breakpoints, clamped extension.
    Waveform plus(const Waveform& other) const;

    /// Pointwise difference (this - other).
    Waveform minus(const Waveform& other) const;

    /// Restriction to [t0, t1] with interpolated end samples.
    Waveform window(double t0, double t1) const;

    /// Resampled on a uniform grid of n >= 2 points across the span.
    Waveform resampled(std::size_t n) const;

private:
    std::vector<Sample> samples_;
};

}  // namespace sna::wave

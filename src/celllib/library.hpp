// The bundled standard-cell library.
//
// Twelve combinational cells (inverters/buffers, NAND/NOR stacks, AOI/OAI
// complex gates) at one or more drive strengths, resolved against a
// Technology. This plays the role of the commercial library the paper
// characterizes; the victim of its main experiment is NAND2_X1 and the
// aggressor driver INV_X1/X2.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "celllib/cell.hpp"

namespace sna::cell {

class CellLibrary {
public:
    explicit CellLibrary(const tech::Technology& tech);

    const tech::Technology& technology() const { return *tech_; }

    bool has(const std::string& name) const;
    const Cell& cell(const std::string& name) const;
    std::vector<std::string> names() const;

private:
    void define(const std::string& name, std::vector<Pin> pins,
                std::vector<TransistorSpec> fets, Cell::LogicFn logic);

    const tech::Technology* tech_;
    std::map<std::string, Cell> cells_;
};

}  // namespace sna::cell

// The bundled standard-cell library.
//
// Twelve combinational cells (inverters/buffers, NAND/NOR stacks, AOI/OAI
// complex gates) at one or more drive strengths, resolved against a
// Technology. This plays the role of the commercial library the paper
// characterizes; the victim of its main experiment is NAND2_X1 and the
// aggressor driver INV_X1/X2.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "celllib/cell.hpp"

namespace sna::cell {

class CellLibrary {
public:
    explicit CellLibrary(const tech::Technology& tech);

    const tech::Technology& technology() const { return *tech_; }

    bool has(const std::string& name) const;
    const Cell& cell(const std::string& name) const;
    std::vector<std::string> names() const;

    /// Define an extra cell next to the bundled set — the seam for user
    /// libraries and for lint tests that need a deliberately broken cell.
    /// Throws ModelError if the name is already taken.
    void addCell(const std::string& name, std::vector<Pin> pins,
                 std::vector<TransistorSpec> fets, Cell::LogicFn logic);

private:
    void define(const std::string& name, std::vector<Pin> pins,
                std::vector<TransistorSpec> fets, Cell::LogicFn logic);

    const tech::Technology* tech_;
    std::map<std::string, Cell> cells_;
};

/// Process-wide library for `tech`, built once per distinct technology and
/// shared. Thread-safe; the returned reference stays valid for the process
/// lifetime. Hot paths (cluster assembly, characterization, NRC checks) use
/// this instead of constructing a fresh CellLibrary per call.
///
/// Keyed on the technology's full electrical identity (bitwise parameters,
/// not the object's address) and backed by an owned copy, so short-lived or
/// mutated Technology objects — e.g. a corner sweep rebuilding one at the
/// same stack address — each get their own correct library.
const CellLibrary& sharedLibrary(const tech::Technology& tech);

}  // namespace sna::cell

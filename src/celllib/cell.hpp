// Standard-cell model: transistor topology + logic function + pin metadata.
//
// A Cell owns its transistor-level description (resolved against one
// Technology at library construction) and knows enough logic to drive the
// noise flow: which input vector holds the output at a given level, and what
// the output level is for a given input vector. Instantiation lowers the
// cell into a spice::Circuit, creating the internal nodes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "tech/tech.hpp"

namespace sna::cell {

enum class PinDir { Input, Output };

struct Pin {
    std::string name;
    PinDir dir = PinDir::Input;
};

/// One transistor of the cell netlist. Terminals name either a pin, one of
/// the rails ("vdd"/"gnd"), or a cell-internal node (any other string).
struct TransistorSpec {
    std::string name;
    spice::MosType type = spice::MosType::Nmos;
    std::string drain, gate, source, bulk;
    double width = 0.0;   ///< m
    double length = 0.0;  ///< m
};

class Cell {
public:
    using LogicFn = std::function<bool(const std::vector<bool>&)>;

    Cell(std::string name, const tech::Technology& tech,
         std::vector<Pin> pins, std::vector<TransistorSpec> fets,
         LogicFn logic);

    const std::string& name() const { return name_; }
    const tech::Technology& technology() const { return *tech_; }
    const std::vector<Pin>& pins() const { return pins_; }
    const std::vector<TransistorSpec>& transistors() const { return fets_; }

    /// Names of the input pins, in declaration order (the LogicFn order).
    std::vector<std::string> inputNames() const;
    /// The single output pin (all bundled cells have exactly one).
    const std::string& outputName() const;

    /// Logic value of the output for a full input assignment.
    bool evaluate(const std::map<std::string, bool>& inputs) const;

    /// A canonical input assignment that holds the output at `level` while
    /// keeping pin `sensitiveInput` logically controlling: flipping only
    /// that pin flips the output. Throws ModelError if no such vector
    /// exists (e.g. non-unate corner); all bundled cells have one for every
    /// input. Pass an empty string to get any vector producing `level`.
    std::map<std::string, bool> holdingVector(bool level,
                                              const std::string& sensitiveInput)
        const;

    /// Lower into a circuit. `pinNodes` must map every pin name; `vdd` is
    /// the supply node. Internal nodes are created as "<inst>.<node>".
    void instantiate(spice::Circuit& c, const std::string& inst,
                     const std::map<std::string, spice::NodeId>& pinNodes,
                     spice::NodeId vdd) const;

    /// Analytic input pin capacitance (gate oxide + overlaps of every
    /// transistor the pin drives), used for receiver loading.
    double inputCapacitance(const std::string& pin) const;

    /// Analytic output pin capacitance (junction + gate-overlap caps of
    /// every transistor terminal on the pin); the driver's own loading of
    /// its net, needed by the macromodel because the table-VCCS itself is
    /// purely resistive.
    double outputCapacitance(const std::string& pin) const;

private:
    std::string name_;
    const tech::Technology* tech_;
    std::vector<Pin> pins_;
    std::vector<TransistorSpec> fets_;
    LogicFn logic_;
};

}  // namespace sna::cell

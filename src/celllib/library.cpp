#include "celllib/library.hpp"

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/error.hpp"

namespace sna::cell {

namespace {

using spice::MosType;

TransistorSpec fet(const std::string& name, MosType type,
                   const std::string& d, const std::string& g,
                   const std::string& s, double w, double l) {
    TransistorSpec t;
    t.name = name;
    t.type = type;
    t.drain = d;
    t.gate = g;
    t.source = s;
    t.bulk = (type == MosType::Nmos) ? "gnd" : "vdd";
    t.width = w;
    t.length = l;
    return t;
}

}  // namespace

void CellLibrary::define(const std::string& name, std::vector<Pin> pins,
                         std::vector<TransistorSpec> fets,
                         Cell::LogicFn logic) {
    cells_.emplace(name, Cell(name, *tech_, std::move(pins), std::move(fets),
                              std::move(logic)));
}

void CellLibrary::addCell(const std::string& name, std::vector<Pin> pins,
                          std::vector<TransistorSpec> fets,
                          Cell::LogicFn logic) {
    if (has(name)) {
        throw ModelError("cell '" + name + "' is already defined");
    }
    define(name, std::move(pins), std::move(fets), std::move(logic));
}

CellLibrary::CellLibrary(const tech::Technology& tech) : tech_(&tech) {
    const double l = tech.lmin;
    const double wn = tech.wnUnit;
    const double wp = tech.wpUnit;

    // ---- inverters and buffer -------------------------------------------
    for (const int k : {1, 2, 4}) {
        define("INV_X" + std::to_string(k),
               {{"a", PinDir::Input}, {"y", PinDir::Output}},
               {fet("mp", MosType::Pmos, "y", "a", "vdd", k * wp, l),
                fet("mn", MosType::Nmos, "y", "a", "gnd", k * wn, l)},
               [](const std::vector<bool>& in) { return !in[0]; });
    }
    define("BUF_X2",
           {{"a", PinDir::Input}, {"y", PinDir::Output}},
           {fet("mp1", MosType::Pmos, "mid", "a", "vdd", wp, l),
            fet("mn1", MosType::Nmos, "mid", "a", "gnd", wn, l),
            fet("mp2", MosType::Pmos, "y", "mid", "vdd", 2 * wp, l),
            fet("mn2", MosType::Nmos, "y", "mid", "gnd", 2 * wn, l)},
           [](const std::vector<bool>& in) { return in[0]; });

    // ---- NAND family: series NMOS stack (2x width), parallel PMOS --------
    for (const int k : {1, 2}) {
        define("NAND2_X" + std::to_string(k),
               {{"a", PinDir::Input},
                {"b", PinDir::Input},
                {"y", PinDir::Output}},
               {fet("mpa", MosType::Pmos, "y", "a", "vdd", k * wp, l),
                fet("mpb", MosType::Pmos, "y", "b", "vdd", k * wp, l),
                fet("mna", MosType::Nmos, "y", "a", "n1", 2 * k * wn, l),
                fet("mnb", MosType::Nmos, "n1", "b", "gnd", 2 * k * wn, l)},
               [](const std::vector<bool>& in) { return !(in[0] && in[1]); });
    }
    define("NAND3_X1",
           {{"a", PinDir::Input},
            {"b", PinDir::Input},
            {"c", PinDir::Input},
            {"y", PinDir::Output}},
           {fet("mpa", MosType::Pmos, "y", "a", "vdd", wp, l),
            fet("mpb", MosType::Pmos, "y", "b", "vdd", wp, l),
            fet("mpc", MosType::Pmos, "y", "c", "vdd", wp, l),
            fet("mna", MosType::Nmos, "y", "a", "n1", 3 * wn, l),
            fet("mnb", MosType::Nmos, "n1", "b", "n2", 3 * wn, l),
            fet("mnc", MosType::Nmos, "n2", "c", "gnd", 3 * wn, l)},
           [](const std::vector<bool>& in) {
               return !(in[0] && in[1] && in[2]);
           });

    // ---- NOR family: series PMOS stack (2x width), parallel NMOS ---------
    for (const int k : {1, 2}) {
        define("NOR2_X" + std::to_string(k),
               {{"a", PinDir::Input},
                {"b", PinDir::Input},
                {"y", PinDir::Output}},
               {fet("mpa", MosType::Pmos, "p1", "a", "vdd", 2 * k * wp, l),
                fet("mpb", MosType::Pmos, "y", "b", "p1", 2 * k * wp, l),
                fet("mna", MosType::Nmos, "y", "a", "gnd", k * wn, l),
                fet("mnb", MosType::Nmos, "y", "b", "gnd", k * wn, l)},
               [](const std::vector<bool>& in) { return !(in[0] || in[1]); });
    }
    define("NOR3_X1",
           {{"a", PinDir::Input},
            {"b", PinDir::Input},
            {"c", PinDir::Input},
            {"y", PinDir::Output}},
           {fet("mpa", MosType::Pmos, "p1", "a", "vdd", 3 * wp, l),
            fet("mpb", MosType::Pmos, "p2", "b", "p1", 3 * wp, l),
            fet("mpc", MosType::Pmos, "y", "c", "p2", 3 * wp, l),
            fet("mna", MosType::Nmos, "y", "a", "gnd", wn, l),
            fet("mnb", MosType::Nmos, "y", "b", "gnd", wn, l),
            fet("mnc", MosType::Nmos, "y", "c", "gnd", wn, l)},
           [](const std::vector<bool>& in) {
               return !(in[0] || in[1] || in[2]);
           });

    // ---- complex gates ----------------------------------------------------
    // AOI21: y = !(a*b + c)
    define("AOI21_X1",
           {{"a", PinDir::Input},
            {"b", PinDir::Input},
            {"c", PinDir::Input},
            {"y", PinDir::Output}},
           {fet("mpa", MosType::Pmos, "p1", "a", "vdd", 2 * wp, l),
            fet("mpb", MosType::Pmos, "p1", "b", "vdd", 2 * wp, l),
            fet("mpc", MosType::Pmos, "y", "c", "p1", 2 * wp, l),
            fet("mna", MosType::Nmos, "y", "a", "n1", 2 * wn, l),
            fet("mnb", MosType::Nmos, "n1", "b", "gnd", 2 * wn, l),
            fet("mnc", MosType::Nmos, "y", "c", "gnd", wn, l)},
           [](const std::vector<bool>& in) {
               return !((in[0] && in[1]) || in[2]);
           });
    // OAI21: y = !((a+b) * c)
    define("OAI21_X1",
           {{"a", PinDir::Input},
            {"b", PinDir::Input},
            {"c", PinDir::Input},
            {"y", PinDir::Output}},
           {fet("mpa", MosType::Pmos, "p1", "a", "vdd", 2 * wp, l),
            fet("mpb", MosType::Pmos, "y", "b", "p1", 2 * wp, l),
            fet("mpc", MosType::Pmos, "y", "c", "vdd", 2 * wp, l),
            fet("mna", MosType::Nmos, "y", "a", "n1", 2 * wn, l),
            fet("mnb", MosType::Nmos, "y", "b", "n1", 2 * wn, l),
            fet("mnc", MosType::Nmos, "n1", "c", "gnd", 2 * wn, l)},
           [](const std::vector<bool>& in) {
               return !((in[0] || in[1]) && in[2]);
           });
}

bool CellLibrary::has(const std::string& name) const {
    return cells_.find(name) != cells_.end();
}

const Cell& CellLibrary::cell(const std::string& name) const {
    const auto it = cells_.find(name);
    if (it == cells_.end()) {
        throw ModelError("cell library has no cell '" + name + "'");
    }
    return it->second;
}

std::vector<std::string> CellLibrary::names() const {
    std::vector<std::string> out;
    out.reserve(cells_.size());
    for (const auto& [name, c] : cells_) out.push_back(name);
    return out;
}

namespace {

void putDouble(std::ostringstream& os, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    os << '/' << std::hex << bits << std::dec;
}

void putMos(std::ostringstream& os, const spice::MosModel& m) {
    putDouble(os, m.vt0);
    putDouble(os, m.kp);
    putDouble(os, m.lambda);
    putDouble(os, m.gamma);
    putDouble(os, m.phi);
    putDouble(os, m.cox);
    putDouble(os, m.cgso);
    putDouble(os, m.cgdo);
    putDouble(os, m.cj);
    putDouble(os, m.cjsw);
    putDouble(os, m.ldiff);
}

// Full electrical identity, bitwise: two technologies map to the same
// shared library only when every parameter a cell or layer query could
// read is identical. Address-based keying would hand stale models to a
// corner sweep that rebuilds Technology values at a reused address.
std::string techKey(const tech::Technology& t) {
    std::ostringstream os;
    os << t.name;
    putDouble(os, t.vdd);
    putDouble(os, t.lmin);
    putDouble(os, t.wnUnit);
    putDouble(os, t.wpUnit);
    putMos(os, t.nmos);
    putMos(os, t.pmos);
    for (const auto& l : t.layers) {
        os << '/' << l.name;
        putDouble(os, l.rPerUm);
        putDouble(os, l.cgPerUm);
        putDouble(os, l.ccPerUm);
    }
    return os.str();
}

// The registry owns a copy of the Technology so the library (and its
// technology()) stay valid even after the caller's object is destroyed.
struct SharedEntry {
    explicit SharedEntry(const tech::Technology& t) : tech(t), lib(tech) {}
    tech::Technology tech;
    CellLibrary lib;
};

}  // namespace

const CellLibrary& sharedLibrary(const tech::Technology& tech) {
    static std::mutex mu;
    static std::map<std::string, std::unique_ptr<SharedEntry>> libs;
    const std::lock_guard<std::mutex> lock(mu);
    auto key = techKey(tech);
    auto it = libs.find(key);
    if (it == libs.end()) {
        it = libs.emplace(std::move(key), std::make_unique<SharedEntry>(tech))
                 .first;
    }
    return it->second->lib;
}

}  // namespace sna::cell

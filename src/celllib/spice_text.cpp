#include "celllib/spice_text.hpp"

#include <sstream>

namespace sna::cell {

std::string modelName(const tech::Technology& t, spice::MosType type) {
    return (type == spice::MosType::Nmos ? "nmos_" : "pmos_") + t.name;
}

namespace {
void emitModel(std::ostringstream& os, const tech::Technology& t,
               const spice::MosModel& m) {
    os << ".model " << modelName(t, m.type) << ' '
       << (m.type == spice::MosType::Nmos ? "nmos" : "pmos") << " (level=1"
       << " vto=" << m.vt0 << " kp=" << m.kp << " lambda=" << m.lambda
       << " gamma=" << m.gamma << " phi=" << m.phi << " cox=" << m.cox
       << " cgso=" << m.cgso << " cgdo=" << m.cgdo << " cj=" << m.cj
       << " cjsw=" << m.cjsw << " ldiff=" << m.ldiff << ")\n";
}
}  // namespace

std::string modelCards(const tech::Technology& t) {
    std::ostringstream os;
    os.precision(9);
    emitModel(os, t, t.nmos);
    emitModel(os, t, t.pmos);
    return os.str();
}

std::string subcktText(const Cell& c) {
    std::ostringstream os;
    os.precision(9);
    os << ".subckt " << c.name();
    for (const auto& in : c.inputNames()) os << ' ' << in;
    os << ' ' << c.outputName() << " vdd gnd\n";
    int i = 0;
    for (const auto& f : c.transistors()) {
        os << 'm' << ++i << ' ' << f.drain << ' ' << f.gate << ' ' << f.source
           << ' ' << f.bulk << ' '
           << modelName(c.technology(),
                        f.type)
           << " w=" << f.width << " l=" << f.length << "\n";
    }
    os << ".ends " << c.name() << "\n";
    return os.str();
}

std::string libraryText(const CellLibrary& lib) {
    std::ostringstream os;
    os << "* OpenSNA cell library for technology " << lib.technology().name
       << "\n";
    os << modelCards(lib.technology());
    for (const auto& name : lib.names()) {
        os << subcktText(lib.cell(name));
    }
    return os.str();
}

}  // namespace sna::cell

// SPICE text emission for technologies and cells.
//
// Produces .model cards and .subckt definitions consumable by the bundled
// SPICE parser (round-trip tested) and by external tools; this is the
// library-exchange path a downstream user would script against.
#pragma once

#include <string>

#include "celllib/library.hpp"

namespace sna::cell {

/// Model-card name used for a technology's NMOS/PMOS.
std::string modelName(const tech::Technology& t, spice::MosType type);

/// ".model <name> nmos|pmos (vto=... kp=... ...)" cards for both devices.
std::string modelCards(const tech::Technology& t);

/// ".subckt <CELL> <inputs...> <output> vdd gnd" + transistor cards.
std::string subcktText(const Cell& c);

/// Models + every cell of the library, as one netlist-include text.
std::string libraryText(const CellLibrary& lib);

}  // namespace sna::cell

#include "celllib/cell.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::cell {

Cell::Cell(std::string name, const tech::Technology& tech,
           std::vector<Pin> pins, std::vector<TransistorSpec> fets,
           LogicFn logic)
    : name_(std::move(name)),
      tech_(&tech),
      pins_(std::move(pins)),
      fets_(std::move(fets)),
      logic_(std::move(logic)) {
    SNA_REQUIRE(!pins_.empty() && !fets_.empty() && logic_,
                "cell '" + name_ + "' is incomplete");
    int outputs = 0;
    for (const auto& p : pins_) {
        if (p.dir == PinDir::Output) ++outputs;
    }
    SNA_REQUIRE(outputs == 1, "cell '" + name_ + "' must have one output");
}

std::vector<std::string> Cell::inputNames() const {
    std::vector<std::string> out;
    for (const auto& p : pins_) {
        if (p.dir == PinDir::Input) out.push_back(p.name);
    }
    return out;
}

const std::string& Cell::outputName() const {
    for (const auto& p : pins_) {
        if (p.dir == PinDir::Output) return p.name;
    }
    throw ModelError("cell '" + name_ + "' has no output pin");
}

bool Cell::evaluate(const std::map<std::string, bool>& inputs) const {
    std::vector<bool> ordered;
    for (const auto& in : inputNames()) {
        const auto it = inputs.find(in);
        SNA_REQUIRE(it != inputs.end(),
                    "cell '" + name_ + "': missing input '" + in + "'");
        ordered.push_back(it->second);
    }
    return logic_(ordered);
}

std::map<std::string, bool> Cell::holdingVector(
    bool level, const std::string& sensitiveInput) const {
    const std::vector<std::string> ins = inputNames();
    const std::size_t n = ins.size();
    SNA_REQUIRE(n <= 16, "holdingVector enumeration limit");
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
        std::map<std::string, bool> vec;
        std::vector<bool> ordered(n);
        for (std::size_t i = 0; i < n; ++i) {
            ordered[i] = ((mask >> i) & 1u) != 0;
            vec[ins[i]] = ordered[i];
        }
        if (logic_(ordered) != level) continue;
        if (sensitiveInput.empty()) return vec;
        // Flipping the sensitive input must flip the output.
        const auto pos = std::find(ins.begin(), ins.end(), sensitiveInput);
        SNA_REQUIRE(pos != ins.end(), "cell '" + name_ + "' has no input '" +
                                          sensitiveInput + "'");
        std::vector<bool> flipped = ordered;
        const std::size_t idx = pos - ins.begin();
        flipped[idx] = !flipped[idx];
        if (logic_(flipped) == level) continue;
        return vec;
    }
    throw ModelError("cell '" + name_ + "': no holding vector for level " +
                     std::to_string(level) + " sensitized on '" +
                     sensitiveInput + "'");
}

void Cell::instantiate(spice::Circuit& c, const std::string& inst,
                       const std::map<std::string, spice::NodeId>& pinNodes,
                       spice::NodeId vdd) const {
    for (const auto& p : pins_) {
        SNA_REQUIRE(pinNodes.count(p.name) == 1,
                    "instantiate '" + inst + "': pin '" + p.name +
                        "' is not connected");
    }
    auto resolve = [&](const std::string& terminal) -> spice::NodeId {
        if (str::iequals(terminal, "vdd")) return vdd;
        if (str::iequals(terminal, "gnd") || terminal == "0") {
            return spice::kGround;
        }
        const auto it = pinNodes.find(terminal);
        if (it != pinNodes.end()) return it->second;
        return c.node(inst + "." + terminal);
    };
    for (const auto& f : fets_) {
        const spice::MosModel& model =
            (f.type == spice::MosType::Nmos) ? tech_->nmos : tech_->pmos;
        c.addMosfet(inst + "." + f.name, resolve(f.drain), resolve(f.gate),
                    resolve(f.source), resolve(f.bulk), model, f.width,
                    f.length);
    }
}

double Cell::outputCapacitance(const std::string& pin) const {
    double total = 0.0;
    bool found = false;
    for (const auto& f : fets_) {
        const spice::MosModel& model =
            (f.type == spice::MosType::Nmos) ? tech_->nmos : tech_->pmos;
        const spice::MosCaps caps = spice::instanceCaps(model, f.width,
                                                        f.length);
        if (str::iequals(f.drain, pin)) {
            total += caps.cdb + caps.cgd;
            found = true;
        }
        if (str::iequals(f.source, pin)) {
            total += caps.csb + caps.cgs;
            found = true;
        }
    }
    SNA_REQUIRE(found, "cell '" + name_ + "': no transistor terminal on '" +
                           pin + "'");
    return total;
}

double Cell::inputCapacitance(const std::string& pin) const {
    double total = 0.0;
    bool found = false;
    for (const auto& f : fets_) {
        if (!str::iequals(f.gate, pin)) continue;
        found = true;
        const spice::MosModel& model =
            (f.type == spice::MosType::Nmos) ? tech_->nmos : tech_->pmos;
        const spice::MosCaps caps = spice::instanceCaps(model, f.width,
                                                        f.length);
        total += caps.cgs + caps.cgd + caps.cgb;
    }
    SNA_REQUIRE(found, "cell '" + name_ + "': no transistor gated by '" + pin +
                           "'");
    return total;
}

}  // namespace sna::cell

// Geometry-driven parasitic builders.
//
// buildParallelBus models N parallel-running wires on one routing layer as
// coupled distributed-RC ladders: each wire is split into `segments` RC
// sections, with the layer's per-µm coupling capacitance tied rung-by-rung
// between adjacent wires. This is exactly the paper's experimental setup
// ("two 500 µm parallel-running interconnects on metal layer 4") scaled to
// arbitrary widths and counts. A SPEF emitter provides the reverse path for
// the sign-off example.
#pragma once

#include <string>
#include <vector>

#include "interconnect/rc_network.hpp"
#include "parser/spef_parser.hpp"
#include "tech/tech.hpp"

namespace sna::ic {

struct ParallelBusSpec {
    const tech::WireLayer* layer = nullptr;
    double lengthUm = 500.0;   ///< parallel-run length
    int wires = 2;             ///< number of adjacent nets
    int segments = 16;         ///< RC sections per wire
    std::vector<std::string> netNames;  ///< optional; default "net0", ...
};

/// Build the coupled ladder. Node names are "<net>:<k>", k = 0 (driver end)
/// .. segments (receiver end). Adjacent wires couple; non-adjacent do not
/// (shielding by the middle wire, the standard first-order assumption).
RcNetwork buildParallelBus(const ParallelBusSpec& spec);

/// Emit the network as SPEF text (*D_NET per wire, coupling caps included),
/// parsable by parser::parseSpef.
std::string toSpef(const RcNetwork& net, const std::string& designName);

/// Star noise cluster: wire 0 is the victim; every aggressor wire couples
/// rung-by-rung to the victim (adjacent routing for the first two, cross
/// -layer for more). `ccScale[i]` optionally derates aggressor i's coupling
/// (default 1.0 each). This is the cluster topology of the paper's
/// experiments: a victim and one-to-several directly coupled aggressors.
struct StarClusterSpec {
    const tech::WireLayer* layer = nullptr;
    double lengthUm = 500.0;
    int aggressors = 1;
    int segments = 16;
    std::vector<double> ccScale;  ///< per-aggressor coupling derate
};
RcNetwork buildStarCluster(const StarClusterSpec& spec);

/// Rebuild an RcNetwork from parsed SPEF nets. `netNames[0]` is the victim.
/// Driver/receiver ports are taken from each net's *CONN entries (direction
/// 'O' = driver, 'I' = receiver). Caps coupling to nets outside the list
/// are grounded (their owners are quiet).
RcNetwork rcFromSpef(const parser::SpefFile& spef,
                     const std::vector<std::string>& netNames);

}  // namespace sna::ic

#include "interconnect/rc_network.hpp"

#include <queue>

#include "util/error.hpp"

namespace sna::ic {

int RcNetwork::addNode(const std::string& name) {
    SNA_REQUIRE(byName_.find(name) == byName_.end(),
                "duplicate RC node '" + name + "'");
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    byName_[name] = id;
    ownership_.clear();
    return id;
}

void RcNetwork::addRes(int a, int b, double ohms) {
    SNA_REQUIRE(a >= 0 && a < nodeCount() && b >= 0 && b < nodeCount(),
                "resistor touches unknown RC node");
    SNA_REQUIRE(ohms > 0.0, "RC resistance must be positive");
    res_.push_back({a, b, ohms});
    ownership_.clear();
}

void RcNetwork::addCap(int a, int b, double farads) {
    SNA_REQUIRE(a >= 0 && a < nodeCount(), "capacitor touches unknown node");
    SNA_REQUIRE(b == kGroundNode || (b >= 0 && b < nodeCount()),
                "capacitor far node is invalid");
    SNA_REQUIRE(farads > 0.0, "RC capacitance must be positive");
    caps_.push_back({a, b, farads});
}

void RcNetwork::addWire(const std::string& netName, int driverNode,
                        int receiverNode) {
    SNA_REQUIRE(driverNode >= 0 && driverNode < nodeCount() &&
                    receiverNode >= 0 && receiverNode < nodeCount(),
                "wire ports must be existing nodes");
    wires_.push_back({netName, driverNode, receiverNode});
    ownership_.clear();
}

const std::string& RcNetwork::nodeName(int i) const {
    SNA_REQUIRE(i >= 0 && i < nodeCount(), "node index out of range");
    return names_[i];
}

int RcNetwork::findNode(const std::string& name) const {
    const auto it = byName_.find(name);
    return (it == byName_.end()) ? -2 : it->second;
}

const std::string& RcNetwork::wireName(int w) const {
    SNA_REQUIRE(w >= 0 && w < wireCount(), "wire index out of range");
    return wires_[w].name;
}

int RcNetwork::driverNode(int w) const {
    SNA_REQUIRE(w >= 0 && w < wireCount(), "wire index out of range");
    return wires_[w].driver;
}

int RcNetwork::receiverNode(int w) const {
    SNA_REQUIRE(w >= 0 && w < wireCount(), "wire index out of range");
    return wires_[w].receiver;
}

void RcNetwork::computeOwnership() const {
    ownership_.assign(nodeCount(), -1);
    // Resistive BFS from each wire's driver port: resistors never cross
    // nets, so connectivity defines ownership.
    std::vector<std::vector<std::pair<int, int>>> adj(nodeCount());
    for (const auto& r : res_) {
        adj[r.a].push_back({r.b, 0});
        adj[r.b].push_back({r.a, 0});
    }
    for (int w = 0; w < wireCount(); ++w) {
        std::queue<int> q;
        q.push(wires_[w].driver);
        while (!q.empty()) {
            const int n = q.front();
            q.pop();
            if (ownership_[n] == w) continue;
            SNA_REQUIRE(ownership_[n] == -1,
                        "node '" + names_[n] + "' reachable from two wires");
            ownership_[n] = w;
            for (const auto& [m, tag] : adj[n]) {
                (void)tag;
                if (ownership_[m] == -1) q.push(m);
            }
        }
    }
}

int RcNetwork::wireOfNode(int node) const {
    SNA_REQUIRE(node >= 0 && node < nodeCount(), "node index out of range");
    if (ownership_.size() != static_cast<std::size_t>(nodeCount())) {
        computeOwnership();
    }
    return ownership_[node];
}

double RcNetwork::totalResistanceOf(int wire) const {
    double total = 0.0;
    for (const auto& r : res_) {
        if (wireOfNode(r.a) == wire) total += r.ohms;
    }
    return total;
}

double RcNetwork::totalGroundCapOf(int wire) const {
    double total = 0.0;
    for (const auto& c : caps_) {
        if (c.b == kGroundNode && wireOfNode(c.a) == wire) total += c.farads;
    }
    return total;
}

double RcNetwork::couplingCapBetween(int wireA, int wireB) const {
    double total = 0.0;
    for (const auto& c : caps_) {
        if (c.b == kGroundNode) continue;
        const int wa = wireOfNode(c.a);
        const int wb = wireOfNode(c.b);
        if ((wa == wireA && wb == wireB) || (wa == wireB && wb == wireA)) {
            total += c.farads;
        }
    }
    return total;
}

std::vector<spice::NodeId> RcNetwork::buildInto(spice::Circuit& c,
                                                const std::string& prefix)
    const {
    std::vector<spice::NodeId> ids(nodeCount());
    for (int i = 0; i < nodeCount(); ++i) ids[i] = c.node(prefix + names_[i]);
    int k = 0;
    for (const auto& r : res_) {
        c.addResistor(prefix + "r" + std::to_string(++k), ids[r.a], ids[r.b],
                      r.ohms);
    }
    k = 0;
    for (const auto& cap : caps_) {
        const spice::NodeId far =
            (cap.b == kGroundNode) ? spice::kGround : ids[cap.b];
        c.addCapacitor(prefix + "c" + std::to_string(++k), ids[cap.a], far,
                       cap.farads);
    }
    return ids;
}

}  // namespace sna::ic

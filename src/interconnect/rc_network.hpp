// Coupled RC network: the interconnect model of a noise cluster.
//
// A pure RC multi-net structure with named nodes, per-wire driver/receiver
// ports, and coupling capacitances between wires. It is the common exchange
// format between the geometry builders (parallel_bus), the SPEF front-end,
// the MOR engine (which reads its G/C stamps), and the SPICE lowering used
// by the golden simulations.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/circuit.hpp"

namespace sna::ic {

class RcNetwork {
public:
    struct Res {
        int a, b;
        double ohms;
    };
    struct Cap {
        int a;
        int b;  ///< kGroundNode for a grounded capacitor
        double farads;
    };
    static constexpr int kGroundNode = -1;

    // ---- construction ----
    int addNode(const std::string& name);
    void addRes(int a, int b, double ohms);
    void addCap(int a, int b, double farads);

    /// Declare a wire's end ports (node indices must exist).
    void addWire(const std::string& netName, int driverNode, int receiverNode);

    // ---- inspection ----
    int nodeCount() const { return static_cast<int>(names_.size()); }
    const std::string& nodeName(int i) const;
    int findNode(const std::string& name) const;  ///< -2 if absent

    int wireCount() const { return static_cast<int>(wires_.size()); }
    const std::string& wireName(int w) const;
    int driverNode(int w) const;
    int receiverNode(int w) const;
    /// Wire index owning a node, or -1 (nodes are assigned to the wire that
    /// declared them through addWire bookkeeping of name prefixes is NOT
    /// used; ownership is resistive connectivity to the wire ports).
    int wireOfNode(int node) const;

    const std::vector<Res>& resistors() const { return res_; }
    const std::vector<Cap>& caps() const { return caps_; }

    // ---- aggregate queries (tests, reduction) ----
    double totalResistanceOf(int wire) const;
    double totalGroundCapOf(int wire) const;
    double couplingCapBetween(int wireA, int wireB) const;

    // ---- lowering ----
    /// Materialize as R/C devices; circuit nodes are named
    /// "<prefix><nodeName>". Returns circuit node ids indexed like nodes.
    std::vector<spice::NodeId> buildInto(spice::Circuit& c,
                                         const std::string& prefix) const;

private:
    void computeOwnership() const;

    std::vector<std::string> names_;
    std::unordered_map<std::string, int> byName_;
    std::vector<Res> res_;
    std::vector<Cap> caps_;
    struct Wire {
        std::string name;
        int driver;
        int receiver;
    };
    std::vector<Wire> wires_;
    mutable std::vector<int> ownership_;  // lazily computed from connectivity
};

}  // namespace sna::ic

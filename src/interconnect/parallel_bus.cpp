#include "interconnect/parallel_bus.hpp"

#include <sstream>

#include "util/error.hpp"

namespace sna::ic {

RcNetwork buildParallelBus(const ParallelBusSpec& spec) {
    SNA_REQUIRE(spec.layer != nullptr, "bus spec needs a wire layer");
    SNA_REQUIRE(spec.lengthUm > 0.0, "bus length must be positive");
    SNA_REQUIRE(spec.wires >= 1, "bus needs at least one wire");
    SNA_REQUIRE(spec.segments >= 1, "bus needs at least one segment");
    SNA_REQUIRE(spec.netNames.empty() ||
                    spec.netNames.size() == static_cast<std::size_t>(spec.wires),
                "netNames must be empty or name every wire");

    RcNetwork net;
    const int segs = spec.segments;
    const double segLen = spec.lengthUm / segs;
    const double rSeg = spec.layer->rPerUm * segLen;
    const double cgSeg = spec.layer->cgPerUm * segLen;
    const double ccSeg = spec.layer->ccPerUm * segLen;

    // Nodes: wire w, tap k in [0, segs].
    std::vector<std::vector<int>> taps(spec.wires);
    for (int w = 0; w < spec.wires; ++w) {
        const std::string name = spec.netNames.empty()
                                     ? "net" + std::to_string(w)
                                     : spec.netNames[w];
        for (int k = 0; k <= segs; ++k) {
            taps[w].push_back(net.addNode(name + ":" + std::to_string(k)));
        }
        net.addWire(name, taps[w].front(), taps[w].back());
    }

    for (int w = 0; w < spec.wires; ++w) {
        for (int k = 0; k < segs; ++k) {
            net.addRes(taps[w][k], taps[w][k + 1], rSeg);
        }
        // Ground capacitance: half-segment shares at the ends (standard
        // ladder discretization preserving the total).
        for (int k = 0; k <= segs; ++k) {
            const double share = (k == 0 || k == segs) ? 0.5 : 1.0;
            net.addCap(taps[w][k], RcNetwork::kGroundNode, cgSeg * share);
        }
        // Coupling to the next adjacent wire, rung by rung.
        if (w + 1 < spec.wires) {
            for (int k = 0; k <= segs; ++k) {
                const double share = (k == 0 || k == segs) ? 0.5 : 1.0;
                net.addCap(taps[w][k], taps[w + 1][k], ccSeg * share);
            }
        }
    }
    return net;
}

RcNetwork buildStarCluster(const StarClusterSpec& spec) {
    SNA_REQUIRE(spec.layer != nullptr, "star cluster needs a wire layer");
    SNA_REQUIRE(spec.aggressors >= 0, "aggressor count must be >= 0");
    SNA_REQUIRE(spec.segments >= 1, "star cluster needs >= 1 segment");
    SNA_REQUIRE(spec.ccScale.empty() ||
                    spec.ccScale.size() ==
                        static_cast<std::size_t>(spec.aggressors),
                "ccScale must be empty or name every aggressor");

    RcNetwork net;
    const int segs = spec.segments;
    const double segLen = spec.lengthUm / segs;
    const double rSeg = spec.layer->rPerUm * segLen;
    const double cgSeg = spec.layer->cgPerUm * segLen;
    const double ccSeg = spec.layer->ccPerUm * segLen;

    auto addWire = [&](const std::string& name) {
        std::vector<int> taps;
        for (int k = 0; k <= segs; ++k) {
            taps.push_back(net.addNode(name + ":" + std::to_string(k)));
        }
        net.addWire(name, taps.front(), taps.back());
        for (int k = 0; k < segs; ++k) net.addRes(taps[k], taps[k + 1], rSeg);
        for (int k = 0; k <= segs; ++k) {
            const double share = (k == 0 || k == segs) ? 0.5 : 1.0;
            net.addCap(taps[k], RcNetwork::kGroundNode, cgSeg * share);
        }
        return taps;
    };

    const auto victimTaps = addWire("victim");
    for (int a = 0; a < spec.aggressors; ++a) {
        const double scale = spec.ccScale.empty() ? 1.0 : spec.ccScale[a];
        const auto aggTaps = addWire("agg" + std::to_string(a));
        for (int k = 0; k <= segs; ++k) {
            const double share = (k == 0 || k == segs) ? 0.5 : 1.0;
            const double cc = ccSeg * share * scale;
            if (cc > 0.0) net.addCap(victimTaps[k], aggTaps[k], cc);
        }
    }
    return net;
}

RcNetwork rcFromSpef(const parser::SpefFile& spef,
                     const std::vector<std::string>& netNames) {
    SNA_REQUIRE(!netNames.empty(), "rcFromSpef needs at least the victim net");
    RcNetwork out;
    auto ensureNode = [&](const std::string& name) {
        const int found = out.findNode(name);
        if (found != -2) return found;
        return out.addNode(name);
    };
    // Which nets are in the cluster (others' coupling goes to ground).
    auto inCluster = [&](const std::string& node) {
        const std::string owner = node.substr(0, node.find(':'));
        for (const auto& n : netNames) {
            if (n == owner) return true;
        }
        return false;
    };

    for (const auto& name : netNames) {
        const parser::SpefNet& net = spef.net(name);
        for (const auto& r : net.ress) {
            out.addRes(ensureNode(r.node1), ensureNode(r.node2), r.ohms);
        }
        std::string driver, receiver;
        for (const auto& conn : net.conns) {
            if (conn.direction == 'O' && driver.empty()) {
                driver = conn.name;
            } else if (conn.direction == 'I' && receiver.empty()) {
                receiver = conn.name;
            }
        }
        if (driver.empty()) {
            throw ModelError("SPEF net '" + name + "' has no driver conn");
        }
        if (receiver.empty()) receiver = driver;  // unloaded stub net
        out.addWire(name, ensureNode(driver), ensureNode(receiver));
    }
    for (const auto& name : netNames) {
        const parser::SpefNet& net = spef.net(name);
        for (const auto& c : net.caps) {
            const int a = ensureNode(c.node1);
            if (c.node2.empty() || !inCluster(c.node2)) {
                out.addCap(a, RcNetwork::kGroundNode, c.farads);
            } else {
                out.addCap(a, ensureNode(c.node2), c.farads);
            }
        }
    }
    return out;
}

std::string toSpef(const RcNetwork& net, const std::string& designName) {
    std::ostringstream os;
    os << "*SPEF \"IEEE 1481-1998\"\n";
    os << "*DESIGN \"" << designName << "\"\n";
    os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n\n";
    os.precision(9);
    for (int w = 0; w < net.wireCount(); ++w) {
        double total = 0.0;
        for (const auto& c : net.caps()) {
            if (net.wireOfNode(c.a) == w ||
                (c.b != RcNetwork::kGroundNode && net.wireOfNode(c.b) == w)) {
                total += c.farads;
            }
        }
        os << "*D_NET " << net.wireName(w) << ' ' << total * 1e15 << "\n";
        os << "*CONN\n";
        os << "*I " << net.nodeName(net.driverNode(w)) << " O\n";
        os << "*I " << net.nodeName(net.receiverNode(w)) << " I\n";
        os << "*CAP\n";
        int idx = 0;
        for (const auto& c : net.caps()) {
            // Each cap is emitted exactly once, under its first wire.
            const int owner = net.wireOfNode(c.a);
            if (owner != w) continue;
            if (c.b == RcNetwork::kGroundNode) {
                os << ++idx << ' ' << net.nodeName(c.a) << ' '
                   << c.farads * 1e15 << "\n";
            } else {
                os << ++idx << ' ' << net.nodeName(c.a) << ' '
                   << net.nodeName(c.b) << ' ' << c.farads * 1e15 << "\n";
            }
        }
        os << "*RES\n";
        idx = 0;
        for (const auto& r : net.resistors()) {
            if (net.wireOfNode(r.a) != w) continue;
            os << ++idx << ' ' << net.nodeName(r.a) << ' '
               << net.nodeName(r.b) << ' ' << r.ohms << "\n";
        }
        os << "*END\n\n";
    }
    return os.str();
}

}  // namespace sna::ic

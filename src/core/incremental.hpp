// Incremental design re-analysis: the ECO-loop fast path.
//
// Production noise signoff is thousands of near-identical runs against a
// mostly-unchanged design: a buffer is resized, one net is re-routed and
// re-extracted, and everything else is exactly the run before. A full
// analyzeDesign re-solves all N nets anyway. This module adds the delta
// path: the caller describes what changed (DesignDelta), the engine marks
// the affected cone on the retained level graph — the changed nets and
// instances themselves, the coupling neighbors that see them as aggressors
// or share re-extracted parasitics, and everything downstream of any
// re-solved net (its surviving glitch and propagated window may move) —
// patches the retained DesignIndex in place, re-runs the task-graph
// scheduler restricted to the dirty task ids, and splices the retained
// NetNoiseReports for every clean net.
//
// Contract: analyzeDesignIncremental returns reports bit-identical to a
// cold analyzeDesign over the same (mutated) design at any thread count.
// Whenever the snapshot cannot guarantee that — no prior run, different
// Design object, changed analysis options, or a connectivity change — it
// falls back to a full run (and captures a fresh snapshot), never to a
// wrong answer.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/design_index.hpp"
#include "core/propagate.hpp"
#include "core/sna.hpp"
#include "core/timing_windows.hpp"

namespace sna::core {

/// What an ECO changed since the snapshot's run. Names the engine does not
/// recognize mark nothing dirty; with DesignNoiseOptions::lint enabled they
/// are reported as SNA-L501/L502 (errors) before the run — in strict mode a
/// typo'd delta throws instead of silently splicing stale results.
struct DesignDelta {
    /// SPEF net sections whose parasitics were re-extracted (the SpefFile
    /// passed to analyzeDesignIncremental carries the new values). Also
    /// list here the nets of any removed instance.
    std::vector<std::string> nets;
    /// Instances whose cell binding changed in place (Design::replaceCell).
    /// Every net on the instance's pins is re-solved.
    std::vector<std::string> instances;
    /// Set when the netlist structure changed — instances added or removed,
    /// pins moved between nets. Forces a full index rebuild and re-run
    /// (still capturing a fresh snapshot for the next iteration).
    bool connectivityChanged = false;
};

/// Retained state of one analyzeDesign run, the input and output of every
/// incremental iteration. Populate it by running analyzeDesign with
/// DesignNoiseOptions::snapshot pointing here; analyzeDesignIncremental
/// both consumes and refreshes it, so an ECO loop keeps passing the same
/// object. Owns the DesignIndex; the Design and SpefFile stay caller-owned
/// and must outlive the snapshot.
struct AnalysisSnapshot {
    bool valid = false;
    const Design* design = nullptr;  ///< identity check only, not owned
    std::size_t instanceCount = 0;
    /// Scalar analysis options of the captured run; an option change
    /// invalidates the splice (clean nets would carry stale verdicts).
    std::string fingerprint;
    std::unique_ptr<DesignIndex> index;
    std::unordered_map<std::string, NetNoiseReport> victimReports;
    std::unordered_map<std::string, NetNoiseReport> quietReports;
    std::unordered_map<std::string, SurvivingSet> surviving;
    std::unordered_map<std::string, TimingWindow> netWindows;
    /// Waiver-applied diagnostics of the captured run's lint pass; empty
    /// when DesignNoiseOptions::lint was off.
    std::vector<lint::Diagnostic> lint;
};

/// Observability counters for one incremental call.
struct IncrementalStats {
    std::size_t totalTasks = 0;  ///< graph nets (wavefront) or victims (flat)
    std::size_t dirtyTasks = 0;  ///< re-solved this call
    std::size_t seedNets = 0;    ///< delta nets/pins + window/coupling diffs
    std::size_t coupledNeighbors = 0;  ///< added around the seeds
    std::size_t reusedVictimReports = 0;
    std::size_t solvedVictimReports = 0;
    /// True when the call could not splice (invalid snapshot, option or
    /// connectivity change) and ran the full pipeline instead.
    bool indexRebuilt = false;
    util::SchedulerStats scheduler;  ///< restricted run (wavefront only)
};

/// The dirty cone of `seeds` on the index: seeds, plus every coupling
/// neighbor of a seed (a changed net re-ranks and re-loads the clusters it
/// couples into; a changed driver cell changes its net's aggressor model),
/// plus — when `downstreamClosure` (propagated wavefront) — everything
/// reachable over the scheduled fanout edges (a re-solved net's surviving
/// glitch and window feed its fanout). Coupling dirtiness does NOT spread
/// transitively: a victim reads its aggressors' parasitics, drivers, and
/// windows, never their reports, so only value-changed seeds contaminate
/// their neighbors. Exposed for testing.
std::unordered_set<std::string> expandDirtyCone(
    const DesignIndex& index, const std::unordered_set<std::string>& seeds,
    bool downstreamClosure, std::size_t* coupledNeighbors = nullptr);

/// Re-analyze after `delta`, reusing everything `snapshot` retained: the
/// index is patched (parasitics re-read from `spef` for the changed
/// sections), timing windows are re-propagated and diffed, the dirty cone
/// is re-solved on the task-graph scheduler restricted to its task ids, and
/// every clean net's report is spliced from the snapshot. The snapshot is
/// refreshed in place for the next iteration. Reports are bit-identical to
/// a cold analyzeDesign over the same state at any thread count; when the
/// snapshot cannot be reused the call degrades to exactly that full run.
std::vector<NetNoiseReport> analyzeDesignIncremental(
    const Design& design, const parser::SpefFile& spef,
    const DesignDelta& delta, AnalysisSnapshot& snapshot,
    const DesignNoiseOptions& opt = {}, IncrementalStats* stats = nullptr);

/// Resilient variant of analyzeDesignIncremental: the dirty-cone run
/// inherits DesignNoiseOptions::{cancel, deadline, onNetFailure} and a
/// cancelled/timed-out run returns the partial AnalysisOutcome instead of
/// throwing. Because the retained index is patched in place before the
/// solve, an incomplete or faulted run invalidates the snapshot
/// (`snapshot.valid == false`) — the next iteration falls back to a full
/// run rather than splicing reports that no longer match the index.
AnalysisOutcome analyzeDesignIncrementalOutcome(
    const Design& design, const parser::SpefFile& spef,
    const DesignDelta& delta, AnalysisSnapshot& snapshot,
    const DesignNoiseOptions& opt = {}, IncrementalStats* stats = nullptr);

}  // namespace sna::core

// Stage-to-stage noise propagation for the design-level wavefront.
//
// The cluster macromodel already accepts a propagated glitch at one victim
// input (ClusterSpec::glitchInput); this module supplies the design-level
// glue around it: after a net's stage is analyzed, its surviving glitch is
// converted into a glitchInput injection on the fanout clusters (Nazarian &
// Pedram-style propagation), and nets that are not victim clusters
// themselves (no coupling) still carry noise through their driver via the
// pre-characterized propagation tables, so deep chains attenuate stage by
// stage instead of silently dropping noise at the first quiet net.
//
// Width convention: surviving/incoming glitches store the 50%-of-peak width
// that wave::measureGlitch reports. The equivalent triangle injection has
// base = 2 * width (a triangle's 50% width is half its base), which is what
// ClusterSpec::glitchWidth expects.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "charlib/char_cache.hpp"
#include "core/design_index.hpp"

namespace sna::core {

/// The noise left on a net after its stage was analyzed (macromodel metrics
/// for victim clusters, table-propagated estimates for pass-through nets).
struct SurvivingGlitch {
    double height = 0.0;  ///< V, |peak deviation| from the quiet level
    double width = 0.0;   ///< s, 50%-of-peak width
};

/// Glitch severity is only a partial order: the NRC is non-increasing in
/// width, so taller-and-at-least-as-wide dominates, but a tall-narrow and a
/// short-wide glitch are incomparable until solved. Each net therefore
/// keeps the non-dominated set of its surviving glitches (small: bounded by
/// kMaxSurviving, extremes preserved).
using SurvivingSet = std::vector<SurvivingGlitch>;

constexpr std::size_t kMaxSurviving = 4;

/// Merge `g` into the non-dominated set: drops it if dominated, evicts
/// entries it dominates, and caps the front at kMaxSurviving keeping the
/// extremes (tallest and widest). Deterministic.
void mergeSurviving(SurvivingSet& set, const SurvivingGlitch& g);

/// The upstream glitch selected for injection at a net's driver.
struct IncomingGlitch {
    double height = 0.0;   ///< V at the driver input
    double width = 0.0;    ///< s, 50% width
    std::string fromNet;   ///< upstream net it arrives from
    std::string inputPin;  ///< driver input pin connected to fromNet
};

/// Pick the worst glitches arriving at `net`'s driver: the non-dominated
/// front over every (fanin edge, surviving glitch) pair, sorted by height
/// descending (so width ascending — a Pareto-front property) with
/// deterministic tie-breaks, capped at kMaxSurviving keeping the extremes.
/// Empty when no upstream noise reaches the driver; the caller analyzes
/// each candidate and keeps the worse verdict.
std::vector<IncomingGlitch> selectIncoming(
    const DesignIndex& index, const std::string& net,
    const std::unordered_map<std::string, SurvivingSet>& surviving);

/// Accessor-based variant for slot-addressed storage: `survivingOf(fromNet)`
/// returns the upstream net's surviving front, or nullptr when that net has
/// none (or, in the task-graph wavefront, when the edge is not a scheduled
/// dependency — a cycle-broken fanin must contribute nothing, exactly as it
/// never could under the level barrier). Same selection semantics.
std::vector<IncomingGlitch> selectIncoming(
    const DesignIndex& index, const std::string& net,
    const std::function<const SurvivingSet*(const std::string&)>&
        survivingOf);

/// Estimate the glitch transferred through `cell` (input `pin` -> output)
/// with the pre-characterized propagation tables, evaluated at the worse of
/// the two output holding levels (larger transferred area, height on ties).
/// Tables are characterized on the canonical (height, width) grid at a
/// canonical load, so with a cache each (cell, pin, level) is characterized
/// exactly once per run no matter how many chain nets reuse it. Returns a
/// zero-height glitch when the driver filters the noise out.
SurvivingGlitch propagateThroughDriver(const cell::Cell& cell,
                                       const std::string& pin,
                                       const IncomingGlitch& incoming,
                                       charlib::CharCache* cache);

/// The canonical load the pass-through propagation tables are characterized
/// at (the PropagationSpec default). Per-net loads would make every cache
/// key unique; glitch attenuation estimates are load-insensitive enough
/// that one table per (cell, pin, level) is the right trade.
constexpr double kPropagationLoadCap = 30e-15;

// ---------------------------------------------------------------- windows

/// The switching window seen after `cell` when the transition arrives at
/// input `pin` inside `fanin`: shifted by the stage's characterized
/// insertion delay and widened by its output slew. Delay and slew come from
/// the driver's Thevenin equivalents (both transition directions, at the
/// canonical propagation load), so with a cache each (cell, pin, direction)
/// characterizes once per run. Unbounded fanin windows pass through
/// untouched without characterizing anything.
TimingWindow propagateWindowThroughDriver(const cell::Cell& cell,
                                          const std::string& pin,
                                          const TimingWindow& fanin,
                                          charlib::CharCache* cache);

/// FRAME-style window propagation over the whole levelized design graph:
/// nets with an explicit entry in the window set keep it; every other net
/// takes the union (hull) of its fanin windows, each shifted through the
/// stage via propagateWindowThroughDriver; nets with no fanin and no entry
/// default to the unbounded window. Returns one window per net of the level
/// graph. Deterministic: levels run in order and fanin edges are
/// pre-sorted. `windows` overrides the explicit window set; nullptr (the
/// pipeline default) reads `index.timingWindows()` — the override lets the
/// lint hull check (SNA-L303) propagate a candidate window set without
/// mutating the index.
std::unordered_map<std::string, TimingWindow> propagateWindows(
    const DesignIndex& index, charlib::CharCache* cache,
    const TimingWindows* windows = nullptr);

}  // namespace sna::core

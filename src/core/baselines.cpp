#include "core/baselines.hpp"

#include <chrono>
#include <cmath>

#include "mor/linear_network.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "waveform/sources.hpp"

namespace sna::core {

namespace {

// Shared: reduced interconnect + Thevenin aggressors + receiver caps.
// Returns the victim driving-point node; the caller adds the victim model.
spice::NodeId buildLinearCluster(const ClusterMacromodel& model,
                                 spice::Circuit& ckt,
                                 const std::vector<double>& aggTimes) {
    const ClusterSpec& spec = model.spec();
    SNA_REQUIRE(aggTimes.size() == spec.aggressors.size(),
                "need one switch time per aggressor");
    const auto dp = ckt.node("dp_vic");
    std::vector<spice::NodeId> drvNodes{dp};
    ckt.addCapacitor("cdrv0", dp, spice::kGround, model.driverCaps()[0]);
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        const auto& m = model.aggressorModels()[a];
        const std::string inst = "agg" + std::to_string(a);
        const auto src = ckt.node(inst + "_th");
        const auto adp = ckt.node(inst + "_dp");
        ckt.addVSource("v_" + inst, src, spice::kGround,
                       spice::SourceSpec::pwl(
                           m.ramp(aggTimes[a] + m.delay, spec.tstop)));
        ckt.addResistor("r_" + inst, src, adp, m.rth);
        ckt.addCapacitor("cdrv" + std::to_string(a + 1), adp, spice::kGround,
                         model.driverCaps()[a + 1]);
        drvNodes.push_back(adp);
    }
    const ic::RcNetwork& net = model.interconnect();
    if (model.options().usePrima) {
        const mor::LinearNetwork lin(net);
        std::vector<int> ports;
        std::vector<spice::NodeId> portNodes = drvNodes;
        for (int w = 0; w < net.wireCount(); ++w) {
            ports.push_back(net.driverNode(w));
        }
        for (int w = 0; w < net.wireCount(); ++w) {
            ports.push_back(net.receiverNode(w));
            portNodes.push_back(ckt.node("rcv" + std::to_string(w)));
        }
        mor::attachReduced(ckt, "rednet", lin, ports, portNodes,
                           model.options().primaBlocks);
        for (int w = 0; w < net.wireCount(); ++w) {
            ckt.addCapacitor("crx" + std::to_string(w),
                             portNodes[drvNodes.size() + w], spice::kGround,
                             model.receiverCaps()[w]);
        }
    } else {
        const auto farNodes = model.reducedPi().buildInto(ckt, "pi:", drvNodes);
        for (int w = 0; w < net.wireCount(); ++w) {
            ckt.addCapacitor("crx" + std::to_string(w), farNodes[w],
                             spice::kGround, model.receiverCaps()[w]);
        }
    }
    return dp;
}

// Victim holding model for B1: R_hold toward the holding rail.
void addHoldingResistor(const ClusterMacromodel& model, spice::Circuit& ckt,
                        spice::NodeId dp) {
    const double rHold = model.victimHoldingResistance();
    if (model.outputHoldLevel() == 0.0) {
        ckt.addResistor("r_hold", dp, spice::kGround, rHold);
    } else {
        const auto rail = ckt.node("hold_rail");
        ckt.addVSource("v_hold", rail, spice::kGround,
                       spice::SourceSpec::dc(model.outputHoldLevel()));
        ckt.addResistor("r_hold", dp, rail, rHold);
    }
}

}  // namespace

NoiseResult analyzeLinearSuperposition(
    const ClusterMacromodel& model,
    const std::vector<double>& aggressorSwitchTimes) {
    const auto start = std::chrono::steady_clock::now();
    const ClusterSpec& spec = model.spec();

    // ---- injected component: linearized victim, switching aggressors ----
    spice::Circuit ckt;
    const auto dp = buildLinearCluster(model, ckt, aggressorSwitchTimes);
    addHoldingResistor(model, ckt, dp);
    spice::TranOptions opt;
    opt.tstop = spec.tstop;
    const auto res = spice::simulateTransient(ckt, opt);
    const wave::Waveform injected = res.waveform("dp_vic");
    const auto mInj = wave::measureGlitch(injected, model.outputHoldLevel());

    // ---- propagated component from the pre-characterized tables ----------
    wave::Waveform total = injected;
    if (spec.victim.glitchHeight > 0.0) {
        const auto& table = model.propagationTable();
        const double h = spec.victim.glitchHeight;
        const double w = spec.victim.glitchWidth;
        const double peak = table.peak(h, w);
        const double area = table.area(h, w);
        if (std::abs(peak) > 1e-6) {
            // Reconstruct an equivalent triangle and align its peak with
            // the injected peak (worst-case superposition).
            const double width = 2.0 * std::abs(area / peak);
            const double tPeak =
                (std::abs(mInj.peak) > 1e-6)
                    ? mInj.peakTime
                    : spec.victim.glitchTime + 0.5 * spec.victim.glitchWidth;
            const double t0 = std::max(tPeak - 0.5 * width, 0.0);
            const wave::Waveform tri = wave::triangleGlitch(
                0.0, peak, t0 + 1e-15, width, spec.tstop);
            total = total.plus(tri);
        }
    }

    NoiseResult out;
    out.waveform = total;
    out.metrics = wave::measureGlitch(total, model.outputHoldLevel());
    out.engineNodes = ckt.nodeCount();
    out.runtimeSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return out;
}

NoiseResult analyzeIterativeThevenin(
    const ClusterMacromodel& model,
    const std::vector<double>& aggressorSwitchTimes, double glitchTime,
    int maxIterations) {
    const auto start = std::chrono::steady_clock::now();
    const ClusterSpec& spec = model.spec();
    const ic::RcNetwork& net = model.interconnect();

    // ---- V0(t): the victim driver's own glitch response, no crosstalk ----
    wave::Waveform v0;
    {
        spice::Circuit ckt;
        const auto vin = ckt.node("vin");
        const auto out = ckt.node("out");
        if (const auto glitch = victimInputGlitch(spec, glitchTime)) {
            ckt.addVSource("v_in", vin, spice::kGround,
                           spice::SourceSpec::pwl(*glitch));
        } else {
            ckt.addVSource("v_in", vin, spice::kGround,
                           spice::SourceSpec::dc(model.inputHoldLevel()));
        }
        ckt.addTableVccs("idc_victim", out, vin, model.loadCurve());
        double load = net.totalGroundCapOf(0) + model.receiverCaps()[0];
        for (int o = 1; o < net.wireCount(); ++o) {
            load += net.couplingCapBetween(0, o);
        }
        ckt.addCapacitor("cload", out, spice::kGround, load);
        spice::TranOptions opt;
        opt.tstop = spec.tstop;
        v0 = spice::simulateTransient(ckt, opt).waveform("out");
    }

    // ---- iterate the victim Thevenin resistance --------------------------
    const double vHold = model.outputHoldLevel();
    double rv = model.victimHoldingResistance();
    NoiseResult result;
    for (int it = 0; it < maxIterations; ++it) {
        spice::Circuit ckt;
        const auto dp = buildLinearCluster(model, ckt, aggressorSwitchTimes);
        const auto vsrc = ckt.node("v0");
        ckt.addVSource("v_victim", vsrc, spice::kGround,
                       spice::SourceSpec::pwl(v0));
        ckt.addResistor("r_victim", vsrc, dp, rv);
        spice::TranOptions opt;
        opt.tstop = spec.tstop;
        const auto res = spice::simulateTransient(ckt, opt);
        result.waveform = res.waveform("dp_vic");
        result.metrics = wave::measureGlitch(result.waveform, vHold);
        result.engineNodes = ckt.nodeCount();

        // Refit: secant resistance of the load curve between the holding
        // point and the current noise peak (input at its quiet level — the
        // propagated part is carried by V0).
        const double vPeak = vHold + result.metrics.peak;
        const double iHold =
            model.loadCurve()(model.inputHoldLevel(), vHold);
        const double iPeak =
            model.loadCurve()(model.inputHoldLevel(), vPeak);
        const double dv = vPeak - vHold;
        const double di = iPeak - iHold;
        if (std::abs(dv) < 1e-6 || di <= 0.0) break;
        const double rNew = dv / di;
        const bool converged = std::abs(rNew - rv) <= 0.02 * rv;
        rv = rNew;
        if (converged) break;
    }

    result.runtimeSec = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    return result;
}

}  // namespace sna::core

// Industry front end: .lib / Verilog / SDC into the analysis pipeline.
//
// buildDesign turns a structural Verilog module into a core::Design over
// the bundled cell library; lintFrontEnd checks the three inputs against
// each other before anything is built (stable rule IDs, SNA-L6xx family,
// rendered through the same lint::Diagnostic machinery as the design
// checker); seedNldmCharacterization pushes the .lib NLDM tables into the
// CharCache at the window-propagation query point, so the wavefront's stage
// delays and slews come from the library instead of SPICE sweeps.
//
//   front end   SNA-L601 .lib cell binds to no library cell        warning
//               SNA-L602 .lib cell pin set/direction mismatch      error
//               SNA-L603 .lib arc missing an NLDM table            warning
//               SNA-L611 instance references an undefined cell     error
//               SNA-L612 instance connects an unknown pin          error
//               SNA-L613 instance leaves a cell pin unconnected    error
//               SNA-L615 SDC constrains an unknown port            warning
#pragma once

#include <cstddef>

#include "charlib/nldm_source.hpp"
#include "core/sna.hpp"
#include "lint/diagnostic.hpp"
#include "parser/sdc_parser.hpp"
#include "parser/verilog_parser.hpp"

namespace sna::core {

/// Build a Design from a parsed netlist: every instance's cell is resolved
/// in `lib` (case-insensitive — netlists write INV_X1, the library's
/// spelling wins) and every pin must be connected to a net. Throws
/// ModelError naming the instance on the errors lintFrontEnd flags as
/// SNA-L611..L613, so an unlinted build still fails loudly.
Design buildDesign(const parser::VerilogModule& module,
                   const cell::CellLibrary& lib);

/// Cross-check the three front-end inputs (rule table above). `sdc` may be
/// nullptr when no constraints were given. Diagnostics come back in
/// deterministic (rule, object) order appended to `report`.
void lintFrontEnd(const charlib::NldmSource& nldm,
                  const parser::VerilogModule& module,
                  const cell::CellLibrary& lib,
                  const parser::SdcConstraints* sdc,
                  lint::LintReport& report);

/// Seed `cache` with NLDM-derived Thevenin models at the exact query point
/// of the window-propagation path (kPropagationLoadCap, the TheveninSpec
/// default input slew), so propagateWindows serves .lib delays/slews as
/// cache hits. Returns the number of entries seeded.
std::size_t seedNldmCharacterization(const charlib::NldmSource& nldm,
                                     charlib::CharCache& cache);

}  // namespace sna::core

#include "core/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::core {

double nrcLimitFor(const ClusterSpec& spec, const wave::GlitchMetrics& m,
                   charlib::CharCache* cache) {
    const cell::CellLibrary& lib = cell::sharedLibrary(*spec.technology);
    charlib::NrcSpec nrc;
    nrc.cell = &lib.cell(spec.victim.receiverCell);
    nrc.input = nrc.cell->inputNames().front();
    // Quiet receiver input level = the victim's held level.
    nrc.quietLevel = spec.victim.outputLevel;
    // The NRC is a property of the receiver cell, not of the glitch: probe a
    // canonical log-spaced width grid once and evaluate the measured width
    // by interpolation. One curve per (cell, quiet level) then serves every
    // cluster of a run, which is what makes the curve cacheable. Half-octave
    // spacing with log-width interpolation keeps the deviation from an
    // exact-width probe within ~0.15% — the bisection's own resolution.
    std::vector<double> grid;
    for (double p = 20e-12; p < 2.561e-9; p *= std::sqrt(2.0)) {
        grid.push_back(p);
    }
    const double w = std::max(m.width, grid.front());
    if (w > grid.back()) {
        // Wider than the canonical grid (only reachable when tstop is raised
        // above its default): clamping would read the limit of a narrower
        // glitch, which is optimistic. Probe around the actual width instead
        // (the curve is exact at its own nodes). Deliberately uncached: keys
        // would embed the bitwise width, so a shared cache would accumulate
        // one near-unhittable entry per wide glitch.
        nrc.widths = {0.5 * w, w, 2.0 * w};
        return charlib::characterizeNrc(nrc)(w);
    }
    const auto evalLog = [w](const la::Grid1d& curve) {
        const auto& xs = curve.xs();
        const auto& ys = curve.ys();
        if (w <= xs.front()) return ys.front();
        std::size_t i = 0;
        while (i + 2 < xs.size() && xs[i + 1] <= w) ++i;
        const double t = (std::log(w) - std::log(xs[i])) /
                         (std::log(xs[i + 1]) - std::log(xs[i]));
        return ys[i] + t * (ys[i + 1] - ys[i]);
    };
    if (cache != nullptr) {
        // Cached: characterize the full canonical grid once per (cell,
        // level); every cluster then interpolates from the shared curve.
        nrc.widths = grid;
        return evalLog(*cache->nrc(nrc));
    }
    // Uncached: each width bisects independently, so characterizing just the
    // two widths bracketing w gives the bit-identical interpolated value at
    // a fraction of the cost.
    std::size_t i = 0;
    while (i + 2 < grid.size() && grid[i + 1] <= w) ++i;
    nrc.widths = {grid[i], grid[i + 1]};
    return evalLog(charlib::characterizeNrc(nrc));
}

ClusterReport analyzeCluster(const ClusterSpec& spec,
                             const ReportOptions& opt) {
    const ClusterMacromodel model(spec, opt.macromodel);

    ClusterReport report;
    if (opt.searchAlignment) {
        auto align = findWorstAlignment(model, opt.alignment);
        report.worst = std::move(align.worst);
        report.aggressorSwitchTimes = std::move(align.aggressorSwitchTimes);
        report.glitchTime = align.glitchTime;
    } else {
        report.worst = model.analyze();
        for (const auto& agg : spec.aggressors) {
            report.aggressorSwitchTimes.push_back(agg.switchTime);
        }
        report.glitchTime = spec.victim.glitchTime;
    }

    report.nrcLimit = nrcLimitFor(spec, report.worst.metrics,
                                  opt.macromodel.cache);
    const double height = std::abs(report.worst.metrics.peak);
    report.fails = height >= report.nrcLimit;
    report.margin = report.nrcLimit - height;
    return report;
}

}  // namespace sna::core

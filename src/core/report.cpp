#include "core/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::core {

double nrcLimitFor(const ClusterSpec& spec, const wave::GlitchMetrics& m) {
    const cell::CellLibrary lib(*spec.technology);
    charlib::NrcSpec nrc;
    nrc.cell = &lib.cell(spec.victim.receiverCell);
    nrc.input = nrc.cell->inputNames().front();
    // Quiet receiver input level = the victim's held level.
    nrc.quietLevel = spec.victim.outputLevel;
    const double w = std::max(m.width, 2e-11);
    nrc.widths = {0.5 * w, w, 2.0 * w};
    const auto curve = charlib::characterizeNrc(nrc);
    return curve(w);
}

ClusterReport analyzeCluster(const ClusterSpec& spec,
                             const ReportOptions& opt) {
    const ClusterMacromodel model(spec, opt.macromodel);

    ClusterReport report;
    if (opt.searchAlignment) {
        auto align = findWorstAlignment(model, opt.alignment);
        report.worst = std::move(align.worst);
        report.aggressorSwitchTimes = std::move(align.aggressorSwitchTimes);
        report.glitchTime = align.glitchTime;
    } else {
        report.worst = model.analyze();
        for (const auto& agg : spec.aggressors) {
            report.aggressorSwitchTimes.push_back(agg.switchTime);
        }
        report.glitchTime = spec.victim.glitchTime;
    }

    report.nrcLimit = nrcLimitFor(spec, report.worst.metrics);
    const double height = std::abs(report.worst.metrics.peak);
    report.fails = height >= report.nrcLimit;
    report.margin = report.nrcLimit - height;
    return report;
}

}  // namespace sna::core

#include "core/report.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sna::core {

std::vector<double> NrcOptions::grid() const {
    SNA_REQUIRE(widthMin > 0.0 && widthLimit > widthMin,
                "NRC width grid needs 0 < widthMin < widthLimit");
    SNA_REQUIRE(growth > 1.0, "NRC width grid growth must be > 1");
    std::vector<double> grid;
    for (double p = widthMin; p < widthLimit; p *= growth) {
        grid.push_back(p);
    }
    return grid;
}

namespace {

/// Bisect the receiver at exactly width `w` (bracketed so the curve is
/// exact at its own nodes). Uncached by design: keys would embed the
/// bitwise width, so a shared cache would accumulate one near-unhittable
/// entry per glitch.
double exactNrcProbe(charlib::NrcSpec nrc, double w) {
    nrc.widths = {0.5 * w, w, 2.0 * w};
    return charlib::characterizeNrc(nrc)(w);
}

}  // namespace

double nrcLimitFor(const ClusterSpec& spec, const wave::GlitchMetrics& m,
                   charlib::CharCache* cache, const NrcOptions& nrcOpt) {
    const cell::CellLibrary& lib = cell::sharedLibrary(*spec.technology);
    charlib::NrcSpec nrc;
    nrc.cell = &lib.cell(spec.victim.receiverCell);
    nrc.input = nrc.cell->inputNames().front();
    // Quiet receiver input level = the victim's held level.
    nrc.quietLevel = spec.victim.outputLevel;
    if (nrcOpt.interp == NrcOptions::Interp::kExact) {
        // Validation reference: probe the exact measured width.
        return exactNrcProbe(nrc, std::max(m.width, nrcOpt.widthMin));
    }
    // Default: probe the canonical width grid once per (cell, quiet level)
    // and evaluate the measured width by interpolation — the grid is what
    // makes the curve cacheable across every cluster of a run. Half-octave
    // spacing with log-width interpolation keeps the deviation from an
    // exact-width probe within ~0.15% — the bisection's own resolution.
    const std::vector<double> grid = nrcOpt.grid();
    SNA_REQUIRE(grid.size() >= 2, "NRC width grid needs >= 2 points");
    const double w = std::max(m.width, grid.front());
    if (w > grid.back()) {
        // Wider than the canonical grid (only reachable when tstop is raised
        // above its default): clamping would read the limit of a narrower
        // glitch, which is optimistic. Probe the actual width instead.
        return exactNrcProbe(nrc, w);
    }
    const bool logInterp = nrcOpt.interp == NrcOptions::Interp::kLogWidth;
    const auto eval = [w, logInterp](const la::Grid1d& curve) {
        const auto& xs = curve.xs();
        const auto& ys = curve.ys();
        if (w <= xs.front()) return ys.front();
        std::size_t i = 0;
        while (i + 2 < xs.size() && xs[i + 1] <= w) ++i;
        const double t =
            logInterp ? (std::log(w) - std::log(xs[i])) /
                            (std::log(xs[i + 1]) - std::log(xs[i]))
                      : (w - xs[i]) / (xs[i + 1] - xs[i]);
        return ys[i] + t * (ys[i + 1] - ys[i]);
    };
    if (cache != nullptr) {
        // Cached: characterize the full canonical grid once per (cell,
        // level); every cluster then interpolates from the shared curve.
        nrc.widths = grid;
        return eval(*cache->nrc(nrc));
    }
    // Uncached: each width bisects independently, so characterizing just the
    // two widths bracketing w gives the bit-identical interpolated value at
    // a fraction of the cost.
    std::size_t i = 0;
    while (i + 2 < grid.size() && grid[i + 1] <= w) ++i;
    nrc.widths = {grid[i], grid[i + 1]};
    return eval(charlib::characterizeNrc(nrc));
}

ClusterReport analyzeCluster(const ClusterSpec& spec,
                             const ReportOptions& opt) {
    const ClusterMacromodel model(spec, opt.macromodel);

    ClusterReport report;
    if (opt.searchAlignment) {
        auto align = findWorstAlignment(model, opt.alignment);
        report.worst = std::move(align.worst);
        report.aggressorSwitchTimes = std::move(align.aggressorSwitchTimes);
        report.glitchTime = align.glitchTime;
    } else {
        report.worst = model.analyze();
        for (const auto& agg : spec.aggressors) {
            report.aggressorSwitchTimes.push_back(agg.switchTime);
        }
        report.glitchTime = spec.victim.glitchTime;
    }

    report.nrcLimit = nrcLimitFor(spec, report.worst.metrics,
                                  opt.macromodel.cache, opt.nrc);
    const double height = std::abs(report.worst.metrics.peak);
    report.fails = height >= report.nrcLimit;
    report.margin = report.nrcLimit - height;
    report.glitchInHeight = spec.victim.glitchHeight;
    report.glitchInWidth = spec.victim.glitchHeight > 0.0
                               ? spec.victim.glitchWidth
                               : 0.0;
    return report;
}

}  // namespace sna::core

#include "core/sna.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::core {

void Design::addInstance(Instance inst) {
    const cell::Cell& c = lib_->cell(inst.cellName);
    for (const auto& pin : c.pins()) {
        if (inst.pinToNet.find(pin.name) == inst.pinToNet.end()) {
            throw ModelError("instance '" + inst.name + "': pin '" +
                             pin.name + "' is not connected");
        }
    }
    instances_.push_back(std::move(inst));
}

const Instance* Design::driverOf(const std::string& net) const {
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        const auto it = inst.pinToNet.find(c.outputName());
        if (it != inst.pinToNet.end() && it->second == net) return &inst;
    }
    return nullptr;
}

std::vector<std::pair<const Instance*, std::string>> Design::loadsOf(
    const std::string& net) const {
    std::vector<std::pair<const Instance*, std::string>> out;
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end() && it->second == net) {
                out.push_back({&inst, in});
            }
        }
    }
    return out;
}

std::vector<NetNoiseReport> analyzeDesign(const Design& design,
                                          const parser::SpefFile& spef,
                                          const DesignNoiseOptions& opt) {
    std::vector<NetNoiseReport> reports;
    const cell::CellLibrary& lib = design.library();

    for (const auto& [netName, spefNet] : spef.nets()) {
        auto aggressors = spef.aggressorsOf(netName);
        if (aggressors.empty()) continue;
        const Instance* driver = design.driverOf(netName);
        if (driver == nullptr) {
            log::warn() << "SPEF net '" << netName
                        << "' has coupling but no driver in the design";
            continue;
        }
        const auto loads = design.loadsOf(netName);
        if (loads.empty()) continue;

        // Keep the strongest-coupled aggressors that have drivers. Coupling
        // caps may be listed under either net's section, so scan all.
        auto ownerOf = [](const std::string& node) {
            return node.substr(0, node.find(':'));
        };
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto& agg : aggressors) {
            if (spef.nets().find(agg) == spef.nets().end()) continue;
            if (design.driverOf(agg) == nullptr) continue;
            double cc = 0.0;
            for (const auto& [otherName, otherNet] : spef.nets()) {
                for (const auto& cap : otherNet.caps) {
                    if (cap.node2.empty()) continue;
                    const std::string o1 = ownerOf(cap.node1);
                    const std::string o2 = ownerOf(cap.node2);
                    if ((o1 == netName && o2 == agg) ||
                        (o2 == netName && o1 == agg)) {
                        cc += cap.farads;
                    }
                }
            }
            ranked.push_back({cc, agg});
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        if (ranked.size() > opt.maxAggressors) {
            ranked.resize(opt.maxAggressors);
        }
        if (ranked.empty()) continue;

        std::vector<std::string> clusterNets{netName};
        for (const auto& [cc, agg] : ranked) clusterNets.push_back(agg);
        const ic::RcNetwork rc = ic::rcFromSpef(spef, clusterNets);

        NetNoiseReport report;
        report.net = netName;

        // Both victim holding levels are checked; the worse margin wins.
        bool first = true;
        for (const bool level : {false, true}) {
            ClusterSpec spec;
            spec.technology = &lib.technology();
            spec.customNet = &rc;
            spec.tstop = opt.tstop;
            spec.victim.driverCell = driver->cellName;
            spec.victim.outputLevel = level;
            spec.victim.glitchInput =
                lib.cell(driver->cellName).inputNames().front();
            spec.victim.receiverCell = loads.front().first->cellName;
            for (const auto& [cc, agg] : ranked) {
                AggressorSpec as;
                as.driverCell = design.driverOf(agg)->cellName;
                // The damaging direction: aggressors switch away from the
                // victim's held level.
                as.outputRising = !level ? true : false;
                report.aggressorNets.push_back(agg);
                spec.aggressors.push_back(as);
            }
            auto cluster = analyzeCluster(spec, opt.report);
            if (first || cluster.margin < report.cluster.margin) {
                report.cluster = std::move(cluster);
            }
            first = false;
            // aggressorNets were appended twice; trim after the 2nd pass.
        }
        report.aggressorNets.resize(ranked.size());
        reports.push_back(std::move(report));
    }
    return reports;
}

}  // namespace sna::core

#include "core/sna.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/design_index.hpp"
#include "core/incremental.hpp"
#include "core/propagate.hpp"
#include "lint/lint.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace sna::core {

void Design::addInstance(Instance inst) {
    const cell::Cell& c = lib_->cell(inst.cellName);
    for (const auto& pin : c.pins()) {
        if (inst.pinToNet.find(pin.name) == inst.pinToNet.end()) {
            throw ModelError("instance '" + inst.name + "': pin '" +
                             pin.name + "' is not connected");
        }
    }
    instances_.push_back(std::move(inst));
}

void Design::replaceCell(const std::string& instName,
                         const std::string& cellName) {
    for (auto& inst : instances_) {
        if (inst.name != instName) continue;
        if (inst.cellName == cellName) return;
        const cell::Cell& oldCell = lib_->cell(inst.cellName);
        const cell::Cell& newCell = lib_->cell(cellName);
        // Same output pin and the same input pins in the same order: the
        // instance's pinToNet stays valid and so does every connectivity
        // edge a retained DesignIndex derived from the old binding.
        if (oldCell.outputName() != newCell.outputName() ||
            oldCell.inputNames() != newCell.inputNames()) {
            throw ModelError("replaceCell: '" + cellName +
                             "' is not pin-compatible with '" +
                             inst.cellName + "' on instance '" + instName +
                             "'");
        }
        inst.cellName = cellName;
        return;
    }
    throw ModelError("replaceCell: no instance named '" + instName + "'");
}

const Instance* Design::driverOf(const std::string& net) const {
    // Deterministic on multiply-driven nets: the lexicographically smallest
    // instance name wins, independent of insertion order (DesignIndex makes
    // the same choice, so the indexed and brute-force paths agree).
    const Instance* best = nullptr;
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        const auto it = inst.pinToNet.find(c.outputName());
        if (it != inst.pinToNet.end() && it->second == net &&
            (best == nullptr || inst.name < best->name)) {
            best = &inst;
        }
    }
    return best;
}

std::vector<std::pair<const Instance*, std::string>> Design::loadsOf(
    const std::string& net) const {
    std::vector<std::pair<const Instance*, std::string>> out;
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end() && it->second == net) {
                out.push_back({&inst, in});
            }
        }
    }
    return out;
}

namespace {

/// Records one cluster run's output glitch in the net's surviving front.
void recordRun(SurvivingSet* out, const ClusterReport& run) {
    if (out == nullptr) return;
    SurvivingGlitch sg;
    sg.height = std::abs(run.worst.metrics.peak);
    sg.width = run.worst.metrics.width;
    mergeSurviving(*out, sg);
}

/// Worst-of-both-holding-levels cluster run for one victim net, with an
/// optional propagated glitch injected at the driver input. Both levels'
/// output glitches join `outSurviving` — the non-governing level can leave
/// the wider (incomparable) glitch on the net.
///
/// `aggWindows` / `glitchWindow`, when given, apply the timing-window
/// constraints: an aggressor with an empty window is held quiet (switch
/// time +inf — it still loads the victim but never switches), the
/// alignment search only probes inside the feasible intervals, and in
/// fixed-alignment mode (searchAlignment == false) the glitch onset is
/// clamped into its feasible interval.
ClusterReport runClusterBothLevels(
    const cell::CellLibrary& lib, const Instance& driver,
    const Instance& firstLoad,
    const std::vector<std::pair<std::string, std::string>>& rankedAggressors,
    const ic::RcNetwork& rc, double tstop, const ReportOptions& ropt,
    const IncomingGlitch* incoming, SurvivingSet* outSurviving,
    const std::vector<TimingWindow>* aggWindows = nullptr,
    const TimingWindow* glitchWindow = nullptr) {
    ClusterReport worst;
    bool first = true;
    for (const bool level : {false, true}) {
        ClusterSpec spec;
        spec.technology = &lib.technology();
        spec.customNet = &rc;
        spec.tstop = tstop;
        spec.victim.driverCell = driver.cellName;
        spec.victim.outputLevel = level;
        spec.victim.glitchInput =
            lib.cell(driver.cellName).inputNames().front();
        spec.victim.receiverCell = firstLoad.cellName;
        if (incoming != nullptr) {
            spec.victim.glitchInput = incoming->inputPin;
            spec.victim.glitchHeight = incoming->height;
            // Stored as 50% width; the triangle injection takes the base.
            spec.victim.glitchWidth = 2.0 * incoming->width;
            // A broad, near-DC glitch can outlast the simulation window:
            // the alignment search probes onsets up to 0.8 * tstop, so the
            // triangle only fits for any probe when tstop >= 5x its base.
            // Extend the window rather than clamp the glitch (clamping
            // would analyze a narrower, weaker glitch — optimistic).
            spec.tstop = std::max(spec.tstop, 6.0 * spec.victim.glitchWidth);
        }
        for (const auto& [drvCell, agg] : rankedAggressors) {
            AggressorSpec as;
            as.driverCell = drvCell;
            // The damaging direction: aggressors switch away from the
            // victim's held level.
            as.outputRising = !level;
            spec.aggressors.push_back(as);
        }
        const ReportOptions* use = &ropt;
        ReportOptions constrained;
        if (aggWindows != nullptr || glitchWindow != nullptr) {
            constrained = ropt;
            if (aggWindows != nullptr) {
                constrained.alignment.aggressorWindows = *aggWindows;
                for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
                    if ((*aggWindows)[a].empty()) {
                        spec.aggressors[a].switchTime =
                            std::numeric_limits<double>::infinity();
                    }
                }
            }
            if (incoming != nullptr && glitchWindow != nullptr) {
                constrained.alignment.glitchWindow = *glitchWindow;
                if (glitchWindow->bounded()) {
                    const double lo = std::max(
                        0.0,
                        glitchWindow->earliest - spec.victim.glitchWidth);
                    const double hi = std::min(0.8 * spec.tstop,
                                               glitchWindow->latest);
                    if (lo <= hi) {
                        spec.victim.glitchTime = std::min(
                            std::max(spec.victim.glitchTime, lo), hi);
                    }
                }
            }
            use = &constrained;
        }
        auto cluster = analyzeCluster(spec, *use);
        recordRun(outSurviving, cluster);
        if (first || cluster.margin < worst.margin) {
            worst = std::move(cluster);
        }
        first = false;
    }
    return worst;
}

/// Full per-net analysis: the local-only verdict (exactly what the flat
/// propagate=false sweep computes), plus — when upstream glitches reach the
/// driver — one combined run per incoming candidate (the Pareto front is
/// incomparable until solved); the worst margin governs the report.
/// `outSurviving`, when set, collects every run's output glitch: a
/// non-governing candidate can still leave the wider (or taller) glitch on
/// the net, and downstream stages must see it.
NetNoiseReport analyzeVictim(
    const cell::CellLibrary& lib, const std::string& netName,
    const Instance& driver, const Instance& firstLoad,
    const std::vector<std::pair<std::string, std::string>>& rankedAggressors,
    const ic::RcNetwork& rc, double tstop, const ReportOptions& ropt,
    const std::vector<IncomingGlitch>& incoming = {},
    SurvivingSet* outSurviving = nullptr,
    const std::vector<TimingWindow>* aggWindows = nullptr,
    const std::vector<TimingWindow>* incomingWindows = nullptr) {
    NetNoiseReport report;
    report.net = netName;
    for (const auto& [drvCell, agg] : rankedAggressors) {
        report.aggressorNets.push_back(agg);
    }

    report.cluster = runClusterBothLevels(lib, driver, firstLoad,
                                          rankedAggressors, rc, tstop, ropt,
                                          nullptr, outSurviving, aggWindows);
    report.propagated.localPeak = std::abs(report.cluster.worst.metrics.peak);
    report.propagated.localNrcLimit = report.cluster.nrcLimit;
    report.propagated.localMargin = report.cluster.margin;
    report.propagated.localFails = report.cluster.fails;

    for (std::size_t i = 0; i < incoming.size(); ++i) {
        const IncomingGlitch& in = incoming[i];
        if (!report.propagated.present) {
            // Record the primary (tallest) injected candidate even when the
            // local-only run ends up governing: `present` reports that an
            // upstream glitch reached this driver, not which run won.
            report.propagated.present = true;
            report.propagated.fromNet = in.fromNet;
            report.propagated.inputPin = in.inputPin;
            report.propagated.height = in.height;
            report.propagated.width = in.width;
        }
        auto combined = runClusterBothLevels(
            lib, driver, firstLoad, rankedAggressors, rc, tstop, ropt, &in,
            outSurviving, aggWindows,
            incomingWindows != nullptr ? &(*incomingWindows)[i] : nullptr);
        // The worst margin over {local, each combined candidate} governs: a
        // destructively-aligned injection must not mask a local failure.
        if (combined.margin < report.cluster.margin) {
            report.cluster = std::move(combined);
            report.propagated.fromNet = in.fromNet;
            report.propagated.inputPin = in.inputPin;
            report.propagated.height = in.height;
            report.propagated.width = in.width;
        }
    }
    return report;
}

/// Scalar analysis options that change per-net results, encoded bitwise. A
/// snapshot whose fingerprint differs cannot splice: a clean net's retained
/// report was computed under different knobs. Thread count, wavefront mode,
/// and the lint mode are deliberately absent — they never change a value.
/// So are cancel/deadline/onNetFailure: a snapshot is only ever captured
/// from a complete, fault-free run, and such runs are bit-identical across
/// all failure policies.
std::string fingerprintOf(const DesignNoiseOptions& opt) {
    std::ostringstream os;
    const auto put = [&os](double v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        os << std::hex << bits << std::dec << '/';
    };
    put(opt.tstop);
    os << opt.maxAggressors << '/' << opt.propagate << '/';
    put(opt.propagateMinHeight);
    os << (opt.windows != nullptr) << '/' << opt.report.searchAlignment
       << '/' << opt.report.macromodel.usePrima << '/'
       << opt.report.macromodel.primaBlocks << '/'
       << opt.report.macromodel.loadCurveGrid << '/';
    put(opt.report.alignment.window);
    os << opt.report.alignment.coarsePoints << '/'
       << opt.report.alignment.rounds << '/';
    put(opt.report.nrc.widthMin);
    put(opt.report.nrc.widthLimit);
    put(opt.report.nrc.growth);
    os << static_cast<int>(opt.report.nrc.interp);
    return os.str();
}

/// What one analyzeWithIndex run observed about its own completion, for
/// the outcome-returning entry points. Always instantiated internally;
/// `clean()` additionally gates snapshot capture (a partial or faulted run
/// must never become splice input for a later incremental run).
struct RunOutcome {
    bool cancelled = false;
    util::CancelToken::Reason reason = util::CancelToken::Reason::none;
    std::vector<std::string> unsolved;
    std::vector<std::string> failed;
    std::vector<std::string> quarantined;
    std::vector<std::string> degraded;

    bool clean() const {
        return !cancelled && failed.empty() && quarantined.empty() &&
               degraded.empty();
    }
};

/// The report a net gets when its solve never produced one: enough to keep
/// the report list shape (one entry per victim, SPEF order) while making
/// the missing numbers impossible to mistake for a verdict.
NetNoiseReport failureStub(const std::string& net,
                           NetNoiseReport::Status status,
                           const char* what = nullptr) {
    NetNoiseReport r;
    r.net = net;
    r.status = status;
    if (what != nullptr) r.error = what;
    return r;
}

/// Splice inputs for one incremental run (analyzeWithIndex `inc` param):
/// the prior snapshot to retain clean results from, the dirty net set to
/// re-solve, and the counters to fill. All borrowed, never null.
struct IncrementalContext {
    const AnalysisSnapshot* prior = nullptr;
    const std::unordered_set<std::string>* dirty = nullptr;
    IncrementalStats* stats = nullptr;
};

/// The engine shared by analyzeDesign (inc == nullptr: every net solves)
/// and analyzeDesignIncremental (inc != nullptr: clean nets splice their
/// retained slot values and only the dirty tasks are scheduled). When
/// `capture` is non-null the per-net result maps are (re)filled from this
/// run's slots; the caller owns the snapshot's identity fields and index.
/// `windowsPre`, when given, is the already-propagated window map (the
/// incremental caller computes it early to diff against the snapshot).
std::vector<NetNoiseReport> analyzeWithIndex(
    const Design& design, const parser::SpefFile& spef,
    const DesignNoiseOptions& opt, const DesignIndex& index,
    const std::unordered_map<std::string, TimingWindow>* windowsPre,
    const IncrementalContext* inc, AnalysisSnapshot* capture,
    RunOutcome* out) {
    const cell::CellLibrary& lib = design.library();
    charlib::CharCache runCache;
    charlib::CharCache* cache = opt.cache ? opt.cache : &runCache;

    // ---- phase 1 (serial, index lookups only): select victims and rank
    // their aggressors by summed coupling cap.
    struct Work {
        const std::string* net;
        const Instance* driver;
        const Instance* firstLoad;
        /// (driver cell, aggressor net), strongest-coupled first.
        std::vector<std::pair<std::string, std::string>> ranked;
    };
    std::vector<Work> work;
    for (const auto& [netName, spefNet] : spef.nets()) {
        const auto& coupling = index.couplingOf(netName);
        if (coupling.empty()) continue;
        const Instance* driver = index.driverOf(netName);
        if (driver == nullptr) {
            log::warn() << "SPEF net '" << netName
                        << "' has coupling but no driver in the design";
            continue;
        }
        const auto& loads = index.loadsOf(netName);
        if (loads.empty()) continue;

        // Keep the strongest-coupled aggressors that are SPEF nets with
        // drivers; ties break on the net name for determinism.
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto& [agg, cc] : coupling) {
            if (spef.nets().find(agg) == spef.nets().end()) continue;
            if (index.driverOf(agg) == nullptr) continue;
            ranked.push_back({cc, agg});
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                                   const auto& b) {
            return a.first != b.first ? a.first > b.first
                                      : a.second < b.second;
        });
        if (ranked.size() > opt.maxAggressors) {
            ranked.resize(opt.maxAggressors);
        }
        if (ranked.empty()) continue;

        Work w;
        w.net = &netName;
        w.driver = driver;
        w.firstLoad = loads.front().first;
        for (const auto& [cc, agg] : ranked) {
            w.ranked.push_back({index.driverOf(agg)->cellName, agg});
        }
        work.push_back(std::move(w));
    }

    ReportOptions ropt = opt.report;
    if (ropt.macromodel.cache == nullptr) ropt.macromodel.cache = cache;

    const auto solveVictim =
        [&](const Work& w, const std::vector<IncomingGlitch>& incoming,
            SurvivingSet* outSurviving,
            const std::vector<TimingWindow>* aggWindows = nullptr,
            const std::vector<TimingWindow>* incomingWindows = nullptr) {
            std::vector<std::string> clusterNets{*w.net};
            for (const auto& [drvCell, agg] : w.ranked) {
                clusterNets.push_back(agg);
            }
            const ic::RcNetwork rc = ic::rcFromSpef(spef, clusterNets);
            NetNoiseReport r = analyzeVictim(
                lib, *w.net, *w.driver, *w.firstLoad, w.ranked, rc,
                opt.tstop, ropt, incoming, outSurviving, aggWindows,
                incomingWindows);
            r.otherDrivers = index.extraDriversOf(*w.net);
            return r;
        };

    std::vector<NetNoiseReport> reports(work.size());
    /// Victim slot i holds a final value (solved, stubbed, or spliced).
    /// Only consulted on a cancelled run, where unfinished slots must be
    /// dropped rather than returned default-constructed.
    std::vector<char> victimDone(work.size(), 0);

    // Run-local cancellation: the caller's token (if any) chains under a
    // token that also carries the run's deadline, so both compose. With
    // neither set `cancel` stays null and every solve path is exactly the
    // historical zero-overhead one.
    util::CancelToken runToken(opt.cancel);
    const util::CancelToken* cancel = nullptr;
    if (opt.cancel != nullptr || opt.deadline > 0.0) {
        runToken.setDeadlineAfter(opt.deadline);
        cancel = &runToken;
    }
    const NetFailurePolicy policy = opt.onNetFailure;

    // One pool per analyzeDesign call, shared by every sweep below: the old
    // per-level parallelFor constructed and joined a fresh ThreadPool at
    // every level, and that thread churn dominated the wavefront's runtime.
    // threads == 0 means "use the machine" (hardware_concurrency).
    const int threads = util::resolveThreadCount(opt.threads);
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) {
        pool = std::make_unique<util::ThreadPool>(threads);
    }

    if (!opt.propagate) {
        // ---- phase 2, flat (parallel): one independent cluster solve per
        // victim. Slot i holds net i's report, so ordering stays SPEF order
        // at any thread count. Incremental runs splice clean victims from
        // the snapshot and solve only the dirty slots.
        std::vector<char> solveSlot(work.size(), 1);
        if (inc != nullptr) {
            for (std::size_t i = 0; i < work.size(); ++i) {
                const std::string& net = *work[i].net;
                if (inc->dirty->count(net) != 0) continue;
                const auto it = inc->prior->victimReports.find(net);
                if (it == inc->prior->victimReports.end()) continue;
                reports[i] = it->second;
                solveSlot[i] = 0;
                victimDone[i] = 1;
            }
        }
        util::parallelFor(
            pool.get(), static_cast<int>(work.size()),
            [&](int i) {
                if (!solveSlot[static_cast<std::size_t>(i)]) return;
                const std::string& net = *work[i].net;
                if (policy == NetFailurePolicy::failFast) {
                    SNA_FAULT_POINT("core.solve_net", net);
                    reports[i] = solveVictim(work[i], {}, nullptr);
                } else {
                    // Independent victims: no cone to quarantine, so both
                    // non-failFast policies reduce to "capture and go on".
                    try {
                        SNA_FAULT_POINT("core.solve_net", net);
                        reports[i] = solveVictim(work[i], {}, nullptr);
                    } catch (const util::CancelledError&) {
                        throw;
                    } catch (const std::exception& e) {
                        reports[i] = failureStub(
                            net, NetNoiseReport::Status::failed, e.what());
                    }
                }
                victimDone[static_cast<std::size_t>(i)] = 1;
            },
            cancel);
        bool runCancelled = false;
        for (const char done : victimDone) {
            if (!done) {
                runCancelled = true;
                break;
            }
        }
        if (out != nullptr) {
            out->cancelled = runCancelled;
            if (runCancelled && cancel != nullptr) {
                out->reason = cancel->reason();
            }
            for (std::size_t i = 0; i < work.size(); ++i) {
                if (!victimDone[i]) {
                    out->unsolved.push_back(*work[i].net);
                } else if (reports[i].status ==
                           NetNoiseReport::Status::failed) {
                    out->failed.push_back(*work[i].net);
                }
            }
        }
        if (inc != nullptr) {
            inc->stats->totalTasks = work.size();
            for (const char solve : solveSlot) {
                if (solve) {
                    ++inc->stats->solvedVictimReports;
                } else {
                    ++inc->stats->reusedVictimReports;
                }
            }
            inc->stats->dirtyTasks = inc->stats->solvedVictimReports;
        }
        if (capture != nullptr && !runCancelled &&
            (out == nullptr || out->failed.empty())) {
            capture->victimReports.clear();
            capture->quietReports.clear();
            capture->surviving.clear();
            capture->netWindows.clear();
            for (std::size_t i = 0; i < work.size(); ++i) {
                capture->victimReports.emplace(*work[i].net, reports[i]);
            }
        }
        if (runCancelled) {
            std::vector<NetNoiseReport> kept;
            for (std::size_t i = 0; i < work.size(); ++i) {
                if (victimDone[i]) kept.push_back(std::move(reports[i]));
            }
            return kept;
        }
        return reports;
    }

    // ---- phase 2, wavefront: one task per net of the design graph, run
    // either as a dependency-counted task graph (default — a net solves the
    // moment its fanin nets finish) or level-by-level behind a barrier (the
    // validation baseline). Either way every per-net output is
    // slot-addressed — reports by victim slot, surviving fronts and quiet
    // reports by task id — and a task reads nothing but its scheduled
    // fanins' slots, so completion order cannot change a single bit. Victim
    // clusters write their report slot (SPEF order is preserved because the
    // slots were allocated in phase 1); quiet pass-through nets carry noise
    // forward through the cached propagation tables.
    std::unordered_map<std::string, int> slotOf;
    for (std::size_t i = 0; i < work.size(); ++i) {
        slotOf.emplace(*work[i].net, static_cast<int>(i));
    }

    // ---- switching windows (FRAME-style temporal correlation) -----------
    // Propagated once over the whole level graph before any cluster
    // solves: a victim's aggressors can live on ANY level, so their
    // windows must be known up front, not wavefront-ordered. Without
    // windows this block is free and the wavefront below is untouched —
    // bit-identical to the windows-less pipeline.
    const bool useWindows = opt.windows != nullptr;
    std::unordered_map<std::string, TimingWindow> netWindows;
    if (useWindows) {
        netWindows = windowsPre != nullptr ? *windowsPre
                                           : propagateWindows(index, cache);
    }
    const auto windowAt = [&](const std::string& net) {
        const auto it = netWindows.find(net);
        return it != netWindows.end() ? it->second
                                      : TimingWindow::unbounded();
    };

    const NetTaskGraph& tg = index.taskGraph();
    const int numNets = static_cast<int>(tg.nets.size());
    // Slot-addressed per-net outputs: task id -> the net's surviving front /
    // its propagated-only report. Written only by the net's own task, read
    // only by tasks downstream of it, so no completion order can race.
    std::vector<SurvivingSet> surviving(
        static_cast<std::size_t>(numNets));
    std::vector<std::optional<NetNoiseReport>> quietReports(
        static_cast<std::size_t>(numNets));
    // Per-task resilience state, slot-addressed like every other per-net
    // output: written only by the net's own task, read only by tasks
    // downstream over scheduled fanin edges (after their dependency count
    // reached zero), so the quarantine propagation is race-free.
    enum class TaskState : char { ok, failed, quarantined, degraded };
    std::vector<TaskState> taskState(static_cast<std::size_t>(numNets),
                                     TaskState::ok);
    // Task ran to a decision (solved, stubbed, quarantined, or spliced).
    // A zero after the run means cancellation skipped it.
    std::vector<char> taskDone(static_cast<std::size_t>(numNets), 0);

    // Incremental splice: every clean net's slots — surviving front, quiet
    // report, victim report — are pre-filled from the snapshot before any
    // task runs, so a dirty task reads its clean fanins' slots exactly as a
    // full run would after solving them.
    std::vector<char> dirtyMask(static_cast<std::size_t>(numNets), 1);
    if (inc != nullptr) {
        for (int id = 0; id < numNets; ++id) {
            const std::string& net = tg.nets[static_cast<std::size_t>(id)];
            if (inc->dirty->count(net) != 0) continue;
            dirtyMask[static_cast<std::size_t>(id)] = 0;
            taskDone[static_cast<std::size_t>(id)] = 1;
            if (const auto it = inc->prior->surviving.find(net);
                it != inc->prior->surviving.end()) {
                surviving[static_cast<std::size_t>(id)] = it->second;
            }
            if (const auto it = inc->prior->quietReports.find(net);
                it != inc->prior->quietReports.end()) {
                quietReports[static_cast<std::size_t>(id)] = it->second;
            }
        }
        for (std::size_t i = 0; i < work.size(); ++i) {
            const std::string& net = *work[i].net;
            const auto idIt = tg.idOf.find(net);
            if (idIt != tg.idOf.end() &&
                dirtyMask[static_cast<std::size_t>(idIt->second)] == 0) {
                const auto it = inc->prior->victimReports.find(net);
                if (it != inc->prior->victimReports.end()) {
                    reports[i] = it->second;
                    victimDone[i] = 1;
                    ++inc->stats->reusedVictimReports;
                    continue;
                }
                // The caller's cone marking re-solves any victim the
                // snapshot never recorded; this branch is unreachable, but
                // a wrong mask must degrade to extra work, never to an
                // empty report slot.
                dirtyMask[static_cast<std::size_t>(idIt->second)] = 1;
                taskDone[static_cast<std::size_t>(idIt->second)] = 0;
            }
            ++inc->stats->solvedVictimReports;
        }
    }

    const auto solveNet = [&](int id) {
        const std::string& net = tg.nets[id];
        // Surviving fronts are visible over scheduled fanin edges only. A
        // cycle-broken fanin sits at the same or a later level, so under
        // the barrier it was never committed when this net solved — the
        // task graph must reproduce exactly that (and must not read a slot
        // another in-flight task may be writing).
        const std::vector<int>& faninIds =
            tg.faninIds[static_cast<std::size_t>(id)];
        const auto survivingOf =
            [&](const std::string& from) -> const SurvivingSet* {
            const auto it = tg.idOf.find(from);
            if (it == tg.idOf.end() ||
                !std::binary_search(faninIds.begin(), faninIds.end(),
                                    it->second)) {
                return nullptr;
            }
            const SurvivingSet& s =
                surviving[static_cast<std::size_t>(it->second)];
            return s.empty() ? nullptr : &s;
        };

        const std::vector<IncomingGlitch> incoming =
            selectIncoming(index, net, survivingOf);
        int slot = -1;  ///< work index, or -1 for a pass-through net
        if (const auto sit = slotOf.find(net); sit != slotOf.end()) {
            slot = sit->second;
        } else if (incoming.empty() || (index.fanoutOf(net).empty() &&
                                        index.loadsOf(net).empty())) {
            // Quiet non-victim net, or a leaf with neither downstream
            // nets nor a receiver to check: nothing to do. (A loaded
            // net with no fanout still needs the NRC check below.)
            return;
        }

        // Windows mode only:
        TimingWindow sens;  ///< the net's own (sensitivity) window
        std::vector<char> dropped;  ///< per incoming: window-dropped
        std::vector<TimingWindow> incomingWindows;  ///< per incoming
        std::vector<TimingWindow> aggWindows;  ///< per ranked aggressor
        std::vector<std::string> excludedAggressors;
        /// False when every window involved is unbounded and nothing was
        /// dropped: the constrained run would equal the unconstrained one,
        /// so a single solve serves both margins.
        bool constraining = false;
        if (useWindows) {
            sens = windowAt(net);
            for (const IncomingGlitch& in : incoming) {
                // The incoming glitch can only collide with this net
                // where its carrier's window overlaps the victim's
                // sensitivity interval — and, for victim clusters, only
                // if that overlap leaves a feasible onset inside the
                // simulation horizon (mirrors runClusterBothLevels).
                const TimingWindow ov =
                    windowAt(in.fromNet).intersect(sens);
                bool drop = ov.empty();
                if (!drop && slot >= 0 && ov.bounded()) {
                    const double base = 2.0 * in.width;
                    const double tstopRun =
                        std::max(opt.tstop, 6.0 * base);
                    const double lo = std::max(0.0, ov.earliest - base);
                    const double hi =
                        std::min(0.8 * tstopRun, ov.latest);
                    drop = lo > hi;
                }
                dropped.push_back(drop ? 1 : 0);
                incomingWindows.push_back(ov);
                if (drop || ov.bounded()) constraining = true;
            }
            if (slot >= 0) {
                for (const auto& [drvCell, agg] : work[slot].ranked) {
                    const TimingWindow ov = windowAt(agg).intersect(sens);
                    aggWindows.push_back(ov);
                    if (ov.bounded() || ov.empty()) {
                        constraining = true;
                    }
                    if (ov.empty()) {
                        excludedAggressors.push_back(agg);
                    }
                }
            }
        }

        SurvivingSet produced;
        // The solve proper, wrapped so its early returns still fall
        // through to the publish step below (a pass-through net can feed
        // its front downstream even when it has no receiver to report on).
        const auto solveBody = [&] {
                if (slot >= 0) {
                    if (!useWindows) {
                        // Every run's output (local and per-candidate
                        // combined) joins the net's surviving front: a
                        // non-governing candidate can still leave the
                        // wider glitch.
                        reports[slot] = solveVictim(
                            work[slot], incoming, &produced);
                        return;
                    }
                    if (!constraining) {
                        // Every involved window is unbounded and nothing
                        // was dropped: the constrained run would be the
                        // unconstrained run. Solve once, report the margin
                        // as both.
                        NetNoiseReport r = solveVictim(
                            work[slot], incoming, &produced);
                        r.windows.constrained = true;
                        r.windows.window = sens;
                        r.windows.unconstrainedMargin = r.cluster.margin;
                        r.windows.windowedMargin = r.cluster.margin;
                        reports[slot] = std::move(r);
                        return;
                    }
                    // Windows mode: the unconstrained run first (the PR 2
                    // pessimistic verdict, reported for comparison), then
                    // the window-constrained run that governs the verdict
                    // and feeds the surviving front downstream.
                    NetNoiseReport unc = solveVictim(work[slot],
                                                     incoming, nullptr);
                    std::vector<IncomingGlitch> kept;
                    std::vector<TimingWindow> keptWindows;
                    std::vector<std::string> droppedFrom;
                    for (std::size_t i = 0; i < incoming.size(); ++i) {
                        if (dropped[i] != 0) {
                            droppedFrom.push_back(incoming[i].fromNet);
                            continue;
                        }
                        kept.push_back(incoming[i]);
                        keptWindows.push_back(incomingWindows[i]);
                    }
                    NetNoiseReport win = solveVictim(
                        work[slot], kept, &produced,
                        &aggWindows, &keptWindows);
                    win.windows.constrained = true;
                    win.windows.window = sens;
                    win.windows.unconstrainedMargin = unc.cluster.margin;
                    win.windows.windowedMargin = win.cluster.margin;
                    // Exclusions are recorded from two places: empty
                    // window overlaps (decided here), and aggressors the
                    // governing run's search had to hold quiet because the
                    // overlap left no feasible INPUT switch time once
                    // mapped through that run's delay/slew (+inf times).
                    std::vector<std::string> excluded = excludedAggressors;
                    const auto& times = win.cluster.aggressorSwitchTimes;
                    for (std::size_t a = 0;
                         a < times.size() && a < work[slot].ranked.size();
                         ++a) {
                        if (std::isinf(times[a])) {
                            excluded.push_back(work[slot].ranked[a].second);
                        }
                    }
                    std::sort(excluded.begin(), excluded.end());
                    excluded.erase(
                        std::unique(excluded.begin(), excluded.end()),
                        excluded.end());
                    win.windows.excludedAggressors = std::move(excluded);
                    std::sort(droppedFrom.begin(), droppedFrom.end());
                    droppedFrom.erase(
                        std::unique(droppedFrom.begin(), droppedFrom.end()),
                        droppedFrom.end());
                    win.windows.droppedIncoming = std::move(droppedFrom);
                    reports[slot] = std::move(win);
                    return;
                }
                const Instance* drv = index.driverOf(net);
                // Pass-through items always have fanin edges, and fanin
                // edges are only built through a net's driver.
                SNA_REQUIRE(drv != nullptr,
                            "pass-through net without a driver");
                // Every candidate's transfer survives unless dominated:
                // incomparable outputs stay side by side in the front.
                // Window-dropped candidates (their carrier's window misses
                // this net's sensitivity interval) neither survive nor
                // reach the receiver; they are kept aside only for the
                // unconstrained comparison margin.
                struct Transfer {
                    SurvivingGlitch sg;
                    const IncomingGlitch* from = nullptr;
                };
                std::vector<Transfer> transfers;
                std::vector<Transfer> allTransfers;  // windows mode only
                std::vector<std::string> droppedFrom;
                for (std::size_t i = 0; i < incoming.size(); ++i) {
                    const IncomingGlitch& in = incoming[i];
                    const bool drop = useWindows && dropped[i] != 0;
                    // Every window-dropped candidate is recorded, whether
                    // or not its transfer would have cleared the height
                    // filter — same accounting as the victim branch.
                    if (drop) droppedFrom.push_back(in.fromNet);
                    Transfer t;
                    t.sg = propagateThroughDriver(lib.cell(drv->cellName),
                                                  in.inputPin, in, cache);
                    t.from = &in;
                    if (t.sg.height < opt.propagateMinHeight ||
                        t.sg.width <= 0.0) {
                        continue;
                    }
                    if (useWindows) allTransfers.push_back(t);
                    if (drop) continue;
                    transfers.push_back(t);
                    mergeSurviving(produced, t.sg);
                }
                // A quiet pass-through net has no cluster, but its receiver
                // still sees the propagated glitch: check it against the
                // NRC and report, so a propagated-only failure on an
                // uncoupled net is not silently missed. The worst (minimum)
                // margin over a transfer set, both holding levels each:
                const auto& loads = index.loadsOf(net);
                struct Scan {
                    ClusterReport cluster;
                    const IncomingGlitch* governing = nullptr;
                };
                const auto nrcScan = [&](const std::vector<Transfer>& ts) {
                    Scan s;
                    bool first = true;
                    for (const Transfer& t : ts) {
                        for (const bool level : {false, true}) {
                            ClusterSpec spec;
                            spec.technology = &lib.technology();
                            spec.victim.receiverCell =
                                loads.front().first->cellName;
                            spec.victim.outputLevel = level;
                            wave::GlitchMetrics m;
                            m.peak = t.sg.height;
                            m.width = t.sg.width;
                            const double limit =
                                nrcLimitFor(spec, m, cache, ropt.nrc);
                            const double margin = limit - t.sg.height;
                            if (first || margin < s.cluster.margin) {
                                s.cluster.worst.metrics = m;
                                s.cluster.nrcLimit = limit;
                                s.cluster.margin = margin;
                                s.cluster.fails = t.sg.height >= limit;
                                s.governing = t.from;
                            }
                            first = false;
                        }
                    }
                    return s;
                };
                if (loads.empty()) return;
                if (transfers.empty() &&
                    (!useWindows || allTransfers.empty())) {
                    return;
                }
                NetNoiseReport pr;
                pr.net = net;
                if (!transfers.empty()) {
                    Scan s = nrcScan(transfers);
                    pr.cluster = std::move(s.cluster);
                    pr.propagated.present = true;
                    pr.propagated.fromNet = s.governing->fromNet;
                    pr.propagated.inputPin = s.governing->inputPin;
                    pr.propagated.height = s.governing->height;
                    pr.propagated.width = s.governing->width;
                }
                if (useWindows) {
                    // The unconstrained view over every transfer, dropped
                    // or not — what the windows-less wavefront would have
                    // checked here. With nothing dropped it is the scan
                    // already done.
                    Scan unc;
                    if (droppedFrom.empty()) {
                        unc.cluster = pr.cluster;
                    } else {
                        unc = nrcScan(allTransfers);
                    }
                    pr.windows.constrained = true;
                    pr.windows.window = sens;
                    pr.windows.unconstrainedMargin = unc.cluster.margin;
                    if (transfers.empty()) {
                        // Every candidate was window-dropped: no noise
                        // reaches the receiver in-window, so the governing
                        // margin is the full NRC budget of the glitch the
                        // unconstrained view would have seen.
                        pr.cluster.nrcLimit = unc.cluster.nrcLimit;
                        pr.cluster.margin = unc.cluster.nrcLimit;
                        pr.cluster.fails = false;
                    }
                    pr.windows.windowedMargin = pr.cluster.margin;
                    std::sort(droppedFrom.begin(), droppedFrom.end());
                    droppedFrom.erase(std::unique(droppedFrom.begin(),
                                                  droppedFrom.end()),
                                      droppedFrom.end());
                    pr.windows.droppedIncoming = std::move(droppedFrom);
                }
                // No local (coupled) noise on a quiet net: the local-only
                // margin is the receiver's full NRC budget.
                pr.propagated.localPeak = 0.0;
                pr.propagated.localNrcLimit = pr.cluster.nrcLimit;
                pr.propagated.localMargin = pr.cluster.nrcLimit;
                pr.propagated.localFails = false;
                quietReports[static_cast<std::size_t>(id)] = std::move(pr);
        };
        solveBody();

        // Publish this net's surviving front into its slot (the per-level
        // serial commit of the barrier wavefront, now owned by the task):
        // the height filter runs here so downstream tasks — which may
        // already be running in task-graph mode — only ever see the final
        // value after their dependency count reaches zero.
        SurvivingSet kept;
        for (const SurvivingGlitch& sg : produced) {
            if (sg.height >= opt.propagateMinHeight && sg.width > 0.0) {
                kept.push_back(sg);
            }
        }
        surviving[static_cast<std::size_t>(id)] = std::move(kept);
    };

    // The task the scheduler actually runs: solveNet wrapped in the
    // failure-quarantine policy. Under failFast the wrapper adds nothing
    // but the injection site — exceptions propagate through the scheduler
    // exactly as before, bit-identical behavior included.
    const auto runTask = [&](int id) {
        const std::string& net = tg.nets[static_cast<std::size_t>(id)];
        int slot = -1;
        if (const auto sit = slotOf.find(net); sit != slotOf.end()) {
            slot = sit->second;
        }
        const auto markDone = [&] {
            if (slot >= 0) victimDone[static_cast<std::size_t>(slot)] = 1;
            taskDone[static_cast<std::size_t>(id)] = 1;
        };
        if (policy == NetFailurePolicy::failFast) {
            SNA_FAULT_POINT("core.solve_net", net);
            solveNet(id);
            markDone();
            return;
        }
        // Cone state over the scheduled fanin edges. Each fanin's state was
        // committed before this task's dependency count reached zero.
        const std::vector<int>& faninIds =
            tg.faninIds[static_cast<std::size_t>(id)];
        bool upstreamFault = false;
        bool upstreamDegraded = false;
        for (const int f : faninIds) {
            const TaskState s = taskState[static_cast<std::size_t>(f)];
            if (s == TaskState::failed || s == TaskState::quarantined) {
                upstreamFault = true;
            } else if (s == TaskState::degraded) {
                upstreamDegraded = true;
            }
        }
        if (policy == NetFailurePolicy::quarantineCone && upstreamFault) {
            // Suppressed, not solved: empty surviving front (nothing
            // propagates out of the cone), stub report for victims.
            taskState[static_cast<std::size_t>(id)] = TaskState::quarantined;
            if (slot >= 0) {
                reports[static_cast<std::size_t>(slot)] = failureStub(
                    net, NetNoiseReport::Status::quarantined);
            }
            markDone();
            return;
        }
        try {
            SNA_FAULT_POINT("core.solve_net", net);
            solveNet(id);
            if (upstreamFault || upstreamDegraded) {
                // degradeToPassthrough: solved across a bridged failure —
                // margins are real numbers but built on approximate inputs.
                taskState[static_cast<std::size_t>(id)] = TaskState::degraded;
                if (slot >= 0) {
                    reports[static_cast<std::size_t>(slot)].status =
                        NetNoiseReport::Status::degraded;
                }
                auto& quiet = quietReports[static_cast<std::size_t>(id)];
                if (quiet.has_value()) {
                    quiet->status = NetNoiseReport::Status::degraded;
                }
            }
        } catch (const util::CancelledError&) {
            throw;  // cancellation is never a per-net failure
        } catch (const std::exception& e) {
            taskState[static_cast<std::size_t>(id)] = TaskState::failed;
            if (slot >= 0) {
                reports[static_cast<std::size_t>(slot)] = failureStub(
                    net, NetNoiseReport::Status::failed, e.what());
            }
            quietReports[static_cast<std::size_t>(id)].reset();
            SurvivingSet pass;
            if (policy == NetFailurePolicy::degradeToPassthrough) {
                // Bridge the failed stage conservatively: its incoming
                // glitches transfer downstream unattenuated.
                const auto survivingOf =
                    [&](const std::string& from) -> const SurvivingSet* {
                    const auto it = tg.idOf.find(from);
                    if (it == tg.idOf.end() ||
                        !std::binary_search(faninIds.begin(), faninIds.end(),
                                            it->second)) {
                        return nullptr;
                    }
                    const SurvivingSet& s =
                        surviving[static_cast<std::size_t>(it->second)];
                    return s.empty() ? nullptr : &s;
                };
                for (const IncomingGlitch& in :
                     selectIncoming(index, net, survivingOf)) {
                    SurvivingGlitch sg;
                    sg.height = in.height;
                    sg.width = in.width;
                    if (sg.height >= opt.propagateMinHeight &&
                        sg.width > 0.0) {
                        mergeSurviving(pass, sg);
                    }
                }
            }
            surviving[static_cast<std::size_t>(id)] = std::move(pass);
        }
        markDone();
    };

    if (inc != nullptr) {
        // Incremental: only the dirty tasks are scheduled. Edges from a
        // clean fanin vanish (its slot is already filled); edges among
        // dirty tasks keep their dependency order, so a dirty net still
        // solves after every dirty upstream net.
        const util::RestrictedTaskGraph sub =
            util::restrictTaskGraph(tg.graph, dirtyMask);
        util::SchedulerStats stats = util::runTaskGraph(
            sub.graph,
            [&](int s) {
                runTask(sub.fullId[static_cast<std::size_t>(s)]);
            },
            pool.get(), cancel);
        inc->stats->totalTasks = static_cast<std::size_t>(numNets);
        inc->stats->dirtyTasks = sub.fullId.size();
        inc->stats->scheduler = stats;
        if (opt.schedulerStats != nullptr) {
            *opt.schedulerStats = std::move(stats);
        }
    } else if (opt.wavefront == WavefrontMode::levelBarrier) {
        // Validation baseline: levels run in order with a full join between
        // them. Task ids are (level, name)-ordered, so each level is the
        // contiguous id range [base, base + levelNets.size()).
        int base = 0;
        for (const auto& levelNets : index.levels().levels) {
            if (cancel != nullptr && cancel->stopRequested()) break;
            const int len = static_cast<int>(levelNets.size());
            util::parallelFor(pool.get(), len,
                              [&](int k) { runTask(base + k); }, cancel);
            base += len;
        }
    } else {
        // Dependency-counted task graph: the whole ready frontier runs at
        // once; a net unlocks its fanouts the moment it publishes.
        util::SchedulerStats stats =
            util::runTaskGraph(tg.graph, runTask, pool.get(), cancel);
        if (opt.schedulerStats != nullptr) {
            *opt.schedulerStats = std::move(stats);
        }
    }

    // ---- resilience accounting and partial-result assembly ---------------
    bool runCancelled = false;
    for (int id = 0; id < numNets; ++id) {
        if (!taskDone[static_cast<std::size_t>(id)]) {
            runCancelled = true;
            break;
        }
    }
    std::size_t failedCount = 0;
    std::size_t quarantinedCount = 0;
    std::size_t degradedCount = 0;
    for (int id = 0; id < numNets; ++id) {
        switch (taskState[static_cast<std::size_t>(id)]) {
            case TaskState::failed: ++failedCount; break;
            case TaskState::quarantined: ++quarantinedCount; break;
            case TaskState::degraded: ++degradedCount; break;
            case TaskState::ok: break;
        }
    }
    const auto fillQuarantineStats = [&](util::SchedulerStats* s) {
        if (s == nullptr) return;
        s->failedTasks = failedCount;
        s->quarantinedTasks = quarantinedCount;
        s->degradedTasks = degradedCount;
    };
    fillQuarantineStats(opt.schedulerStats);
    if (inc != nullptr) fillQuarantineStats(&inc->stats->scheduler);
    if (out != nullptr) {
        out->cancelled = runCancelled;
        if (runCancelled && cancel != nullptr) out->reason = cancel->reason();
        for (int id = 0; id < numNets; ++id) {
            const std::string& net = tg.nets[static_cast<std::size_t>(id)];
            if (!taskDone[static_cast<std::size_t>(id)]) {
                // Only victim clusters are reported as unsolved: the
                // invariant callers rely on is reports + unsolvedNets ==
                // the victim set, and pass-through propagation tasks never
                // produce a report in the first place.
                if (slotOf.count(net) != 0) out->unsolved.push_back(net);
                continue;
            }
            switch (taskState[static_cast<std::size_t>(id)]) {
                case TaskState::failed: out->failed.push_back(net); break;
                case TaskState::quarantined:
                    out->quarantined.push_back(net);
                    break;
                case TaskState::degraded: out->degraded.push_back(net); break;
                case TaskState::ok: break;
            }
        }
    }
    const bool runClean = !runCancelled && failedCount == 0 &&
                          quarantinedCount == 0 && degradedCount == 0;

    if (capture != nullptr && runClean) {
        // Refresh the retained per-net maps from this run's slots (on an
        // incremental run the clean entries were pre-filled above, so the
        // rebuilt maps are complete either way). Gated on a clean run: a
        // cancelled run has unfilled slots and a faulted run has stub
        // reports — neither may become splice input for a later
        // incremental iteration.
        capture->victimReports.clear();
        capture->quietReports.clear();
        capture->surviving.clear();
        for (std::size_t i = 0; i < work.size(); ++i) {
            capture->victimReports.emplace(*work[i].net, reports[i]);
        }
        for (int id = 0; id < numNets; ++id) {
            const std::string& net = tg.nets[static_cast<std::size_t>(id)];
            if (!surviving[static_cast<std::size_t>(id)].empty()) {
                capture->surviving.emplace(
                    net, surviving[static_cast<std::size_t>(id)]);
            }
            if (quietReports[static_cast<std::size_t>(id)].has_value()) {
                capture->quietReports.emplace(
                    net, *quietReports[static_cast<std::size_t>(id)]);
            }
        }
        capture->netWindows = netWindows;
    }

    // Propagated-only entries for quiet nets follow the SPEF-ordered victim
    // reports, in level-then-name (== task id) order (deterministic). On a
    // cancelled run the unfinished victim slots are dropped first — every
    // report returned is complete and bitwise-identical to the same net's
    // report in an uncancelled run.
    if (runCancelled) {
        std::vector<NetNoiseReport> kept;
        kept.reserve(reports.size());
        for (std::size_t i = 0; i < work.size(); ++i) {
            if (victimDone[i]) kept.push_back(std::move(reports[i]));
        }
        reports = std::move(kept);
    }
    for (int id = 0; id < numNets; ++id) {
        auto& pr = quietReports[static_cast<std::size_t>(id)];
        if (pr.has_value()) reports.push_back(std::move(*pr));
    }
    return reports;
}

/// The shared lint gate: run the checker, apply waivers, publish the report
/// through `opt.lintOut` (and `snapshotLint` when given), and throw
/// lint::LintError in strict mode on surviving errors. The checker only
/// reads the index (and characterizes window-hull Thevenins through the
/// shared cache — values the analysis would compute identically anyway), so
/// warn mode cannot perturb a single analysis bit.
void runLintGate(lint::LintReport& report, const DesignNoiseOptions& opt,
                 std::vector<lint::Diagnostic>* snapshotLint) {
    if (opt.lintWaivers != nullptr) {
        lint::applyWaivers(report, *opt.lintWaivers);
    }
    if (snapshotLint != nullptr) *snapshotLint = report.diagnostics;
    if (opt.lintOut != nullptr) *opt.lintOut = report;
    if (opt.lint == lint::Mode::strict && report.hasErrors()) {
        throw lint::LintError(report);
    }
}

/// Translate a run's observed completion into the public outcome type.
void fillOutcome(AnalysisOutcome& outcome, RunOutcome& run) {
    if (run.cancelled) {
        outcome.reason =
            run.reason == util::CancelToken::Reason::deadline
                ? TerminationReason::deadlineExpired
                : TerminationReason::cancelled;
    }
    outcome.unsolvedNets = std::move(run.unsolved);
    const auto sorted = [](std::vector<std::string>& v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
        return std::move(v);
    };
    outcome.failedNets = sorted(run.failed);
    outcome.quarantinedNets = sorted(run.quarantined);
    outcome.degradedNets = sorted(run.degraded);
}

/// Post-run lint findings for the report gate (SNA-L7xx, resilience):
/// emitted after the solve, so they can never gate a strict run — they
/// exist to make a partial signoff impossible to mistake for a clean one
/// in lint-consuming tooling.
void appendResilienceLint(lint::LintReport& lr,
                          const AnalysisOutcome& outcome) {
    const auto add = [&lr](const char* rule, lint::Severity sev,
                           const std::string& net, const char* message) {
        lint::Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.object = net;
        d.message = message;
        lr.diagnostics.push_back(std::move(d));
    };
    for (const std::string& net : outcome.failedNets) {
        add("SNA-L701", lint::Severity::warning, net,
            "net solve failed; margins unavailable (see the report's "
            "captured error)");
    }
    for (const std::string& net : outcome.quarantinedNets) {
        add("SNA-L702", lint::Severity::warning, net,
            "net quarantined downstream of a failed solve; never analyzed");
    }
    for (const std::string& net : outcome.degradedNets) {
        add("SNA-L703", lint::Severity::info, net,
            "net solved across a pass-through bridge; margins approximate");
    }
}

}  // namespace

AnalysisOutcome analyzeDesignOutcome(const Design& design,
                                     const parser::SpefFile& spef,
                                     const DesignNoiseOptions& opt) {
    auto index = std::make_unique<DesignIndex>(
        design, spef, opt.propagate ? opt.windows : nullptr);
    if (opt.lint != lint::Mode::off) {
        lint::LintOptions lo;
        lo.nrc = opt.report.nrc;
        lo.cache = opt.cache;
        lo.loadCurveGrid = opt.report.macromodel.loadCurveGrid;
        lint::LintReport lr = lint::lintDesign(*index, spef, lo);
        runLintGate(lr, opt,
                    opt.snapshot != nullptr ? &opt.snapshot->lint : nullptr);
    }
    RunOutcome run;
    AnalysisOutcome outcome;
    outcome.reports = analyzeWithIndex(design, spef, opt, *index, nullptr,
                                       nullptr, opt.snapshot, &run);
    if (opt.snapshot != nullptr) {
        if (run.clean()) {
            opt.snapshot->design = &design;
            opt.snapshot->instanceCount = design.instances().size();
            opt.snapshot->fingerprint = fingerprintOf(opt);
            opt.snapshot->index = std::move(index);
            opt.snapshot->valid = true;
        } else {
            // Partial or faulted run: nothing was captured (the per-net
            // maps were left untouched) and the snapshot must not splice.
            opt.snapshot->valid = false;
        }
    }
    fillOutcome(outcome, run);
    if (opt.lint != lint::Mode::off && opt.lintOut != nullptr) {
        appendResilienceLint(*opt.lintOut, outcome);
    }
    return outcome;
}

std::vector<NetNoiseReport> analyzeDesign(const Design& design,
                                          const parser::SpefFile& spef,
                                          const DesignNoiseOptions& opt) {
    AnalysisOutcome outcome = analyzeDesignOutcome(design, spef, opt);
    if (!outcome.complete()) {
        throw util::CancelledError(
            outcome.reason == TerminationReason::deadlineExpired
                ? "analysis deadline expired"
                : "analysis cancelled");
    }
    return std::move(outcome.reports);
}

AnalysisOutcome analyzeDesignIncrementalOutcome(
    const Design& design, const parser::SpefFile& spef,
    const DesignDelta& delta, AnalysisSnapshot& snapshot,
    const DesignNoiseOptions& opt, IncrementalStats* statsOut) {
    IncrementalStats localStats;
    IncrementalStats& st = statsOut != nullptr ? *statsOut : localStats;
    st = IncrementalStats{};

    // Delta validity (SNA-L501/L502) gates the run before the snapshot is
    // touched: a typo'd delta marks nothing dirty and would otherwise
    // silently splice stale results for the net the user meant.
    lint::LintReport deltaReport;
    if (opt.lint != lint::Mode::off) {
        deltaReport = lint::lintDelta(design, spef, delta);
        runLintGate(deltaReport, opt, nullptr);
    }

    const std::string fp = fingerprintOf(opt);
    const bool reusable =
        snapshot.valid && snapshot.index != nullptr &&
        snapshot.design == &design && snapshot.fingerprint == fp &&
        snapshot.instanceCount == design.instances().size() &&
        !delta.connectivityChanged;
    if (!reusable) {
        // No splice possible — first run, different design/options, or a
        // connectivity change (which may have reallocated the instance
        // storage the retained index points into). Run the full pipeline
        // and capture a fresh snapshot so the NEXT iteration can go
        // incremental.
        st.indexRebuilt = true;
        DesignNoiseOptions full = opt;
        full.snapshot = &snapshot;
        AnalysisOutcome outcome = analyzeDesignOutcome(design, spef, full);
        if (opt.lint != lint::Mode::off && opt.lintOut != nullptr) {
            // The full re-lint overwrote lintOut; the delta findings (all
            // waived here, or strict would have thrown above) still belong
            // in front of it.
            opt.lintOut->diagnostics.insert(opt.lintOut->diagnostics.begin(),
                                            deltaReport.diagnostics.begin(),
                                            deltaReport.diagnostics.end());
        }
        // A partial or faulted full run captured no snapshot
        // (snapshot.index may even be null); the task counters then only
        // know what was actually produced.
        if (snapshot.valid && snapshot.index != nullptr) {
            st.totalTasks = opt.propagate
                                ? snapshot.index->taskGraph().nets.size()
                                : snapshot.victimReports.size();
            st.solvedVictimReports = snapshot.victimReports.size();
        } else {
            st.totalTasks = outcome.reports.size() + outcome.unsolvedNets.size();
            st.solvedVictimReports = outcome.reports.size();
        }
        st.dirtyTasks = st.totalTasks;
        return outcome;
    }

    DesignIndex& index = *snapshot.index;
    index.setTimingWindows(opt.propagate ? opt.windows : nullptr);

    DesignNoiseOptions run = opt;
    run.snapshot = nullptr;  // snapshot refresh is explicit below
    charlib::CharCache iterationCache;
    if (run.cache == nullptr) run.cache = &iterationCache;

    // ---- seeds: what the delta touched directly -------------------------
    std::unordered_set<std::string> seeds(delta.nets.begin(),
                                          delta.nets.end());
    for (const std::string& instName : delta.instances) {
        // A rebound instance changes its output net's driver model and its
        // input nets' receiver — every net on its pins re-solves.
        for (const Instance& inst : design.instances()) {
            if (inst.name != instName) continue;
            for (const auto& [pin, net] : inst.pinToNet) seeds.insert(net);
        }
    }
    // Re-read the changed SPEF sections in place; owners whose summed
    // coupling moved are value-changed seeds too (their victims re-rank).
    for (const std::string& net : index.patchParasitics(spef, delta.nets)) {
        seeds.insert(net);
    }
    // Windows: re-propagate over the patched design (cheap — every
    // characterization is a warm cache hit) and seed every net whose
    // window moved: its own sensitivity interval changed, and so did the
    // aggressor window its coupled victims see.
    std::unordered_map<std::string, TimingWindow> newWindows;
    const std::unordered_map<std::string, TimingWindow>* windowsPre =
        nullptr;
    if (run.propagate && run.windows != nullptr) {
        newWindows = propagateWindows(index, run.cache);
        for (const auto& [net, window] : newWindows) {
            const auto it = snapshot.netWindows.find(net);
            if (it == snapshot.netWindows.end() || it->second != window) {
                seeds.insert(net);
            }
        }
        for (const auto& [net, window] : snapshot.netWindows) {
            if (newWindows.find(net) == newWindows.end()) seeds.insert(net);
        }
        windowsPre = &newWindows;
    }

    std::unordered_set<std::string> dirty =
        expandDirtyCone(index, seeds, run.propagate, &st.coupledNeighbors);

    // Safety net: a victim candidate the snapshot never recorded must be
    // solved (with its cone), not spliced-as-absent. Unreachable without a
    // connectivity change, but a wrong dirty set must degrade to extra
    // work, never to a missing report.
    std::unordered_set<std::string> unrecorded;
    for (const auto& [netName, spefNet] : spef.nets()) {
        if (dirty.count(netName) != 0) continue;
        if (snapshot.victimReports.count(netName) != 0) continue;
        if (index.couplingOf(netName).empty()) continue;
        if (index.driverOf(netName) == nullptr) continue;
        if (index.loadsOf(netName).empty()) continue;
        unrecorded.insert(netName);
    }
    if (!unrecorded.empty()) {
        seeds.insert(unrecorded.begin(), unrecorded.end());
        dirty = expandDirtyCone(index, seeds, run.propagate,
                                &st.coupledNeighbors);
    }
    st.seedNets = seeds.size();

    IncrementalContext ctx;
    ctx.prior = &snapshot;
    ctx.dirty = &dirty;
    ctx.stats = &st;
    RunOutcome ro;
    AnalysisOutcome outcome;
    outcome.reports = analyzeWithIndex(design, spef, run, index, windowsPre,
                                       &ctx, &snapshot, &ro);
    // The index was patched in place above; an incomplete or faulted run
    // therefore poisons the snapshot — its retained reports no longer match
    // the index state, so the next iteration must fall back to a full run.
    snapshot.valid = ro.clean();
    fillOutcome(outcome, ro);
    if (opt.lint != lint::Mode::off && opt.lintOut != nullptr) {
        appendResilienceLint(*opt.lintOut, outcome);
    }
    return outcome;
}

std::vector<NetNoiseReport> analyzeDesignIncremental(
    const Design& design, const parser::SpefFile& spef,
    const DesignDelta& delta, AnalysisSnapshot& snapshot,
    const DesignNoiseOptions& opt, IncrementalStats* statsOut) {
    AnalysisOutcome outcome = analyzeDesignIncrementalOutcome(
        design, spef, delta, snapshot, opt, statsOut);
    if (!outcome.complete()) {
        throw util::CancelledError(
            outcome.reason == TerminationReason::deadlineExpired
                ? "analysis deadline expired"
                : "analysis cancelled");
    }
    return std::move(outcome.reports);
}

std::vector<NetNoiseReport> analyzeDesignReference(
    const Design& design, const parser::SpefFile& spef,
    const DesignNoiseOptions& opt) {
    std::vector<NetNoiseReport> reports;
    const cell::CellLibrary& lib = design.library();

    for (const auto& [netName, spefNet] : spef.nets()) {
        auto aggressors = spef.aggressorsOf(netName);
        if (aggressors.empty()) continue;
        const Instance* driver = design.driverOf(netName);
        if (driver == nullptr) {
            log::warn() << "SPEF net '" << netName
                        << "' has coupling but no driver in the design";
            continue;
        }
        const auto loads = design.loadsOf(netName);
        if (loads.empty()) continue;

        // The pre-index cost model: coupling caps may be listed under either
        // net's section, so every (victim, aggressor) pair rescans all nets.
        auto ownerOf = [](const std::string& node) {
            return node.substr(0, node.find(':'));
        };
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto& agg : aggressors) {
            if (spef.nets().find(agg) == spef.nets().end()) continue;
            if (design.driverOf(agg) == nullptr) continue;
            double cc = 0.0;
            for (const auto& [otherName, otherNet] : spef.nets()) {
                for (const auto& cap : otherNet.caps) {
                    if (cap.node2.empty()) continue;
                    const std::string o1 = ownerOf(cap.node1);
                    const std::string o2 = ownerOf(cap.node2);
                    if ((o1 == netName && o2 == agg) ||
                        (o2 == netName && o1 == agg)) {
                        cc += cap.farads;
                    }
                }
            }
            ranked.push_back({cc, agg});
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                                   const auto& b) {
            return a.first != b.first ? a.first > b.first
                                      : a.second < b.second;
        });
        if (ranked.size() > opt.maxAggressors) {
            ranked.resize(opt.maxAggressors);
        }
        if (ranked.empty()) continue;

        std::vector<std::string> clusterNets{netName};
        for (const auto& [cc, agg] : ranked) clusterNets.push_back(agg);
        const ic::RcNetwork rc = ic::rcFromSpef(spef, clusterNets);

        std::vector<std::pair<std::string, std::string>> rankedAggressors;
        for (const auto& [cc, agg] : ranked) {
            rankedAggressors.push_back({design.driverOf(agg)->cellName, agg});
        }
        // Uncached, serial cluster analysis: every cluster re-characterizes.
        ReportOptions ropt = opt.report;
        ropt.macromodel.cache = nullptr;
        reports.push_back(analyzeVictim(lib, netName, *driver,
                                        *loads.front().first,
                                        rankedAggressors, rc, opt.tstop,
                                        ropt));
        // Surface the non-winning drivers of a multiply-driven net, same
        // as the indexed path.
        for (const auto& inst : design.instances()) {
            const cell::Cell& c = lib.cell(inst.cellName);
            const auto out = inst.pinToNet.find(c.outputName());
            if (out != inst.pinToNet.end() && out->second == netName &&
                &inst != driver) {
                reports.back().otherDrivers.push_back(inst.name);
            }
        }
        std::sort(reports.back().otherDrivers.begin(),
                  reports.back().otherDrivers.end());
    }
    return reports;
}

}  // namespace sna::core

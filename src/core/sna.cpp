#include "core/sna.hpp"

#include <algorithm>

#include "core/design_index.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace sna::core {

void Design::addInstance(Instance inst) {
    const cell::Cell& c = lib_->cell(inst.cellName);
    for (const auto& pin : c.pins()) {
        if (inst.pinToNet.find(pin.name) == inst.pinToNet.end()) {
            throw ModelError("instance '" + inst.name + "': pin '" +
                             pin.name + "' is not connected");
        }
    }
    instances_.push_back(std::move(inst));
}

const Instance* Design::driverOf(const std::string& net) const {
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        const auto it = inst.pinToNet.find(c.outputName());
        if (it != inst.pinToNet.end() && it->second == net) return &inst;
    }
    return nullptr;
}

std::vector<std::pair<const Instance*, std::string>> Design::loadsOf(
    const std::string& net) const {
    std::vector<std::pair<const Instance*, std::string>> out;
    for (const auto& inst : instances_) {
        const cell::Cell& c = lib_->cell(inst.cellName);
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end() && it->second == net) {
                out.push_back({&inst, in});
            }
        }
    }
    return out;
}

namespace {

/// Worst-of-both-holding-levels cluster analysis for one victim net. The
/// aggressor list is already ranked strongest-coupled first; each entry is
/// (driver cell name, aggressor net name).
NetNoiseReport analyzeVictim(
    const cell::CellLibrary& lib, const std::string& netName,
    const Instance& driver, const Instance& firstLoad,
    const std::vector<std::pair<std::string, std::string>>& rankedAggressors,
    const ic::RcNetwork& rc, double tstop, const ReportOptions& ropt) {
    NetNoiseReport report;
    report.net = netName;
    for (const auto& [drvCell, agg] : rankedAggressors) {
        report.aggressorNets.push_back(agg);
    }

    // Both victim holding levels are checked; the worse margin wins.
    bool first = true;
    for (const bool level : {false, true}) {
        ClusterSpec spec;
        spec.technology = &lib.technology();
        spec.customNet = &rc;
        spec.tstop = tstop;
        spec.victim.driverCell = driver.cellName;
        spec.victim.outputLevel = level;
        spec.victim.glitchInput =
            lib.cell(driver.cellName).inputNames().front();
        spec.victim.receiverCell = firstLoad.cellName;
        for (const auto& [drvCell, agg] : rankedAggressors) {
            AggressorSpec as;
            as.driverCell = drvCell;
            // The damaging direction: aggressors switch away from the
            // victim's held level.
            as.outputRising = !level;
            spec.aggressors.push_back(as);
        }
        auto cluster = analyzeCluster(spec, ropt);
        if (first || cluster.margin < report.cluster.margin) {
            report.cluster = std::move(cluster);
        }
        first = false;
    }
    return report;
}

}  // namespace

std::vector<NetNoiseReport> analyzeDesign(const Design& design,
                                          const parser::SpefFile& spef,
                                          const DesignNoiseOptions& opt) {
    const cell::CellLibrary& lib = design.library();
    const DesignIndex index(design, spef);
    charlib::CharCache runCache;
    charlib::CharCache* cache = opt.cache ? opt.cache : &runCache;

    // ---- phase 1 (serial, index lookups only): select victims and rank
    // their aggressors by summed coupling cap.
    struct Work {
        const std::string* net;
        const Instance* driver;
        const Instance* firstLoad;
        /// (driver cell, aggressor net), strongest-coupled first.
        std::vector<std::pair<std::string, std::string>> ranked;
    };
    std::vector<Work> work;
    for (const auto& [netName, spefNet] : spef.nets()) {
        const auto& coupling = index.couplingOf(netName);
        if (coupling.empty()) continue;
        const Instance* driver = index.driverOf(netName);
        if (driver == nullptr) {
            log::warn() << "SPEF net '" << netName
                        << "' has coupling but no driver in the design";
            continue;
        }
        const auto& loads = index.loadsOf(netName);
        if (loads.empty()) continue;

        // Keep the strongest-coupled aggressors that are SPEF nets with
        // drivers; ties break on the net name for determinism.
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto& [agg, cc] : coupling) {
            if (spef.nets().find(agg) == spef.nets().end()) continue;
            if (index.driverOf(agg) == nullptr) continue;
            ranked.push_back({cc, agg});
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                                   const auto& b) {
            return a.first != b.first ? a.first > b.first
                                      : a.second < b.second;
        });
        if (ranked.size() > opt.maxAggressors) {
            ranked.resize(opt.maxAggressors);
        }
        if (ranked.empty()) continue;

        Work w;
        w.net = &netName;
        w.driver = driver;
        w.firstLoad = loads.front().first;
        for (const auto& [cc, agg] : ranked) {
            w.ranked.push_back({index.driverOf(agg)->cellName, agg});
        }
        work.push_back(std::move(w));
    }

    ReportOptions ropt = opt.report;
    if (ropt.macromodel.cache == nullptr) ropt.macromodel.cache = cache;

    // ---- phase 2 (parallel): one independent cluster solve per victim.
    // Slot i holds net i's report, so ordering stays SPEF order at any
    // thread count.
    std::vector<NetNoiseReport> reports(work.size());
    util::parallelFor(opt.threads, static_cast<int>(work.size()), [&](int i) {
        const Work& w = work[i];
        std::vector<std::string> clusterNets{*w.net};
        for (const auto& [drvCell, agg] : w.ranked) {
            clusterNets.push_back(agg);
        }
        const ic::RcNetwork rc = ic::rcFromSpef(spef, clusterNets);
        reports[i] = analyzeVictim(lib, *w.net, *w.driver, *w.firstLoad,
                                   w.ranked, rc, opt.tstop, ropt);
    });
    return reports;
}

std::vector<NetNoiseReport> analyzeDesignReference(
    const Design& design, const parser::SpefFile& spef,
    const DesignNoiseOptions& opt) {
    std::vector<NetNoiseReport> reports;
    const cell::CellLibrary& lib = design.library();

    for (const auto& [netName, spefNet] : spef.nets()) {
        auto aggressors = spef.aggressorsOf(netName);
        if (aggressors.empty()) continue;
        const Instance* driver = design.driverOf(netName);
        if (driver == nullptr) {
            log::warn() << "SPEF net '" << netName
                        << "' has coupling but no driver in the design";
            continue;
        }
        const auto loads = design.loadsOf(netName);
        if (loads.empty()) continue;

        // The pre-index cost model: coupling caps may be listed under either
        // net's section, so every (victim, aggressor) pair rescans all nets.
        auto ownerOf = [](const std::string& node) {
            return node.substr(0, node.find(':'));
        };
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto& agg : aggressors) {
            if (spef.nets().find(agg) == spef.nets().end()) continue;
            if (design.driverOf(agg) == nullptr) continue;
            double cc = 0.0;
            for (const auto& [otherName, otherNet] : spef.nets()) {
                for (const auto& cap : otherNet.caps) {
                    if (cap.node2.empty()) continue;
                    const std::string o1 = ownerOf(cap.node1);
                    const std::string o2 = ownerOf(cap.node2);
                    if ((o1 == netName && o2 == agg) ||
                        (o2 == netName && o1 == agg)) {
                        cc += cap.farads;
                    }
                }
            }
            ranked.push_back({cc, agg});
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto& a,
                                                   const auto& b) {
            return a.first != b.first ? a.first > b.first
                                      : a.second < b.second;
        });
        if (ranked.size() > opt.maxAggressors) {
            ranked.resize(opt.maxAggressors);
        }
        if (ranked.empty()) continue;

        std::vector<std::string> clusterNets{netName};
        for (const auto& [cc, agg] : ranked) clusterNets.push_back(agg);
        const ic::RcNetwork rc = ic::rcFromSpef(spef, clusterNets);

        std::vector<std::pair<std::string, std::string>> rankedAggressors;
        for (const auto& [cc, agg] : ranked) {
            rankedAggressors.push_back({design.driverOf(agg)->cellName, agg});
        }
        // Uncached, serial cluster analysis: every cluster re-characterizes.
        ReportOptions ropt = opt.report;
        ropt.macromodel.cache = nullptr;
        reports.push_back(analyzeVictim(lib, netName, *driver,
                                        *loads.front().first,
                                        rankedAggressors, rc, opt.tstop,
                                        ropt));
    }
    return reports;
}

}  // namespace sna::core

// Cluster-level noise verdicts: worst-case analysis + NRC comparison.
//
// The second step of SNA per the paper's introduction: the combined noise
// at the victim receiver input is checked against the receiver's dynamic
// noise margin — the Noise Rejection Curve. A glitch whose (width, height)
// lands above the curve is flagged as a functional failure.
#pragma once

#include "core/alignment.hpp"

namespace sna::core {

struct ClusterReport {
    NoiseResult worst;                        ///< macromodel, worst alignment
    std::vector<double> aggressorSwitchTimes;
    double glitchTime = 0.0;
    double nrcLimit = 0.0;   ///< failing height at the glitch's width, V
    bool fails = false;      ///< |peak| >= nrcLimit
    double margin = 0.0;     ///< nrcLimit - |peak| (negative = failure)
};

struct ReportOptions {
    ClusterMacromodel::Options macromodel;
    bool searchAlignment = true;
    AlignmentOptions alignment;
};

/// The complete per-cluster flow: characterize, find the worst alignment,
/// and check the victim receiver's NRC.
ClusterReport analyzeCluster(const ClusterSpec& spec,
                             const ReportOptions& opt = {});

/// NRC check only (reusable by the design flow): failing height of the
/// receiver at the measured width. With a cache, the NRC characterization
/// runs at most once per (receiver cell, level, width grid).
double nrcLimitFor(const ClusterSpec& spec, const wave::GlitchMetrics& m,
                   charlib::CharCache* cache = nullptr);

}  // namespace sna::core

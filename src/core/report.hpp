// Cluster-level noise verdicts: worst-case analysis + NRC comparison.
//
// The second step of SNA per the paper's introduction: the combined noise
// at the victim receiver input is checked against the receiver's dynamic
// noise margin — the Noise Rejection Curve. A glitch whose (width, height)
// lands above the curve is flagged as a functional failure.
#pragma once

#include "core/alignment.hpp"

namespace sna::core {

struct ClusterReport {
    NoiseResult worst;                        ///< macromodel, worst alignment
    std::vector<double> aggressorSwitchTimes;
    double glitchTime = 0.0;
    double nrcLimit = 0.0;   ///< failing height at the glitch's width, V
    bool fails = false;      ///< |peak| >= nrcLimit
    double margin = 0.0;     ///< nrcLimit - |peak| (negative = failure)
    /// Echo of the propagated glitch injected at the victim driver input
    /// for this run (0 when the cluster was analyzed without one).
    double glitchInHeight = 0.0;  ///< V
    double glitchInWidth = 0.0;   ///< s (triangle base width)
};

/// The canonical NRC probe grid and its evaluation mode. The NRC is a
/// property of the receiver cell, not of one glitch: probing a canonical
/// width grid once per (cell, quiet level) makes the curve cacheable across
/// every cluster of a run, and the measured width is then evaluated by
/// interpolation on that grid.
struct NrcOptions {
    /// First probed width, s.
    double widthMin = 20e-12;
    /// Grid stops at the last point below this, s.
    double widthLimit = 2.561e-9;
    /// Ratio between consecutive probe widths (default: half-octave).
    double growth = 1.4142135623730951;  // sqrt(2)
    enum class Interp {
        kLogWidth,     ///< linear in log(width) — default, matches the
                       ///< half-octave grid's ~0.15% deviation bound
        kLinearWidth,  ///< linear in width
        kExact,        ///< bisect the exact measured width (uncached: keys
                       ///< would embed the bitwise width) — the validation
                       ///< reference the grid modes are measured against
    };
    Interp interp = Interp::kLogWidth;

    /// The probe grid implied by the knobs.
    std::vector<double> grid() const;
};

struct ReportOptions {
    ClusterMacromodel::Options macromodel;
    bool searchAlignment = true;
    AlignmentOptions alignment;
    NrcOptions nrc;
};

/// The complete per-cluster flow: characterize, find the worst alignment,
/// and check the victim receiver's NRC.
ClusterReport analyzeCluster(const ClusterSpec& spec,
                             const ReportOptions& opt = {});

/// NRC check only (reusable by the design flow): failing height of the
/// receiver at the measured width. With a cache, the NRC characterization
/// runs at most once per (receiver cell, level, width grid).
double nrcLimitFor(const ClusterSpec& spec, const wave::GlitchMetrics& m,
                   charlib::CharCache* cache = nullptr,
                   const NrcOptions& nrcOpt = {});

}  // namespace sna::core

#include "core/design_index.hpp"

namespace sna::core {

namespace {

std::string ownerOf(const std::string& node) {
    return node.substr(0, node.find(':'));
}

}  // namespace

DesignIndex::DesignIndex(const Design& design, const parser::SpefFile& spef) {
    const cell::CellLibrary& lib = design.library();

    // One pass over the instances: pin roles come from the cell definition.
    for (const auto& inst : design.instances()) {
        const cell::Cell& c = lib.cell(inst.cellName);
        const auto out = inst.pinToNet.find(c.outputName());
        if (out != inst.pinToNet.end()) {
            driverByNet_.emplace(out->second, &inst);  // first driver wins
        }
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end()) {
                loadsByNet_[it->second].push_back({&inst, in});
            }
        }
    }

    // One pass over every cap of every SPEF section: coupling caps attribute
    // symmetrically to both owning nets, wherever they were listed.
    for (const auto& [netName, spefNet] : spef.nets()) {
        for (const auto& cap : spefNet.caps) {
            if (cap.node2.empty()) continue;
            const std::string o1 = ownerOf(cap.node1);
            const std::string o2 = ownerOf(cap.node2);
            if (o1 == o2) continue;
            couplingByNet_[o1][o2] += cap.farads;
            couplingByNet_[o2][o1] += cap.farads;
        }
    }
}

const Instance* DesignIndex::driverOf(const std::string& net) const {
    const auto it = driverByNet_.find(net);
    return it == driverByNet_.end() ? nullptr : it->second;
}

const std::vector<std::pair<const Instance*, std::string>>&
DesignIndex::loadsOf(const std::string& net) const {
    static const std::vector<std::pair<const Instance*, std::string>> kEmpty;
    const auto it = loadsByNet_.find(net);
    return it == loadsByNet_.end() ? kEmpty : it->second;
}

const std::map<std::string, double>& DesignIndex::couplingOf(
    const std::string& net) const {
    static const std::map<std::string, double> kEmpty;
    const auto it = couplingByNet_.find(net);
    return it == couplingByNet_.end() ? kEmpty : it->second;
}

}  // namespace sna::core

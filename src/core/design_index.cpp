#include "core/design_index.hpp"

#include <algorithm>
#include <set>

#include "util/log.hpp"

namespace sna::core {

namespace {

std::string ownerOf(const std::string& node) {
    return node.substr(0, node.find(':'));
}

}  // namespace

DesignIndex::DesignIndex(const Design& design, const parser::SpefFile& spef,
                         const TimingWindows* windows)
    : design_(&design), windows_(windows) {
    const cell::CellLibrary& lib = design.library();

    // One pass over the instances: pin roles come from the cell definition.
    for (const auto& inst : design.instances()) {
        const cell::Cell& c = lib.cell(inst.cellName);
        const auto out = inst.pinToNet.find(c.outputName());
        if (out != inst.pinToNet.end()) {
            // Deterministic winner on a multiply-driven net: the instance
            // with the lexicographically smallest name, regardless of
            // insertion order. Losers are recorded, not silently dropped.
            const auto [it, inserted] = driverByNet_.emplace(out->second,
                                                             &inst);
            if (!inserted) {
                const Instance* loser = &inst;
                if (inst.name < it->second->name) {
                    loser = it->second;
                    it->second = &inst;
                }
                extraDriversByNet_[out->second].push_back(loser->name);
            }
        }
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end()) {
                loadsByNet_[it->second].push_back({&inst, in});
            }
        }
    }
    for (auto& [net, losers] : extraDriversByNet_) {
        std::sort(losers.begin(), losers.end());
        log::warn() << "net '" << net << "' is driven by "
                    << losers.size() + 1 << " instances; analyzing driver '"
                    << driverByNet_.at(net)->name << "' (ignored: "
                    << losers.front()
                    << (losers.size() > 1 ? ", ..." : "") << ")";
    }

    // One pass over every cap of every SPEF section: coupling caps attribute
    // symmetrically to both owning nets, wherever they were listed. The
    // per-section contribution lists are retained (sectionPairs_) so that
    // patchParasitics can later re-accumulate any net's sums in this exact
    // (section, cap) order — floating-point addition is order-sensitive, and
    // the incremental path promises bit-identity with a fresh build.
    for (const auto& [netName, spefNet] : spef.nets()) {
        auto& pairs = sectionPairs_[netName];
        for (const auto& cap : spefNet.caps) {
            if (cap.node2.empty()) continue;
            std::string o1 = ownerOf(cap.node1);
            std::string o2 = ownerOf(cap.node2);
            if (o1 == o2) continue;
            pairs.emplace_back(std::move(o1), std::move(o2), cap.farads);
        }
        if (pairs.empty()) sectionPairs_.erase(netName);
    }
    for (const auto& [section, pairs] : sectionPairs_) {
        for (const auto& [o1, o2, farads] : pairs) {
            couplingByNet_[o1][o2] += farads;
            couplingByNet_[o2][o1] += farads;
        }
    }
}

std::vector<std::string> DesignIndex::patchParasitics(
    const parser::SpefFile& spef, const std::vector<std::string>& changedNets) {
    // Owners touched by the old or new version of any changed section: the
    // set of nets whose coupling view may have moved.
    std::set<std::string> affected;
    const auto collect = [&affected](
        const std::vector<std::tuple<std::string, std::string, double>>&
            pairs) {
        for (const auto& [o1, o2, farads] : pairs) {
            affected.insert(o1);
            affected.insert(o2);
        }
    };
    for (const std::string& section : changedNets) {
        if (const auto old = sectionPairs_.find(section);
            old != sectionPairs_.end()) {
            collect(old->second);
            sectionPairs_.erase(old);
        }
        const auto it = spef.nets().find(section);
        if (it == spef.nets().end()) continue;  // section removed by the ECO
        auto& pairs = sectionPairs_[section];
        for (const auto& cap : it->second.caps) {
            if (cap.node2.empty()) continue;
            std::string o1 = ownerOf(cap.node1);
            std::string o2 = ownerOf(cap.node2);
            if (o1 == o2) continue;
            pairs.emplace_back(std::move(o1), std::move(o2), cap.farads);
        }
        if (pairs.empty()) {
            sectionPairs_.erase(section);
        } else {
            collect(pairs);
        }
    }

    // Re-accumulate the affected nets' sums from scratch over every section,
    // in the same order the constructor used — any cheaper subtract-then-add
    // patch would reorder the floating-point sums and break bit-identity.
    std::map<std::string, std::map<std::string, double>> fresh;
    for (const auto& n : affected) fresh[n];
    for (const auto& [section, pairs] : sectionPairs_) {
        for (const auto& [o1, o2, farads] : pairs) {
            if (affected.count(o1)) fresh[o1][o2] += farads;
            if (affected.count(o2)) fresh[o2][o1] += farads;
        }
    }

    std::vector<std::string> changed;
    for (auto& [net, freshMap] : fresh) {
        const auto it = couplingByNet_.find(net);
        const bool had = it != couplingByNet_.end();
        if (had ? (it->second == freshMap) : freshMap.empty()) continue;
        changed.push_back(net);
        if (freshMap.empty()) {
            couplingByNet_.erase(it);
        } else if (had) {
            it->second = std::move(freshMap);
        } else {
            couplingByNet_.emplace(net, std::move(freshMap));
        }
    }
    return changed;
}

void DesignIndex::buildGraph() const {
    // The through-instance edges of the design graph. Only the net's actual
    // driver carries noise onto it, so edges are restricted to driver
    // instances (the deterministic lexicographic winner on multiply-driven
    // nets — same choice as driverOf, so index and level graph agree).
    const cell::CellLibrary& lib = design_->library();
    for (const auto& inst : design_->instances()) {
        const cell::Cell& c = lib.cell(inst.cellName);
        const auto out = inst.pinToNet.find(c.outputName());
        if (out == inst.pinToNet.end() || driverOf(out->second) != &inst) {
            continue;
        }
        for (const auto& in : c.inputNames()) {
            const auto it = inst.pinToNet.find(in);
            if (it != inst.pinToNet.end()) {
                faninByNet_[out->second].push_back({it->second, &inst, in});
                fanoutByNet_[it->second].push_back(out->second);
            }
        }
    }
    for (auto& [net, edges] : faninByNet_) {
        std::sort(edges.begin(), edges.end(),
                  [](const FaninEdge& a, const FaninEdge& b) {
                      if (a.fromNet != b.fromNet) return a.fromNet < b.fromNet;
                      if (a.inst->name != b.inst->name) {
                          return a.inst->name < b.inst->name;
                      }
                      return a.pin < b.pin;
                  });
    }
    for (auto& [net, outs] : fanoutByNet_) {
        std::sort(outs.begin(), outs.end());
        outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
    }
    // Nodes: every net on an instance pin. Unique edges A -> B (self-loops
    // are cycles of length one: recorded as broken, never scheduled).
    std::set<std::string> remaining;
    std::map<std::string, std::set<std::string>> outAdj;
    std::map<std::string, std::set<std::string>> inAdj;
    std::map<std::string, int> indeg;
    for (const auto& [net, loads] : loadsByNet_) remaining.insert(net);
    for (const auto& [net, inst] : driverByNet_) remaining.insert(net);
    for (const auto& n : remaining) indeg[n] = 0;
    for (const auto& [net, edges] : faninByNet_) {
        for (const auto& e : edges) {
            if (e.fromNet == net) {
                levels_.brokenEdges.push_back({e.fromNet, net});
                continue;
            }
            if (outAdj[e.fromNet].insert(net).second) {
                inAdj[net].insert(e.fromNet);
                ++indeg[net];
            }
        }
    }

    // Ready-queue Kahn, O((V + E) log V): each wave is the set of nets
    // whose indegree hit zero while the previous wave relaxed, so deep
    // chains (levels ~ nets) don't degenerate into a per-level full rescan.
    std::vector<std::string> wave;
    for (const auto& n : remaining) {
        if (indeg[n] == 0) wave.push_back(n);  // set order: name-sorted
    }
    while (!remaining.empty()) {
        if (wave.empty()) {
            // Combinational cycle somewhere in the residual graph. A
            // stalled net may merely sit downstream of a cycle, so find an
            // actual cycle first: walk predecessor links (every stalled net
            // has a remaining unbroken in-edge, so the walk must revisit a
            // node), then break exactly one true cycle edge — the one into
            // the cycle's lexicographically smallest net. One edge per
            // stall keeps the breakage minimal and, with the smallest-net /
            // smallest-predecessor walk order, deterministic for any
            // instance insertion order with the same connectivity.
            std::vector<std::string> path;
            std::map<std::string, std::size_t> seen;
            std::string cur = *remaining.begin();
            while (seen.find(cur) == seen.end()) {
                seen.emplace(cur, path.size());
                path.push_back(cur);
                const std::string* next = nullptr;
                for (const auto& p : inAdj[cur]) {  // set order: smallest
                    if (remaining.count(p)) {
                        next = &p;
                        break;
                    }
                }
                cur = *next;  // stalled => a remaining predecessor exists
            }
            // Cycle nodes: path[s..back], edges path[k] -> path[k-1] for
            // k in (s, back] plus the closing edge path[s] -> path[back].
            const std::size_t s = seen[cur];
            std::size_t smallest = s;
            for (std::size_t j = s + 1; j < path.size(); ++j) {
                if (path[j] < path[smallest]) smallest = j;
            }
            const std::string& victim = path[smallest];
            const std::string& pred = smallest == path.size() - 1
                                          ? path[s]
                                          : path[smallest + 1];
            outAdj[pred].erase(victim);
            inAdj[victim].erase(pred);
            levels_.brokenEdges.push_back({pred, victim});
            if (--indeg[victim] == 0) wave.push_back(victim);
            if (wave.empty()) continue;  // more cycles: break another edge
        }
        std::sort(wave.begin(), wave.end());
        wave.erase(std::unique(wave.begin(), wave.end()), wave.end());
        const int level = static_cast<int>(levels_.levels.size());
        for (const auto& n : wave) {
            levels_.levelOf[n] = level;
            remaining.erase(n);
        }
        std::vector<std::string> next;
        for (const auto& n : wave) {
            const auto it = outAdj.find(n);
            if (it == outAdj.end()) continue;
            for (const auto& to : it->second) {
                if (remaining.count(to) && --indeg[to] == 0) {
                    next.push_back(to);
                }
            }
        }
        levels_.levels.push_back(std::move(wave));
        wave = std::move(next);
    }
    // ---- slot-addressed scheduled DAG -----------------------------------
    // Task ids enumerate the nets level by level (levels are name-sorted),
    // so ids are a topological order and each level is a contiguous id
    // range. inAdj/outAdj at this point hold exactly the scheduled edges:
    // cycle-broken edges were erased, duplicates never entered.
    for (const auto& levelNets : levels_.levels) {
        for (const auto& net : levelNets) {
            taskGraph_.idOf.emplace(net,
                                    static_cast<int>(taskGraph_.nets.size()));
            taskGraph_.nets.push_back(net);
        }
    }
    const int numTasks = static_cast<int>(taskGraph_.nets.size());
    taskGraph_.faninIds.resize(numTasks);
    taskGraph_.graph.fanout.resize(numTasks);
    taskGraph_.graph.faninCount.assign(numTasks, 0);
    for (int id = 0; id < numTasks; ++id) {
        const std::string& net = taskGraph_.nets[id];
        if (const auto in = inAdj.find(net); in != inAdj.end()) {
            auto& fanin = taskGraph_.faninIds[id];
            for (const auto& from : in->second) {
                fanin.push_back(taskGraph_.idOf.at(from));
            }
            std::sort(fanin.begin(), fanin.end());
            taskGraph_.graph.faninCount[id] = static_cast<int>(fanin.size());
        }
        if (const auto out = outAdj.find(net); out != outAdj.end()) {
            auto& fanout = taskGraph_.graph.fanout[id];
            for (const auto& to : out->second) {
                fanout.push_back(taskGraph_.idOf.at(to));
            }
            std::sort(fanout.begin(), fanout.end());
        }
    }

    std::sort(levels_.brokenEdges.begin(), levels_.brokenEdges.end());
    levels_.brokenEdges.erase(
        std::unique(levels_.brokenEdges.begin(), levels_.brokenEdges.end()),
        levels_.brokenEdges.end());
    if (!levels_.brokenEdges.empty()) {
        log::warn() << "design graph has combinational cycles: "
                    << levels_.brokenEdges.size()
                    << " edge(s) broken for levelization (first: "
                    << levels_.brokenEdges.front().first << " -> "
                    << levels_.brokenEdges.front().second << ")";
    }
}

const Instance* DesignIndex::driverOf(const std::string& net) const {
    const auto it = driverByNet_.find(net);
    return it == driverByNet_.end() ? nullptr : it->second;
}

const std::vector<std::string>& DesignIndex::extraDriversOf(
    const std::string& net) const {
    static const std::vector<std::string> kEmpty;
    const auto it = extraDriversByNet_.find(net);
    return it == extraDriversByNet_.end() ? kEmpty : it->second;
}

const std::vector<std::pair<const Instance*, std::string>>&
DesignIndex::loadsOf(const std::string& net) const {
    static const std::vector<std::pair<const Instance*, std::string>> kEmpty;
    const auto it = loadsByNet_.find(net);
    return it == loadsByNet_.end() ? kEmpty : it->second;
}

const std::map<std::string, double>& DesignIndex::couplingOf(
    const std::string& net) const {
    static const std::map<std::string, double> kEmpty;
    const auto it = couplingByNet_.find(net);
    return it == couplingByNet_.end() ? kEmpty : it->second;
}

const std::vector<FaninEdge>& DesignIndex::faninOf(
    const std::string& net) const {
    static const std::vector<FaninEdge> kEmpty;
    ensureGraph();
    const auto it = faninByNet_.find(net);
    return it == faninByNet_.end() ? kEmpty : it->second;
}

const std::vector<std::string>& DesignIndex::fanoutOf(
    const std::string& net) const {
    static const std::vector<std::string> kEmpty;
    ensureGraph();
    const auto it = fanoutByNet_.find(net);
    return it == fanoutByNet_.end() ? kEmpty : it->second;
}

const NetLevels& DesignIndex::levels() const {
    ensureGraph();
    return levels_;
}

const NetTaskGraph& DesignIndex::taskGraph() const {
    ensureGraph();
    return taskGraph_;
}

}  // namespace sna::core

// Noise-cluster specification and the golden (ELDO-role) analysis.
//
// A cluster is a victim net with its driver (holding a logic level, with an
// optional noise glitch arriving at one input — the propagated noise), its
// receiver, and capacitively coupled aggressor nets whose drivers switch.
// simulateGolden() builds the full transistor-level circuit over the full
// distributed RC and runs the adaptive transient engine: this is the
// reference every model in the paper is judged against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "interconnect/parallel_bus.hpp"
#include "waveform/metrics.hpp"

namespace sna::core {

struct VictimSpec {
    std::string driverCell = "NAND2_X1";
    std::string glitchInput = "a";   ///< input pin carrying propagated noise
    bool outputLevel = false;        ///< held output level (false = low)
    std::string receiverCell = "INV_X2";
    /// Propagated-noise stimulus at the driver input: triangle toward the
    /// opposite rail. Height 0 disables it.
    double glitchHeight = 0.0;       ///< V
    double glitchWidth = 200e-12;    ///< s
    double glitchTime = 400e-12;     ///< arrival of the glitch onset, s
};

struct AggressorSpec {
    std::string driverCell = "INV_X2";
    bool outputRising = true;        ///< aggressor transition direction
    double inputSlew = 30e-12;
    double switchTime = 400e-12;     ///< aggressor INPUT switch time, s
    std::string receiverCell = "INV_X2";
    double couplingScale = 1.0;      ///< derates this aggressor's coupling
};

struct ClusterSpec {
    const tech::Technology* technology = &tech::tech130();
    VictimSpec victim;
    std::vector<AggressorSpec> aggressors;

    // Interconnect geometry (used when customNet is not set).
    std::string layer = "M4";
    double lengthUm = 500.0;
    int segments = 16;

    /// Externally supplied coupled RC (wire 0 = victim, wires 1.. =
    /// aggressors in order); overrides the geometry fields. Not owned.
    const ic::RcNetwork* customNet = nullptr;

    double tstop = 2.5e-9;
};

/// The cluster's interconnect: customNet if set, else the star cluster from
/// the geometry fields (victim = wire 0).
ic::RcNetwork clusterNet(const ClusterSpec& spec);

struct NoiseResult {
    wave::GlitchMetrics metrics;  ///< at the victim driving point
    wave::Waveform waveform;      ///< victim driving-point voltage
    double runtimeSec = 0.0;      ///< wall-clock of the engine run
    std::size_t engineNodes = 0;  ///< MNA unknowns of the engine circuit
};

/// Full transistor-level + full-RC reference simulation.
NoiseResult simulateGolden(const ClusterSpec& spec);

/// The quiet victim level implied by the spec (0 or vdd).
double victimBaseline(const ClusterSpec& spec);

/// The victim-driver input glitch waveform implied by the spec (empty
/// optional if glitchHeight == 0).
std::optional<wave::Waveform> victimInputGlitch(const ClusterSpec& spec,
                                                double glitchTime);

}  // namespace sna::core

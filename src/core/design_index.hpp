// One-pass connectivity + coupling index for design-level noise analysis.
//
// The naive design sweep is super-quadratic: Design::driverOf/loadsOf scan
// every instance per query, and ranking one (victim, aggressor) pair scans
// every cap of every SPEF net (coupling caps may be listed under either
// net's section). DesignIndex folds all of that into one pass over the
// instances and one pass over the SPEF caps, after which every query the
// sweep needs is a hash lookup:
//   * net -> driving instance (its output pin is on the net),
//   * net -> (instance, input pin) loads,
//   * net -> {coupled net -> summed coupling cap}, symmetric regardless of
//     which section listed the cap.
//
// On top of the connectivity maps the index builds (lazily) the levelized
// design graph the propagated-noise wavefront needs: nets are nodes, and an
// edge A -> B exists when an instance has an input pin on A and its output
// pin on B (noise on A can travel through that instance onto B). Kahn wave
// levelization assigns level(B) = 1 + max(level(A)) over the fanin;
// combinational cycles are detected and broken deterministically: a
// predecessor walk from the smallest stalled net finds a true cycle and
// discards exactly one edge — the one into the cycle's lexicographically
// smallest member — per stall (recorded in brokenEdges), so acyclic nets
// merely stalled behind a cycle keep their fanin and the schedule is
// reproducible regardless of instance insertion order or thread count.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sna.hpp"
#include "core/timing_windows.hpp"
#include "parser/spef_parser.hpp"
#include "util/task_scheduler.hpp"

namespace sna::core {

/// One through-instance edge of the design graph: noise on `fromNet` arrives
/// at `inst`'s input `pin` and can propagate to the instance's output net.
struct FaninEdge {
    std::string fromNet;
    const Instance* inst = nullptr;
    std::string pin;
};

/// Slot-addressed scheduling view of the level graph, for the
/// dependency-counted wavefront: every net of the graph gets an integer
/// task id in deterministic (level, name) order — so each level occupies a
/// contiguous id range — and the fanin/fanout adjacency covers exactly the
/// scheduled edges (cycle-broken edges excluded, duplicates collapsed).
/// Task ids double as slots for per-net outputs, which is what makes the
/// out-of-order task-graph wavefront bit-identical to the level barrier.
struct NetTaskGraph {
    std::vector<std::string> nets;  ///< task id -> net name
    std::unordered_map<std::string, int> idOf;  ///< net name -> task id
    /// Scheduled fanin task ids per task, ascending (always strictly lower
    /// level). faninIds[i].size() == graph.faninCount[i].
    std::vector<std::vector<int>> faninIds;
    /// Dependency DAG for util::runTaskGraph (fanout adjacency ascending,
    /// fanin counts).
    util::TaskGraph graph;
};

/// The levelized net graph (Kahn waves over the driver->fanout edges).
struct NetLevels {
    /// level -> net names, each level sorted by name; every net that touches
    /// an instance pin appears in exactly one level.
    std::vector<std::vector<std::string>> levels;
    std::unordered_map<std::string, int> levelOf;
    /// Fanin edges discarded to break combinational cycles, as
    /// (fromNet, toNet) sorted pairs; empty on a DAG.
    std::vector<std::pair<std::string, std::string>> brokenEdges;
};

class DesignIndex {
public:
    /// `windows`, when given, carries the per-net switching windows the
    /// wavefront propagates (not owned; must outlive the index).
    DesignIndex(const Design& design, const parser::SpefFile& spef,
                const TimingWindows* windows = nullptr);

    /// Instance driving `net`, or nullptr. Matches Design::driverOf: on a
    /// multiply-driven net the winner is deterministic — the instance with
    /// the lexicographically smallest name — regardless of insertion order;
    /// the losing drivers are recorded in extraDriversOf().
    const Instance* driverOf(const std::string& net) const;

    /// Names of the non-winning drivers of a multiply-driven net, sorted;
    /// empty for singly-driven nets. Surfaced as a per-net warning in
    /// NetNoiseReport instead of being dropped silently.
    const std::vector<std::string>& extraDriversOf(
        const std::string& net) const;

    /// The design this index was built over.
    const Design& design() const { return *design_; }

    /// The explicit switching-window input (nullptr when none was given).
    const TimingWindows* timingWindows() const { return windows_; }

    /// Swap the switching-window input without rebuilding the index (the
    /// windows object is an analysis input, not connectivity). Incremental
    /// re-analysis calls this so a retained index never serves a stale
    /// windows pointer from a previous request.
    void setTimingWindows(const TimingWindows* windows) { windows_ = windows; }

    /// Re-read the *CAP sections named in `changedNets` from `spef` (which
    /// may be a different SpefFile object than the one the index was built
    /// from — an ECO re-extraction) and rebuild the coupling view of every
    /// net those sections touch, old or new. Connectivity (drivers, loads,
    /// level graph) is untouched: parasitics don't change the netlist.
    ///
    /// Returns the sorted names of the nets whose couplingOf() map actually
    /// changed in value — the seed set for dirty-cone marking. Rebuilt maps
    /// are bit-identical to a fresh DesignIndex over the new SPEF: per-pair
    /// cap sums are re-accumulated in the same (section, cap) order the
    /// constructor uses, so floating-point summation order is preserved.
    std::vector<std::string> patchParasitics(
        const parser::SpefFile& spef,
        const std::vector<std::string>& changedNets);

    /// (instance, input pin) loads of `net`, in design order; empty if none.
    const std::vector<std::pair<const Instance*, std::string>>& loadsOf(
        const std::string& net) const;

    /// Coupled-net -> summed coupling cap of `net` (F), over every *CAP
    /// section of the SPEF; empty map if the net has no coupling. Ordered by
    /// net name for deterministic iteration.
    const std::map<std::string, double>& couplingOf(
        const std::string& net) const;

    /// Fanin edges of `net`: every (upstream net, instance, input pin)
    /// through which noise can reach `net`'s driver. Sorted by (fromNet,
    /// instance name, pin) for deterministic worst-incoming selection.
    const std::vector<FaninEdge>& faninOf(const std::string& net) const;

    /// Nets reachable from `net` through one instance (its loads' output
    /// nets), sorted and deduplicated.
    const std::vector<std::string>& fanoutOf(const std::string& net) const;

    /// The levelized design graph. Built lazily (thread-safe) on the first
    /// graph query — the flat propagate=false sweep never pays for it.
    const NetLevels& levels() const;

    /// The slot-addressed scheduled DAG over the same nets, built alongside
    /// the levelization. Task ids enumerate nets in (level, name) order.
    const NetTaskGraph& taskGraph() const;

private:
    /// Builds fanin/fanout edges and the levelization; called once.
    void buildGraph() const;
    void ensureGraph() const { std::call_once(graphOnce_, [this] { buildGraph(); }); }

    const Design* design_ = nullptr;  ///< not owned; must outlive the index
    const TimingWindows* windows_ = nullptr;  ///< not owned; may be null
    std::unordered_map<std::string, const Instance*> driverByNet_;
    std::unordered_map<std::string, std::vector<std::string>>
        extraDriversByNet_;
    std::unordered_map<std::string,
                       std::vector<std::pair<const Instance*, std::string>>>
        loadsByNet_;
    std::unordered_map<std::string, std::map<std::string, double>>
        couplingByNet_;
    /// Per-SPEF-section coupling contributions as (owner1, owner2, farads)
    /// in cap-listing order. couplingByNet_ is always derived from this (in
    /// sorted section order, matching SpefFile::nets() iteration), which is
    /// what lets patchParasitics rebuild a net's summed caps bit-identically
    /// to a from-scratch construction.
    std::map<std::string,
             std::vector<std::tuple<std::string, std::string, double>>>
        sectionPairs_;
    mutable std::once_flag graphOnce_;
    mutable std::unordered_map<std::string, std::vector<FaninEdge>>
        faninByNet_;
    mutable std::unordered_map<std::string, std::vector<std::string>>
        fanoutByNet_;
    mutable NetLevels levels_;
    mutable NetTaskGraph taskGraph_;
};

}  // namespace sna::core

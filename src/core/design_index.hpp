// One-pass connectivity + coupling index for design-level noise analysis.
//
// The naive design sweep is super-quadratic: Design::driverOf/loadsOf scan
// every instance per query, and ranking one (victim, aggressor) pair scans
// every cap of every SPEF net (coupling caps may be listed under either
// net's section). DesignIndex folds all of that into one pass over the
// instances and one pass over the SPEF caps, after which every query the
// sweep needs is a hash lookup:
//   * net -> driving instance (its output pin is on the net),
//   * net -> (instance, input pin) loads,
//   * net -> {coupled net -> summed coupling cap}, symmetric regardless of
//     which section listed the cap.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sna.hpp"
#include "parser/spef_parser.hpp"

namespace sna::core {

class DesignIndex {
public:
    DesignIndex(const Design& design, const parser::SpefFile& spef);

    /// Instance driving `net`, or nullptr. Matches Design::driverOf (first
    /// instance in design order wins when a net is multiply driven).
    const Instance* driverOf(const std::string& net) const;

    /// (instance, input pin) loads of `net`, in design order; empty if none.
    const std::vector<std::pair<const Instance*, std::string>>& loadsOf(
        const std::string& net) const;

    /// Coupled-net -> summed coupling cap of `net` (F), over every *CAP
    /// section of the SPEF; empty map if the net has no coupling. Ordered by
    /// net name for deterministic iteration.
    const std::map<std::string, double>& couplingOf(
        const std::string& net) const;

private:
    std::unordered_map<std::string, const Instance*> driverByNet_;
    std::unordered_map<std::string,
                       std::vector<std::pair<const Instance*, std::string>>>
        loadsByNet_;
    std::unordered_map<std::string, std::map<std::string, double>>
        couplingByNet_;
};

}  // namespace sna::core

// Design-level static noise analysis.
//
// The "complete methodology" the paper leaves as future work, built on the
// macromodel: a gate-level design (cell instances + nets) with SPEF
// parasitics is swept net by net; every net with coupling capacitance
// becomes a victim cluster (driver from the design, aggressors discovered
// through the SPEF coupling caps), analyzed at its worst alignment and
// checked against the receiver's NRC.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "parser/spef_parser.hpp"

namespace sna::core {

struct Instance {
    std::string name;
    std::string cellName;
    /// pin name -> net name.
    std::map<std::string, std::string> pinToNet;
};

class Design {
public:
    explicit Design(const cell::CellLibrary& lib) : lib_(&lib) {}

    const cell::CellLibrary& library() const { return *lib_; }

    /// Adds an instance; every pin of the cell must be connected.
    void addInstance(Instance inst);

    const std::vector<Instance>& instances() const { return instances_; }

    /// Instance driving `net` (its output pin is on the net), or nullptr.
    const Instance* driverOf(const std::string& net) const;

    /// (instance, input pin) pairs loading `net`.
    std::vector<std::pair<const Instance*, std::string>> loadsOf(
        const std::string& net) const;

private:
    const cell::CellLibrary* lib_;
    std::vector<Instance> instances_;
};

struct NetNoiseReport {
    std::string net;
    std::vector<std::string> aggressorNets;
    ClusterReport cluster;
};

struct DesignNoiseOptions {
    double tstop = 2.5e-9;
    std::size_t maxAggressors = 3;  ///< strongest-coupled first
    ReportOptions report;
    /// Worker threads for the victim-net loop; <= 1 runs serially. Report
    /// order and numeric results are identical at any thread count.
    int threads = 1;
    /// Characterization cache shared across clusters. nullptr uses a fresh
    /// per-run cache; pass one to share across runs or to read its stats.
    charlib::CharCache* cache = nullptr;
};

/// Analyze every SPEF net that has coupling capacitance and a driver and at
/// least one load in the design. Nets are reported in SPEF order.
///
/// The pipeline: a one-pass DesignIndex replaces the per-query instance and
/// cap scans, a CharCache runs each characterization (load curve, Thevenin,
/// NRC) once per distinct key instead of once per cluster, and independent
/// victim clusters solve on `opt.threads` workers.
std::vector<NetNoiseReport> analyzeDesign(const Design& design,
                                          const parser::SpefFile& spef,
                                          const DesignNoiseOptions& opt = {});

/// The pre-index brute-force sweep (linear instance scans per query, all-net
/// cap scans per aggressor, full re-characterization per cluster, serial).
/// Kept as the validation and benchmarking baseline: its reports must match
/// analyzeDesign exactly. `opt.threads` and `opt.cache` are ignored.
std::vector<NetNoiseReport> analyzeDesignReference(
    const Design& design, const parser::SpefFile& spef,
    const DesignNoiseOptions& opt = {});

}  // namespace sna::core

// Design-level static noise analysis.
//
// The "complete methodology" the paper leaves as future work, built on the
// macromodel: a gate-level design (cell instances + nets) with SPEF
// parasitics is swept net by net; every net with coupling capacitance
// becomes a victim cluster (driver from the design, aggressors discovered
// through the SPEF coupling caps), analyzed at its worst alignment and
// checked against the receiver's NRC.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/timing_windows.hpp"
#include "lint/diagnostic.hpp"
#include "parser/spef_parser.hpp"
#include "parser/waivers_parser.hpp"
#include "util/task_scheduler.hpp"

namespace sna::core {

struct AnalysisSnapshot;  // core/incremental.hpp

struct Instance {
    std::string name;
    std::string cellName;
    /// pin name -> net name.
    std::map<std::string, std::string> pinToNet;
};

class Design {
public:
    explicit Design(const cell::CellLibrary& lib) : lib_(&lib) {}

    const cell::CellLibrary& library() const { return *lib_; }

    /// Adds an instance; every pin of the cell must be connected.
    void addInstance(Instance inst);

    /// Rebind instance `instName` to `cellName` in place — the ECO "resize
    /// a driver" mutation. The new cell must be pin-compatible (identical
    /// pin names, same output and input roles) so the connectivity — and
    /// therefore a retained DesignIndex and its level graph — stays valid;
    /// throws ModelError otherwise, or when no such instance exists.
    /// Instance storage is not reallocated, so Instance pointers held by an
    /// index survive. Pass the instance in DesignDelta::instances to have
    /// analyzeDesignIncremental re-solve its cone.
    void replaceCell(const std::string& instName, const std::string& cellName);

    const std::vector<Instance>& instances() const { return instances_; }

    /// Instance driving `net` (its output pin is on the net), or nullptr.
    /// On a multiply-driven net the winner is deterministic: the instance
    /// with the lexicographically smallest name, matching DesignIndex.
    const Instance* driverOf(const std::string& net) const;

    /// (instance, input pin) pairs loading `net`.
    std::vector<std::pair<const Instance*, std::string>> loadsOf(
        const std::string& net) const;

private:
    const cell::CellLibrary* lib_;
    std::vector<Instance> instances_;
};

/// The propagated-noise component of a net's verdict (propagate=true only).
struct PropagatedNoise {
    bool present = false;  ///< an upstream glitch was injected at the driver
    std::string fromNet;   ///< upstream net it arrived from
    std::string inputPin;  ///< victim-driver input pin carrying it
    double height = 0.0;   ///< V at the driver input
    double width = 0.0;    ///< s, 50%-of-peak width
    /// Local-only verdict (upstream glitch suppressed): bit-identical to
    /// what propagate=false reports for the same cluster (with timing
    /// windows supplied it is the window-constrained local run instead).
    /// When !present these mirror `cluster` (local == combined without
    /// incoming noise).
    double localPeak = 0.0;      ///< V, |worst peak|
    double localNrcLimit = 0.0;  ///< V
    double localMargin = 0.0;    ///< V (negative = failure)
    bool localFails = false;
};

/// Timing-window outcome of a net's verdict (only filled when
/// DesignNoiseOptions::windows was supplied to the wavefront).
struct WindowNoise {
    bool constrained = false;  ///< windows were supplied and applied
    /// The net's switching window: explicit input entry, or the hull of its
    /// fanin windows propagated through the stage delays.
    TimingWindow window;
    /// Worst margin ignoring all windows — the pessimistic verdict the
    /// PR 2 wavefront reports — next to the window-constrained margin that
    /// governs `cluster`. windowedMargin - unconstrainedMargin is the
    /// pessimism the windows recovered (>= 0 up to search noise).
    double unconstrainedMargin = 0.0;
    double windowedMargin = 0.0;
    /// Aggressor nets whose switching window cannot overlap the victim's
    /// sensitivity interval: dropped from the worst-case combination.
    std::vector<std::string> excludedAggressors;
    /// Upstream nets whose surviving glitch was dropped at this net because
    /// its arrival window misses the victim's sensitivity interval.
    std::vector<std::string> droppedIncoming;
};

struct NetNoiseReport {
    /// Per-net resilience verdict (DesignNoiseOptions::onNetFailure).
    /// Anything other than `ok` means the numeric fields below must not be
    /// trusted for signoff: `failed` nets threw during their solve (the
    /// captured error is in `error`), `quarantined` nets sit downstream of
    /// a failed net and were never solved, and `degraded` nets solved but
    /// bridged an upstream failure with a pass-through front, so their
    /// margins are approximate.
    enum class Status { ok, failed, quarantined, degraded };

    std::string net;
    std::vector<std::string> aggressorNets;
    /// The governing verdict: combined propagated + coupled noise when an
    /// upstream glitch reaches this net's driver, local-only otherwise.
    /// With timing windows supplied, this is the window-constrained run.
    ClusterReport cluster;
    PropagatedNoise propagated;
    WindowNoise windows;
    /// Non-winning drivers of a multiply-driven net (the lexicographically
    /// smallest instance is analyzed); empty for singly-driven nets.
    /// Surfaced here so the conflict is visible in sign-off instead of
    /// being dropped silently.
    std::vector<std::string> otherDrivers;
    Status status = Status::ok;
    std::string error;  ///< captured what() when status == failed
};

/// How the propagated-noise wavefront is scheduled. Either way the results
/// are bit-identical at any thread count: per-net outputs are slot-addressed
/// and every task reads nothing but its scheduled fanins' slots.
enum class WavefrontMode {
    /// Dependency-counted task graph (default): a net's cluster solves the
    /// moment its last fanin net finishes, workers pull from per-worker
    /// deques with work-stealing, and no level barrier ever forms — deep
    /// narrow levels no longer serialize the machine.
    taskGraph,
    /// The PR 2 per-level barrier (levels run in order, full join between
    /// levels). Kept as the validation baseline for the scheduler.
    levelBarrier,
};

/// What happens to a run when one net's solve throws
/// (DesignNoiseOptions::onNetFailure).
enum class NetFailurePolicy {
    /// Today's behavior, bit-identical: the first exception aborts the
    /// whole run (rethrown after the wavefront drains).
    failFast,
    /// The failing net's report is marked `failed` (error captured) and its
    /// entire downstream cone is suppressed: every net reachable over
    /// scheduled fanin edges is marked `quarantined` and never solves.
    /// Nets outside the cone are bit-identical to a clean run.
    quarantineCone,
    /// The failing net's report is marked `failed`, but instead of
    /// suppressing its cone the net degrades to a pass-through: its
    /// incoming glitches transfer downstream unattenuated (conservative).
    /// Downstream nets solve normally and are marked `degraded`.
    degradeToPassthrough,
};

struct DesignNoiseOptions {
    double tstop = 2.5e-9;
    std::size_t maxAggressors = 3;  ///< strongest-coupled first
    ReportOptions report;
    /// Worker threads for the victim-net loop; 1 (or negative) runs
    /// serially, 0 resolves to std::thread::hardware_concurrency() (see
    /// util::resolveThreadCount). Report order and numeric results are
    /// identical at any thread count.
    int threads = 1;
    /// Characterization cache shared across clusters. nullptr uses a fresh
    /// per-run cache; pass one to share across runs or to read its stats.
    charlib::CharCache* cache = nullptr;
    /// Stage-to-stage noise propagation: analyze nets level by level along
    /// the design graph and inject each net's surviving glitch into its
    /// fanout clusters (combined with the local coupling noise at the worst
    /// alignment). false keeps the flat single-pass sweep — bit-identical
    /// results at any thread count.
    bool propagate = false;
    /// Surviving glitches below this height are dropped instead of being
    /// propagated further, V.
    double propagateMinHeight = 1e-3;
    /// Per-net switching windows (FRAME-style temporal correlation), not
    /// owned. Wavefront mode only (`propagate == true`; ignored otherwise):
    /// windows propagate level-by-level along the design graph, aggressors
    /// and incoming glitches only collide with a victim where their windows
    /// overlap its sensitivity interval, and every report carries the
    /// unconstrained margin next to the window-constrained one. nullptr —
    /// or all-unbounded windows — reproduces the pure worst-alignment
    /// wavefront.
    const TimingWindows* windows = nullptr;
    /// Wavefront scheduling (propagate == true only); see WavefrontMode.
    WavefrontMode wavefront = WavefrontMode::taskGraph;
    /// When non-null, the task-graph wavefront writes its scheduler counters
    /// (resolved worker count, tasks executed, steals, ready-frontier high
    /// water, per-worker busy fractions) here; untouched by the flat sweep
    /// and the barrier mode.
    util::SchedulerStats* schedulerStats = nullptr;
    /// When non-null, analyzeDesign captures its retained state here (index,
    /// per-net reports, surviving fronts, propagated windows) so later ECO
    /// iterations can run analyzeDesignIncremental against it. See
    /// core/incremental.hpp.
    AnalysisSnapshot* snapshot = nullptr;
    /// Design lint (lint/lint.hpp). off skips the checker entirely; warn
    /// runs it right after the index is built and publishes the report via
    /// `lintOut` and the snapshot — every analysis value stays bit-identical
    /// to off; strict additionally throws lint::LintError before anything
    /// solves when unwaived errors remain. analyzeDesignIncremental lints
    /// the delta (SNA-L501/L502) before touching the snapshot.
    lint::Mode lint = lint::Mode::off;
    /// Waivers applied to the lint report (parser::parseWaivers); not owned.
    const std::vector<parser::Waiver>* lintWaivers = nullptr;
    /// When non-null and lint != off, receives the waiver-applied report
    /// (also filled before a strict-mode throw).
    lint::LintReport* lintOut = nullptr;
    /// Cooperative cancellation: when non-null the run polls this token at
    /// every task boundary and inside the SPICE transient loop, and
    /// unwinds cleanly once it trips. analyzeDesignOutcome returns the
    /// partial result; analyzeDesign throws util::CancelledError. Not
    /// owned; may be tripped from any thread.
    const util::CancelToken* cancel = nullptr;
    /// Wall-clock budget in seconds (steady clock, measured from the start
    /// of the solve phase); <= 0 means none. Internally arms a deadline on
    /// a run-local token chained under `cancel`, so both compose.
    double deadline = 0.0;
    /// Per-net failure quarantine; see NetFailurePolicy. The default is
    /// bit-identical to the historical all-or-nothing behavior.
    NetFailurePolicy onNetFailure = NetFailurePolicy::failFast;
};

/// Why an analyzeDesignOutcome run stopped.
enum class TerminationReason {
    completed,        ///< every scheduled task ran
    cancelled,        ///< CancelToken::cancel() observed mid-run
    deadlineExpired,  ///< the deadline tripped mid-run
};

/// The structured result of a resilient run. On a completed run `reports`
/// is exactly what analyzeDesign returns (plus per-report status marks
/// under a non-failFast policy). On a cancelled/timed-out run it carries
/// every report whose task completed — each bitwise-identical to the same
/// net's report in an uncancelled run — and `unsolvedNets` lists the nets
/// whose tasks never ran; nothing torn is ever returned, and the retained
/// AnalysisSnapshot is only captured on full, fault-free completion.
struct AnalysisOutcome {
    std::vector<NetNoiseReport> reports;
    TerminationReason reason = TerminationReason::completed;
    /// Victim nets whose task did not complete before cancellation, in
    /// deterministic task order (pass-through propagation tasks are an
    /// implementation detail and are not listed). On any run,
    /// reports.size() + unsolvedNets.size() equals the victim-cluster
    /// count. Empty on a completed run.
    std::vector<std::string> unsolvedNets;
    /// Per-policy failure accounting (sorted, deduplicated): nets whose
    /// solve threw, nets suppressed downstream of one, and nets that
    /// solved across a pass-through bridge.
    std::vector<std::string> failedNets;
    std::vector<std::string> quarantinedNets;
    std::vector<std::string> degradedNets;

    bool complete() const { return reason == TerminationReason::completed; }
    bool clean() const {
        return complete() && failedNets.empty() && quarantinedNets.empty() &&
               degradedNets.empty();
    }
};

/// Analyze every SPEF net that has coupling capacitance and a driver and at
/// least one load in the design. Nets are reported in SPEF order.
///
/// The pipeline: a one-pass DesignIndex replaces the per-query instance and
/// cap scans, a CharCache runs each characterization (load curve, Thevenin,
/// NRC, propagation table) once per distinct key instead of once per
/// cluster, and independent victim clusters solve on `opt.threads` workers.
/// With `opt.propagate`, the flat sweep becomes a levelized wavefront:
/// DesignIndex's Kahn levels run in order (nets within a level still solve
/// in parallel), so every net's upstream glitch is known before its own
/// cluster solves. The victim reports stay in SPEF order; they are followed
/// by propagated-only entries (empty aggressor list, NRC check against the
/// propagated glitch) for quiet uncoupled nets that noise reaches, in
/// deterministic level-then-name order.
std::vector<NetNoiseReport> analyzeDesign(const Design& design,
                                          const parser::SpefFile& spef,
                                          const DesignNoiseOptions& opt = {});

/// The resilient entry point: same pipeline as analyzeDesign, but a
/// cancelled or timed-out run returns a structured partial AnalysisOutcome
/// instead of throwing, and per-net failures are handled per
/// `opt.onNetFailure`. analyzeDesign is a thin wrapper that throws
/// util::CancelledError when the outcome is incomplete. The snapshot (when
/// requested) is captured only on full, fault-free completion — a partial
/// or quarantined run leaves `opt.snapshot->valid == false`.
AnalysisOutcome analyzeDesignOutcome(const Design& design,
                                     const parser::SpefFile& spef,
                                     const DesignNoiseOptions& opt = {});

/// The pre-index brute-force sweep (linear instance scans per query, all-net
/// cap scans per aggressor, full re-characterization per cluster, serial).
/// Kept as the validation and benchmarking baseline: its reports must match
/// analyzeDesign exactly with `opt.propagate == false`. `opt.threads`,
/// `opt.cache`, and `opt.propagate` are ignored.
std::vector<NetNoiseReport> analyzeDesignReference(
    const Design& design, const parser::SpefFile& spef,
    const DesignNoiseOptions& opt = {});

}  // namespace sna::core

#include "core/frontend.hpp"

#include <algorithm>
#include <set>

#include "core/propagate.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::core {

namespace {

/// Canonical CellLibrary spelling for a lower-cased netlist cell reference,
/// or empty when the library has no such cell.
std::string resolveCell(const cell::CellLibrary& lib,
                        const std::string& name) {
    for (const auto& candidate : lib.names()) {
        if (str::iequals(candidate, name)) return candidate;
    }
    return {};
}

}  // namespace

Design buildDesign(const parser::VerilogModule& module,
                   const cell::CellLibrary& lib) {
    Design design(lib);
    for (const auto& vinst : module.instances) {
        const std::string canonical = resolveCell(lib, vinst.cellName);
        if (canonical.empty()) {
            throw ModelError("instance '" + vinst.name +
                             "' references undefined cell '" +
                             vinst.cellName + "'");
        }
        const cell::Cell& c = lib.cell(canonical);
        Instance inst;
        inst.name = vinst.name;
        inst.cellName = canonical;
        for (const auto& [pin, net] : vinst.pinNets) {
            const auto& pins = c.pins();
            const bool known =
                std::any_of(pins.begin(), pins.end(),
                            [&](const cell::Pin& p) { return p.name == pin; });
            if (!known) {
                throw ModelError("instance '" + vinst.name +
                                 "' connects unknown pin '" + pin +
                                 "' of cell '" + canonical + "'");
            }
            if (net.empty()) {
                throw ModelError("instance '" + vinst.name + "' leaves pin '" +
                                 pin + "' unconnected");
            }
            inst.pinToNet[pin] = net;
        }
        for (const auto& pin : c.pins()) {
            if (inst.pinToNet.count(pin.name) == 0) {
                throw ModelError("instance '" + vinst.name + "' leaves pin '" +
                                 pin.name + "' unconnected");
            }
        }
        design.addInstance(std::move(inst));
    }
    return design;
}

void lintFrontEnd(const charlib::NldmSource& nldm,
                  const parser::VerilogModule& module,
                  const cell::CellLibrary& lib,
                  const parser::SdcConstraints* sdc,
                  lint::LintReport& report) {
    using charlib::NldmSource;
    const auto emit = [&](const char* rule, lint::Severity sev,
                          const std::string& object,
                          const std::string& message) {
        lint::Diagnostic d;
        d.rule = rule;
        d.severity = sev;
        d.object = object;
        d.message = message;
        report.diagnostics.push_back(std::move(d));
    };

    // ---- .lib binding (SNA-L601..L603), grouped by rule for stable order.
    for (const auto& issue : nldm.issues()) {
        if (issue.kind != NldmSource::Issue::Kind::unboundCell) continue;
        emit("SNA-L601", lint::Severity::warning, issue.cell,
             issue.detail + " — the cell falls back to SPICE "
             "characterization");
    }
    for (const auto& issue : nldm.issues()) {
        if (issue.kind != NldmSource::Issue::Kind::pinMismatch) continue;
        emit("SNA-L602", lint::Severity::error,
             issue.cell + ":" + issue.pin, issue.detail);
    }
    for (const auto& issue : nldm.issues()) {
        if (issue.kind != NldmSource::Issue::Kind::missingTable) continue;
        emit("SNA-L603", lint::Severity::warning,
             issue.cell + ":" + issue.pin,
             issue.detail + " — the arc falls back to SPICE "
             "characterization");
    }

    // ---- netlist vs. library (SNA-L611..L613), instances in file order.
    for (const auto& vinst : module.instances) {
        const std::string canonical = resolveCell(lib, vinst.cellName);
        if (canonical.empty()) {
            emit("SNA-L611", lint::Severity::error, vinst.name,
                 "references undefined cell '" + vinst.cellName + "'");
            continue;
        }
        const cell::Cell& c = lib.cell(canonical);
        for (const auto& [pin, net] : vinst.pinNets) {
            const auto& pins = c.pins();
            const bool known =
                std::any_of(pins.begin(), pins.end(),
                            [&](const cell::Pin& p) { return p.name == pin; });
            if (!known) {
                emit("SNA-L612", lint::Severity::error,
                     vinst.name + ":" + pin,
                     "cell '" + canonical + "' has no such pin");
            } else if (net.empty()) {
                emit("SNA-L613", lint::Severity::error,
                     vinst.name + ":" + pin, "pin is explicitly unconnected");
            }
        }
        for (const auto& pin : c.pins()) {
            if (vinst.pinNets.count(pin.name) == 0) {
                emit("SNA-L613", lint::Severity::error,
                     vinst.name + ":" + pin.name, "pin is not connected");
            }
        }
    }

    // ---- SDC vs. netlist ports (SNA-L615), each port reported once.
    if (sdc != nullptr) {
        std::set<std::string> known(module.inputs.begin(),
                                    module.inputs.end());
        known.insert(module.outputs.begin(), module.outputs.end());
        std::set<std::string> reported;
        const auto checkPort = [&](const std::string& port,
                                   const char* what) {
            if (known.count(port) != 0 || !reported.insert(port).second)
                return;
            emit("SNA-L615", lint::Severity::warning, port,
                 std::string(what) + " names a port the netlist does not "
                 "declare — the constraint seeds nothing");
        };
        for (const auto& clock : sdc->clocks) {
            for (const auto& port : clock.ports) {
                checkPort(port, "create_clock");
            }
        }
        for (const auto& d : sdc->inputDelays) {
            checkPort(d.port, "set_input_delay");
        }
        for (const auto& d : sdc->outputDelays) {
            checkPort(d.port, "set_output_delay");
        }
    }
}

std::size_t seedNldmCharacterization(const charlib::NldmSource& nldm,
                                     charlib::CharCache& cache) {
    // The window-propagation path queries TheveninSpec{cell, pin, dir,
    // loadCap = kPropagationLoadCap, inputSlew = default}; seeding at any
    // other point would just sit unused next to a SPICE-characterized
    // entry.
    const charlib::TheveninSpec defaults;
    return nldm.seedThevenins(cache, kPropagationLoadCap,
                              defaults.inputSlew);
}

}  // namespace sna::core

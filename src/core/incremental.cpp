#include "core/incremental.hpp"

namespace sna::core {

std::unordered_set<std::string> expandDirtyCone(
    const DesignIndex& index, const std::unordered_set<std::string>& seeds,
    bool downstreamClosure, std::size_t* coupledNeighbors) {
    std::unordered_set<std::string> dirty = seeds;
    // A seed's value changed (parasitics, driver cell, or window): every
    // cluster that couples to it reads that value — through its aggressor
    // ranking, its aggressor driver model, the shared RC extraction, or the
    // aggressor's switching window — and must re-solve.
    std::size_t neighbors = 0;
    for (const auto& seed : seeds) {
        for (const auto& [net, cap] : index.couplingOf(seed)) {
            if (dirty.insert(net).second) ++neighbors;
        }
    }
    if (coupledNeighbors != nullptr) *coupledNeighbors = neighbors;
    if (!downstreamClosure) return dirty;

    // Propagated wavefront: a re-solved net's surviving glitch feeds every
    // scheduled fanout, transitively. The closure runs on the task graph's
    // edges (cycle-broken edges excluded) — exactly the edges over which a
    // solve can observe an upstream front.
    const NetTaskGraph& tg = index.taskGraph();
    std::vector<char> mark(tg.nets.size(), 0);
    std::vector<int> stack;
    for (const auto& net : dirty) {
        const auto it = tg.idOf.find(net);
        if (it == tg.idOf.end()) continue;  // net not on any instance pin
        if (mark[static_cast<std::size_t>(it->second)]) continue;
        mark[static_cast<std::size_t>(it->second)] = 1;
        stack.push_back(it->second);
    }
    while (!stack.empty()) {
        const int t = stack.back();
        stack.pop_back();
        for (const int d : tg.graph.fanout[static_cast<std::size_t>(t)]) {
            if (mark[static_cast<std::size_t>(d)]) continue;
            mark[static_cast<std::size_t>(d)] = 1;
            stack.push_back(d);
            dirty.insert(tg.nets[static_cast<std::size_t>(d)]);
        }
    }
    return dirty;
}

}  // namespace sna::core

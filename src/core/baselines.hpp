// The two classical analyses the paper measures its macromodel against.
//
// B1 — linear superposition (Sec. 1 of the paper): the victim driver is a
// holding resistance, the crosstalk-injected noise is computed on the
// linearized cluster, the propagated noise comes from pre-characterized
// tables, and the two are summed with their peaks aligned (the worst-case
// convention). Strongly non-linear drivers make this underestimate badly —
// Table 1's point.
//
// B2 — iterative Thevenin victim model (Zolotov et al. [4]): the victim
// driver is a pulsed voltage source (its noise-free glitch response V0(t))
// behind a resistance that is iteratively refit to the load curve at the
// current noise amplitude. Better than B1, still linear at solve time.
#pragma once

#include "core/macromodel.hpp"

namespace sna::core {

/// B1. Aggressor switch times as in analyzeAt; the propagated glitch is
/// peak-aligned with the injected noise (worst-case superposition).
NoiseResult analyzeLinearSuperposition(
    const ClusterMacromodel& model,
    const std::vector<double>& aggressorSwitchTimes);

/// B2. `maxIterations` bounds the Thevenin-resistance refinement loop.
NoiseResult analyzeIterativeThevenin(
    const ClusterMacromodel& model,
    const std::vector<double>& aggressorSwitchTimes, double glitchTime,
    int maxIterations = 8);

}  // namespace sna::core

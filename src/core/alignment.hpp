// Worst-case noise alignment search.
//
// The total glitch depends on when each aggressor switches and when the
// propagated glitch arrives. The paper's worst case "occurs when all the
// noise glitch peaks are aligned"; this module provides that heuristic as a
// starting point plus a coordinate-refinement search on the macromodel
// (cheap — each probe is a ~10-node transient), and a brute-force grid
// reference for validation.
#pragma once

#include "core/macromodel.hpp"

namespace sna::core {

struct AlignmentOptions {
    double window = 0.8e-9;   ///< search window around the initial times, s
    int coarsePoints = 7;     ///< grid points per variable per round
    int rounds = 3;           ///< shrink-and-refine rounds
};

struct AlignmentResult {
    std::vector<double> aggressorSwitchTimes;
    double glitchTime = 0.0;
    NoiseResult worst;
    int evaluations = 0;
};

/// Coordinate-descent worst-|peak| search starting from peak-aligned
/// initial times.
AlignmentResult findWorstAlignment(const ClusterMacromodel& model,
                                   const AlignmentOptions& opt = {});

/// Exhaustive grid over the same window (validation / small cases only:
/// cost is pointsPerAxis^(aggressors + 1) transients).
AlignmentResult bruteForceWorstAlignment(const ClusterMacromodel& model,
                                         double window, int pointsPerAxis);

}  // namespace sna::core

// Worst-case noise alignment search.
//
// The total glitch depends on when each aggressor switches and when the
// propagated glitch arrives. The paper's worst case "occurs when all the
// noise glitch peaks are aligned"; this module provides that heuristic as a
// starting point plus a coordinate-refinement search on the macromodel
// (cheap — each probe is a ~10-node transient), and a brute-force grid
// reference for validation.
#pragma once

#include "core/macromodel.hpp"
#include "core/timing_windows.hpp"

namespace sna::core {

struct AlignmentOptions {
    double window = 0.8e-9;   ///< search window around the initial times, s
    int coarsePoints = 7;     ///< grid points per variable per round
    int rounds = 3;           ///< shrink-and-refine rounds

    /// Timing-window constraints (FRAME-style temporal correlation), all in
    /// absolute simulation time. When `aggressorWindows` is non-empty it
    /// must hold one window per spec aggressor: the allowed interval of
    /// that aggressor's OUTPUT transition (already intersected with the
    /// victim's sensitivity interval by the caller). The search maps it to
    /// input switch times through the aggressor's characterized delay and
    /// slew; an empty window — or one whose feasible input interval is
    /// empty — excludes the aggressor: it is held quiet (switch time +inf,
    /// reported as such in aggressorSwitchTimes) and its search axis is
    /// skipped. The unbounded defaults reproduce the unconstrained search.
    std::vector<TimingWindow> aggressorWindows;

    /// Allowed occupancy window of the injected victim-input glitch (its
    /// triangle spans [glitchTime, glitchTime + glitchWidth]). Callers must
    /// drop the glitch candidate entirely instead of passing a window with
    /// no feasible onset.
    TimingWindow glitchWindow;
};

struct AlignmentResult {
    /// Worst-case input switch times; +inf marks a window-excluded
    /// aggressor that was held quiet.
    std::vector<double> aggressorSwitchTimes;
    double glitchTime = 0.0;
    NoiseResult worst;
    int evaluations = 0;
};

/// Coordinate-descent worst-|peak| search starting from peak-aligned
/// initial times. All probed times are clamped to [0, 0.8 tstop] (and to
/// the feasible window intervals when given): a candidate before t = 0
/// would truncate the stimulus and score a misleading objective. The
/// spec's own alignment is always evaluated and wins ties, so the search
/// never returns worse than the caller's fixed alignment.
AlignmentResult findWorstAlignment(const ClusterMacromodel& model,
                                   const AlignmentOptions& opt = {});

/// Exhaustive grid over the same window (validation / small cases only:
/// cost is pointsPerAxis^(aggressors + 1) transients).
AlignmentResult bruteForceWorstAlignment(const ClusterMacromodel& model,
                                         double window, int pointsPerAxis);

}  // namespace sna::core

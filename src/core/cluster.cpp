#include "core/cluster.hpp"

#include <chrono>
#include <map>

#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/sources.hpp"

namespace sna::core {

ic::RcNetwork clusterNet(const ClusterSpec& spec) {
    if (spec.customNet != nullptr) {
        SNA_REQUIRE(spec.customNet->wireCount() ==
                        static_cast<int>(spec.aggressors.size()) + 1,
                    "customNet must have one wire per victim/aggressor");
        return *spec.customNet;
    }
    ic::StarClusterSpec star;
    star.layer = &spec.technology->layer(spec.layer);
    star.lengthUm = spec.lengthUm;
    star.aggressors = static_cast<int>(spec.aggressors.size());
    star.segments = spec.segments;
    for (const auto& agg : spec.aggressors) {
        star.ccScale.push_back(agg.couplingScale);
    }
    return ic::buildStarCluster(star);
}

double victimBaseline(const ClusterSpec& spec) {
    return spec.victim.outputLevel ? spec.technology->vdd : 0.0;
}

std::optional<wave::Waveform> victimInputGlitch(const ClusterSpec& spec,
                                                double glitchTime) {
    if (spec.victim.glitchHeight <= 0.0) return std::nullopt;
    const cell::CellLibrary& lib = cell::sharedLibrary(*spec.technology);
    const cell::Cell& driver = lib.cell(spec.victim.driverCell);
    const auto holding =
        driver.holdingVector(spec.victim.outputLevel, spec.victim.glitchInput);
    const double vdd = spec.technology->vdd;
    const double baseline = holding.at(spec.victim.glitchInput) ? vdd : 0.0;
    const double dir = (baseline < 0.5 * vdd) ? +1.0 : -1.0;
    return wave::triangleGlitch(baseline, dir * spec.victim.glitchHeight,
                                glitchTime, spec.victim.glitchWidth,
                                spec.tstop);
}

NoiseResult simulateGolden(const ClusterSpec& spec) {
    const auto start = std::chrono::steady_clock::now();
    const double vdd = spec.technology->vdd;
    const cell::CellLibrary& lib = cell::sharedLibrary(*spec.technology);
    const ic::RcNetwork net = clusterNet(spec);

    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    const auto ids = net.buildInto(ckt, "rc:");

    // ---- victim driver --------------------------------------------------
    const cell::Cell& vicDriver = lib.cell(spec.victim.driverCell);
    const auto vicHold = vicDriver.holdingVector(spec.victim.outputLevel,
                                                 spec.victim.glitchInput);
    {
        std::map<std::string, spice::NodeId> pins;
        for (const auto& in : vicDriver.inputNames()) {
            const auto n = ckt.node("vic_in_" + in);
            pins[in] = n;
            const double level = vicHold.at(in) ? vdd : 0.0;
            if (in == spec.victim.glitchInput &&
                spec.victim.glitchHeight > 0.0) {
                ckt.addVSource(
                    "v_vic_" + in, n, spice::kGround,
                    spice::SourceSpec::pwl(
                        *victimInputGlitch(spec, spec.victim.glitchTime)));
            } else {
                ckt.addVSource("v_vic_" + in, n, spice::kGround,
                               spice::SourceSpec::dc(level));
            }
        }
        pins[vicDriver.outputName()] = ids[net.driverNode(0)];
        vicDriver.instantiate(ckt, "vic_drv", pins, vddNode);
    }

    // ---- victim receiver (transistor-level load at the far end) ---------
    auto addReceiver = [&](const std::string& cellName,
                           const std::string& inst, spice::NodeId inputNode) {
        const cell::Cell& rx = lib.cell(cellName);
        const std::string pinName = rx.inputNames().front();
        std::map<std::string, spice::NodeId> pins;
        for (const auto& in : rx.inputNames()) {
            if (in == pinName) {
                pins[in] = inputNode;
            } else {
                const auto n = ckt.node(inst + "_in_" + in);
                pins[in] = n;
                ckt.addVSource("v_" + inst + "_" + in, n, spice::kGround,
                               spice::SourceSpec::dc(0.0));
            }
        }
        const auto outNode = ckt.node(inst + "_out");
        pins[rx.outputName()] = outNode;
        ckt.addCapacitor("c_" + inst, outNode, spice::kGround, 5e-15);
        rx.instantiate(ckt, inst, pins, vddNode);
    };
    addReceiver(spec.victim.receiverCell, "vic_rx", ids[net.receiverNode(0)]);

    // ---- aggressors -------------------------------------------------------
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        const auto& agg = spec.aggressors[a];
        const cell::Cell& drv = lib.cell(agg.driverCell);
        const std::string inPin = drv.inputNames().front();
        // Input vector before the transition: output at the pre-transition
        // level, sensitized on inPin.
        const auto hold = drv.holdingVector(!agg.outputRising, inPin);
        std::map<std::string, spice::NodeId> pins;
        const std::string inst = "agg" + std::to_string(a);
        for (const auto& in : drv.inputNames()) {
            const auto n = ckt.node(inst + "_in_" + in);
            pins[in] = n;
            const double v0 = hold.at(in) ? vdd : 0.0;
            if (in == inPin) {
                ckt.addVSource("v_" + inst + "_" + in, n, spice::kGround,
                               spice::SourceSpec::pwl(wave::saturatedRamp(
                                   v0, vdd - v0, agg.switchTime, agg.inputSlew,
                                   spec.tstop)));
            } else {
                ckt.addVSource("v_" + inst + "_" + in, n, spice::kGround,
                               spice::SourceSpec::dc(v0));
            }
        }
        pins[drv.outputName()] = ids[net.driverNode(static_cast<int>(a) + 1)];
        drv.instantiate(ckt, inst + "_drv", pins, vddNode);
        addReceiver(agg.receiverCell, inst + "_rx",
                    ids[net.receiverNode(static_cast<int>(a) + 1)]);
    }

    // ---- run ---------------------------------------------------------------
    spice::TranOptions opt;
    opt.tstop = spec.tstop;
    const auto res = spice::simulateTransient(ckt, opt);
    const std::string dpName = "rc:" + net.nodeName(net.driverNode(0));

    NoiseResult out;
    out.waveform = res.waveform(dpName);
    out.metrics = wave::measureGlitch(out.waveform, victimBaseline(spec));
    out.engineNodes = ckt.nodeCount();
    out.runtimeSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return out;
}

}  // namespace sna::core

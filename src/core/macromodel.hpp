// The paper's contribution: the non-linear victim-driver noise-cluster
// macromodel (Figure 1) and its dedicated analysis engine.
//
// Construction runs the pre-characterization step once per cluster:
//  * the victim driver becomes a table-driven VCCS I_DC = f(V_in, V_out)
//    (Eq. (1)), characterized by DC sweeps;
//  * each aggressor driver becomes a Thevenin equivalent (saturated ramp
//    V_TH behind R_TH, Dartu-Pileggi style);
//  * the coupled interconnect is reduced at the driving points by moment
//    matching (coupled-Pi by default, PRIMA optionally);
//  * receivers become their input capacitances.
// analyzeAt() then solves the resulting small non-linear circuit with the
// shared Newton/transient core — the "dedicated engine embedded into the
// noise analysis tool". Because the macromodel has ~10 unknowns instead of
// hundreds, this is where the paper's ~20x speed-up comes from.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "charlib/char_cache.hpp"
#include "charlib/characterize.hpp"
#include "core/cluster.hpp"
#include "mor/coupled_pi.hpp"
#include "mor/prima.hpp"

namespace sna::core {

struct MacromodelOptions {
    bool usePrima = false;  ///< PRIMA multiport instead of coupled-Pi
    int primaBlocks = 3;
    int loadCurveGrid = 33; ///< points per axis of the I_DC table
    /// Shared characterization cache. When set, load curves and Thevenin
    /// equivalents are looked up (and characterized at most once per key)
    /// instead of re-swept per cluster; nullptr characterizes directly.
    /// Cached results are bitwise identical to the direct path.
    charlib::CharCache* cache = nullptr;
};

class ClusterMacromodel {
public:
    using Options = MacromodelOptions;

    explicit ClusterMacromodel(const ClusterSpec& spec, Options opt = {});

    const ClusterSpec& spec() const { return spec_; }
    const Options& options() const { return opt_; }

    /// Run at the spec's own alignments.
    NoiseResult analyze() const;

    /// Run with explicit aggressor input-switch times and victim glitch
    /// arrival (the worst-case search knobs). A switch time of +inf holds
    /// that aggressor quiet at its pre-transition rail (window-excluded
    /// aggressors still load the victim, they just never switch).
    NoiseResult analyzeAt(const std::vector<double>& aggressorSwitchTimes,
                          double glitchTime) const;

    // ---- introspection (Fig. 1 bench, baselines) ----
    const la::Grid2d& loadCurve() const { return *loadCurve_; }
    double inputHoldLevel() const { return vinHold_; }
    double outputHoldLevel() const { return voutHold_; }
    /// Victim linearization at the quiet point (baseline B1's model).
    double victimHoldingResistance() const;
    const std::vector<charlib::TheveninModel>& aggressorModels() const {
        return aggressors_;
    }
    const ic::RcNetwork& interconnect() const { return net_; }
    const mor::CoupledPiModel& reducedPi() const;
    /// Receiver input caps per wire (victim first).
    const std::vector<double>& receiverCaps() const { return rxCaps_; }
    /// Driver output caps per wire (victim first); the table-VCCS and the
    /// Thevenin sources are resistive, so these load the driving points.
    const std::vector<double>& driverCaps() const { return drvCaps_; }

    /// Noise-propagation table of the victim driver (baseline B1); lazily
    /// characterized on first use.
    const charlib::PropagationTable& propagationTable() const;

    /// Human-readable dump of the assembled macromodel (the Figure 1
    /// artefact): every element with its characterized values.
    std::string describe() const;

private:
    ClusterSpec spec_;
    Options opt_;
    ic::RcNetwork net_;
    /// Shared with the cache on a hit (immutable); owned otherwise.
    std::shared_ptr<const la::Grid2d> loadCurve_;
    double vinHold_ = 0.0;
    double voutHold_ = 0.0;
    std::vector<charlib::TheveninModel> aggressors_;
    std::optional<mor::CoupledPiModel> pi_;
    std::optional<mor::PrimaModel> prima_;
    std::vector<int> primaPorts_;  // network node per port (drv then rcv)
    std::vector<double> rxCaps_;
    std::vector<double> drvCaps_;
    /// Shared with the cache on a hit (immutable); owned otherwise.
    mutable std::shared_ptr<const charlib::PropagationTable> propagation_;
};

}  // namespace sna::core

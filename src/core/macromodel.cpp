#include "core/macromodel.hpp"

#include <chrono>
#include <cmath>
#include <sstream>

#include "mor/linear_network.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "waveform/sources.hpp"

namespace sna::core {

ClusterMacromodel::ClusterMacromodel(const ClusterSpec& spec, Options opt)
    : spec_(spec), opt_(opt), net_(clusterNet(spec)) {
    const cell::CellLibrary& lib = cell::sharedLibrary(*spec_.technology);
    const double vdd = spec_.technology->vdd;

    // --- victim driver: the load-curve table (Eq. (1)) -------------------
    const cell::Cell& vic = lib.cell(spec_.victim.driverCell);
    charlib::LoadCurveSpec lc;
    lc.cell = &vic;
    lc.input = spec_.victim.glitchInput;
    lc.outputLevel = spec_.victim.outputLevel;
    lc.nVin = opt_.loadCurveGrid;
    lc.nVout = opt_.loadCurveGrid;
    loadCurve_ = opt_.cache ? opt_.cache->loadCurve(lc)
                            : std::make_shared<const la::Grid2d>(
                                  charlib::characterizeLoadCurve(lc));
    const auto hold =
        vic.holdingVector(spec_.victim.outputLevel, spec_.victim.glitchInput);
    vinHold_ = hold.at(spec_.victim.glitchInput) ? vdd : 0.0;
    voutHold_ = victimBaseline(spec_);

    // --- receivers: input capacitances ------------------------------------
    rxCaps_.push_back(lib.cell(spec_.victim.receiverCell)
                          .inputCapacitance(
                              lib.cell(spec_.victim.receiverCell)
                                  .inputNames()
                                  .front()));
    for (const auto& agg : spec_.aggressors) {
        const cell::Cell& rx = lib.cell(agg.receiverCell);
        rxCaps_.push_back(rx.inputCapacitance(rx.inputNames().front()));
    }

    // --- driver output capacitances ----------------------------------------
    drvCaps_.push_back(vic.outputCapacitance(vic.outputName()));
    for (const auto& agg : spec_.aggressors) {
        const cell::Cell& drv = lib.cell(agg.driverCell);
        drvCaps_.push_back(drv.outputCapacitance(drv.outputName()));
    }

    // --- aggressor drivers: Thevenin equivalents --------------------------
    for (std::size_t a = 0; a < spec_.aggressors.size(); ++a) {
        const auto& agg = spec_.aggressors[a];
        charlib::TheveninSpec ts;
        ts.cell = &lib.cell(agg.driverCell);
        ts.input = ts.cell->inputNames().front();
        ts.outputRising = agg.outputRising;
        ts.inputSlew = agg.inputSlew;
        const int wire = static_cast<int>(a) + 1;
        double coupling = 0.0;
        for (int o = 0; o < net_.wireCount(); ++o) {
            if (o != wire) coupling += net_.couplingCapBetween(wire, o);
        }
        ts.loadCap = net_.totalGroundCapOf(wire) + coupling + rxCaps_[a + 1];
        aggressors_.push_back(opt_.cache
                                  ? *opt_.cache->thevenin(ts)
                                  : charlib::characterizeThevenin(ts));
    }

    // --- interconnect reduction -------------------------------------------
    if (opt_.usePrima) {
        const mor::LinearNetwork lin(net_);
        for (int w = 0; w < net_.wireCount(); ++w) {
            primaPorts_.push_back(net_.driverNode(w));
        }
        for (int w = 0; w < net_.wireCount(); ++w) {
            primaPorts_.push_back(net_.receiverNode(w));
        }
        prima_ = mor::primaReduce(lin, primaPorts_, opt_.primaBlocks);
    } else {
        pi_ = mor::reduceCluster(net_);
    }
}

double ClusterMacromodel::victimHoldingResistance() const {
    return charlib::holdingResistance(*loadCurve_, vinHold_, voutHold_);
}

const mor::CoupledPiModel& ClusterMacromodel::reducedPi() const {
    SNA_REQUIRE(pi_.has_value(),
                "macromodel was built in PRIMA mode; no coupled-Pi");
    return *pi_;
}

const charlib::PropagationTable& ClusterMacromodel::propagationTable() const {
    if (propagation_ == nullptr) {
        const cell::CellLibrary& lib = cell::sharedLibrary(*spec_.technology);
        charlib::PropagationSpec ps;
        ps.cell = &lib.cell(spec_.victim.driverCell);
        ps.input = spec_.victim.glitchInput;
        ps.outputLevel = spec_.victim.outputLevel;
        double coupling = 0.0;
        for (int o = 1; o < net_.wireCount(); ++o) {
            coupling += net_.couplingCapBetween(0, o);
        }
        ps.loadCap = net_.totalGroundCapOf(0) + coupling + rxCaps_[0];
        const double vdd = spec_.technology->vdd;
        ps.heights = charlib::canonicalPropagationHeights(vdd);
        ps.widths = charlib::canonicalPropagationWidths();
        propagation_ = opt_.cache
                           ? opt_.cache->propagation(ps)
                           : std::make_shared<const charlib::PropagationTable>(
                                 charlib::characterizePropagation(ps));
    }
    return *propagation_;
}

NoiseResult ClusterMacromodel::analyze() const {
    std::vector<double> aggTimes;
    for (const auto& agg : spec_.aggressors) {
        aggTimes.push_back(agg.switchTime);
    }
    return analyzeAt(aggTimes, spec_.victim.glitchTime);
}

NoiseResult ClusterMacromodel::analyzeAt(
    const std::vector<double>& aggressorSwitchTimes, double glitchTime) const {
    SNA_REQUIRE(aggressorSwitchTimes.size() == spec_.aggressors.size(),
                "need one switch time per aggressor");
    const auto start = std::chrono::steady_clock::now();

    // ---- assemble the Fig. 1 circuit -------------------------------------
    spice::Circuit ckt;
    const auto vin = ckt.node("vin");
    const auto dp = ckt.node("dp_vic");
    if (const auto glitch = victimInputGlitch(spec_, glitchTime)) {
        ckt.addVSource("v_in", vin, spice::kGround,
                       spice::SourceSpec::pwl(*glitch));
    } else {
        ckt.addVSource("v_in", vin, spice::kGround,
                       spice::SourceSpec::dc(vinHold_));
    }
    ckt.addTableVccs("idc_victim", dp, vin, *loadCurve_);

    std::vector<spice::NodeId> drvNodes{dp};
    ckt.addCapacitor("cdrv0", dp, spice::kGround, drvCaps_[0]);
    for (std::size_t a = 0; a < spec_.aggressors.size(); ++a) {
        const auto& model = aggressors_[a];
        const std::string inst = "agg" + std::to_string(a);
        const auto src = ckt.node(inst + "_th");
        const auto adp = ckt.node(inst + "_dp");
        if (std::isinf(aggressorSwitchTimes[a])) {
            // Window-excluded aggressor: held quiet at its pre-transition
            // rail. Its Thevenin resistance and coupling caps stay in the
            // circuit — a silent neighbour still loads the victim.
            ckt.addVSource("v_" + inst, src, spice::kGround,
                           spice::SourceSpec::dc(model.vStart));
        } else {
            ckt.addVSource(
                "v_" + inst, src, spice::kGround,
                spice::SourceSpec::pwl(model.ramp(
                    aggressorSwitchTimes[a] + model.delay, spec_.tstop)));
        }
        ckt.addResistor("r_" + inst, src, adp, model.rth);
        ckt.addCapacitor("cdrv" + std::to_string(a + 1), adp, spice::kGround,
                         drvCaps_[a + 1]);
        drvNodes.push_back(adp);
    }

    if (opt_.usePrima) {
        const mor::LinearNetwork lin(net_);
        std::vector<spice::NodeId> portNodes = drvNodes;
        std::vector<spice::NodeId> rcvNodes;
        for (int w = 0; w < net_.wireCount(); ++w) {
            rcvNodes.push_back(ckt.node("rcv" + std::to_string(w)));
        }
        portNodes.insert(portNodes.end(), rcvNodes.begin(), rcvNodes.end());
        ckt.addDevice<mor::ReducedMultiport>("rednet", portNodes, *prima_);
        for (int w = 0; w < net_.wireCount(); ++w) {
            ckt.addCapacitor("crx" + std::to_string(w), rcvNodes[w],
                             spice::kGround, rxCaps_[w]);
        }
    } else {
        const auto farNodes = pi_->buildInto(ckt, "pi:", drvNodes);
        for (int w = 0; w < net_.wireCount(); ++w) {
            ckt.addCapacitor("crx" + std::to_string(w), farNodes[w],
                             spice::kGround, rxCaps_[w]);
        }
    }

    // ---- run the dedicated small engine -----------------------------------
    spice::TranOptions opt;
    opt.tstop = spec_.tstop;
    const auto res = spice::simulateTransient(ckt, opt);

    NoiseResult out;
    out.waveform = res.waveform("dp_vic");
    out.metrics = wave::measureGlitch(out.waveform, voutHold_);
    out.engineNodes = ckt.nodeCount();
    out.runtimeSec = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    return out;
}

std::string ClusterMacromodel::describe() const {
    std::ostringstream os;
    os << "Noise-cluster macromodel (Fig. 1 of the paper)\n";
    os << "  victim driver " << spec_.victim.driverCell << " -> VCCS I_DC"
       << " = f(V_in, V_out), " << loadCurve_->xs().size() << "x"
       << loadCurve_->ys().size() << " load-curve table\n";
    os << "    input hold " << vinHold_ << " V, output hold " << voutHold_
       << " V, holding resistance " << victimHoldingResistance() << " ohm\n";
    for (std::size_t a = 0; a < aggressors_.size(); ++a) {
        const auto& m = aggressors_[a];
        os << "  aggressor " << a << " driver "
           << spec_.aggressors[a].driverCell << " -> Thevenin V_TH ramp "
           << m.vStart << "->" << m.vEnd << " V, slew " << m.slew * 1e12
           << " ps, R_TH " << m.rth << " ohm, delay " << m.delay * 1e12
           << " ps\n";
    }
    if (opt_.usePrima) {
        os << "  interconnect -> PRIMA reduced multiport, order "
           << prima_->order() << ", ports " << prima_->ports() << "\n";
    } else {
        os << "  interconnect -> coupled-Pi driving-point model\n";
        for (const auto& n : pi_->nets) {
            os << "    net " << n.netName << ": C1 " << n.pi.c1 * 1e15
               << " fF, R " << n.pi.r << " ohm, C2 " << n.pi.c2 * 1e15
               << " fF\n";
        }
        for (const auto& cp : pi_->couplings) {
            os << "    coupling " << pi_->nets[cp.netA].netName << " <-> "
               << pi_->nets[cp.netB].netName << ": near "
               << cp.nearCap * 1e15 << " fF, far " << cp.farCap * 1e15
               << " fF\n";
        }
    }
    for (std::size_t w = 0; w < rxCaps_.size(); ++w) {
        os << "  receiver " << w << " -> input cap " << rxCaps_[w] * 1e15
           << " fF\n";
    }
    return os.str();
}

}  // namespace sna::core

#include "core/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::core {

namespace {

constexpr double kQuiet = std::numeric_limits<double>::infinity();

/// Feasible interval of one search variable; `active == false` means the
/// variable is window-excluded and fixed (quiet aggressor).
struct Axis {
    double lo = 0.0;
    double hi = 0.0;
    bool active = true;
};

double clampTo(double t, const Axis& ax) {
    return std::min(std::max(t, ax.lo), ax.hi);
}

// Initial guess: align every contributor's estimated peak time at a common
// instant T (far enough from t=0 for settling).
struct InitialTimes {
    std::vector<double> agg;
    double glitch;
};

InitialTimes peakAlignedInit(const ClusterMacromodel& model) {
    const ClusterSpec& spec = model.spec();
    const double tCenter = 0.35 * spec.tstop;
    InitialTimes init;
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        const auto& m = model.aggressorModels()[a];
        // Injected noise peaks roughly when the aggressor ramp ends.
        init.agg.push_back(tCenter - m.delay - m.slew);
    }
    // Propagated glitch peaks about half a width after its onset.
    init.glitch = tCenter - 0.5 * spec.victim.glitchWidth;
    return init;
}

double objective(const ClusterMacromodel& model,
                 const std::vector<double>& aggTimes, double glitchTime,
                 NoiseResult* out) {
    NoiseResult r = model.analyzeAt(aggTimes, glitchTime);
    const double value = std::abs(r.metrics.peak);
    if (out != nullptr) *out = std::move(r);
    return value;
}

}  // namespace

AlignmentResult findWorstAlignment(const ClusterMacromodel& model,
                                   const AlignmentOptions& opt) {
    const ClusterSpec& spec = model.spec();
    const bool hasGlitch = spec.victim.glitchHeight > 0.0;
    const double tMax = 0.8 * spec.tstop;

    // ---- feasible interval per search variable ---------------------------
    // Aggressor windows constrain the OUTPUT transition [t + delay,
    // t + delay + slew]; it overlaps window w iff the INPUT switch time t
    // lies in [w.earliest - delay - slew, w.latest - delay]. The glitch
    // window constrains the triangle occupancy [g, g + glitchWidth], so the
    // onset interval is [w.earliest - glitchWidth, w.latest]. Everything is
    // additionally clamped to [0, 0.8 tstop]: before t = 0 the stimulus is
    // truncated and the objective misleading.
    std::vector<Axis> aggAxis(spec.aggressors.size());
    SNA_REQUIRE(opt.aggressorWindows.empty() ||
                    opt.aggressorWindows.size() == spec.aggressors.size(),
                "need one aggressor window per aggressor (or none)");
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        Axis ax{0.0, tMax, true};
        if (!opt.aggressorWindows.empty()) {
            const TimingWindow& w = opt.aggressorWindows[a];
            const auto& m = model.aggressorModels()[a];
            if (w.empty()) {
                ax.active = false;
            } else {
                ax.lo = std::max(0.0, w.earliest - m.delay - m.slew);
                ax.hi = std::min(tMax, w.latest - m.delay);
                ax.active = ax.lo <= ax.hi;
            }
        }
        aggAxis[a] = ax;
    }
    Axis glitchAxis{0.0, tMax, hasGlitch};
    if (hasGlitch && opt.glitchWindow.bounded()) {
        glitchAxis.lo = std::max(
            0.0, opt.glitchWindow.earliest - spec.victim.glitchWidth);
        glitchAxis.hi = std::min(tMax, opt.glitchWindow.latest);
        SNA_REQUIRE(glitchAxis.lo <= glitchAxis.hi,
                    "glitch window leaves no feasible onset; drop the "
                    "glitch candidate instead");
    }

    InitialTimes times = peakAlignedInit(model);
    for (std::size_t a = 0; a < times.agg.size(); ++a) {
        times.agg[a] =
            aggAxis[a].active ? clampTo(times.agg[a], aggAxis[a]) : kQuiet;
    }
    if (hasGlitch) times.glitch = clampTo(times.glitch, glitchAxis);

    AlignmentResult best;
    best.aggressorSwitchTimes = times.agg;
    best.glitchTime = times.glitch;
    double bestVal =
        objective(model, times.agg, times.glitch, &best.worst);
    best.evaluations = 1;

    // The spec's own alignment is a free candidate — never return worse
    // than what the caller would get without the search. Clamped into the
    // feasible intervals, and preferred on ties so a flat landscape keeps
    // the caller's alignment.
    {
        std::vector<double> specTimes;
        for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
            specTimes.push_back(aggAxis[a].active
                                    ? clampTo(spec.aggressors[a].switchTime,
                                              aggAxis[a])
                                    : kQuiet);
        }
        const double specGlitch =
            hasGlitch ? clampTo(spec.victim.glitchTime, glitchAxis)
                      : times.glitch;
        NoiseResult r;
        const double val = objective(model, specTimes, specGlitch, &r);
        ++best.evaluations;
        if (val >= bestVal) {
            bestVal = val;
            best.aggressorSwitchTimes = std::move(specTimes);
            best.glitchTime = specGlitch;
            best.worst = std::move(r);
        }
    }

    // Coordinate refinement over the ACTIVE axes only: window-excluded
    // aggressors stay quiet, and with glitchHeight == 0 there is no glitch
    // axis to probe at all (the dead axis is skipped, not searched).
    const std::size_t vars = times.agg.size() + (hasGlitch ? 1 : 0);
    double window = opt.window;
    for (int round = 0; round < opt.rounds; ++round) {
        for (std::size_t v = 0; v < vars; ++v) {
            const bool isGlitch = hasGlitch && v == times.agg.size();
            const Axis& ax = isGlitch ? glitchAxis : aggAxis[v];
            if (!ax.active) continue;
            const double center = isGlitch
                                      ? best.glitchTime
                                      : best.aggressorSwitchTimes[v];
            double lastT = -1.0;  // no probe yet (feasible times are >= 0)
            for (int k = 0; k < opt.coarsePoints; ++k) {
                const double t = clampTo(
                    center - 0.5 * window +
                        window * k / std::max(1, opt.coarsePoints - 1),
                    ax);
                if (t == lastT) continue;  // clamp collapsed the candidate
                lastT = t;
                auto aggTimes = best.aggressorSwitchTimes;
                double glitchTime = best.glitchTime;
                if (isGlitch) {
                    glitchTime = t;
                } else {
                    aggTimes[v] = t;
                }
                NoiseResult r;
                const double val =
                    objective(model, aggTimes, glitchTime, &r);
                ++best.evaluations;
                if (val > bestVal) {
                    bestVal = val;
                    best.aggressorSwitchTimes = aggTimes;
                    best.glitchTime = glitchTime;
                    best.worst = std::move(r);
                }
            }
        }
        window /= 3.0;
    }
    log::debug() << "alignment search: " << best.evaluations
                 << " evaluations, worst peak " << best.worst.metrics.peak;
    return best;
}

AlignmentResult bruteForceWorstAlignment(const ClusterMacromodel& model,
                                         double window, int pointsPerAxis) {
    SNA_REQUIRE(pointsPerAxis >= 2, "grid needs >= 2 points per axis");
    const ClusterSpec& spec = model.spec();
    const bool hasGlitch = spec.victim.glitchHeight > 0.0;
    const InitialTimes init = peakAlignedInit(model);
    const std::size_t vars = init.agg.size() + (hasGlitch ? 1 : 0);
    SNA_REQUIRE(vars >= 1, "nothing to align");

    std::vector<int> idx(vars, 0);
    AlignmentResult best;
    double bestVal = -1.0;
    bool done = false;
    while (!done) {
        std::vector<double> aggTimes = init.agg;
        double glitchTime = init.glitch;
        for (std::size_t v = 0; v < vars; ++v) {
            const double center =
                (hasGlitch && v == init.agg.size()) ? init.glitch
                                                    : init.agg[v];
            const double t = center - 0.5 * window +
                             window * idx[v] / (pointsPerAxis - 1);
            if (hasGlitch && v == init.agg.size()) {
                glitchTime = std::max(t, 0.0);
            } else {
                aggTimes[v] = std::max(t, 0.0);
            }
        }
        NoiseResult r;
        const double val = objective(model, aggTimes, glitchTime, &r);
        ++best.evaluations;
        if (val > bestVal) {
            bestVal = val;
            best.aggressorSwitchTimes = aggTimes;
            best.glitchTime = glitchTime;
            best.worst = std::move(r);
        }
        // Advance the multi-index.
        done = true;
        for (std::size_t v = 0; v < vars; ++v) {
            if (++idx[v] < pointsPerAxis) {
                done = false;
                break;
            }
            idx[v] = 0;
        }
    }
    return best;
}

}  // namespace sna::core

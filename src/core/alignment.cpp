#include "core/alignment.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::core {

namespace {

// Initial guess: align every contributor's estimated peak time at a common
// instant T (far enough from t=0 for settling).
struct InitialTimes {
    std::vector<double> agg;
    double glitch;
};

InitialTimes peakAlignedInit(const ClusterMacromodel& model) {
    const ClusterSpec& spec = model.spec();
    const double tCenter = 0.35 * spec.tstop;
    InitialTimes init;
    for (std::size_t a = 0; a < spec.aggressors.size(); ++a) {
        const auto& m = model.aggressorModels()[a];
        // Injected noise peaks roughly when the aggressor ramp ends.
        init.agg.push_back(tCenter - m.delay - m.slew);
    }
    // Propagated glitch peaks about half a width after its onset.
    init.glitch = tCenter - 0.5 * spec.victim.glitchWidth;
    return init;
}

double objective(const ClusterMacromodel& model,
                 const std::vector<double>& aggTimes, double glitchTime,
                 NoiseResult* out) {
    NoiseResult r = model.analyzeAt(aggTimes, glitchTime);
    const double value = std::abs(r.metrics.peak);
    if (out != nullptr) *out = std::move(r);
    return value;
}

}  // namespace

AlignmentResult findWorstAlignment(const ClusterMacromodel& model,
                                   const AlignmentOptions& opt) {
    const ClusterSpec& spec = model.spec();
    const bool hasGlitch = spec.victim.glitchHeight > 0.0;
    InitialTimes times = peakAlignedInit(model);

    AlignmentResult best;
    best.aggressorSwitchTimes = times.agg;
    best.glitchTime = times.glitch;
    double bestVal =
        objective(model, times.agg, times.glitch, &best.worst);
    best.evaluations = 1;

    // The spec's own alignment is a free candidate — never return worse
    // than what the caller would get without the search.
    {
        std::vector<double> specTimes;
        for (const auto& agg : spec.aggressors) {
            specTimes.push_back(agg.switchTime);
        }
        NoiseResult r;
        const double val =
            objective(model, specTimes, spec.victim.glitchTime, &r);
        ++best.evaluations;
        if (val > bestVal) {
            bestVal = val;
            best.aggressorSwitchTimes = std::move(specTimes);
            best.glitchTime = spec.victim.glitchTime;
            best.worst = std::move(r);
        }
    }

    const std::size_t vars = times.agg.size() + (hasGlitch ? 1 : 0);
    double window = opt.window;
    for (int round = 0; round < opt.rounds; ++round) {
        for (std::size_t v = 0; v < vars; ++v) {
            const bool isGlitch = hasGlitch && v == times.agg.size();
            const double center = isGlitch
                                      ? best.glitchTime
                                      : best.aggressorSwitchTimes[v];
            for (int k = 0; k < opt.coarsePoints; ++k) {
                const double t =
                    center - 0.5 * window +
                    window * k / std::max(1, opt.coarsePoints - 1);
                if (t < 0.0 || t > 0.8 * spec.tstop) continue;
                auto aggTimes = best.aggressorSwitchTimes;
                double glitchTime = best.glitchTime;
                if (isGlitch) {
                    glitchTime = t;
                } else {
                    aggTimes[v] = t;
                }
                NoiseResult r;
                const double val =
                    objective(model, aggTimes, glitchTime, &r);
                ++best.evaluations;
                if (val > bestVal) {
                    bestVal = val;
                    best.aggressorSwitchTimes = aggTimes;
                    best.glitchTime = glitchTime;
                    best.worst = std::move(r);
                }
            }
        }
        window /= 3.0;
    }
    log::debug() << "alignment search: " << best.evaluations
                 << " evaluations, worst peak " << best.worst.metrics.peak;
    return best;
}

AlignmentResult bruteForceWorstAlignment(const ClusterMacromodel& model,
                                         double window, int pointsPerAxis) {
    SNA_REQUIRE(pointsPerAxis >= 2, "grid needs >= 2 points per axis");
    const ClusterSpec& spec = model.spec();
    const bool hasGlitch = spec.victim.glitchHeight > 0.0;
    const InitialTimes init = peakAlignedInit(model);
    const std::size_t vars = init.agg.size() + (hasGlitch ? 1 : 0);
    SNA_REQUIRE(vars >= 1, "nothing to align");

    std::vector<int> idx(vars, 0);
    AlignmentResult best;
    double bestVal = -1.0;
    bool done = false;
    while (!done) {
        std::vector<double> aggTimes = init.agg;
        double glitchTime = init.glitch;
        for (std::size_t v = 0; v < vars; ++v) {
            const double center =
                (hasGlitch && v == init.agg.size()) ? init.glitch
                                                    : init.agg[v];
            const double t = center - 0.5 * window +
                             window * idx[v] / (pointsPerAxis - 1);
            if (hasGlitch && v == init.agg.size()) {
                glitchTime = std::max(t, 0.0);
            } else {
                aggTimes[v] = std::max(t, 0.0);
            }
        }
        NoiseResult r;
        const double val = objective(model, aggTimes, glitchTime, &r);
        ++best.evaluations;
        if (val > bestVal) {
            bestVal = val;
            best.aggressorSwitchTimes = aggTimes;
            best.glitchTime = glitchTime;
            best.worst = std::move(r);
        }
        // Advance the multi-index.
        done = true;
        for (std::size_t v = 0; v < vars; ++v) {
            if (++idx[v] < pointsPerAxis) {
                done = false;
                break;
            }
            idx[v] = 0;
        }
    }
    return best;
}

}  // namespace sna::core

#include "core/propagate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sna::core {

namespace {

/// A dominates B when it is at least as tall AND at least as wide (the NRC
/// is non-increasing in width, so A is at least as damaging everywhere).
/// Works on any type exposing .height/.width.
template <typename A, typename B>
bool dominates(const A& a, const B& b) {
    return a.height >= b.height && a.width >= b.width;
}

/// Cap an already-sorted front at kMaxSurviving, keeping the extremes
/// (first and last entries) and an even spread between.
template <typename T>
void capFront(std::vector<T>& front) {
    if (front.size() <= kMaxSurviving) return;
    std::vector<T> kept;
    const std::size_t n = front.size();
    for (std::size_t k = 0; k < kMaxSurviving; ++k) {
        kept.push_back(front[k * (n - 1) / (kMaxSurviving - 1)]);
    }
    front = std::move(kept);
}

}  // namespace

void mergeSurviving(SurvivingSet& set, const SurvivingGlitch& g) {
    for (const auto& s : set) {
        if (dominates(s, g)) return;
    }
    set.erase(std::remove_if(set.begin(), set.end(),
                             [&g](const SurvivingGlitch& s) {
                                 return dominates(g, s);
                             }),
              set.end());
    set.push_back(g);
    // Height descending; on a Pareto front this makes width ascending.
    std::sort(set.begin(), set.end(),
              [](const SurvivingGlitch& a, const SurvivingGlitch& b) {
                  if (a.height != b.height) return a.height > b.height;
                  return a.width > b.width;
              });
    capFront(set);
}

std::vector<IncomingGlitch> selectIncoming(
    const DesignIndex& index, const std::string& net,
    const std::unordered_map<std::string, SurvivingSet>& surviving) {
    return selectIncoming(
        index, net,
        [&surviving](const std::string& from) -> const SurvivingSet* {
            const auto it = surviving.find(from);
            return it == surviving.end() ? nullptr : &it->second;
        });
}

std::vector<IncomingGlitch> selectIncoming(
    const DesignIndex& index, const std::string& net,
    const std::function<const SurvivingSet*(const std::string&)>&
        survivingOf) {
    // Gather every (edge, glitch) candidate, then keep the Pareto front.
    std::vector<IncomingGlitch> cands;
    for (const auto& edge : index.faninOf(net)) {
        const SurvivingSet* set = survivingOf(edge.fromNet);
        if (set == nullptr) continue;
        for (const auto& sg : *set) {
            IncomingGlitch in;
            in.height = sg.height;
            in.width = sg.width;
            in.fromNet = edge.fromNet;
            in.inputPin = edge.pin;
            cands.push_back(std::move(in));
        }
    }
    std::vector<IncomingGlitch> front;
    for (const auto& c : cands) {
        const bool dominated = std::any_of(
            cands.begin(), cands.end(), [&c](const IncomingGlitch& o) {
                // Strict domination, so equal glitches keep exactly the
                // first edge in fanin order (see the duplicate filter).
                return dominates(o, c) &&
                       (o.height > c.height || o.width > c.width);
            });
        if (dominated) continue;
        const bool duplicate = std::any_of(
            front.begin(), front.end(), [&c](const IncomingGlitch& o) {
                return o.height == c.height && o.width == c.width;
            });
        if (!duplicate) front.push_back(c);
    }
    // mergeSurviving's ordering plus edge-label tie-breaks for determinism.
    std::sort(front.begin(), front.end(),
              [](const IncomingGlitch& a, const IncomingGlitch& b) {
                  if (a.height != b.height) return a.height > b.height;
                  if (a.width != b.width) return a.width > b.width;
                  if (a.fromNet != b.fromNet) return a.fromNet < b.fromNet;
                  return a.inputPin < b.inputPin;
              });
    capFront(front);
    return front;
}

TimingWindow propagateWindowThroughDriver(const cell::Cell& cell,
                                          const std::string& pin,
                                          const TimingWindow& fanin,
                                          charlib::CharCache* cache) {
    if (!fanin.bounded() || fanin.empty()) return fanin;
    // Stage delay bounds from the driver's Thevenin equivalents: the output
    // can start moving as early as the smaller insertion delay and can
    // still be moving as late as the larger delay plus that direction's
    // output slew ("widened by slew").
    double dMin = std::numeric_limits<double>::infinity();
    double dMax = -std::numeric_limits<double>::infinity();
    for (const bool rising : {false, true}) {
        charlib::TheveninSpec ts;
        ts.cell = &cell;
        ts.input = pin;
        ts.outputRising = rising;
        ts.loadCap = kPropagationLoadCap;
        const charlib::TheveninModel m =
            cache ? *cache->thevenin(ts) : charlib::characterizeThevenin(ts);
        dMin = std::min(dMin, m.delay);
        dMax = std::max(dMax, m.delay + m.slew);
    }
    return fanin.shifted(dMin, dMax);
}

std::unordered_map<std::string, TimingWindow> propagateWindows(
    const DesignIndex& index, charlib::CharCache* cache,
    const TimingWindows* windows) {
    std::unordered_map<std::string, TimingWindow> out;
    const TimingWindows* explicitWindows =
        windows != nullptr ? windows : index.timingWindows();
    for (const auto& levelNets : index.levels().levels) {
        for (const std::string& net : levelNets) {
            if (explicitWindows != nullptr) {
                if (const TimingWindow* w = explicitWindows->find(net)) {
                    out.emplace(net, *w);
                    continue;
                }
            }
            bool any = false;
            TimingWindow hull;
            for (const FaninEdge& edge : index.faninOf(net)) {
                const auto it = out.find(edge.fromNet);
                const TimingWindow fanin = it != out.end()
                                               ? it->second
                                               : TimingWindow::unbounded();
                const TimingWindow shifted = propagateWindowThroughDriver(
                    index.design().library().cell(edge.inst->cellName),
                    edge.pin, fanin, cache);
                hull = any ? hull.unite(shifted) : shifted;
                any = true;
            }
            out.emplace(net, any ? hull : TimingWindow::unbounded());
        }
    }
    return out;
}

SurvivingGlitch propagateThroughDriver(const cell::Cell& cell,
                                       const std::string& pin,
                                       const IncomingGlitch& incoming,
                                       charlib::CharCache* cache) {
    const double vdd = cell.technology().vdd;
    const double base = 2.0 * incoming.width;  // triangle base of the glitch
    // Below the table's smallest characterized height or width, Grid2d::eval
    // would clamp UP to the border and hand a 1 mV (or 10 ps) glitch the
    // transfer of a 0.1*vdd (or 60 ps) one — a phantom that would never
    // decay along a quiet chain. Evaluate the border and scale linearly
    // instead: near the holding point a restoring CMOS stage is
    // small-signal linear in height, and a sub-grid-width pulse is in the
    // energy-limited regime where the output peak tracks the input area
    // (hence ~linearly, width at fixed height).
    const double hMin = charlib::canonicalPropagationHeights(vdd).front();
    const double wMin = charlib::canonicalPropagationWidths().front();
    const double evalHeight = std::max(incoming.height, hMin);
    const double evalBase = std::max(base, wMin);
    double scale = 1.0;
    if (incoming.height < hMin) scale *= incoming.height / hMin;
    if (base < wMin) scale *= base / wMin;

    SurvivingGlitch worst;
    // The quiet output level of a pass-through net is state-dependent;
    // evaluate both holding levels and keep the worse transfer (larger
    // area, taller on ties); the caller's Pareto merge keeps incomparable
    // outputs from other candidates alongside.
    for (const bool level : {false, true}) {
        charlib::PropagationSpec ps;
        ps.cell = &cell;
        ps.input = pin;
        ps.outputLevel = level;
        ps.loadCap = kPropagationLoadCap;
        ps.heights = charlib::canonicalPropagationHeights(vdd);
        ps.widths = charlib::canonicalPropagationWidths();
        std::shared_ptr<const charlib::PropagationTable> table;
        if (evalBase > ps.widths.back()) {
            // Wider than the canonical grid: clamping would read the
            // transfer of a narrower glitch, which is optimistic (wide
            // glitches are closer to DC and propagate more strongly).
            // Characterize the actual width instead, on just the two
            // heights bracketing the evaluation point (4 transients, not
            // the full grid) — uncached, since keys would embed the bitwise
            // width (same policy as the NRC's wide-glitch fallback).
            std::size_t i = 0;
            while (i + 2 < ps.heights.size() &&
                   ps.heights[i + 1] <= evalHeight) {
                ++i;
            }
            const double h0 = ps.heights[i];
            const double h1 = ps.heights[i + 1];
            ps.heights = {h0, h1};
            ps.widths = {0.5 * evalBase, evalBase};
            table = std::make_shared<const charlib::PropagationTable>(
                charlib::characterizePropagation(ps));
        } else {
            table = cache
                        ? cache->propagation(ps)
                        : std::make_shared<const charlib::PropagationTable>(
                              charlib::characterizePropagation(ps));
        }
        const double peak = scale * table->peak(evalHeight, evalBase);
        const double area = scale * table->area(evalHeight, evalBase);
        if (std::abs(peak) <= 1e-9) continue;
        SurvivingGlitch sg;
        sg.height = std::abs(peak);
        // A triangle of peak p and area A has 50% width A / p; fall back to
        // the incoming width when the area is degenerate.
        sg.width = std::abs(area) > 0.0 ? std::abs(area / peak)
                                        : incoming.width;
        const double sgArea = sg.height * sg.width;
        const double worstArea = worst.height * worst.width;
        if (sgArea > worstArea ||
            (sgArea == worstArea && sg.height > worst.height)) {
            worst = sg;
        }
    }
    return worst;
}

}  // namespace sna::core

// Switching (arrival) windows for FRAME-style temporal correlation.
//
// The PR 2 wavefront injects every aggressor transition and every surviving
// glitch at its worst possible alignment — sound but pessimistic. A timing
// window [earliest, latest] per net bounds when that net can actually
// switch within the analysis cycle; the wavefront propagates windows along
// the levelized design graph (shifted by the stage's characterized delay,
// widened by its output slew) and the worst-alignment search then only
// probes alignments where an aggressor's (or incoming glitch's) window
// overlaps the victim's sensitivity interval. Disjoint windows drop the
// contributor from the worst-case combination entirely — the recovered
// pessimism the report surfaces as unconstrained-vs-windowed margins.
//
// Header-only on purpose: the text loader lives in parser/ (which must not
// link against core), so the shared type carries no out-of-line code.
#pragma once

#include <cmath>
#include <limits>
#include <map>
#include <string>

namespace sna::core {

/// A per-net switching window: the net can transition (and its noise can
/// occupy the wire) only inside [earliest, latest], absolute seconds on the
/// analysis time axis. The default is unbounded — no temporal information,
/// which reproduces the PR 2 worst-alignment behavior exactly.
struct TimingWindow {
    double earliest = -std::numeric_limits<double>::infinity();
    double latest = std::numeric_limits<double>::infinity();

    static TimingWindow unbounded() { return {}; }

    /// True when the window contains no instant at all.
    bool empty() const { return !(earliest <= latest); }

    /// True when at least one bound carries real information.
    bool bounded() const {
        return std::isfinite(earliest) || std::isfinite(latest);
    }

    TimingWindow intersect(const TimingWindow& o) const {
        return {earliest > o.earliest ? earliest : o.earliest,
                latest < o.latest ? latest : o.latest};
    }

    /// Union hull (windows are intervals; the wavefront keeps one interval
    /// per net, so the union of fanin windows is their hull).
    TimingWindow unite(const TimingWindow& o) const {
        return {earliest < o.earliest ? earliest : o.earliest,
                latest > o.latest ? latest : o.latest};
    }

    /// The window seen after a stage with insertion delay in [dMin, dMax]
    /// (dMax includes the output slew: the transition can still be moving
    /// that late). Infinite bounds stay infinite.
    TimingWindow shifted(double dMin, double dMax) const {
        return {std::isfinite(earliest) ? earliest + dMin : earliest,
                std::isfinite(latest) ? latest + dMax : latest};
    }

    bool operator==(const TimingWindow& o) const {
        return earliest == o.earliest && latest == o.latest;
    }
    bool operator!=(const TimingWindow& o) const { return !(*this == o); }
};

/// The per-net window input of a design run (loaded from a windows file or
/// built programmatically). Nets without an entry default to the unbounded
/// window. Ordered by net name for deterministic iteration.
class TimingWindows {
public:
    void set(const std::string& net, TimingWindow w) {
        windows_[net] = w;
    }

    /// The explicit window of `net`, or nullptr when none was given.
    const TimingWindow* find(const std::string& net) const {
        const auto it = windows_.find(net);
        return it == windows_.end() ? nullptr : &it->second;
    }

    /// The window of `net`: explicit entry or the unbounded default.
    TimingWindow of(const std::string& net) const {
        const TimingWindow* w = find(net);
        return w != nullptr ? *w : TimingWindow::unbounded();
    }

    bool empty() const { return windows_.empty(); }
    std::size_t size() const { return windows_.size(); }
    const std::map<std::string, TimingWindow>& all() const {
        return windows_;
    }

private:
    std::map<std::string, TimingWindow> windows_;
};

}  // namespace sna::core

#include <cmath>
#include <map>

#include "charlib/characterize.hpp"
#include "spice/dc.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "waveform/sources.hpp"

namespace sna::charlib {

wave::Waveform TheveninModel::ramp(double t0, double tEnd) const {
    return wave::saturatedRamp(vStart, vEnd, t0, slew, tEnd);
}

namespace {

// Analytic crossing time of the (ramp + R)ic load C response at `frac` of
// the swing. Response (normalized swing 1, ramp duration tau, time constant
// rc, ramp starts at 0):
//   t <= tau : v(t) = (t - rc (1 - e^{-t/rc})) / tau
//   t  > tau : v(t) = 1 - (rc/tau) (1 - e^{-tau/rc}) e^{-(t-tau)/rc}
// Monotone increasing, so bisection is exact.
double rampRcCrossing(double frac, double tau, double rc) {
    SNA_REQUIRE(frac > 0.0 && frac < 1.0, "crossing fraction out of range");
    auto value = [&](double t) {
        if (t <= tau) {
            return (t - rc * (1.0 - std::exp(-t / rc))) / tau;
        }
        return 1.0 -
               (rc / tau) * (1.0 - std::exp(-tau / rc)) *
                   std::exp(-(t - tau) / rc);
    };
    double lo = 0.0;
    double hi = tau + rc;
    while (value(hi) < frac) hi *= 2.0;
    for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (value(mid) < frac) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

// Output crossing time at `frac` of the swing, linearly interpolated on the
// PWL waveform (sample-scanning alone is biased late on coarse steps).
double measuredCrossing(const wave::Waveform& w, double vStart, double vEnd,
                        double frac, double tAfter) {
    const double target = vStart + frac * (vEnd - vStart);
    const bool rising = vEnd > vStart;
    const auto& samples = w.samples();
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i].t < tAfter) continue;
        const auto& a = samples[i - 1];
        const auto& b = samples[i];
        const bool crossed =
            rising ? (a.v < target && b.v >= target)
                   : (a.v > target && b.v <= target);
        if (!crossed) continue;
        const double f = (target - a.v) / (b.v - a.v);
        return a.t + f * (b.t - a.t);
    }
    throw ModelError("driver output never crossed the target level during "
                     "Thevenin characterization");
}

}  // namespace

namespace {

// DC effective driving resistance toward the post-transition rail: clamp
// the output at mid-swing with the inputs at their final values and read
// R = (half swing) / |I|. This is the classic identifiable definition; a
// crossing-time-only fit degenerates for slew-limited (strong) drivers.
double effectiveResistance(const cell::Cell& cellRef,
                           const std::map<std::string, bool>& finalVector,
                           double vdd, bool outputRising) {
    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    std::map<std::string, spice::NodeId> pins;
    for (const auto& in : cellRef.inputNames()) {
        const auto n = ckt.node(in);
        pins[in] = n;
        ckt.addVSource("v_" + in, n, spice::kGround,
                       spice::SourceSpec::dc(finalVector.at(in) ? vdd : 0.0));
    }
    const auto outNode = ckt.node("out");
    pins[cellRef.outputName()] = outNode;
    ckt.addVSource("v_out", outNode, spice::kGround,
                   spice::SourceSpec::dc(0.5 * vdd));
    cellRef.instantiate(ckt, "dut", pins, vddNode);
    const auto dc = spice::solveDc(ckt);
    const double current = dc.sourceCurrent("v_out");
    // Rising output: the cell sources current into the clamp (negative
    // sunk current); falling: it sinks. Either way use the magnitude.
    const double magnitude = std::abs(current);
    if (magnitude < 1e-9) {
        throw ModelError("driver delivers no current at mid-swing; cannot "
                         "extract an effective resistance");
    }
    (void)outputRising;
    return (0.5 * vdd) / magnitude;
}

}  // namespace

TheveninModel characterizeThevenin(const TheveninSpec& spec) {
    SNA_REQUIRE(spec.cell != nullptr, "thevenin spec needs a cell");
    SNA_REQUIRE(spec.loadCap > 0.0, "thevenin load must be positive");
    const cell::Cell& cellRef = *spec.cell;
    const double vdd = cellRef.technology().vdd;

    // Bench: start from the vector holding the output at the pre-transition
    // level, then ramp the chosen input to its flipped value.
    const bool outStart = !spec.outputRising;
    const auto holding = cellRef.holdingVector(outStart, spec.input);

    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    const double tStart = 50e-12;
    const double tStop = 4e-9;
    std::map<std::string, spice::NodeId> pins;
    for (const auto& in : cellRef.inputNames()) {
        const auto n = ckt.node(in);
        pins[in] = n;
        const double v0 = holding.at(in) ? vdd : 0.0;
        if (in == spec.input) {
            const double v1 = vdd - v0;
            ckt.addVSource("v_" + in, n, spice::kGround,
                           spice::SourceSpec::pwl(wave::saturatedRamp(
                               v0, v1, tStart, spec.inputSlew, tStop)));
        } else {
            ckt.addVSource("v_" + in, n, spice::kGround,
                           spice::SourceSpec::dc(v0));
        }
    }
    const auto outNode = ckt.node("out");
    pins[cellRef.outputName()] = outNode;
    ckt.addCapacitor("cload", outNode, spice::kGround, spec.loadCap);
    cellRef.instantiate(ckt, "dut", pins, vddNode);

    spice::TranOptions opt;
    opt.tstop = tStop;
    const auto res = spice::simulateTransient(ckt, opt);
    const auto& out = res.waveform("out");

    const double vStart = spec.outputRising ? 0.0 : vdd;
    const double vEnd = vdd - vStart;
    const double t20 = measuredCrossing(out, vStart, vEnd, 0.2, tStart);
    const double t80 = measuredCrossing(out, vStart, vEnd, 0.8, tStart);
    SNA_REQUIRE(t80 > t20, "inverted crossing order in Thevenin fit");

    // R_TH from the DC effective resistance (always identifiable), then fit
    // the ramp duration tau so the model's 20%/80% crossings match the
    // golden transition. The model ramp starts where the golden output
    // leaves 2% of the swing (driver insertion delay).
    const auto finalVector = cellRef.holdingVector(!outStart, spec.input);
    const double rth =
        effectiveResistance(cellRef, finalVector, vdd, spec.outputRising);
    const double rc = rth * spec.loadCap;

    const double tLaunch = measuredCrossing(out, vStart, vEnd, 0.02, tStart);
    const double m20 = t20 - tLaunch;
    const double m80 = t80 - tLaunch;
    auto error = [&](double tau) {
        const double c20 = rampRcCrossing(0.2, tau, rc);
        const double c80 = rampRcCrossing(0.8, tau, rc);
        const double e20 = (c20 - m20) / m80;
        const double e80 = (c80 - m80) / m80;
        return e20 * e20 + e80 * e80;
    };
    double bestTau = std::max(m80 - rc, 0.05 * m80);
    double bestErr = error(bestTau);
    for (int it = 0; it < 4; ++it) {
        const double span = (it == 0) ? 20.0 : 1.5;
        const int n = 40;
        const double tau0 = bestTau / span;
        for (int a = 0; a <= n; ++a) {
            const double tau =
                tau0 * std::pow(span * span, a / static_cast<double>(n));
            const double e = error(tau);
            if (e < bestErr) {
                bestErr = e;
                bestTau = tau;
            }
        }
    }
    log::debug() << "thevenin fit " << cellRef.name() << ": slew=" << bestTau
                 << " rth=" << rth << " err=" << bestErr;

    TheveninModel model;
    model.vStart = vStart;
    model.vEnd = vEnd;
    model.slew = bestTau;
    model.rth = rth;
    model.delay = tLaunch - tStart;
    return model;
}

}  // namespace sna::charlib

// Serialization of characterization artifacts.
//
// Characterization is the expensive, amortized step of the flow (the paper
// runs it once per library); production use requires shipping the results.
// This module defines a small line-oriented text format ("snamodel v1") for
// load-curve tables, Thevenin models, propagation tables, and NRCs, with
// exact round-trip (hex-float payloads) and versioned headers.
#pragma once

#include <iosfwd>
#include <string>

#include "charlib/characterize.hpp"

namespace sna::charlib {

// ---- load curve (la::Grid2d) ----
std::string saveLoadCurve(const la::Grid2d& table,
                          const std::string& comment = "");
la::Grid2d loadLoadCurve(const std::string& text);

// ---- Thevenin model ----
std::string saveThevenin(const TheveninModel& model,
                         const std::string& comment = "");
TheveninModel loadThevenin(const std::string& text);

// ---- propagation table ----
std::string savePropagation(const PropagationTable& table,
                            const std::string& comment = "");
PropagationTable loadPropagation(const std::string& text);

// ---- NRC (la::Grid1d) ----
std::string saveNrc(const la::Grid1d& curve, const std::string& comment = "");
la::Grid1d loadNrc(const std::string& text);

/// Waveform as a two-column CSV ("time,value" with a header line), the
/// exchange format for plotting scripts.
std::string toCsv(const wave::Waveform& w);
wave::Waveform fromCsv(const std::string& text);

}  // namespace sna::charlib

#include "charlib/char_cache.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "charlib/model_io.hpp"
#include "util/error.hpp"

namespace sna::charlib {

namespace {

// Bitwise double encoding: cache keys must distinguish every numerically
// distinct spec (a hit must reproduce the direct call exactly), so no
// rounding or formatting is involved.
void putDouble(std::ostringstream& os, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    os << '/' << std::hex << bits << std::dec;
}

// Cells from different technologies share names (every library has an
// INV_X1), so keys lead with the technology's full electrical identity —
// name alone is not enough (corner sweeps perturb transistor models while
// keeping the name): a shared cache must not hand tech-A models to a
// tech-B run.
void putMosModel(std::ostringstream& os, const spice::MosModel& m) {
    putDouble(os, m.vt0);
    putDouble(os, m.kp);
    putDouble(os, m.lambda);
    putDouble(os, m.gamma);
    putDouble(os, m.phi);
    putDouble(os, m.cox);
    putDouble(os, m.cgso);
    putDouble(os, m.cgdo);
    putDouble(os, m.cj);
    putDouble(os, m.cjsw);
    putDouble(os, m.ldiff);
}

void putTech(std::ostringstream& os, const cell::Cell& c) {
    const tech::Technology& t = c.technology();
    os << t.name;
    putDouble(os, t.vdd);
    putDouble(os, t.lmin);
    putDouble(os, t.wnUnit);
    putDouble(os, t.wpUnit);
    putMosModel(os, t.nmos);
    putMosModel(os, t.pmos);
    os << '/';
}

std::string keyOf(const LoadCurveSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "load-curve spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel << '/'
       << s.nVin << '/' << s.nVout;
    putDouble(os, s.vMin);
    putDouble(os, s.vMax);
    return os.str();
}

std::string keyOf(const TheveninSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "thevenin spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputRising;
    putDouble(os, s.loadCap);
    putDouble(os, s.inputSlew);
    return os.str();
}

std::string keyOf(const PropagationSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "propagation spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel;
    putDouble(os, s.loadCap);
    for (const double h : s.heights) putDouble(os, h);
    os << '/';
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

std::string keyOf(const NrcSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "NRC spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.quietLevel;
    putDouble(os, s.loadCap);
    putDouble(os, s.failFraction);
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

// ---- "snacache v1" file format -------------------------------------------
//
//   snacache v1
//   entry <kind> <payload-bytes> <escaped-key>
//   <payload-bytes of snamodel text>
//   entry ...
//   end <record-count>
//
// Each payload is exactly the charlib/model_io serialization of the value
// (hex-float, exact round-trip), so the on-disk models inherit model_io's
// versioning and tests. Keys are percent-escaped (they are slash-separated
// hex fields plus free-form technology/cell names); payloads are carried
// by byte count, so the loader never has to parse them to skip them.

constexpr const char* kCacheHeader = "snacache v1";

constexpr const char* kKindLoadCurve = "loadcurve";
constexpr const char* kKindThevenin = "thevenin";
constexpr const char* kKindNrc = "nrc";
constexpr const char* kKindPropagation = "propagation";

std::string escapeKey(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (const unsigned char c : key) {
        if (c <= ' ' || c == '%' || c == 0x7f) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

bool unescapeKey(const std::string& escaped, std::string& out) {
    out.clear();
    out.reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '%') {
            out += escaped[i];
            continue;
        }
        if (i + 2 >= escaped.size()) return false;
        unsigned value = 0;
        if (std::sscanf(escaped.c_str() + i + 1, "%2x", &value) != 1)
            return false;
        out += static_cast<char>(value);
        i += 2;
    }
    return true;
}

}  // namespace

template <typename T, typename Fn>
std::shared_ptr<const T> CharCache::getOrCompute(Table<T>& table,
                                                 const std::string& key,
                                                 Fn compute) {
    std::shared_future<std::shared_ptr<const T>> fut;
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto it = table.entries.find(key);
        if (it != table.entries.end()) {
            // A disk-loaded entry's first-and-every hit is characterization
            // the warm start replaced; count it apart from in-memory hits.
            if (it->second.fromDisk)
                ++table.diskHits;
            else
                ++table.hits;
            fut = it->second.fut;
        } else if (table.entries.size() >= table.maxEntries) {
            // Table full: characterize without storing, so a shared cache
            // stays bounded under never-repeating keys.
            ++table.runs;
            ++table.overflow;
            lock.unlock();
            return std::make_shared<const T>(compute());
        } else {
            ++table.runs;
            std::promise<std::shared_ptr<const T>> prom;
            fut = prom.get_future().share();
            table.entries.emplace(key, Entry<T>{fut, false});
            lock.unlock();
            // Characterize outside the lock: other keys proceed in parallel,
            // same-key callers block on the future (single-flight).
            try {
                prom.set_value(std::make_shared<const T>(compute()));
            } catch (...) {
                prom.set_exception(std::current_exception());
                std::lock_guard<std::mutex> relock(mu_);
                table.entries.erase(key);  // allow a later retry
            }
        }
    }
    return fut.get();
}

template <typename T>
bool CharCache::insertFromDisk(Table<T>& table, const std::string& key,
                               std::shared_ptr<const T> value) {
    const std::lock_guard<std::mutex> lock(mu_);
    // A present key wins — ready entries are identical by key construction,
    // and an in-flight future must keep its single-flight waiters.
    if (table.entries.count(key) != 0) return false;
    if (table.entries.size() >= table.maxEntries) return false;
    std::promise<std::shared_ptr<const T>> prom;
    prom.set_value(std::move(value));
    table.entries.emplace(key, Entry<T>{prom.get_future().share(), true});
    return true;
}

std::shared_ptr<const la::Grid2d> CharCache::loadCurve(
    const LoadCurveSpec& spec) {
    return getOrCompute(loadCurves_, keyOf(spec),
                        [&] { return characterizeLoadCurve(spec); });
}

std::shared_ptr<const TheveninModel> CharCache::thevenin(
    const TheveninSpec& spec) {
    return getOrCompute(thevenins_, keyOf(spec),
                        [&] { return characterizeThevenin(spec); });
}

std::shared_ptr<const la::Grid1d> CharCache::nrc(const NrcSpec& spec) {
    return getOrCompute(nrcs_, keyOf(spec),
                        [&] { return characterizeNrc(spec); });
}

std::shared_ptr<const PropagationTable> CharCache::propagation(
    const PropagationSpec& spec) {
    return getOrCompute(propagations_, keyOf(spec),
                        [&] { return characterizePropagation(spec); });
}

bool CharCache::seedThevenin(const TheveninSpec& spec,
                             const TheveninModel& model) {
    // Seeded entries are marked fromDisk: like a warm start, their hits are
    // characterization work an external source (NLDM tables) replaced.
    return insertFromDisk(thevenins_, keyOf(spec),
                          std::make_shared<const TheveninModel>(model));
}

CharCache::Stats CharCache::stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.loadCurveRuns = loadCurves_.runs;
    s.loadCurveHits = loadCurves_.hits;
    s.theveninRuns = thevenins_.runs;
    s.theveninHits = thevenins_.hits;
    s.nrcRuns = nrcs_.runs;
    s.nrcHits = nrcs_.hits;
    s.propagationRuns = propagations_.runs;
    s.propagationHits = propagations_.hits;
    s.loadCurveDiskHits = loadCurves_.diskHits;
    s.theveninDiskHits = thevenins_.diskHits;
    s.nrcDiskHits = nrcs_.diskHits;
    s.propagationDiskHits = propagations_.diskHits;
    s.loadCurveOverflow = loadCurves_.overflow;
    s.theveninOverflow = thevenins_.overflow;
    s.nrcOverflow = nrcs_.overflow;
    s.propagationOverflow = propagations_.overflow;
    return s;
}

CharCache::Limits CharCache::limits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Limits l;
    l.loadCurves = loadCurves_.maxEntries;
    l.thevenins = thevenins_.maxEntries;
    l.nrcs = nrcs_.maxEntries;
    l.propagations = propagations_.maxEntries;
    return l;
}

void CharCache::setLimits(const Limits& limits) {
    const std::lock_guard<std::mutex> lock(mu_);
    loadCurves_.maxEntries = limits.loadCurves;
    thevenins_.maxEntries = limits.thevenins;
    nrcs_.maxEntries = limits.nrcs;
    propagations_.maxEntries = limits.propagations;
}

CharCache::PersistResult CharCache::save(const std::string& path) const {
    PersistResult result;
    // Snapshot ready entries under the lock (futures are cheap to copy),
    // serialize outside it so in-flight characterizations are not stalled.
    struct Record {
        const char* kind;
        std::string key;
        std::string payload;
    };
    std::vector<Record> records;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto snapshot = [&](const auto& table, const char* kind,
                                  auto serialize) {
            for (const auto& [key, entry] : table.entries) {
                if (entry.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                    ++result.skipped;  // in-flight: the value isn't born yet
                    continue;
                }
                records.push_back({kind, key, serialize(*entry.fut.get())});
            }
        };
        snapshot(loadCurves_, kKindLoadCurve,
                 [](const la::Grid2d& v) { return saveLoadCurve(v); });
        snapshot(thevenins_, kKindThevenin,
                 [](const TheveninModel& v) { return saveThevenin(v); });
        snapshot(nrcs_, kKindNrc,
                 [](const la::Grid1d& v) { return saveNrc(v); });
        snapshot(propagations_, kKindPropagation,
                 [](const PropagationTable& v) { return savePropagation(v); });
    }

    // Write a temporary sibling and rename: a concurrent load() from
    // another process sees either the old complete file or the new one.
    // The tmp name is unique per writer (pid + process-wide counter): two
    // processes (or threads) saving to the same path each build their own
    // complete snapshot and the renames serialize, so last-writer-wins is
    // the only race — a fixed ".tmp" sibling would let one writer rename
    // another's half-written file into place.
    static std::atomic<unsigned long long> saveCounter{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                            "." + std::to_string(++saveCounter);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            result.error = "cannot open " + tmp + " for writing";
            return result;
        }
        out << kCacheHeader << '\n';
        for (const Record& r : records) {
            out << "entry " << r.kind << ' ' << r.payload.size() << ' '
                << escapeKey(r.key) << '\n'
                << r.payload << '\n';
        }
        out << "end " << records.size() << '\n';
        out.flush();
        if (!out) {
            result.error = "write failed for " + tmp;
            std::remove(tmp.c_str());
            return result;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        result.error = "rename to " + path + " failed";
        std::remove(tmp.c_str());
        return result;
    }
    result.entries = records.size();
    result.ok = true;
    return result;
}

CharCache::PersistResult CharCache::load(const std::string& path) {
    PersistResult result;
    std::string text;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            result.error = "cannot open " + path;
            return result;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    std::size_t pos = 0;
    const auto nextLine = [&](std::string& line) {
        if (pos >= text.size()) return false;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) return false;  // unterminated: truncated
        line.assign(text, pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    std::string line;
    if (!nextLine(line) || line != kCacheHeader) {
        // Wrong or future version: load nothing — the format may have
        // changed incompatibly, and a silent partial read could alias keys.
        result.error = "bad cache header (want \"" +
                       std::string(kCacheHeader) + "\")";
        return result;
    }

    std::size_t declared = 0;
    bool sawEnd = false;
    while (nextLine(line)) {
        if (line.rfind("end ", 0) == 0) {
            declared = std::strtoull(line.c_str() + 4, nullptr, 10);
            sawEnd = true;
            break;
        }
        char kind[32] = {0};
        unsigned long long payloadBytes = 0;
        int keyStart = -1;
        if (std::sscanf(line.c_str(), "entry %31s %llu %n", kind,
                        &payloadBytes, &keyStart) != 2 ||
            keyStart < 0) {
            result.error = "malformed record line";
            return result;
        }
        std::string key;
        if (!unescapeKey(line.substr(static_cast<std::size_t>(keyStart)),
                         key)) {
            result.error = "malformed key escape";
            return result;
        }
        if (pos + payloadBytes + 1 > text.size()) {
            result.error = "truncated payload";  // keep the valid prefix
            return result;
        }
        const std::string payload = text.substr(pos, payloadBytes);
        pos += payloadBytes;
        if (text[pos] != '\n') {
            result.error = "missing payload terminator";
            return result;
        }
        ++pos;

        // A payload model_io rejects (corrupt hex, bad snamodel header) is
        // skipped, not fatal: the rest of the file is still good.
        bool inserted = false;
        try {
            const std::string k(kind);
            if (k == kKindLoadCurve) {
                inserted = insertFromDisk(
                    loadCurves_, key,
                    std::make_shared<const la::Grid2d>(loadLoadCurve(payload)));
            } else if (k == kKindThevenin) {
                inserted = insertFromDisk(
                    thevenins_, key,
                    std::make_shared<const TheveninModel>(
                        loadThevenin(payload)));
            } else if (k == kKindNrc) {
                inserted = insertFromDisk(
                    nrcs_, key,
                    std::make_shared<const la::Grid1d>(loadNrc(payload)));
            } else if (k == kKindPropagation) {
                inserted = insertFromDisk(
                    propagations_, key,
                    std::make_shared<const PropagationTable>(
                        loadPropagation(payload)));
            }
        } catch (const std::exception&) {
            inserted = false;
        }
        if (inserted)
            ++result.entries;
        else
            ++result.skipped;
    }

    if (!sawEnd) {
        result.error = "truncated file (no end record)";
        return result;
    }
    if (declared != result.entries + result.skipped) {
        result.error = "record count mismatch";
        return result;
    }
    result.ok = true;
    return result;
}

void CharCache::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto reset = [](auto& table) {
        table.entries.clear();
        table.runs = 0;
        table.hits = 0;
        table.diskHits = 0;
        table.overflow = 0;
    };
    reset(loadCurves_);
    reset(thevenins_);
    reset(nrcs_);
    reset(propagations_);
}

}  // namespace sna::charlib

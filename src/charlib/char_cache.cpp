#include "charlib/char_cache.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "charlib/model_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/log.hpp"

namespace sna::charlib {

namespace {

// Bitwise double encoding: cache keys must distinguish every numerically
// distinct spec (a hit must reproduce the direct call exactly), so no
// rounding or formatting is involved.
void putDouble(std::ostringstream& os, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    os << '/' << std::hex << bits << std::dec;
}

// Cells from different technologies share names (every library has an
// INV_X1), so keys lead with the technology's full electrical identity —
// name alone is not enough (corner sweeps perturb transistor models while
// keeping the name): a shared cache must not hand tech-A models to a
// tech-B run.
void putMosModel(std::ostringstream& os, const spice::MosModel& m) {
    putDouble(os, m.vt0);
    putDouble(os, m.kp);
    putDouble(os, m.lambda);
    putDouble(os, m.gamma);
    putDouble(os, m.phi);
    putDouble(os, m.cox);
    putDouble(os, m.cgso);
    putDouble(os, m.cgdo);
    putDouble(os, m.cj);
    putDouble(os, m.cjsw);
    putDouble(os, m.ldiff);
}

void putTech(std::ostringstream& os, const cell::Cell& c) {
    const tech::Technology& t = c.technology();
    os << t.name;
    putDouble(os, t.vdd);
    putDouble(os, t.lmin);
    putDouble(os, t.wnUnit);
    putDouble(os, t.wpUnit);
    putMosModel(os, t.nmos);
    putMosModel(os, t.pmos);
    os << '/';
}

std::string keyOf(const LoadCurveSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "load-curve spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel << '/'
       << s.nVin << '/' << s.nVout;
    putDouble(os, s.vMin);
    putDouble(os, s.vMax);
    return os.str();
}

std::string keyOf(const TheveninSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "thevenin spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputRising;
    putDouble(os, s.loadCap);
    putDouble(os, s.inputSlew);
    return os.str();
}

std::string keyOf(const PropagationSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "propagation spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel;
    putDouble(os, s.loadCap);
    for (const double h : s.heights) putDouble(os, h);
    os << '/';
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

std::string keyOf(const NrcSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "NRC spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.quietLevel;
    putDouble(os, s.loadCap);
    putDouble(os, s.failFraction);
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

// ---- "snacache v2" file format -------------------------------------------
//
//   snacache v2
//   entry <kind> <payload-bytes> <crc32-hex8> <escaped-key>
//   <payload-bytes of snamodel text>
//   entry ...
//   end <record-count>
//
// Each payload is exactly the charlib/model_io serialization of the value
// (hex-float, exact round-trip), so the on-disk models inherit model_io's
// versioning and tests. Keys are percent-escaped (they are slash-separated
// hex fields plus free-form technology/cell names); payloads are carried
// by byte count, so the loader never has to parse them to skip them. The
// CRC32 (reflected 0xEDB88320, same as zip/zlib) covers the unescaped key
// followed by the raw payload bytes — both lengths are pinned by the record
// line, so the digest is unambiguous. A record whose stored CRC disagrees
// with the bytes read is individually rejected; everything after it (whose
// framing is intact) still loads. Legacy "snacache v1" records are the same
// minus the CRC field and load without per-record verification.

constexpr const char* kCacheHeaderV2 = "snacache v2";
constexpr const char* kCacheHeaderV1 = "snacache v1";

constexpr const char* kKindLoadCurve = "loadcurve";
constexpr const char* kKindThevenin = "thevenin";
constexpr const char* kKindNrc = "nrc";
constexpr const char* kKindPropagation = "propagation";

std::string escapeKey(const std::string& key) {
    std::string out;
    out.reserve(key.size());
    for (const unsigned char c : key) {
        if (c <= ' ' || c == '%' || c == 0x7f) {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x", c);
            out += buf;
        } else {
            out += static_cast<char>(c);
        }
    }
    return out;
}

bool unescapeKey(const std::string& escaped, std::string& out) {
    out.clear();
    out.reserve(escaped.size());
    for (std::size_t i = 0; i < escaped.size(); ++i) {
        if (escaped[i] != '%') {
            out += escaped[i];
            continue;
        }
        if (i + 2 >= escaped.size()) return false;
        unsigned value = 0;
        if (std::sscanf(escaped.c_str() + i + 1, "%2x", &value) != 1)
            return false;
        out += static_cast<char>(value);
        i += 2;
    }
    return true;
}

std::uint32_t recordCrc(const std::string& key, const std::string& payload) {
    std::uint32_t crc = util::crc32Init();
    crc = util::crc32Update(crc, key.data(), key.size());
    crc = util::crc32Update(crc, payload.data(), payload.size());
    return util::crc32Final(crc);
}

// Advisory cross-process lock on `path + ".lock"`, acquired non-blocking
// with bounded retry + exponential backoff (~1 s worst case). Purely
// cooperative: it serializes well-behaved writers (and keeps a reader from
// racing a writer's rename on filesystems without atomic rename semantics),
// but holding it is never required for safety — the tmp + rename protocol
// already guarantees readers only ever see complete snapshots. So failure
// to acquire (lock held by a wedged process, or a filesystem without flock)
// degrades to proceeding unlocked, with one warning.
class CacheFileLock {
public:
    explicit CacheFileLock(const std::string& cachePath) {
        const std::string lockPath = cachePath + ".lock";
        fd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd_ < 0) return;  // unwritable directory: proceed unlocked
        int backoffMs = 1;
        for (int attempt = 0; attempt < 24; ++attempt) {
            if (::flock(fd_, LOCK_EX | LOCK_NB) == 0) {
                held_ = true;
                return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(backoffMs));
            backoffMs = std::min(backoffMs * 2, 128);
        }
        log::warn() << "cache lock " << lockPath
                    << " busy past the retry budget; proceeding unlocked "
                       "(atomic rename still protects readers)";
        ::close(fd_);
        fd_ = -1;
    }
    ~CacheFileLock() {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }
    CacheFileLock(const CacheFileLock&) = delete;
    CacheFileLock& operator=(const CacheFileLock&) = delete;
    bool held() const { return held_; }

private:
    int fd_ = -1;
    bool held_ = false;
};

}  // namespace

template <typename T, typename Fn>
std::shared_ptr<const T> CharCache::getOrCompute(Table<T>& table,
                                                 const std::string& key,
                                                 Fn compute) {
    std::shared_future<std::shared_ptr<const T>> fut;
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto it = table.entries.find(key);
        if (it != table.entries.end()) {
            // A disk-loaded entry's first-and-every hit is characterization
            // the warm start replaced; count it apart from in-memory hits.
            if (it->second.fromDisk)
                ++table.diskHits;
            else
                ++table.hits;
            fut = it->second.fut;
        } else if (table.entries.size() >= table.maxEntries) {
            // Table full: characterize without storing, so a shared cache
            // stays bounded under never-repeating keys.
            ++table.runs;
            ++table.overflow;
            lock.unlock();
            return std::make_shared<const T>(compute());
        } else {
            ++table.runs;
            std::promise<std::shared_ptr<const T>> prom;
            fut = prom.get_future().share();
            table.entries.emplace(key, Entry<T>{fut, false});
            lock.unlock();
            // Characterize outside the lock: other keys proceed in parallel,
            // same-key callers block on the future (single-flight).
            try {
                prom.set_value(std::make_shared<const T>(compute()));
            } catch (...) {
                prom.set_exception(std::current_exception());
                std::lock_guard<std::mutex> relock(mu_);
                table.entries.erase(key);  // allow a later retry
            }
        }
    }
    return fut.get();
}

template <typename T>
bool CharCache::insertFromDisk(Table<T>& table, const std::string& key,
                               std::shared_ptr<const T> value) {
    const std::lock_guard<std::mutex> lock(mu_);
    // A present key wins — ready entries are identical by key construction,
    // and an in-flight future must keep its single-flight waiters.
    if (table.entries.count(key) != 0) return false;
    if (table.entries.size() >= table.maxEntries) return false;
    std::promise<std::shared_ptr<const T>> prom;
    prom.set_value(std::move(value));
    table.entries.emplace(key, Entry<T>{prom.get_future().share(), true});
    return true;
}

std::shared_ptr<const la::Grid2d> CharCache::loadCurve(
    const LoadCurveSpec& spec) {
    return getOrCompute(loadCurves_, keyOf(spec),
                        [&] { return characterizeLoadCurve(spec); });
}

std::shared_ptr<const TheveninModel> CharCache::thevenin(
    const TheveninSpec& spec) {
    return getOrCompute(thevenins_, keyOf(spec),
                        [&] { return characterizeThevenin(spec); });
}

std::shared_ptr<const la::Grid1d> CharCache::nrc(const NrcSpec& spec) {
    return getOrCompute(nrcs_, keyOf(spec),
                        [&] { return characterizeNrc(spec); });
}

std::shared_ptr<const PropagationTable> CharCache::propagation(
    const PropagationSpec& spec) {
    return getOrCompute(propagations_, keyOf(spec),
                        [&] { return characterizePropagation(spec); });
}

bool CharCache::seedThevenin(const TheveninSpec& spec,
                             const TheveninModel& model) {
    // Seeded entries are marked fromDisk: like a warm start, their hits are
    // characterization work an external source (NLDM tables) replaced.
    return insertFromDisk(thevenins_, keyOf(spec),
                          std::make_shared<const TheveninModel>(model));
}

CharCache::Stats CharCache::stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.loadCurveRuns = loadCurves_.runs;
    s.loadCurveHits = loadCurves_.hits;
    s.theveninRuns = thevenins_.runs;
    s.theveninHits = thevenins_.hits;
    s.nrcRuns = nrcs_.runs;
    s.nrcHits = nrcs_.hits;
    s.propagationRuns = propagations_.runs;
    s.propagationHits = propagations_.hits;
    s.loadCurveDiskHits = loadCurves_.diskHits;
    s.theveninDiskHits = thevenins_.diskHits;
    s.nrcDiskHits = nrcs_.diskHits;
    s.propagationDiskHits = propagations_.diskHits;
    s.loadCurveOverflow = loadCurves_.overflow;
    s.theveninOverflow = thevenins_.overflow;
    s.nrcOverflow = nrcs_.overflow;
    s.propagationOverflow = propagations_.overflow;
    s.corruptRecords = corruptRecords_;
    return s;
}

CharCache::Limits CharCache::limits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Limits l;
    l.loadCurves = loadCurves_.maxEntries;
    l.thevenins = thevenins_.maxEntries;
    l.nrcs = nrcs_.maxEntries;
    l.propagations = propagations_.maxEntries;
    return l;
}

void CharCache::setLimits(const Limits& limits) {
    const std::lock_guard<std::mutex> lock(mu_);
    loadCurves_.maxEntries = limits.loadCurves;
    thevenins_.maxEntries = limits.thevenins;
    nrcs_.maxEntries = limits.nrcs;
    propagations_.maxEntries = limits.propagations;
}

CharCache::PersistResult CharCache::save(const std::string& path) const {
    PersistResult result;
    // Snapshot ready entries under the lock (futures are cheap to copy),
    // serialize outside it so in-flight characterizations are not stalled.
    struct Record {
        const char* kind;
        std::string key;
        std::string payload;
    };
    std::vector<Record> records;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto snapshot = [&](const auto& table, const char* kind,
                                  auto serialize) {
            for (const auto& [key, entry] : table.entries) {
                if (entry.fut.wait_for(std::chrono::seconds(0)) !=
                    std::future_status::ready) {
                    ++result.skipped;  // in-flight: the value isn't born yet
                    continue;
                }
                records.push_back({kind, key, serialize(*entry.fut.get())});
            }
        };
        snapshot(loadCurves_, kKindLoadCurve,
                 [](const la::Grid2d& v) { return saveLoadCurve(v); });
        snapshot(thevenins_, kKindThevenin,
                 [](const TheveninModel& v) { return saveThevenin(v); });
        snapshot(nrcs_, kKindNrc,
                 [](const la::Grid1d& v) { return saveNrc(v); });
        snapshot(propagations_, kKindPropagation,
                 [](const PropagationTable& v) { return savePropagation(v); });
    }

    // Render the whole snapshot up front: the torn-write fault below and
    // the single write() call both want the final byte stream in hand.
    std::string text;
    {
        std::ostringstream os;
        os << kCacheHeaderV2 << '\n';
        char crcHex[9];
        for (const Record& r : records) {
            std::snprintf(crcHex, sizeof(crcHex), "%08x",
                          recordCrc(r.key, r.payload));
            os << "entry " << r.kind << ' ' << r.payload.size() << ' '
               << crcHex << ' ' << escapeKey(r.key) << '\n'
               << r.payload << '\n';
        }
        os << "end " << records.size() << '\n';
        text = os.str();
    }

    // Fault sites (no-ops unless the injector is armed): an unopenable
    // target, and a writer that died mid-write leaving a torn file AT the
    // final path — the crash mode the per-record CRCs exist to absorb,
    // unreachable through the tmp + rename path below.
    if (util::FaultInjector::instance().shouldFail("charcache.save.open",
                                                   path)) {
        result.error = "injected fault: cannot open " + path + " for writing";
        return result;
    }
    if (util::FaultInjector::instance().shouldFail("charcache.save.torn",
                                                   path)) {
        std::ofstream torn(path, std::ios::binary | std::ios::trunc);
        torn.write(text.data(),
                   static_cast<std::streamsize>(text.size() / 2));
        result.error = "injected fault: torn write to " + path;
        return result;
    }

    // Serialize cooperating writers; safe to proceed unlocked on timeout.
    const CacheFileLock lock(path);

    // Write a temporary sibling and rename: a concurrent load() from
    // another process sees either the old complete file or the new one.
    // The tmp name is unique per writer (pid + process-wide counter): two
    // processes (or threads) saving to the same path each build their own
    // complete snapshot and the renames serialize, so last-writer-wins is
    // the only race — a fixed ".tmp" sibling would let one writer rename
    // another's half-written file into place.
    static std::atomic<unsigned long long> saveCounter{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                            "." + std::to_string(++saveCounter);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            result.error = "cannot open " + tmp + " for writing";
            return result;
        }
        out.write(text.data(), static_cast<std::streamsize>(text.size()));
        out.flush();
        if (!out) {
            result.error = "write failed for " + tmp;
            std::remove(tmp.c_str());
            return result;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        result.error = "rename to " + path + " failed";
        std::remove(tmp.c_str());
        return result;
    }
    result.entries = records.size();
    result.ok = true;
    return result;
}

CharCache::PersistResult CharCache::load(const std::string& path) {
    PersistResult result;
    std::string text;
    {
        // Hold the writers' lock while snapshotting the bytes so a reader
        // on a filesystem without atomic rename never sees a mid-publish
        // state; on timeout fall through (rename is atomic everywhere we
        // actually run).
        const CacheFileLock lock(path);
        if (util::FaultInjector::instance().shouldFail("charcache.load.open",
                                                       path)) {
            result.error = "injected fault: cannot open " + path;
            return result;
        }
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            result.error = "cannot open " + path;
            return result;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
    }

    std::size_t pos = 0;
    const auto nextLine = [&](std::string& line) {
        if (pos >= text.size()) return false;
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) return false;  // unterminated: truncated
        line.assign(text, pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    std::string line;
    bool hasCrc = true;
    if (!nextLine(line)) {
        result.error = "empty cache file";
        return result;
    }
    if (line == kCacheHeaderV2) {
        hasCrc = true;
    } else if (line == kCacheHeaderV1) {
        hasCrc = false;  // legacy read-only compat: no per-record CRCs
    } else {
        // Wrong or future version: load nothing — the format may have
        // changed incompatibly, and a silent partial read could alias keys.
        result.error = "bad cache header (want \"" +
                       std::string(kCacheHeaderV2) + "\")";
        return result;
    }

    std::size_t declared = 0;
    bool sawEnd = false;
    while (nextLine(line)) {
        if (line.rfind("end ", 0) == 0) {
            declared = std::strtoull(line.c_str() + 4, nullptr, 10);
            sawEnd = true;
            break;
        }
        char kind[32] = {0};
        unsigned long long payloadBytes = 0;
        unsigned crcStored = 0;
        int keyStart = -1;
        if (hasCrc) {
            if (std::sscanf(line.c_str(), "entry %31s %llu %8x %n", kind,
                            &payloadBytes, &crcStored, &keyStart) != 3 ||
                keyStart < 0) {
                result.error = "malformed record line";
                break;  // framing lost: keep the valid prefix
            }
        } else if (std::sscanf(line.c_str(), "entry %31s %llu %n", kind,
                               &payloadBytes, &keyStart) != 2 ||
                   keyStart < 0) {
            result.error = "malformed record line";
            break;
        }
        std::string key;
        if (!unescapeKey(line.substr(static_cast<std::size_t>(keyStart)),
                         key)) {
            result.error = "malformed key escape";
            break;
        }
        if (pos + payloadBytes + 1 > text.size()) {
            result.error = "truncated payload";  // keep the valid prefix
            break;
        }
        const std::string payload = text.substr(pos, payloadBytes);
        pos += payloadBytes;
        if (text[pos] != '\n') {
            result.error = "missing payload terminator";
            break;
        }
        ++pos;

        // Self-healing: a record whose digest disagrees with the bytes read
        // is individually rejected; its framing was intact, so every record
        // after it still loads.
        if (hasCrc && recordCrc(key, payload) != crcStored) {
            ++result.corrupt;
            continue;
        }

        // A payload model_io rejects (corrupt hex, bad snamodel header) is
        // skipped, not fatal: the rest of the file is still good.
        bool inserted = false;
        try {
            const std::string k(kind);
            if (k == kKindLoadCurve) {
                inserted = insertFromDisk(
                    loadCurves_, key,
                    std::make_shared<const la::Grid2d>(loadLoadCurve(payload)));
            } else if (k == kKindThevenin) {
                inserted = insertFromDisk(
                    thevenins_, key,
                    std::make_shared<const TheveninModel>(
                        loadThevenin(payload)));
            } else if (k == kKindNrc) {
                inserted = insertFromDisk(
                    nrcs_, key,
                    std::make_shared<const la::Grid1d>(loadNrc(payload)));
            } else if (k == kKindPropagation) {
                inserted = insertFromDisk(
                    propagations_, key,
                    std::make_shared<const PropagationTable>(
                        loadPropagation(payload)));
            }
        } catch (const std::exception&) {
            inserted = false;
        }
        if (inserted)
            ++result.entries;
        else
            ++result.skipped;
    }

    if (result.error.empty()) {
        if (!sawEnd) {
            result.error = "truncated file (no end record)";
        } else if (declared !=
                   result.entries + result.skipped + result.corrupt) {
            result.error = "record count mismatch";
        } else {
            result.ok = true;
        }
    }

    if (result.corrupt != 0) {
        const std::lock_guard<std::mutex> lock(mu_);
        corruptRecords_ += result.corrupt;
    }
    // One warning per file summarizing what the self-healing path dropped;
    // per-record chatter would drown real diagnostics on a large cache.
    if (result.corrupt != 0 || !result.ok) {
        auto warn = log::warn();
        warn << "cache " << path << ": ";
        if (!result.ok) warn << result.error << "; ";
        warn << "kept " << result.entries << " records";
        if (result.corrupt != 0)
            warn << ", dropped " << result.corrupt << " CRC-mismatched";
        if (result.skipped != 0)
            warn << ", skipped " << result.skipped
                 << " (unreadable or already present)";
    }
    return result;
}

void CharCache::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto reset = [](auto& table) {
        table.entries.clear();
        table.runs = 0;
        table.hits = 0;
        table.diskHits = 0;
        table.overflow = 0;
    };
    reset(loadCurves_);
    reset(thevenins_);
    reset(nrcs_);
    reset(propagations_);
    corruptRecords_ = 0;
}

}  // namespace sna::charlib

#include "charlib/char_cache.hpp"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "util/error.hpp"

namespace sna::charlib {

namespace {

// Bitwise double encoding: cache keys must distinguish every numerically
// distinct spec (a hit must reproduce the direct call exactly), so no
// rounding or formatting is involved.
void putDouble(std::ostringstream& os, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    os << '/' << std::hex << bits << std::dec;
}

// Cells from different technologies share names (every library has an
// INV_X1), so keys lead with the technology's full electrical identity —
// name alone is not enough (corner sweeps perturb transistor models while
// keeping the name): a shared cache must not hand tech-A models to a
// tech-B run.
void putMosModel(std::ostringstream& os, const spice::MosModel& m) {
    putDouble(os, m.vt0);
    putDouble(os, m.kp);
    putDouble(os, m.lambda);
    putDouble(os, m.gamma);
    putDouble(os, m.phi);
    putDouble(os, m.cox);
    putDouble(os, m.cgso);
    putDouble(os, m.cgdo);
    putDouble(os, m.cj);
    putDouble(os, m.cjsw);
    putDouble(os, m.ldiff);
}

void putTech(std::ostringstream& os, const cell::Cell& c) {
    const tech::Technology& t = c.technology();
    os << t.name;
    putDouble(os, t.vdd);
    putDouble(os, t.lmin);
    putDouble(os, t.wnUnit);
    putDouble(os, t.wpUnit);
    putMosModel(os, t.nmos);
    putMosModel(os, t.pmos);
    os << '/';
}

std::string keyOf(const LoadCurveSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "load-curve spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel << '/'
       << s.nVin << '/' << s.nVout;
    putDouble(os, s.vMin);
    putDouble(os, s.vMax);
    return os.str();
}

std::string keyOf(const TheveninSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "thevenin spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputRising;
    putDouble(os, s.loadCap);
    putDouble(os, s.inputSlew);
    return os.str();
}

std::string keyOf(const PropagationSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "propagation spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.outputLevel;
    putDouble(os, s.loadCap);
    for (const double h : s.heights) putDouble(os, h);
    os << '/';
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

std::string keyOf(const NrcSpec& s) {
    SNA_REQUIRE(s.cell != nullptr, "NRC spec needs a cell");
    std::ostringstream os;
    putTech(os, *s.cell);
    os << s.cell->name() << '/' << s.input << '/' << s.quietLevel;
    putDouble(os, s.loadCap);
    putDouble(os, s.failFraction);
    for (const double w : s.widths) putDouble(os, w);
    return os.str();
}

}  // namespace

template <typename T, typename Fn>
std::shared_ptr<const T> CharCache::getOrCompute(Table<T>& table,
                                                 const std::string& key,
                                                 Fn compute) {
    std::shared_future<std::shared_ptr<const T>> fut;
    {
        std::unique_lock<std::mutex> lock(mu_);
        const auto it = table.entries.find(key);
        if (it != table.entries.end()) {
            ++table.hits;
            fut = it->second;
        } else if (table.entries.size() >= table.maxEntries) {
            // Table full: characterize without storing, so a shared cache
            // stays bounded under never-repeating keys.
            ++table.runs;
            lock.unlock();
            return std::make_shared<const T>(compute());
        } else {
            ++table.runs;
            std::promise<std::shared_ptr<const T>> prom;
            fut = prom.get_future().share();
            table.entries.emplace(key, fut);
            lock.unlock();
            // Characterize outside the lock: other keys proceed in parallel,
            // same-key callers block on the future (single-flight).
            try {
                prom.set_value(std::make_shared<const T>(compute()));
            } catch (...) {
                prom.set_exception(std::current_exception());
                std::lock_guard<std::mutex> relock(mu_);
                table.entries.erase(key);  // allow a later retry
            }
        }
    }
    return fut.get();
}

std::shared_ptr<const la::Grid2d> CharCache::loadCurve(
    const LoadCurveSpec& spec) {
    return getOrCompute(loadCurves_, keyOf(spec),
                        [&] { return characterizeLoadCurve(spec); });
}

std::shared_ptr<const TheveninModel> CharCache::thevenin(
    const TheveninSpec& spec) {
    return getOrCompute(thevenins_, keyOf(spec),
                        [&] { return characterizeThevenin(spec); });
}

std::shared_ptr<const la::Grid1d> CharCache::nrc(const NrcSpec& spec) {
    return getOrCompute(nrcs_, keyOf(spec),
                        [&] { return characterizeNrc(spec); });
}

std::shared_ptr<const PropagationTable> CharCache::propagation(
    const PropagationSpec& spec) {
    return getOrCompute(propagations_, keyOf(spec),
                        [&] { return characterizePropagation(spec); });
}

CharCache::Stats CharCache::stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.loadCurveRuns = loadCurves_.runs;
    s.loadCurveHits = loadCurves_.hits;
    s.theveninRuns = thevenins_.runs;
    s.theveninHits = thevenins_.hits;
    s.nrcRuns = nrcs_.runs;
    s.nrcHits = nrcs_.hits;
    s.propagationRuns = propagations_.runs;
    s.propagationHits = propagations_.hits;
    return s;
}

void CharCache::clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto reset = [](auto& table) {
        table.entries.clear();
        table.runs = 0;
        table.hits = 0;
    };
    reset(loadCurves_);
    reset(thevenins_);
    reset(nrcs_);
    reset(propagations_);
}

}  // namespace sna::charlib

// Cell characterization: the paper's pre-characterization step.
//
// Produces every model the noise flow consumes:
//  * load-curve tables I_DC = f(V_in, V_out) — Eq. (1) of the paper, the
//    heart of the victim-driver macromodel (DC sweeps over the noise swing);
//  * holding resistance — the victim linearization used by the classical
//    superposition baseline;
//  * Thevenin equivalents (saturated ramp V_TH + resistance R_TH) for
//    aggressor drivers, fitted Dartu–Pileggi style from output crossing
//    times;
//  * noise-propagation tables (input glitch height x width -> output glitch
//    peak/area) for the table-based propagated-noise baseline;
//  * noise rejection curves (NRC) for receiver failure checks;
//  * measured input capacitance (charge method) for receiver loading.
#pragma once

#include <string>
#include <vector>

#include "celllib/cell.hpp"
#include "la/interp.hpp"
#include "waveform/waveform.hpp"

namespace sna::charlib {

// ------------------------------------------------------------- load curve

struct LoadCurveSpec {
    const cell::Cell* cell = nullptr;
    std::string input;          ///< sensitive input pin (glitch arrival pin)
    bool outputLevel = false;   ///< held output level (false = low)
    int nVin = 33;
    int nVout = 33;
    /// Sweep range; NaN -> [-0.2 vdd, 1.2 vdd] (the "typical voltage swing
    /// of the given technology" plus overshoot margin).
    double vMin = kAuto;
    double vMax = kAuto;
    static constexpr double kAuto = -1e9;
};

/// DC-sweep the cell and tabulate the current it SINKS at its output pin,
/// as a function of (v_input, v_output). Axis 1 = v_in, axis 2 = v_out.
la::Grid2d characterizeLoadCurve(const LoadCurveSpec& spec);

/// Small-signal holding resistance at the quiet point: 1 / (dI/dVout).
double holdingResistance(const la::Grid2d& loadCurve, double vinHold,
                         double voutHold);

// --------------------------------------------------------------- thevenin

/// Saturated-ramp Thevenin equivalent of a switching driver.
struct TheveninModel {
    double vStart = 0.0;  ///< output rail before the transition
    double vEnd = 0.0;    ///< output rail after
    double slew = 0.0;    ///< ramp duration, s
    double rth = 0.0;     ///< driving resistance, ohm
    double delay = 0.0;   ///< driver insertion delay: input start -> ramp
                          ///< launch, s

    /// The V_TH waveform starting its ramp at t0 (add `delay` to the input
    /// switching time for absolute alignment).
    wave::Waveform ramp(double t0, double tEnd) const;
};

struct TheveninSpec {
    const cell::Cell* cell = nullptr;
    std::string input;           ///< switching input pin
    bool outputRising = true;    ///< direction of the OUTPUT transition
    double loadCap = 20e-15;     ///< characterization load, F
    double inputSlew = 30e-12;   ///< input ramp, s
};

/// Fit (slew, rth) so the model's 20%/80% output crossing times match the
/// transistor-level simulation into the same load (Dartu–Pileggi).
TheveninModel characterizeThevenin(const TheveninSpec& spec);

// ------------------------------------------------------------ propagation

/// Pre-characterized noise-propagation tables: the classical way to get the
/// noise transferred through the victim driver ("usually obtained from
/// pre-characterized tables as a function of the input noise glitch area
/// (or width) and height" — paper, Sec. 1).
struct PropagationTable {
    la::Grid2d peak;   ///< (height, width) -> output glitch peak, V (signed)
    la::Grid2d area;   ///< (height, width) -> output glitch area, V*s (signed)
    double outputBaseline = 0.0;  ///< quiet output level, V
};

struct PropagationSpec {
    const cell::Cell* cell = nullptr;
    std::string input;
    bool outputLevel = false;  ///< held output level
    double loadCap = 30e-15;   ///< total victim net + receiver load, F
    std::vector<double> heights;  ///< glitch heights, V (toward other rail)
    std::vector<double> widths;   ///< glitch widths, s
};

PropagationTable characterizePropagation(const PropagationSpec& spec);

/// The canonical propagation grid the design flow characterizes on (shared
/// by the macromodel's lazy table and the wavefront's cached tables, so one
/// cache entry serves both when the load matches).
std::vector<double> canonicalPropagationHeights(double vdd);
std::vector<double> canonicalPropagationWidths();

// -------------------------------------------------------------------- nrc

struct NrcSpec {
    const cell::Cell* cell = nullptr;  ///< receiver cell
    std::string input;
    bool quietLevel = false;   ///< quiet input level (glitch goes other way)
    double loadCap = 10e-15;   ///< receiver output load, F
    std::vector<double> widths;  ///< glitch widths to probe, s
    double failFraction = 0.5;   ///< output crossing fraction that fails
};

/// Noise Rejection Curve: for each width, the minimal glitch height that
/// propagates a failure through the receiver (bisected). Heights above the
/// curve are failures. Monotonically non-increasing in width.
la::Grid1d characterizeNrc(const NrcSpec& spec);

// -------------------------------------------------------------- input cap

/// Charge-method measurement: slow ramp into the pin through a resistor,
/// C = integral(i dt) / vdd. Cross-validates Cell::inputCapacitance.
double measureInputCapacitance(const cell::Cell& c, const std::string& pin);

}  // namespace sna::charlib

#include "charlib/characterize.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace sna::charlib {

std::vector<double> canonicalPropagationHeights(double vdd) {
    return {0.1 * vdd, 0.25 * vdd, 0.4 * vdd, 0.55 * vdd,
            0.7 * vdd, 0.85 * vdd, 1.0 * vdd};
}

std::vector<double> canonicalPropagationWidths() {
    return {60e-12, 120e-12, 240e-12, 480e-12, 960e-12};
}

PropagationTable characterizePropagation(const PropagationSpec& spec) {
    SNA_REQUIRE(spec.cell != nullptr, "propagation spec needs a cell");
    SNA_REQUIRE(spec.heights.size() >= 2 && spec.widths.size() >= 2,
                "propagation table needs >= 2x2 grid");
    const cell::Cell& cellRef = *spec.cell;
    const double vdd = cellRef.technology().vdd;
    const auto holding = cellRef.holdingVector(spec.outputLevel, spec.input);
    const double inBaseline = holding.at(spec.input) ? vdd : 0.0;
    const double outBaseline = spec.outputLevel ? vdd : 0.0;
    // Glitch direction: toward the opposite input rail.
    const double dir = (inBaseline < 0.5 * vdd) ? +1.0 : -1.0;

    std::vector<double> zPeak, zArea;
    zPeak.reserve(spec.heights.size() * spec.widths.size());
    zArea.reserve(zPeak.capacity());
    for (const double h : spec.heights) {
        for (const double w : spec.widths) {
            spice::Circuit ckt;
            const auto vddNode = ckt.node("vdd");
            ckt.addVSource("vsupply", vddNode, spice::kGround,
                           spice::SourceSpec::dc(vdd));
            const double t0 = 50e-12;
            const double tStop = t0 + w + std::max(2e-9, 6 * w);
            std::map<std::string, spice::NodeId> pins;
            for (const auto& in : cellRef.inputNames()) {
                const auto n = ckt.node(in);
                pins[in] = n;
                const double level = holding.at(in) ? vdd : 0.0;
                if (in == spec.input) {
                    ckt.addVSource(
                        "v_" + in, n, spice::kGround,
                        spice::SourceSpec::pwl(wave::triangleGlitch(
                            level, dir * h, t0, w, tStop)));
                } else {
                    ckt.addVSource("v_" + in, n, spice::kGround,
                                   spice::SourceSpec::dc(level));
                }
            }
            const auto outNode = ckt.node("out");
            pins[cellRef.outputName()] = outNode;
            ckt.addCapacitor("cload", outNode, spice::kGround, spec.loadCap);
            cellRef.instantiate(ckt, "dut", pins, vddNode);

            spice::TranOptions opt;
            opt.tstop = tStop;
            const auto res = spice::simulateTransient(ckt, opt);
            const auto m =
                wave::measureGlitch(res.waveform("out"), outBaseline);
            zPeak.push_back(m.peak);
            zArea.push_back(m.area);
        }
    }
    PropagationTable table;
    table.peak = la::Grid2d(spec.heights, spec.widths, std::move(zPeak));
    table.area = la::Grid2d(spec.heights, spec.widths, std::move(zArea));
    table.outputBaseline = outBaseline;
    return table;
}

}  // namespace sna::charlib

#include "charlib/nldm_source.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace sna::charlib {

namespace {

/// The CellLibrary cell whose name matches `libCellName` ignoring case, or
/// empty when none does (.lib names are lower-cased at parse, the bundled
/// library spells them INV_X1-style).
std::string canonicalName(const cell::CellLibrary& cells,
                          const std::string& libCellName) {
    for (const auto& name : cells.names()) {
        if (str::iequals(name, libCellName)) return name;
    }
    return {};
}

}  // namespace

NldmSource::NldmSource(const parser::LibertyLibrary& lib,
                       const cell::CellLibrary& cells)
    : lib_(&lib), cells_(&cells) {
    // cells map iteration is name-sorted, so issues_ and bound_ come out in
    // deterministic order.
    for (const auto& [libName, libCell] : lib.cells) {
        const std::string canonical = canonicalName(cells, libName);
        if (canonical.empty()) {
            issues_.push_back({Issue::Kind::unboundCell, libName, "",
                               "no library cell matches"});
            continue;
        }
        const cell::Cell& c = cells.cell(canonical);
        bool ok = true;
        // Every library pin must exist in the .lib cell with the same role.
        for (const auto& pin : c.pins()) {
            const auto it = libCell.pins.find(str::toLower(pin.name));
            if (it == libCell.pins.end()) {
                issues_.push_back({Issue::Kind::pinMismatch, libName,
                                   str::toLower(pin.name),
                                   "pin missing from the .lib cell"});
                ok = false;
                continue;
            }
            const bool libIsOutput =
                it->second.dir == parser::LibertyPinDir::output;
            if (libIsOutput != (pin.dir == cell::PinDir::Output)) {
                issues_.push_back({Issue::Kind::pinMismatch, libName,
                                   it->second.name,
                                   "pin direction disagrees"});
                ok = false;
            }
        }
        if (!ok) continue;
        // Every input pin needs a complete four-table arc to the output.
        for (const auto& input : c.inputNames()) {
            const parser::LibertyTimingArc* arc = libCell.arcFrom(input);
            if (arc == nullptr) {
                issues_.push_back({Issue::Kind::missingTable, libName, input,
                                   "no timing arc from this input"});
                ok = false;
            } else if (!arc->complete()) {
                issues_.push_back(
                    {Issue::Kind::missingTable, libName, input,
                     "arc lacks one of cell_rise/cell_fall/"
                     "rise_transition/fall_transition"});
                ok = false;
            }
        }
        if (ok) bound_.push_back(canonical);
    }
    std::sort(bound_.begin(), bound_.end());
}

std::optional<TheveninModel> NldmSource::theveninFor(
    const std::string& cellName, const std::string& pin, bool outputRising,
    double loadCap, double inputSlew) const {
    const std::string low = str::toLower(cellName);
    const std::string canonical = canonicalName(*cells_, low);
    if (canonical.empty() ||
        std::find(bound_.begin(), bound_.end(), canonical) == bound_.end()) {
        return std::nullopt;
    }
    const parser::LibertyCell* libCell = lib_->findCell(low);
    if (libCell == nullptr) return std::nullopt;
    const parser::LibertyTimingArc* arc = libCell->arcFrom(pin);
    if (arc == nullptr || !arc->complete()) return std::nullopt;

    const la::Grid2d& delayTable =
        outputRising ? arc->cellRise : arc->cellFall;
    const la::Grid2d& slewTable =
        outputRising ? arc->riseTransition : arc->fallTransition;
    const double nldmDelay = delayTable(inputSlew, loadCap);
    const double transition = slewTable(inputSlew, loadCap);
    if (!(transition > 0.0) || loadCap <= 0.0) return std::nullopt;

    const double vdd = cells_->technology().vdd;
    TheveninModel m;
    m.vStart = outputRising ? 0.0 : vdd;
    m.vEnd = outputRising ? vdd : 0.0;
    // The saturated ramp lasts the table's transition time, and its
    // midpoint must land on the NLDM 50%->50% delay measured from the
    // input's 50% crossing; TheveninModel::delay is measured from the
    // input's ramp start, hence the inputSlew/2 shift.
    m.slew = transition;
    m.delay = std::max(0.0, nldmDelay + inputSlew / 2.0 - transition / 2.0);
    // The driving resistance whose RC into this load reproduces the
    // transition time (20%-80% of an RC step takes RC*ln(4)) — the same
    // crossing-matching idea characterizeThevenin fits, in closed form.
    m.rth = transition / (std::log(4.0) * loadCap);
    return m;
}

std::size_t NldmSource::seedThevenins(CharCache& cache, double loadCap,
                                      double inputSlew) const {
    std::size_t seeded = 0;
    for (const auto& name : bound_) {
        const cell::Cell& c = cells_->cell(name);
        for (const auto& input : c.inputNames()) {
            for (const bool rising : {false, true}) {
                const auto model =
                    theveninFor(name, input, rising, loadCap, inputSlew);
                if (!model) continue;
                TheveninSpec spec;
                spec.cell = &c;
                spec.input = input;
                spec.outputRising = rising;
                spec.loadCap = loadCap;
                spec.inputSlew = inputSlew;
                if (cache.seedThevenin(spec, *model)) ++seeded;
            }
        }
    }
    return seeded;
}

}  // namespace sna::charlib

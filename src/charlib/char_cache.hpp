// Shared characterization cache: run each pre-characterization once per run
// — and, with the on-disk persistence below, once per technology ever.
//
// The paper's speed-up comes from amortizing cell characterization across
// clusters; a design-level sweep re-deriving the same NAND2 load curve for
// every victim net throws that away. CharCache memoizes the four
// characterizations the cluster flow consumes — load-curve tables (DC
// sweeps), aggressor Thevenin equivalents, receiver NRCs, and propagation
// tables — keyed on the exact spec (technology's full electrical identity,
// cell name, pin, level, grid, bitwise numeric parameters), so a hit
// returns the identical model the direct call would have produced.
//
// Thread-safe with single-flight semantics: when two workers request the
// same uncharacterized key, one runs the sweep and the other blocks on the
// shared future, so each (cell, level, grid) is characterized exactly once
// per run no matter how many clusters need it.
//
// Persistence ("snacache v2"): save() serializes every ready entry through
// the charlib/model_io round-trip formats, each record carrying its payload
// length and a CRC32 over key + payload; load() warm-starts a cache from
// disk, inserting only keys not already present (single-flight-safe even
// while workers are characterizing). Keys embed the technology identity and
// every grid parameter, so a stale or foreign file degrades to plain cache
// misses — never to wrong models. The cache is self-healing: a record whose
// CRC does not match (bit rot, torn write) is skipped and counted, a
// truncated file keeps its CRC-valid prefix, and legacy v1 files (no CRCs)
// still load. Cross-process coordination is an advisory flock on a ".lock"
// sibling (non-blocking, bounded retry with backoff); writers that cannot
// get it still publish safely via the atomic tmp + rename protocol.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "charlib/characterize.hpp"

namespace sna::charlib {

class CharCache {
public:
    CharCache() = default;
    CharCache(const CharCache&) = delete;
    CharCache& operator=(const CharCache&) = delete;

    /// Load-curve table for the spec; characterizes on first use.
    std::shared_ptr<const la::Grid2d> loadCurve(const LoadCurveSpec& spec);

    /// Thevenin equivalent for the spec; characterizes on first use.
    std::shared_ptr<const TheveninModel> thevenin(const TheveninSpec& spec);

    /// Noise rejection curve for the spec; characterizes on first use.
    std::shared_ptr<const la::Grid1d> nrc(const NrcSpec& spec);

    /// Noise-propagation table for the spec; characterizes on first use.
    /// The wavefront pipeline keys these on a canonical load per cell, so
    /// each (cell, input, level) is characterized exactly once per run.
    std::shared_ptr<const PropagationTable> propagation(
        const PropagationSpec& spec);

    /// Pre-populate the Thevenin table with an externally derived model
    /// (e.g. NLDM .lib delay/slew tables) under the exact key thevenin()
    /// would use for `spec`, so later queries hit instead of running a
    /// SPICE sweep. Returns false — and leaves the cache untouched — when
    /// the key is already present or the table is full. Seeded hits are
    /// counted as disk hits in stats().
    bool seedThevenin(const TheveninSpec& spec, const TheveninModel& model);

    struct Stats {
        std::size_t loadCurveRuns = 0;  ///< actual DC-sweep characterizations
        std::size_t loadCurveHits = 0;  ///< hits on entries computed this run
        std::size_t theveninRuns = 0;
        std::size_t theveninHits = 0;
        std::size_t nrcRuns = 0;
        std::size_t nrcHits = 0;
        std::size_t propagationRuns = 0;
        std::size_t propagationHits = 0;
        /// Hits served by entries that came from a load()ed cache file —
        /// characterization work the warm start replaced, counted apart from
        /// the in-memory hits above.
        std::size_t loadCurveDiskHits = 0;
        std::size_t theveninDiskHits = 0;
        std::size_t nrcDiskHits = 0;
        std::size_t propagationDiskHits = 0;
        /// Misses that hit a full table and characterized without storing
        /// (the bounded compute-without-store path): what a persistent cache
        /// sized at the current limits could not retain.
        std::size_t loadCurveOverflow = 0;
        std::size_t theveninOverflow = 0;
        std::size_t nrcOverflow = 0;
        std::size_t propagationOverflow = 0;
        /// Records load() rejected because their stored CRC32 did not match
        /// the bytes read (bit rot, torn write). Cumulative across load()
        /// calls; each load also reports its own count in PersistResult.
        std::size_t corruptRecords = 0;

        std::size_t totalRuns() const {
            return loadCurveRuns + theveninRuns + nrcRuns + propagationRuns;
        }
        std::size_t totalDiskHits() const {
            return loadCurveDiskHits + theveninDiskHits + nrcDiskHits +
                   propagationDiskHits;
        }
        std::size_t totalOverflow() const {
            return loadCurveOverflow + theveninOverflow + nrcOverflow +
                   propagationOverflow;
        }
    };
    Stats stats() const;

    /// Per-table insertion bounds. Insertion stops at the bound; further
    /// misses characterize without storing (counted in the overflow stats),
    /// so a long-lived shared cache stays bounded on workloads whose keys
    /// never repeat. Thevenin and propagation keys embed the bitwise
    /// cluster load cap — unique per cluster on real extracted parasitics —
    /// hence their tighter defaults.
    struct Limits {
        std::size_t loadCurves = 65536;
        std::size_t thevenins = 4096;
        std::size_t nrcs = 65536;
        std::size_t propagations = 4096;
    };
    Limits limits() const;
    void setLimits(const Limits& limits);

    /// Outcome of one save() or load() call. Neither throws on I/O or
    /// format problems: a broken cache file must degrade to recomputation,
    /// not kill a signoff run.
    struct PersistResult {
        std::size_t entries = 0;  ///< entries written / newly inserted
        std::size_t skipped = 0;  ///< unreadable, unknown, or already-present
        std::size_t corrupt = 0;  ///< CRC-mismatched records (load only)
        bool ok = false;          ///< header valid and file complete
        std::string error;        ///< first problem hit ("" when ok)
    };

    /// Serialize every ready entry (all four tables) to `path` in the
    /// versioned "snacache v2" text format (per-record CRC32 over key +
    /// payload). In-flight entries are skipped. Writes to a uniquely named
    /// temporary sibling (pid + counter) and renames, so a concurrent
    /// load() from another process never observes a half-written file and
    /// concurrent save()s to the same path never share a tmp file: each
    /// rename publishes one complete snapshot, and last-writer-wins is the
    /// only race. An advisory flock on `path + ".lock"` additionally
    /// serializes cooperating writers; failing to get it within the bounded
    /// retry budget degrades to the (still safe) unlocked protocol. The
    /// format itself is locale-independent (hex floats via std::to_chars),
    /// so a cache written under any LC_NUMERIC loads anywhere.
    PersistResult save(const std::string& path) const;

    /// Warm-start from a file written by save(): inserts every readable
    /// entry whose key is not already present (present keys — ready or
    /// in-flight — are skipped, preserving single-flight semantics under
    /// concurrent characterization). A version-string mismatch loads
    /// nothing; a truncated file keeps its valid prefix; an entry whose
    /// CRC32 does not match the bytes read, or whose payload model_io
    /// rejects, is skipped and loading continues (self-healing — counted in
    /// PersistResult::corrupt / Stats::corruptRecords and summarized in one
    /// util/log warning per file). Legacy "snacache v1" files (no CRCs)
    /// still load read-only. Keys from another technology or grid simply
    /// never hit.
    PersistResult load(const std::string& path);

    void clear();

private:
    template <typename T>
    struct Entry {
        std::shared_future<std::shared_ptr<const T>> fut;
        bool fromDisk = false;
    };

    template <typename T>
    struct Table {
        std::map<std::string, Entry<T>> entries;
        std::size_t runs = 0;
        std::size_t hits = 0;
        std::size_t diskHits = 0;
        std::size_t overflow = 0;
        std::size_t maxEntries = 65536;
    };

    template <typename T, typename Fn>
    std::shared_ptr<const T> getOrCompute(Table<T>& table,
                                          const std::string& key, Fn compute);

    /// Inserts a disk-loaded value if the key is absent; returns false
    /// (skip) when present or the table is full.
    template <typename T>
    bool insertFromDisk(Table<T>& table, const std::string& key,
                        std::shared_ptr<const T> value);

    mutable std::mutex mu_;
    std::size_t corruptRecords_ = 0;  ///< cumulative CRC rejects (see Stats)
    Table<la::Grid2d> loadCurves_;
    Table<TheveninModel> thevenins_{{}, 0, 0, 0, 0, 4096};
    Table<la::Grid1d> nrcs_;
    /// Bounded like thevenins_: ClusterMacromodel keys embed the bitwise
    /// cluster load cap, which never repeats on real extracted parasitics.
    Table<PropagationTable> propagations_{{}, 0, 0, 0, 0, 4096};
};

}  // namespace sna::charlib

// Shared characterization cache: run each pre-characterization once per run.
//
// The paper's speed-up comes from amortizing cell characterization across
// clusters; a design-level sweep re-deriving the same NAND2 load curve for
// every victim net throws that away. CharCache memoizes the three
// characterizations the cluster flow consumes — load-curve tables (DC
// sweeps), aggressor Thevenin equivalents, and receiver NRCs — keyed on the
// exact spec (cell name, pin, level, grid, bitwise numeric parameters), so a
// hit returns the identical model the direct call would have produced.
//
// Thread-safe with single-flight semantics: when two workers request the
// same uncharacterized key, one runs the sweep and the other blocks on the
// shared future, so each (cell, level, grid) is characterized exactly once
// per run no matter how many clusters need it.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "charlib/characterize.hpp"

namespace sna::charlib {

class CharCache {
public:
    CharCache() = default;
    CharCache(const CharCache&) = delete;
    CharCache& operator=(const CharCache&) = delete;

    /// Load-curve table for the spec; characterizes on first use.
    std::shared_ptr<const la::Grid2d> loadCurve(const LoadCurveSpec& spec);

    /// Thevenin equivalent for the spec; characterizes on first use.
    std::shared_ptr<const TheveninModel> thevenin(const TheveninSpec& spec);

    /// Noise rejection curve for the spec; characterizes on first use.
    std::shared_ptr<const la::Grid1d> nrc(const NrcSpec& spec);

    /// Noise-propagation table for the spec; characterizes on first use.
    /// The wavefront pipeline keys these on a canonical load per cell, so
    /// each (cell, input, level) is characterized exactly once per run.
    std::shared_ptr<const PropagationTable> propagation(
        const PropagationSpec& spec);

    struct Stats {
        std::size_t loadCurveRuns = 0;  ///< actual DC-sweep characterizations
        std::size_t loadCurveHits = 0;
        std::size_t theveninRuns = 0;
        std::size_t theveninHits = 0;
        std::size_t nrcRuns = 0;
        std::size_t nrcHits = 0;
        std::size_t propagationRuns = 0;
        std::size_t propagationHits = 0;
    };
    Stats stats() const;

    void clear();

private:
    template <typename T>
    struct Table {
        std::map<std::string, std::shared_future<std::shared_ptr<const T>>>
            entries;
        std::size_t runs = 0;
        std::size_t hits = 0;
        /// Insertion stops at this size; further misses characterize without
        /// storing. Bounds long-lived shared caches on workloads whose keys
        /// never repeat (Thevenin keys embed the bitwise cluster load cap,
        /// which is unique per cluster on real extracted parasitics).
        std::size_t maxEntries = 65536;
    };

    template <typename T, typename Fn>
    std::shared_ptr<const T> getOrCompute(Table<T>& table,
                                          const std::string& key, Fn compute);

    mutable std::mutex mu_;
    Table<la::Grid2d> loadCurves_;
    Table<TheveninModel> thevenins_{{}, 0, 0, 4096};
    Table<la::Grid1d> nrcs_;
    /// Bounded like thevenins_: ClusterMacromodel keys embed the bitwise
    /// cluster load cap, which never repeats on real extracted parasitics.
    Table<PropagationTable> propagations_{{}, 0, 0, 4096};
};

}  // namespace sna::charlib

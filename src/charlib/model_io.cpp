#include "charlib/model_io.hpp"

#include <locale>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sna::charlib {

namespace {

// Hex floats round-trip exactly through text. str::formatDoubleHex /
// str::parseDoubleToken are locale-independent, unlike the printf("%a") /
// strtod pair used previously: those honor LC_NUMERIC, so a cache written
// under a comma-decimal locale was unreadable (or silently recomputed)
// under "C". parseDoubleToken still accepts the old "%a" spellings.
std::string hexDouble(double v) { return str::formatDoubleHex(v); }

double parseDouble(std::string_view token, int line) {
    const auto v = str::parseDoubleToken(token);
    if (!v) {
        throw ParseError("malformed number '" + std::string(token) + "'",
                         line);
    }
    return *v;
}

void emitVector(std::ostringstream& os, const char* key,
                const std::vector<double>& values) {
    os << key;
    for (const double v : values) os << ' ' << hexDouble(v);
    os << '\n';
}

// Line-oriented reader for "key value..." records with '#' comments.
class RecordReader {
public:
    explicit RecordReader(const std::string& text) : is_(text) {}

    /// Next non-comment line split into tokens; empty at EOF.
    std::vector<std::string> next() {
        std::string raw;
        while (std::getline(is_, raw)) {
            ++line_;
            const auto t = str::trim(raw);
            if (t.empty() || t.front() == '#') continue;
            std::vector<std::string> out;
            for (const auto& tok : str::split(t)) out.emplace_back(tok);
            return out;
        }
        return {};
    }

    int line() const { return line_; }

    std::vector<double> numbers(const std::vector<std::string>& tokens,
                                std::size_t from) {
        std::vector<double> out;
        for (std::size_t i = from; i < tokens.size(); ++i) {
            out.push_back(parseDouble(tokens[i], line_));
        }
        return out;
    }

private:
    std::istringstream is_;
    int line_ = 0;
};

void expectHeader(RecordReader& r, const std::string& kind) {
    const auto head = r.next();
    if (head.size() < 3 || head[0] != "snamodel" || head[1] != "v1" ||
        head[2] != kind) {
        throw ParseError("expected 'snamodel v1 " + kind + "' header",
                         r.line());
    }
}

std::string header(const std::string& kind, const std::string& comment) {
    std::string out = "snamodel v1 " + kind + "\n";
    if (!comment.empty()) out += "# " + comment + "\n";
    return out;
}

la::Grid2d readGrid2d(RecordReader& r) {
    std::vector<double> xs, ys, zs;
    for (const char* key : {"xaxis", "yaxis", "values"}) {
        const auto tokens = r.next();
        if (tokens.empty() || tokens[0] != key) {
            throw ParseError(std::string("expected '") + key + "' record",
                             r.line());
        }
        auto nums = r.numbers(tokens, 1);
        if (key[0] == 'x') {
            xs = std::move(nums);
        } else if (key[0] == 'y') {
            ys = std::move(nums);
        } else {
            zs = std::move(nums);
        }
    }
    try {
        return la::Grid2d(std::move(xs), std::move(ys), std::move(zs));
    } catch (const Error& e) {
        throw ParseError(std::string("inconsistent grid: ") + e.what(),
                         r.line());
    }
}

void writeGrid2d(std::ostringstream& os, const la::Grid2d& g) {
    emitVector(os, "xaxis", g.xs());
    emitVector(os, "yaxis", g.ys());
    std::vector<double> z;
    z.reserve(g.xs().size() * g.ys().size());
    for (std::size_t i = 0; i < g.xs().size(); ++i) {
        for (std::size_t j = 0; j < g.ys().size(); ++j) {
            z.push_back(g.at(i, j));
        }
    }
    emitVector(os, "values", z);
}

}  // namespace

// ------------------------------------------------------------- load curve

std::string saveLoadCurve(const la::Grid2d& table, const std::string& comment) {
    SNA_REQUIRE(!table.empty(), "cannot save an empty load curve");
    std::ostringstream os;
    os << header("loadcurve", comment);
    writeGrid2d(os, table);
    return os.str();
}

la::Grid2d loadLoadCurve(const std::string& text) {
    RecordReader r(text);
    expectHeader(r, "loadcurve");
    return readGrid2d(r);
}

// --------------------------------------------------------------- thevenin

std::string saveThevenin(const TheveninModel& model,
                         const std::string& comment) {
    std::ostringstream os;
    os << header("thevenin", comment);
    os << "vstart " << hexDouble(model.vStart) << '\n';
    os << "vend " << hexDouble(model.vEnd) << '\n';
    os << "slew " << hexDouble(model.slew) << '\n';
    os << "rth " << hexDouble(model.rth) << '\n';
    os << "delay " << hexDouble(model.delay) << '\n';
    return os.str();
}

TheveninModel loadThevenin(const std::string& text) {
    RecordReader r(text);
    expectHeader(r, "thevenin");
    TheveninModel m;
    bool sawRth = false;
    for (auto tokens = r.next(); !tokens.empty(); tokens = r.next()) {
        if (tokens.size() != 2) {
            throw ParseError("expected 'key value'", r.line());
        }
        const double v = parseDouble(tokens[1], r.line());
        if (tokens[0] == "vstart") {
            m.vStart = v;
        } else if (tokens[0] == "vend") {
            m.vEnd = v;
        } else if (tokens[0] == "slew") {
            m.slew = v;
        } else if (tokens[0] == "rth") {
            m.rth = v;
            sawRth = true;
        } else if (tokens[0] == "delay") {
            m.delay = v;
        } else {
            throw ParseError("unknown key '" + tokens[0] + "'", r.line());
        }
    }
    if (!sawRth) throw ParseError("thevenin record missing rth", r.line());
    return m;
}

// ------------------------------------------------------------ propagation

std::string savePropagation(const PropagationTable& table,
                            const std::string& comment) {
    std::ostringstream os;
    os << header("propagation", comment);
    os << "baseline " << hexDouble(table.outputBaseline) << '\n';
    os << "peak\n";
    writeGrid2d(os, table.peak);
    os << "area\n";
    writeGrid2d(os, table.area);
    return os.str();
}

PropagationTable loadPropagation(const std::string& text) {
    RecordReader r(text);
    expectHeader(r, "propagation");
    auto tokens = r.next();
    if (tokens.size() != 2 || tokens[0] != "baseline") {
        throw ParseError("expected 'baseline' record", r.line());
    }
    PropagationTable out;
    out.outputBaseline = parseDouble(tokens[1], r.line());
    tokens = r.next();
    if (tokens.size() != 1 || tokens[0] != "peak") {
        throw ParseError("expected 'peak' section", r.line());
    }
    out.peak = readGrid2d(r);
    tokens = r.next();
    if (tokens.size() != 1 || tokens[0] != "area") {
        throw ParseError("expected 'area' section", r.line());
    }
    out.area = readGrid2d(r);
    return out;
}

// -------------------------------------------------------------------- nrc

std::string saveNrc(const la::Grid1d& curve, const std::string& comment) {
    SNA_REQUIRE(!curve.empty(), "cannot save an empty NRC");
    std::ostringstream os;
    os << header("nrc", comment);
    emitVector(os, "widths", curve.xs());
    emitVector(os, "heights", curve.ys());
    return os.str();
}

la::Grid1d loadNrc(const std::string& text) {
    RecordReader r(text);
    expectHeader(r, "nrc");
    std::vector<double> xs, ys;
    for (const char* key : {"widths", "heights"}) {
        const auto tokens = r.next();
        if (tokens.empty() || tokens[0] != key) {
            throw ParseError(std::string("expected '") + key + "' record",
                             r.line());
        }
        auto nums = r.numbers(tokens, 1);
        if (key[0] == 'w') {
            xs = std::move(nums);
        } else {
            ys = std::move(nums);
        }
    }
    try {
        return la::Grid1d(std::move(xs), std::move(ys));
    } catch (const Error& e) {
        throw ParseError(std::string("inconsistent NRC: ") + e.what(),
                         r.line());
    }
}

// -------------------------------------------------------------------- csv

std::string toCsv(const wave::Waveform& w) {
    SNA_REQUIRE(!w.empty(), "cannot export an empty waveform");
    std::ostringstream os;
    // The C++ global locale could also have a comma radix; pin the stream
    // to the classic locale so the CSV is portable.
    os.imbue(std::locale::classic());
    os << "time,value\n";
    os.precision(17);
    for (const auto& s : w.samples()) os << s.t << ',' << s.v << '\n';
    return os.str();
}

wave::Waveform fromCsv(const std::string& text) {
    std::istringstream is(text);
    std::string lineText;
    int lineNo = 0;
    std::vector<wave::Sample> samples;
    while (std::getline(is, lineText)) {
        ++lineNo;
        const auto t = str::trim(lineText);
        if (t.empty() || (lineNo == 1 && t.rfind("time", 0) == 0)) continue;
        const auto cols = str::split(t, ",");
        if (cols.size() != 2) {
            throw ParseError("expected 'time,value'", lineNo);
        }
        samples.push_back(
            {parseDouble(cols[0], lineNo), parseDouble(cols[1], lineNo)});
    }
    try {
        return wave::Waveform(std::move(samples));
    } catch (const Error& e) {
        throw ParseError(std::string("bad waveform csv: ") + e.what(), lineNo);
    }
}

}  // namespace sna::charlib

#include <cmath>

#include "charlib/characterize.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace sna::charlib {

namespace {

// Does a glitch of (height, width) at the receiver input propagate a
// failure (output deviation beyond failFraction of the swing)?
bool glitchFails(const NrcSpec& spec, double height, double width) {
    const cell::Cell& cellRef = *spec.cell;
    const double vdd = cellRef.technology().vdd;

    // Quiet input vector: sensitized on `input` with that pin at quietLevel.
    std::map<std::string, bool> quiet;
    bool found = false;
    for (const bool outLevel : {false, true}) {
        try {
            auto vec = cellRef.holdingVector(outLevel, spec.input);
            if (vec.at(spec.input) == spec.quietLevel) {
                quiet = vec;
                found = true;
                break;
            }
        } catch (const ModelError&) {
            continue;
        }
    }
    SNA_REQUIRE(found, "no sensitized quiet vector for NRC of '" +
                           cellRef.name() + "/" + spec.input + "'");
    const bool outLevel = cellRef.evaluate(quiet);
    const double outBaseline = outLevel ? vdd : 0.0;
    const double inBaseline = spec.quietLevel ? vdd : 0.0;
    const double dir = spec.quietLevel ? -1.0 : +1.0;

    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    const double t0 = 50e-12;
    const double tStop = t0 + width + std::max(1.5e-9, 5 * width);
    std::map<std::string, spice::NodeId> pins;
    for (const auto& in : cellRef.inputNames()) {
        const auto n = ckt.node(in);
        pins[in] = n;
        const double level = quiet.at(in) ? vdd : 0.0;
        if (in == spec.input) {
            ckt.addVSource("v_" + in, n, spice::kGround,
                           spice::SourceSpec::pwl(wave::triangleGlitch(
                               inBaseline, dir * height, t0, width, tStop)));
        } else {
            ckt.addVSource("v_" + in, n, spice::kGround,
                           spice::SourceSpec::dc(level));
        }
    }
    const auto outNode = ckt.node("out");
    pins[cellRef.outputName()] = outNode;
    ckt.addCapacitor("cload", outNode, spice::kGround, spec.loadCap);
    cellRef.instantiate(ckt, "dut", pins, vddNode);

    spice::TranOptions opt;
    opt.tstop = tStop;
    const auto res = spice::simulateTransient(ckt, opt);
    const auto m = wave::measureGlitch(res.waveform("out"), outBaseline);
    return std::abs(m.peak) >= spec.failFraction * vdd;
}

}  // namespace

la::Grid1d characterizeNrc(const NrcSpec& spec) {
    SNA_REQUIRE(spec.cell != nullptr, "NRC spec needs a cell");
    SNA_REQUIRE(spec.widths.size() >= 2, "NRC needs at least two widths");
    const double vdd = spec.cell->technology().vdd;

    std::vector<double> hFail;
    for (const double w : spec.widths) {
        // Bisect the failing height in [0, 1.4 vdd]; failure is monotone in
        // height for static CMOS receivers.
        double lo = 0.0;
        double hi = 1.4 * vdd;
        if (!glitchFails(spec, hi, w)) {
            hFail.push_back(hi);  // nothing fails at this width
            continue;
        }
        for (int it = 0; it < 12; ++it) {
            const double mid = 0.5 * (lo + hi);
            if (glitchFails(spec, mid, w)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hFail.push_back(0.5 * (lo + hi));
    }
    return la::Grid1d(spec.widths, std::move(hFail));
}

}  // namespace sna::charlib

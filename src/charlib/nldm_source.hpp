// NLDM-backed characterization: Liberty delay/slew tables as an alternate
// source of driver Thevenin models, beside the SPICE DC sweeps.
//
// An industry flow arrives with a characterized .lib; re-deriving driver
// timing from transistor-level sweeps both wastes work and diverges from
// the numbers the rest of the flow signed off on. NldmSource binds a parsed
// LibertyLibrary to the bundled cell::CellLibrary (case-insensitive names,
// pin-by-pin), converts the NLDM cell_rise/cell_fall/rise_transition/
// fall_transition tables into charlib::TheveninModel equivalents, and seeds
// them into a CharCache under the exact keys the window-propagation path
// (core::propagateWindows) queries — so .lib delays and slews feed the
// wavefront with no change to the consumer, and everything the .lib cannot
// provide (load curves, NRCs, propagation tables) still comes from SPICE.
//
// Binding problems are collected, not thrown: the front-end lint rules
// (SNA-L601..L603) render them, and unbound cells simply fall back to the
// SPICE characterization path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "celllib/library.hpp"
#include "charlib/char_cache.hpp"
#include "parser/liberty_parser.hpp"

namespace sna::charlib {

class NldmSource {
public:
    struct Issue {
        enum class Kind {
            unboundCell,   ///< .lib cell with no library counterpart
            pinMismatch,   ///< bound cell whose pins disagree
            missingTable,  ///< arc lacking one of the four NLDM tables
        };
        Kind kind;
        std::string cell;    ///< .lib cell name (lower-cased)
        std::string pin;     ///< pin / related pin ("" for cell-level)
        std::string detail;  ///< human-readable explanation
    };

    /// Bind every .lib cell to `cells` (which must outlive the source, as
    /// must `lib`). Never throws on binding problems — see issues().
    NldmSource(const parser::LibertyLibrary& lib,
               const cell::CellLibrary& cells);

    /// Binding problems in deterministic (cell, pin) order.
    const std::vector<Issue>& issues() const { return issues_; }

    /// Library-cell names (canonical CellLibrary spelling, sorted) that
    /// bound cleanly with a complete arc for every input pin.
    const std::vector<std::string>& boundCells() const { return bound_; }

    /// Thevenin equivalent of `cellName` driving `loadCap` when input
    /// `pin` switches with `inputSlew`, derived from the NLDM tables:
    ///   delay = NLDM 50->50 delay + inputSlew/2 - slew/2  (ramp launch)
    ///   slew  = NLDM output transition time (as the full ramp duration)
    ///   rth   = transition / (ln(4) * loadCap)  (the RC whose 20-80 rise
    ///           equals the table's transition time)
    /// nullopt when the cell/pin is not cleanly bound. `cellName` accepts
    /// either library's spelling (case-insensitive).
    std::optional<TheveninModel> theveninFor(const std::string& cellName,
                                             const std::string& pin,
                                             bool outputRising,
                                             double loadCap,
                                             double inputSlew) const;

    /// Seed `cache` with a Thevenin model for every (bound cell, input pin,
    /// direction) at exactly (loadCap, inputSlew) — pass the consumer's
    /// query point (core::kPropagationLoadCap and the TheveninSpec default
    /// slew for the window-propagation path). Returns the number of entries
    /// newly seeded.
    std::size_t seedThevenins(CharCache& cache, double loadCap,
                              double inputSlew) const;

private:
    const parser::LibertyLibrary* lib_;
    const cell::CellLibrary* cells_;
    std::vector<Issue> issues_;
    std::vector<std::string> bound_;
};

}  // namespace sna::charlib

#include "charlib/characterize.hpp"
#include "spice/tran.hpp"
#include "util/error.hpp"
#include "waveform/metrics.hpp"
#include "waveform/sources.hpp"

namespace sna::charlib {

double measureInputCapacitance(const cell::Cell& c, const std::string& pin) {
    const double vdd = c.technology().vdd;
    // Drive the pin through a known resistor with a slow ramp; the charge
    // into the pin is the integral of (vsrc - vpin) / R.
    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    const double tRamp = 2e-9;
    const double tStop = 3e-9;
    const double r = 1e3;
    const auto src = ckt.node("src");
    const auto pinNode = ckt.node("pin");
    ckt.addVSource("vramp", src, spice::kGround,
                   spice::SourceSpec::pwl(
                       wave::saturatedRamp(0, vdd, 0.1e-9, tRamp, tStop)));
    ckt.addResistor("rsense", src, pinNode, r);

    std::map<std::string, spice::NodeId> pins;
    for (const auto& in : c.inputNames()) {
        pins[in] = (in == pin) ? pinNode : ckt.node(in);
        if (in != pin) {
            ckt.addVSource("v_" + in, pins[in], spice::kGround,
                           spice::SourceSpec::dc(0.0));
        }
    }
    pins[c.outputName()] = ckt.node("out");
    // Light output load so the Miller contribution is realistic.
    ckt.addCapacitor("cl", pins[c.outputName()], spice::kGround, 5e-15);
    c.instantiate(ckt, "dut", pins, vddNode);

    spice::TranOptions opt;
    opt.tstop = tStop;
    const auto res = spice::simulateTransient(ckt, opt);
    const auto drop = res.waveform("src").minus(res.waveform("pin"));
    const double charge = wave::integrate(drop) / r;
    return charge / vdd;
}

}  // namespace sna::charlib

#include <cmath>

#include "charlib/characterize.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace sna::charlib {

la::Grid2d characterizeLoadCurve(const LoadCurveSpec& spec) {
    SNA_REQUIRE(spec.cell != nullptr, "load-curve spec needs a cell");
    SNA_REQUIRE(spec.nVin >= 2 && spec.nVout >= 2,
                "load-curve grid needs >= 2 points per axis");
    const cell::Cell& cellRef = *spec.cell;
    const double vdd = cellRef.technology().vdd;
    const double vMin =
        (spec.vMin == LoadCurveSpec::kAuto) ? -0.2 * vdd : spec.vMin;
    const double vMax =
        (spec.vMax == LoadCurveSpec::kAuto) ? 1.2 * vdd : spec.vMax;
    SNA_REQUIRE(vMax > vMin, "load-curve sweep range is empty");

    // Bench: side inputs held at the sensitized vector, swept sources on
    // the sensitive input and the output.
    spice::Circuit ckt;
    const auto vddNode = ckt.node("vdd");
    ckt.addVSource("vsupply", vddNode, spice::kGround,
                   spice::SourceSpec::dc(vdd));
    const auto holding = cellRef.holdingVector(spec.outputLevel, spec.input);
    std::map<std::string, spice::NodeId> pins;
    for (const auto& in : cellRef.inputNames()) {
        const auto n = ckt.node(in);
        pins[in] = n;
        const double level = holding.at(in) ? vdd : 0.0;
        ckt.addVSource("v_" + in, n, spice::kGround,
                       spice::SourceSpec::dc(level));
    }
    const auto outNode = ckt.node("out");
    pins[cellRef.outputName()] = outNode;
    ckt.addVSource("v_out", outNode, spice::kGround, spice::SourceSpec::dc(0));
    cellRef.instantiate(ckt, "dut", pins, vddNode);

    auto* vin = dynamic_cast<spice::VSource*>(
        ckt.findDevice("v_" + spec.input));
    auto* vout = dynamic_cast<spice::VSource*>(ckt.findDevice("v_out"));
    SNA_REQUIRE(vin != nullptr && vout != nullptr, "bench sources missing");

    std::vector<double> vinAxis(spec.nVin), voutAxis(spec.nVout);
    for (int i = 0; i < spec.nVin; ++i) {
        vinAxis[i] = vMin + (vMax - vMin) * i / (spec.nVin - 1);
    }
    for (int j = 0; j < spec.nVout; ++j) {
        voutAxis[j] = vMin + (vMax - vMin) * j / (spec.nVout - 1);
    }

    std::vector<double> z(static_cast<std::size_t>(spec.nVin) * spec.nVout);
    la::Vector warm;
    for (int i = 0; i < spec.nVin; ++i) {
        vin->setSpec(spice::SourceSpec::dc(vinAxis[i]));
        for (int j = 0; j < spec.nVout; ++j) {
            vout->setSpec(spice::SourceSpec::dc(voutAxis[j]));
            const auto dc =
                spice::solveDc(ckt, {}, warm.empty() ? nullptr : &warm);
            warm = dc.raw();
            // Current the clamp must deliver INTO the output = current the
            // cell sinks there; this is the table entry I_DC(vin, vout).
            z[static_cast<std::size_t>(i) * spec.nVout + j] =
                dc.sourceCurrent("v_out");
        }
    }
    log::debug() << "load curve for " << cellRef.name() << "/" << spec.input
                 << ": " << spec.nVin << "x" << spec.nVout << " points";
    return la::Grid2d(std::move(vinAxis), std::move(voutAxis), std::move(z));
}

double holdingResistance(const la::Grid2d& loadCurve, double vinHold,
                         double voutHold) {
    const auto v = loadCurve.eval(vinHold, voutHold);
    if (v.dzdy <= 0.0) {
        throw ModelError(
            "holding resistance is not defined: dI/dVout <= 0 at the "
            "holding point (is the output really held?)");
    }
    return 1.0 / v.dzdy;
}

}  // namespace sna::charlib

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace sna::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    SNA_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::addRow(std::vector<std::string> row) {
    SNA_REQUIRE(row.size() == header_.size(),
                "row arity must match header arity");
    rows_.push_back(std::move(row));
}

std::string Table::str() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto rule = [&] {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c) {
            os << std::string(width[c] + 2, '-') << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ')
               << " |";
        }
        os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto& row : rows_) line(row);
    rule();
    return os.str();
}

std::string Table::num(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string Table::pct(double fraction, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f", digits, fraction * 100.0);
    return buf;
}

}  // namespace sna::util

#include "util/fault_injection.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/rng.hpp"

namespace sna::util {

namespace {

struct Rule {
    std::string site;
    std::string detail;       ///< empty = match any detail
    bool hasDetail = false;
    double probability = 1.0;
    std::uint64_t limit = 0;  ///< 0 = unlimited
    std::uint64_t skipFirst = 0;
    std::uint64_t seen = 0;   ///< eligible calls observed
    std::uint64_t fired = 0;
};

double parseDouble(std::string_view text, std::string_view spec) {
    try {
        return std::stod(std::string(text));
    } catch (const std::exception&) {
        throw ParseError("bad fault-injection probability '" +
                         std::string(text) + "' in spec '" +
                         std::string(spec) + "'");
    }
}

std::uint64_t parseCount(std::string_view text, std::string_view spec) {
    try {
        return static_cast<std::uint64_t>(std::stoull(std::string(text)));
    } catch (const std::exception&) {
        throw ParseError("bad fault-injection count '" + std::string(text) +
                         "' in spec '" + std::string(spec) + "'");
    }
}

Rule parseRule(std::string_view item, std::string_view spec) {
    Rule rule;
    // Split off the :probability[:limit[:skipFirst]] tail first.
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t colon = item.find(':', start);
        if (colon == std::string_view::npos) {
            parts.push_back(item.substr(start));
            break;
        }
        parts.push_back(item.substr(start, colon - start));
        start = colon + 1;
    }
    if (parts.empty() || parts[0].empty() || parts.size() > 4) {
        throw ParseError("bad fault-injection rule '" + std::string(item) +
                         "' in spec '" + std::string(spec) + "'");
    }
    std::string_view head = parts[0];
    const std::size_t at = head.find('@');
    if (at != std::string_view::npos) {
        rule.detail = std::string(head.substr(at + 1));
        rule.hasDetail = true;
        head = head.substr(0, at);
    }
    if (head.empty()) {
        throw ParseError("empty fault-injection site in spec '" +
                         std::string(spec) + "'");
    }
    rule.site = std::string(head);
    if (parts.size() > 1) rule.probability = parseDouble(parts[1], spec);
    if (parts.size() > 2) rule.limit = parseCount(parts[2], spec);
    if (parts.size() > 3) rule.skipFirst = parseCount(parts[3], spec);
    if (rule.probability < 0.0 || rule.probability > 1.0) {
        throw ParseError("fault-injection probability out of [0,1] in spec '" +
                         std::string(spec) + "'");
    }
    return rule;
}

}  // namespace

struct FaultInjector::Impl {
    std::atomic<bool> armed{false};
    std::atomic<bool> envChecked{false};
    mutable std::mutex mu;
    std::vector<Rule> rules;
    Rng rng;
    std::uint64_t fires = 0;
};

FaultInjector::FaultInjector() : impl_(new Impl) {}

FaultInjector& FaultInjector::instance() {
    // Leaked on purpose: fault points may sit in code that runs during
    // static destruction (cache flushes); a never-destroyed singleton
    // cannot be used after free.
    static FaultInjector* injector = new FaultInjector();
    return *injector;
}

void FaultInjector::arm(std::string_view spec, std::uint64_t seed) {
    std::vector<Rule> rules;
    std::size_t start = 0;
    while (start <= spec.size()) {
        const std::size_t comma = spec.find(',', start);
        const std::string_view item =
            comma == std::string_view::npos
                ? spec.substr(start)
                : spec.substr(start, comma - start);
        if (!item.empty()) rules.push_back(parseRule(item, spec));
        if (comma == std::string_view::npos) break;
        start = comma + 1;
    }
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->rules = std::move(rules);
    impl_->rng = Rng(seed);
    impl_->fires = 0;
    impl_->armed.store(!impl_->rules.empty(), std::memory_order_release);
}

bool FaultInjector::armFromEnv() {
    const char* spec = std::getenv("SNA_FAULT_INJECT");
    if (spec == nullptr || *spec == '\0') return false;
    std::uint64_t seed = 0x5eed5eedULL;
    if (const char* seedText = std::getenv("SNA_FAULT_SEED")) {
        seed = parseCount(seedText, "SNA_FAULT_SEED");
    }
    arm(spec, seed);
    return true;
}

void FaultInjector::disarm() {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->rules.clear();
    impl_->fires = 0;
    impl_->armed.store(false, std::memory_order_release);
}

bool FaultInjector::shouldFail(std::string_view site,
                               std::string_view detail) {
    // One-time env probe so `SNA_FAULT_INJECT=... binary` works with no
    // code-side arm() call. exchange() ensures exactly one thread probes.
    if (!impl_->envChecked.exchange(true, std::memory_order_acq_rel)) {
        armFromEnv();
    }
    if (!impl_->armed.load(std::memory_order_acquire)) return false;
    const std::lock_guard<std::mutex> lock(impl_->mu);
    for (Rule& rule : impl_->rules) {
        if (rule.site != site) continue;
        if (rule.hasDetail && rule.detail != detail) continue;
        if (rule.limit != 0 && rule.fired >= rule.limit) continue;
        if (rule.seen++ < rule.skipFirst) continue;
        if (rule.probability < 1.0 && !impl_->rng.chance(rule.probability)) {
            continue;
        }
        ++rule.fired;
        ++impl_->fires;
        return true;
    }
    return false;
}

std::uint64_t FaultInjector::fireCount() const {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->fires;
}

bool FaultInjector::armed() const {
    return impl_->armed.load(std::memory_order_acquire);
}

}  // namespace sna::util

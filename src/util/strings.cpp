#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace sna::str {

namespace {
bool isSpace(char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    while (b < s.size() && isSpace(s[b])) ++b;
    std::size_t e = s.size();
    while (e > b && isSpace(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
        std::size_t b = i;
        while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
        if (i > b) out.push_back(s.substr(b, i - b));
    }
    return out;
}

std::string toLower(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) out.push_back(lower(c));
    return out;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (lower(a[i]) != lower(b[i])) return false;
    }
    return true;
}

bool istartsWith(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::optional<double> parseSpiceNumber(std::string_view s) {
    s = trim(s);
    if (s.empty()) return std::nullopt;
    // std::from_chars, not strtod: strtod honors LC_NUMERIC, so "1.5" would
    // parse as 1 (and then fail on the '.') under a comma-decimal locale.
    double base = 0.0;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), base);
    if (ec != std::errc() || ptr == s.data()) return std::nullopt;

    std::string_view rest = trim(s.substr(
        static_cast<std::size_t>(ptr - s.data())));
    if (rest.empty()) return base;

    // Engineering suffix; anything after a recognized suffix is a unit name
    // and is ignored (SPICE convention: "2.2kohm" == 2200).
    const std::string low = toLower(rest);
    double scale = 1.0;
    std::size_t used = 1;
    if (low.rfind("meg", 0) == 0) {
        scale = 1e6;
        used = 3;
    } else {
        switch (low[0]) {
            case 't': scale = 1e12; break;
            case 'g': scale = 1e9; break;
            case 'k': scale = 1e3; break;
            case 'm': scale = 1e-3; break;
            case 'u': scale = 1e-6; break;
            case 'n': scale = 1e-9; break;
            case 'p': scale = 1e-12; break;
            case 'f': scale = 1e-15; break;
            default:
                // Unknown first letter: treat the tail as a unit name only if
                // it is purely alphabetic, otherwise the number is malformed.
                for (char c : low) {
                    if (std::isalpha(static_cast<unsigned char>(c)) == 0)
                        return std::nullopt;
                }
                return base;
        }
    }
    // Remaining characters must be alphabetic (a unit name).
    for (std::size_t i = used; i < low.size(); ++i) {
        if (std::isalpha(static_cast<unsigned char>(low[i])) == 0)
            return std::nullopt;
    }
    return base * scale;
}

std::optional<double> parseDoubleToken(std::string_view s) {
    if (s.empty()) return std::nullopt;
    bool negative = false;
    std::string_view body = s;
    if (body.front() == '+' || body.front() == '-') {
        negative = body.front() == '-';
        body.remove_prefix(1);
        if (body.empty()) return std::nullopt;
    }
    double v = 0.0;
    const char* begin = body.data();
    const char* end = body.data() + body.size();
    std::from_chars_result r{};
    if (body.size() > 2 && body[0] == '0' &&
        (body[1] == 'x' || body[1] == 'X')) {
        // Hex-float ("0x1.8p+1"): strtod's and printf %a's spelling.
        // std::from_chars' hex format takes the digits without the prefix.
        r = std::from_chars(begin + 2, end, v, std::chars_format::hex);
    } else {
        r = std::from_chars(begin, end, v, std::chars_format::general);
    }
    if (r.ec != std::errc() || r.ptr != end) return std::nullopt;
    return negative ? -v : v;
}

std::string formatDoubleHex(double v) {
    if (!std::isfinite(v)) {
        // to_chars spells these "inf"/"-inf"/"nan"; emit as-is (no 0x).
        return std::signbit(v) ? (std::isnan(v) ? "-nan" : "-inf")
                               : (std::isnan(v) ? "nan" : "inf");
    }
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::hex);
    std::string out(buf, r.ptr);
    // to_chars omits the 0x prefix; add it (after the sign) so the output
    // matches what %a used to write and stays self-describing.
    out.insert(out.front() == '-' ? 1 : 0, "0x");
    return out;
}

}  // namespace sna::str

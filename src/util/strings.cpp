#include "util/strings.hpp"

#include <cctype>
#include <cstdlib>

namespace sna::str {

namespace {
bool isSpace(char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

char lower(char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) {
    std::size_t b = 0;
    while (b < s.size() && isSpace(s[b])) ++b;
    std::size_t e = s.size();
    while (e > b && isSpace(s[e - 1])) --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
        std::size_t b = i;
        while (i < s.size() && delims.find(s[i]) == std::string_view::npos) ++i;
        if (i > b) out.push_back(s.substr(b, i - b));
    }
    return out;
}

std::string toLower(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) out.push_back(lower(c));
    return out;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (lower(a[i]) != lower(b[i])) return false;
    }
    return true;
}

bool istartsWith(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

std::optional<double> parseSpiceNumber(std::string_view s) {
    s = trim(s);
    if (s.empty()) return std::nullopt;
    std::string buf(s);
    char* end = nullptr;
    const double base = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str()) return std::nullopt;

    std::string_view rest = trim(std::string_view(end));
    if (rest.empty()) return base;

    // Engineering suffix; anything after a recognized suffix is a unit name
    // and is ignored (SPICE convention: "2.2kohm" == 2200).
    const std::string low = toLower(rest);
    double scale = 1.0;
    std::size_t used = 1;
    if (low.rfind("meg", 0) == 0) {
        scale = 1e6;
        used = 3;
    } else {
        switch (low[0]) {
            case 't': scale = 1e12; break;
            case 'g': scale = 1e9; break;
            case 'k': scale = 1e3; break;
            case 'm': scale = 1e-3; break;
            case 'u': scale = 1e-6; break;
            case 'n': scale = 1e-9; break;
            case 'p': scale = 1e-12; break;
            case 'f': scale = 1e-15; break;
            default:
                // Unknown first letter: treat the tail as a unit name only if
                // it is purely alphabetic, otherwise the number is malformed.
                for (char c : low) {
                    if (std::isalpha(static_cast<unsigned char>(c)) == 0)
                        return std::nullopt;
                }
                return base;
        }
    }
    // Remaining characters must be alphabetic (a unit name).
    for (std::size_t i = used; i < low.size(); ++i) {
        if (std::isalpha(static_cast<unsigned char>(low[i])) == 0)
            return std::nullopt;
    }
    return base * scale;
}

}  // namespace sna::str

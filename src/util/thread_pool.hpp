// Minimal fixed-size thread pool for coarse-grained engine parallelism.
//
// The design-level noise flow runs one independent cluster solve per victim
// net; ThreadPool::parallelFor fans those solves out over a fixed set of
// workers while keeping result ordering deterministic (work item i always
// writes slot i). The pool is intentionally small and blocking — noise
// clusters are milliseconds-to-seconds of work each, so queue overhead is
// irrelevant; what matters is exception safety and a clean join.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sna::util {

class CancelToken;

class ThreadPool {
public:
    /// Spawns `threads` workers; values < 1 are clamped to 1. A pool of
    /// size 1 still runs jobs on its single worker thread.
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /// Enqueue one job. Jobs must not throw; wrap work that can throw (see
    /// parallelFor, which captures the first exception and rethrows it).
    void run(std::function<void()> job);

    /// Enqueue a batch of jobs under one lock acquisition and a single
    /// notify_all: a fan-out of N tasks pays one queue round trip instead
    /// of N lock+notify cycles. Same job contract as run().
    void runBatch(std::vector<std::function<void()>> jobs);

    /// Block until every queued and running job has finished.
    void wait();

private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable wake_;   // workers: queue non-empty or stopping
    std::condition_variable idle_;   // waiters: everything drained
    int active_ = 0;
    bool stop_ = false;
};

/// Resolve a requested thread count to a concrete worker count: 0 means
/// "use the machine" (std::thread::hardware_concurrency(), or 1 when the
/// runtime reports 0), negatives clamp to 1, positives pass through. Every
/// consumer of a thread-count option should resolve through here so "auto"
/// means the same thing everywhere.
int resolveThreadCount(int requested);

/// Run fn(i) for every i in [0, n). With threads <= 1 the loop runs inline
/// on the calling thread (no pool is created); otherwise min(threads, n)
/// workers pull indices in order. The first exception thrown by any fn(i)
/// is rethrown on the calling thread after all workers settle.
void parallelFor(int threads, int n, const std::function<void(int)>& fn);

/// parallelFor on a caller-owned pool: repeated sweeps reuse the same
/// workers instead of constructing and joining a fresh ThreadPool per call.
/// `pool == nullptr` (or a pool of size 1) runs the loop inline. The pool
/// must be otherwise idle: completion is detected with ThreadPool::wait(),
/// which waits for the whole queue to drain. Exception semantics match the
/// thread-count overload (first error rethrown after all workers settle).
///
/// With a non-null `cancel`, each fn(i) runs inside a CancelScope and once
/// the token stops no further indices are claimed; the sweep settles and
/// returns normally (never throws CancelledError) so the caller can keep
/// completed slots — check cancel->stopRequested() to learn whether every
/// index ran. CancelledError thrown by fn(i) stops the sweep the same way.
void parallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn,
                 const CancelToken* cancel = nullptr);

}  // namespace sna::util

// Small string utilities shared by the SPICE and SPEF front-ends.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sna::str {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of characters from `delims`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims = " \t");

/// ASCII lowercase copy.
std::string toLower(std::string_view s);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool istartsWith(std::string_view s, std::string_view prefix);

/// Parse a SPICE-style number with an optional engineering suffix:
/// t, g, meg, k, m, u, n, p, f (case-insensitive; trailing unit letters such
/// as "k" in "2.2kOhm" are tolerated after the suffix). Returns nullopt on
/// malformed input.
std::optional<double> parseSpiceNumber(std::string_view s);

}  // namespace sna::str

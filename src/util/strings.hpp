// Small string utilities shared by the SPICE and SPEF front-ends.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sna::str {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on any run of characters from `delims`; empty tokens are dropped.
std::vector<std::string_view> split(std::string_view s,
                                    std::string_view delims = " \t");

/// ASCII lowercase copy.
std::string toLower(std::string_view s);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`, ignoring ASCII case.
bool istartsWith(std::string_view s, std::string_view prefix);

/// Parse a SPICE-style number with an optional engineering suffix:
/// t, g, meg, k, m, u, n, p, f (case-insensitive; trailing unit letters such
/// as "k" in "2.2kOhm" are tolerated after the suffix). Returns nullopt on
/// malformed input. Locale-independent: the decimal separator is always
/// '.', whatever LC_NUMERIC says.
std::optional<double> parseSpiceNumber(std::string_view s);

/// Parse `s` entirely as one double (no leading/trailing characters).
/// Accepts decimal/scientific notation, "inf"/"nan" spellings, and
/// hex-floats with an optional 0x/0X prefix — both the formats
/// formatDoubleHex emits and the "%a" output of older cache files.
/// Locale-independent (std::from_chars): a file written under a
/// comma-decimal LC_NUMERIC parses identically everywhere.
std::optional<double> parseDoubleToken(std::string_view s);

/// Shortest exact hex-float representation of `v` ("0x1.8p+1"-style,
/// round-trips bit-exactly through parseDoubleToken). Locale-independent
/// (std::to_chars), unlike printf("%a") which honors LC_NUMERIC's radix
/// character.
std::string formatDoubleHex(double v);

}  // namespace sna::str

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/cancel.hpp"

namespace sna::util {

int resolveThreadCount(int requested) {
    if (requested > 0) return requested;
    if (requested == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }
    return 1;
}

ThreadPool::ThreadPool(int threads) {
    if (threads < 1) threads = 1;
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::run(std::function<void()> job) {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        queue_.push(std::move(job));
    }
    wake_.notify_one();
}

void ThreadPool::runBatch(std::vector<std::function<void()>> jobs) {
    if (jobs.empty()) return;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        for (auto& job : jobs) queue_.push(std::move(job));
    }
    wake_.notify_all();
}

void ThreadPool::wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::workerLoop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stop_ and drained
            job = std::move(queue_.front());
            queue_.pop();
            ++active_;
        }
        job();
        {
            const std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_.notify_all();
        }
    }
}

void parallelFor(ThreadPool* pool, int n, const std::function<void(int)>& fn,
                 const CancelToken* cancel) {
    if (n <= 0) return;
    if (pool == nullptr || pool->size() <= 1 || n == 1) {
        const CancelScope scope(cancel != nullptr ? cancel
                                                  : currentCancelToken());
        for (int i = 0; i < n; ++i) {
            if (cancel != nullptr && cancel->stopRequested()) return;
            try {
                fn(i);
            } catch (const CancelledError&) {
                if (cancel == nullptr) throw;  // historical semantics
                return;  // slot i unpublished; caller checks the token
            }
        }
        return;
    }

    std::atomic<int> next{0};
    std::atomic<bool> stopped{false};
    std::exception_ptr firstError;
    std::mutex errorMu;
    auto worker = [&] {
        const CancelScope scope(cancel != nullptr ? cancel
                                                  : currentCancelToken());
        for (;;) {
            if (stopped.load(std::memory_order_relaxed) ||
                (cancel != nullptr && cancel->stopRequested())) {
                stopped.store(true, std::memory_order_relaxed);
                return;
            }
            const int i = next.fetch_add(1);
            if (i >= n) return;
            try {
                fn(i);
            } catch (const CancelledError&) {
                if (cancel == nullptr) {
                    const std::lock_guard<std::mutex> lock(errorMu);
                    if (!firstError) firstError = std::current_exception();
                    return;
                }
                stopped.store(true, std::memory_order_relaxed);
                return;
            } catch (...) {
                const std::lock_guard<std::mutex> lock(errorMu);
                if (!firstError) firstError = std::current_exception();
            }
        }
    };

    const int workers = std::min(pool->size(), n);
    std::vector<std::function<void()>> jobs(static_cast<std::size_t>(workers),
                                            worker);
    pool->runBatch(std::move(jobs));
    pool->wait();
    if (firstError) std::rethrow_exception(firstError);
}

void parallelFor(int threads, int n, const std::function<void(int)>& fn) {
    if (n <= 0) return;
    if (threads > n) threads = n;
    if (threads <= 1) {
        for (int i = 0; i < n; ++i) fn(i);
        return;
    }
    // Thin wrapper over the pool-reuse overload; callers that sweep more
    // than once should own the pool themselves and skip the per-call
    // construct/join churn.
    ThreadPool pool(threads);
    parallelFor(&pool, n, fn);
}

}  // namespace sna::util

// Site-keyed fault injection for resilience testing.
//
// Production code marks the places where the real world can fail — cache
// IO, scheduler task boundaries, solver entry — with SNA_FAULT_POINT or an
// explicit shouldFail() query. When the injector is disarmed (the default,
// and the only state production runs ever see) every site costs one
// relaxed atomic load. Tests (or an operator, via SNA_FAULT_INJECT) arm
// specific sites with a probability / fire budget, and the resilience
// machinery — quarantine, cache self-healing, CLI exit codes — gets
// exercised without contriving real disk or solver failures.
//
// Spec grammar (comma-separated list, also the SNA_FAULT_INJECT format):
//     site[@detail][:probability[:limit[:skipFirst]]]
// e.g. SNA_FAULT_INJECT="core.solve_net@n42,charcache.save.torn:0.5:1"
//   - site       exact site key as passed to shouldFail()
//   - @detail    only fire when the call's detail string matches exactly
//   - probability  chance per eligible call (default 1.0), drawn from a
//                  util::Rng seeded by SNA_FAULT_SEED (default seed)
//   - limit      max fires for this rule (default unlimited)
//   - skipFirst  eligible calls to pass through before firing begins
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace sna::util {

/// Thrown by SNA_FAULT_POINT when an armed rule fires. A distinct type so
/// tests can assert the failure really came from the injector.
class FaultInjectedError : public Error {
public:
    explicit FaultInjectedError(const std::string& what) : Error(what) {}
};

/// Process-wide injector. All mutation is test-side setup; shouldFail() is
/// safe to call from any thread concurrently with other shouldFail() calls
/// (rule state is guarded by an internal mutex once armed — the disarmed
/// fast path takes no lock).
class FaultInjector {
public:
    static FaultInjector& instance();

    /// Arm from a spec string (grammar above). Replaces any existing rules.
    /// Throws ParseError on a malformed spec.
    void arm(std::string_view spec, std::uint64_t seed = 0x5eed5eedULL);

    /// Arm from the SNA_FAULT_INJECT / SNA_FAULT_SEED environment, if set.
    /// Returns true when a spec was found and armed. Called once from the
    /// first shouldFail() so env-armed runs need no code changes.
    bool armFromEnv();

    /// Drop every rule and return to the zero-cost disarmed state.
    void disarm();

    /// True when `site` (with `detail`) should fail now. Decides rule
    /// matching, probability draw, skip/limit accounting, and bumps
    /// fireCount() on a hit.
    bool shouldFail(std::string_view site, std::string_view detail = {});

    /// Total fires since the last arm()/disarm(). Test observability.
    std::uint64_t fireCount() const;

    bool armed() const;

private:
    FaultInjector();
    struct Impl;
    Impl* impl_;  // leaked singleton state; never destroyed
};

}  // namespace sna::util

/// Throw FaultInjectedError at this site when an armed rule matches.
/// Disarmed cost: one relaxed load, no string construction.
#define SNA_FAULT_POINT(site, detail)                                         \
    do {                                                                      \
        if (::sna::util::FaultInjector::instance().shouldFail((site),         \
                                                              (detail))) {    \
            throw ::sna::util::FaultInjectedError(                            \
                std::string("injected fault at ") + (site));                  \
        }                                                                     \
    } while (false)

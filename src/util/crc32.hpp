// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for cache record
// integrity. Table-driven byte-at-a-time implementation — the persistent
// cache writes kilobytes per record, so throughput is irrelevant next to
// the SPICE work the records memoize; what matters is a stable, portable
// checksum that detects truncation and bit-rot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sna::util {

/// Incremental update: feed buffers in sequence starting from crc32Init().
std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size);

inline constexpr std::uint32_t crc32Init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32Final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a buffer.
inline std::uint32_t crc32(std::string_view data) {
    return crc32Final(crc32Update(crc32Init(), data.data(), data.size()));
}

}  // namespace sna::util

#include "util/error.hpp"

#include <sstream>

namespace sna::detail {

void throwRequireFailure(const char* expr, const char* file, int line,
                         const std::string& msg) {
    std::ostringstream os;
    os << "precondition failed: " << msg << " [" << expr << " at " << file
       << ":" << line << "]";
    throw LogicError(os.str());
}

}  // namespace sna::detail

// Unit conventions and conversion helpers.
//
// OpenSNA uses plain SI internally: volts, amperes, ohms, farads, seconds,
// and meters. EDA-facing interfaces (technology tables, benches, reports)
// speak the domain's customary units — µm, fF, ps, Ω/µm, fF/µm — and convert
// at the boundary through the constants below, so a value's unit is always
// visible at the call site (e.g. `0.25 * units::ohm_per_um`).
#pragma once

namespace sna::units {

inline constexpr double femto = 1e-15;
inline constexpr double pico = 1e-12;
inline constexpr double nano = 1e-9;
inline constexpr double micro = 1e-6;
inline constexpr double milli = 1e-3;
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

// Lengths.
inline constexpr double um = micro;   ///< micrometer in meters
inline constexpr double nm = nano;    ///< nanometer in meters

// Times.
inline constexpr double ps = pico;    ///< picosecond in seconds
inline constexpr double ns = nano;    ///< nanosecond in seconds

// Capacitances.
inline constexpr double fF = femto;   ///< femtofarad in farads
inline constexpr double pF = pico;    ///< picofarad in farads

// Per-length wire parasitics (EDA-customary → SI).
inline constexpr double ohm_per_um = 1.0 / um;   ///< Ω/µm in Ω/m
inline constexpr double fF_per_um = fF / um;     ///< fF/µm in F/m

/// Volt·picosecond, the paper's glitch-area unit (Tables 1 and 2).
inline constexpr double volt_ps = pico;

}  // namespace sna::units

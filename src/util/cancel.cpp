#include "util/cancel.hpp"

namespace sna::util {

namespace {

thread_local const CancelToken* g_ambientToken = nullptr;

std::string reasonText(CancelToken::Reason reason) {
    return reason == CancelToken::Reason::deadline
               ? "analysis deadline expired"
               : "analysis cancelled";
}

}  // namespace

void CancelToken::throwIfStopped() const {
    if (stopRequested()) throw CancelledError(reasonText(reason()));
}

CancelScope::CancelScope(const CancelToken* token)
    : previous_(g_ambientToken) {
    g_ambientToken = token;
}

CancelScope::~CancelScope() { g_ambientToken = previous_; }

const CancelToken* currentCancelToken() { return g_ambientToken; }

void pollCancellation() {
    const CancelToken* token = g_ambientToken;
    if (token != nullptr && token->stopRequested()) {
        throw CancelledError(reasonText(token->reason()));
    }
}

}  // namespace sna::util

#include "util/task_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>

#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/thread_pool.hpp"

namespace sna::util {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Cheap Kahn walk over the counts alone (no task bodies): proves the graph
/// acyclic before any worker blocks on a dependency that can never resolve.
void requireAcyclic(const TaskGraph& graph) {
    const int n = graph.size();
    SNA_REQUIRE(static_cast<int>(graph.fanout.size()) == n,
                "task graph fanout/faninCount size mismatch");
    std::vector<int> pending = graph.faninCount;
    std::vector<int> stack;
    for (int i = 0; i < n; ++i) {
        SNA_REQUIRE(pending[i] >= 0, "task graph has a negative fanin count");
        if (pending[i] == 0) stack.push_back(i);
    }
    int done = 0;
    while (!stack.empty()) {
        const int t = stack.back();
        stack.pop_back();
        ++done;
        for (const int d : graph.fanout[t]) {
            SNA_REQUIRE(d >= 0 && d < n, "task graph edge out of range");
            if (--pending[d] == 0) stack.push_back(d);
        }
    }
    SNA_REQUIRE(done == n, "task graph has a cycle");
}

/// One worker's ready deque. A plain mutex per deque is deliberate: wavefront
/// tasks are milliseconds of numerical work, so queue ops are noise and the
/// lock keeps the stealing protocol obviously correct (and TSan-clean).
struct WorkerDeque {
    std::mutex mu;
    std::deque<int> dq;
};

}  // namespace

SchedulerStats runTaskGraph(const TaskGraph& graph,
                            const std::function<void(int)>& run,
                            ThreadPool* pool, const CancelToken* cancel) {
    requireAcyclic(graph);
    const int n = graph.size();
    SchedulerStats stats;
    stats.workers = (pool == nullptr) ? 1 : std::max(1, pool->size());
    if (n == 0) return stats;

    if (pool == nullptr || pool->size() <= 1) {
        // Serial: deterministic Kahn order — ready queue FIFO, seeded and
        // relaxed in index order.
        std::vector<int> pending = graph.faninCount;
        std::deque<int> ready;
        for (int i = 0; i < n; ++i) {
            if (pending[i] == 0) ready.push_back(i);
        }
        stats.maxReadyDepth = ready.size();
        // Install the run's token for inline bodies (preserving any outer
        // ambient scope when no token was passed).
        const CancelScope scope(cancel != nullptr ? cancel
                                                  : currentCancelToken());
        bool stopped = false;
        while (!ready.empty()) {
            const int t = ready.front();
            ready.pop_front();
            if (!stopped && cancel != nullptr && cancel->stopRequested()) {
                stopped = true;
            }
            if (stopped) {
                ++stats.skippedTasks;
            } else {
                try {
                    SNA_FAULT_POINT("scheduler.task", "");
                    run(t);
                    ++stats.tasksExecuted;
                } catch (const CancelledError&) {
                    // Body unwound mid-task: its slot is unpublished, the
                    // remaining frontier drains without running.
                    stopped = true;
                    ++stats.skippedTasks;
                }
            }
            for (const int d : graph.fanout[t]) {
                if (--pending[d] == 0) ready.push_back(d);
            }
            stats.maxReadyDepth = std::max(stats.maxReadyDepth, ready.size());
        }
        stats.cancelled = stopped;
        stats.busyFraction = {1.0};
        return stats;
    }

    const int workers = pool->size();
    std::vector<std::unique_ptr<WorkerDeque>> deques;
    for (int w = 0; w < workers; ++w) {
        deques.push_back(std::make_unique<WorkerDeque>());
    }

    // One atomic per task: unfinished fanins. fetch_sub publishes the
    // finishing task's slot writes to whichever worker later claims the
    // dependent (the deque mutexes extend the chain).
    std::vector<std::atomic<int>> pending(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        pending[static_cast<std::size_t>(i)].store(graph.faninCount[i],
                                                   std::memory_order_relaxed);
    }

    std::atomic<int> remaining{n};
    std::atomic<std::size_t> readyCount{0};
    std::atomic<std::size_t> maxReady{0};
    std::atomic<std::size_t> steals{0};
    std::atomic<std::size_t> executed{0};
    std::atomic<std::size_t> skipped{0};
    std::atomic<bool> cancelStop{false};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMu;
    // Idle workers nap here. Pushers bump readyCount first, then take the
    // mutex (empty critical section) before notifying: a waiter that saw
    // readyCount == 0 is either still holding the mutex (and will re-check)
    // or already napping (and gets the notify) — no lost wakeup.
    std::mutex idleMu;
    std::condition_variable idleCv;

    const auto push = [&](int self, int task) {
        {
            WorkerDeque& d = *deques[static_cast<std::size_t>(self)];
            const std::lock_guard<std::mutex> lock(d.mu);
            d.dq.push_back(task);
        }
        const std::size_t depth = readyCount.fetch_add(1) + 1;
        std::size_t prev = maxReady.load();
        while (depth > prev && !maxReady.compare_exchange_weak(prev, depth)) {
        }
        { const std::lock_guard<std::mutex> lock(idleMu); }
        idleCv.notify_one();
    };

    // Seed the roots round-robin so the frontier starts spread out.
    {
        int next = 0;
        for (int i = 0; i < n; ++i) {
            if (graph.faninCount[i] == 0) {
                WorkerDeque& d = *deques[static_cast<std::size_t>(next)];
                const std::lock_guard<std::mutex> lock(d.mu);
                d.dq.push_back(i);
                next = (next + 1) % workers;
                readyCount.fetch_add(1, std::memory_order_relaxed);
            }
        }
        maxReady.store(readyCount.load());
    }

    std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);
    std::vector<double> wall(static_cast<std::size_t>(workers), 0.0);

    const auto workerBody = [&](int self) {
        const auto started = Clock::now();
        double busySec = 0.0;
        const auto tryClaim = [&]() -> int {
            {
                WorkerDeque& own = *deques[static_cast<std::size_t>(self)];
                const std::lock_guard<std::mutex> lock(own.mu);
                if (!own.dq.empty()) {
                    const int t = own.dq.back();  // LIFO: warmest task
                    own.dq.pop_back();
                    return t;
                }
            }
            for (int k = 1; k < workers; ++k) {
                WorkerDeque& victim =
                    *deques[static_cast<std::size_t>((self + k) % workers)];
                const std::lock_guard<std::mutex> lock(victim.mu);
                if (!victim.dq.empty()) {
                    const int t = victim.dq.front();  // FIFO steal: coldest
                    victim.dq.pop_front();
                    steals.fetch_add(1, std::memory_order_relaxed);
                    return t;
                }
            }
            return -1;
        };
        while (remaining.load() > 0) {
            const int t = tryClaim();
            if (t < 0) {
                std::unique_lock<std::mutex> lock(idleMu);
                idleCv.wait(lock, [&] {
                    return readyCount.load() > 0 || remaining.load() == 0;
                });
                continue;
            }
            readyCount.fetch_sub(1);
            const auto t0 = Clock::now();
            // Coherence for partial results: this check happens-after the
            // fanin's own check (deque mutex + pending fetch_sub chain), so
            // once any fanin was skipped for cancellation, this task is too
            // — an executed task never reads a torn or missing fanin slot.
            bool bodyCancelled =
                cancelStop.load(std::memory_order_relaxed) ||
                (cancel != nullptr && cancel->stopRequested());
            if (bodyCancelled) {
                cancelStop.store(true, std::memory_order_relaxed);
            } else if (!failed.load(std::memory_order_relaxed)) {
                try {
                    const CancelScope scope(cancel != nullptr
                                                ? cancel
                                                : currentCancelToken());
                    SNA_FAULT_POINT("scheduler.task", "");
                    run(t);
                } catch (const CancelledError&) {
                    cancelStop.store(true, std::memory_order_relaxed);
                    bodyCancelled = true;
                } catch (...) {
                    failed.store(true, std::memory_order_relaxed);
                    const std::lock_guard<std::mutex> lock(errorMu);
                    if (!firstError) firstError = std::current_exception();
                }
            }
            busySec += secondsSince(t0);
            if (bodyCancelled) {
                skipped.fetch_add(1, std::memory_order_relaxed);
            } else {
                executed.fetch_add(1, std::memory_order_relaxed);
            }
            for (const int d : graph.fanout[t]) {
                if (pending[static_cast<std::size_t>(d)].fetch_sub(1) == 1) {
                    push(self, d);
                }
            }
            if (remaining.fetch_sub(1) == 1) {
                // Last task: wake every napping worker so the run drains.
                { const std::lock_guard<std::mutex> lock(idleMu); }
                idleCv.notify_all();
            }
        }
        const double wallSec = secondsSince(started);
        busy[static_cast<std::size_t>(self)] = busySec;
        wall[static_cast<std::size_t>(self)] = wallSec;
    };

    std::vector<std::function<void()>> jobs;
    jobs.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        jobs.push_back([&workerBody, w] { workerBody(w); });
    }
    pool->runBatch(std::move(jobs));
    pool->wait();
    if (firstError) std::rethrow_exception(firstError);

    stats.tasksExecuted = executed.load();
    stats.skippedTasks = skipped.load();
    stats.cancelled = cancelStop.load();
    stats.steals = steals.load();
    stats.maxReadyDepth = maxReady.load();
    stats.busyFraction.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
        const double ws = wall[static_cast<std::size_t>(w)];
        stats.busyFraction.push_back(
            ws > 0.0 ? busy[static_cast<std::size_t>(w)] / ws : 0.0);
    }
    return stats;
}

RestrictedTaskGraph restrictTaskGraph(const TaskGraph& graph,
                                      const std::vector<char>& keep) {
    const int n = graph.size();
    SNA_REQUIRE(static_cast<int>(keep.size()) == n,
                "restrictTaskGraph keep mask size mismatch");
    RestrictedTaskGraph out;
    std::vector<int> subOf(static_cast<std::size_t>(n), -1);
    for (int i = 0; i < n; ++i) {
        if (!keep[static_cast<std::size_t>(i)]) continue;
        subOf[static_cast<std::size_t>(i)] =
            static_cast<int>(out.fullId.size());
        out.fullId.push_back(i);
    }
    const int m = static_cast<int>(out.fullId.size());
    out.graph.fanout.resize(static_cast<std::size_t>(m));
    out.graph.faninCount.assign(static_cast<std::size_t>(m), 0);
    for (int sub = 0; sub < m; ++sub) {
        const int full = out.fullId[static_cast<std::size_t>(sub)];
        for (const int d : graph.fanout[static_cast<std::size_t>(full)]) {
            const int dSub = subOf[static_cast<std::size_t>(d)];
            if (dSub < 0) continue;  // edge into a clean task: already solved
            out.graph.fanout[static_cast<std::size_t>(sub)].push_back(dSub);
            ++out.graph.faninCount[static_cast<std::size_t>(dSub)];
        }
    }
    return out;
}

}  // namespace sna::util

// Cooperative cancellation and deadlines for long-running analyses.
//
// A CancelToken is a tiny shared flag + optional deadline that a caller
// hands to analyzeDesign (via DesignNoiseOptions::cancel) and may trip from
// any thread; the engine polls it at task boundaries and inside the SPICE
// transient loop and unwinds with CancelledError. Polling is cooperative —
// nothing is interrupted mid-instruction — so a cancelled run always leaves
// every already-published result intact (the wavefront's slot-addressed
// writes make completed reports bitwise-identical to an uncancelled run).
//
// Deep engine loops (spice::simulateTransient) cannot reasonably take a
// token parameter through every struct between analyzeDesign and the
// timestep loop, so a thread-local ambient token is provided: the scheduler
// installs the run's token with a CancelScope around each task body and the
// inner loops call pollCancellation(), which is a no-op when no scope is
// active.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace sna::util {

/// Thrown when a run observes its CancelToken tripped (explicitly or by
/// deadline). Derives from Error so generic catch sites keep working, but
/// callers that care about partial results should catch it specifically.
class CancelledError : public Error {
public:
    explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Shared stop signal: an atomic flag plus an optional steady-clock
/// deadline. Thread-safe; cheap to poll (one relaxed load on the fast
/// path, a clock read only when a deadline is armed). Tokens may be
/// chained: a child token reports stopped when its parent does, letting a
/// per-request token nest under a server-wide shutdown token.
class CancelToken {
public:
    enum class Reason { none, cancelled, deadline };

    CancelToken() = default;
    explicit CancelToken(const CancelToken* parent) : parent_(parent) {}

    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /// Trip the token. Idempotent; callable from any thread.
    void cancel() {
        bool expected = false;
        if (flag_.compare_exchange_strong(expected, true)) {
            reason_.store(static_cast<int>(Reason::cancelled),
                          std::memory_order_relaxed);
        }
    }

    /// Arm a deadline `seconds` from now (steady clock). Non-positive
    /// values disarm. Replaces any previously armed deadline.
    void setDeadlineAfter(double seconds) {
        if (seconds <= 0.0) {
            deadlineNs_.store(0, std::memory_order_relaxed);
            return;
        }
        const auto now = std::chrono::steady_clock::now().time_since_epoch();
        const std::int64_t nowNs =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
        const std::int64_t delta =
            static_cast<std::int64_t>(seconds * 1e9);
        deadlineNs_.store(nowNs + delta, std::memory_order_relaxed);
    }

    /// True once cancel() was called or the deadline passed. The deadline
    /// check latches into the flag so later polls take the cheap path and
    /// the reason is stable.
    bool stopRequested() const {
        if (flag_.load(std::memory_order_relaxed)) return true;
        const std::int64_t dl = deadlineNs_.load(std::memory_order_relaxed);
        if (dl != 0) {
            const auto now =
                std::chrono::steady_clock::now().time_since_epoch();
            const std::int64_t nowNs =
                std::chrono::duration_cast<std::chrono::nanoseconds>(now)
                    .count();
            if (nowNs >= dl) {
                bool expected = false;
                if (flag_.compare_exchange_strong(expected, true)) {
                    reason_.store(static_cast<int>(Reason::deadline),
                                  std::memory_order_relaxed);
                }
                return true;
            }
        }
        return parent_ != nullptr && parent_->stopRequested();
    }

    /// Why the token stopped; Reason::none while still live. A child that
    /// stopped only via its parent reports the parent's reason.
    Reason reason() const {
        const auto own = static_cast<Reason>(
            reason_.load(std::memory_order_relaxed));
        if (own != Reason::none) return own;
        return parent_ != nullptr ? parent_->reason() : Reason::none;
    }

    /// Throw CancelledError if stopped. For callers with a token in hand.
    void throwIfStopped() const;

private:
    mutable std::atomic<bool> flag_{false};
    mutable std::atomic<int> reason_{static_cast<int>(Reason::none)};
    std::atomic<std::int64_t> deadlineNs_{0};  ///< 0 = no deadline
    const CancelToken* parent_ = nullptr;
};

/// RAII installer of the calling thread's ambient token. The scheduler
/// wraps each task body in one of these; nested scopes restore the outer
/// token on destruction.
class CancelScope {
public:
    explicit CancelScope(const CancelToken* token);
    ~CancelScope();

    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

private:
    const CancelToken* previous_;
};

/// The calling thread's ambient token, or nullptr outside any CancelScope.
const CancelToken* currentCancelToken();

/// Throw CancelledError if the ambient token (if any) has stopped. The
/// deep-loop poll point: one thread-local read when no scope is active.
void pollCancellation();

}  // namespace sna::util

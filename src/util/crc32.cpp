#include "util/crc32.hpp"

#include <array>

namespace sna::util {

namespace {

std::array<std::uint32_t, 256> makeTable() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        }
        table[i] = c;
    }
    return table;
}

}  // namespace

std::uint32_t crc32Update(std::uint32_t crc, const void* data,
                          std::size_t size) {
    static const std::array<std::uint32_t, 256> table = makeTable();
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
    }
    return crc;
}

}  // namespace sna::util

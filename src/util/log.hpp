// Minimal leveled logger.
//
// The library is quiet by default (Level::Warn); engines emit Info/Debug
// traces that benches and examples can enable. Logging goes to stderr so that
// bench table output on stdout stays machine-readable.
#pragma once

#include <sstream>
#include <string>

namespace sna::log {

enum class Level { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void setLevel(Level level);
Level level();

/// Emit one message at the given level (no newline needed).
void emit(Level level, const std::string& message);

namespace detail {
class LineStream {
public:
    explicit LineStream(Level level) : level_(level) {}
    LineStream(const LineStream&) = delete;
    LineStream& operator=(const LineStream&) = delete;
    ~LineStream() { emit(level_, os_.str()); }

    template <typename T>
    LineStream& operator<<(const T& value) {
        os_ << value;
        return *this;
    }

private:
    Level level_;
    std::ostringstream os_;
};
}  // namespace detail

inline detail::LineStream debug() { return detail::LineStream(Level::Debug); }
inline detail::LineStream info() { return detail::LineStream(Level::Info); }
inline detail::LineStream warn() { return detail::LineStream(Level::Warn); }
inline detail::LineStream error() { return detail::LineStream(Level::Error); }

}  // namespace sna::log

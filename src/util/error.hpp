// Error hierarchy for OpenSNA.
//
// All recoverable failures in the library are reported as exceptions derived
// from sna::Error. Numerical engines throw ConvergenceError, text-format
// front-ends throw ParseError, and model/characterization misuse throws
// ModelError. Programming errors (violated preconditions) use SNA_REQUIRE,
// which throws LogicError so tests can assert on them.
#pragma once

#include <stdexcept>
#include <string>

namespace sna {

/// Base class of every exception thrown by OpenSNA.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An iterative numerical method (Newton, bisection, step control) failed to
/// converge within its iteration or step budget.
class ConvergenceError : public Error {
public:
    explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// A text input (SPICE netlist, SPEF file) is malformed.
class ParseError : public Error {
public:
    ParseError(const std::string& what, int line = 0)
        : Error(line > 0 ? "line " + std::to_string(line) + ": " + what : what),
          line_(line) {}

    /// 1-based line number of the offending input, or 0 if unknown.
    int line() const { return line_; }

private:
    int line_ = 0;
};

/// A model, table, or characterization object was used outside its domain
/// (e.g. querying a load-curve table that was never characterized).
class ModelError : public Error {
public:
    explicit ModelError(const std::string& what) : Error(what) {}
};

/// A violated precondition: the caller broke the API contract.
class LogicError : public Error {
public:
    explicit LogicError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwRequireFailure(const char* expr, const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace sna

/// Precondition check that survives release builds; throws sna::LogicError.
#define SNA_REQUIRE(expr, msg)                                               \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::sna::detail::throwRequireFailure(#expr, __FILE__, __LINE__,    \
                                               (msg));                       \
        }                                                                    \
    } while (false)

// Dependency-counted task-graph scheduler for irregular-DAG parallelism.
//
// The level-barrier wavefront ("run level L, join, run level L+1") leaves
// workers idle whenever a level is narrower than the machine: a deep chain
// with a few nets per level serializes everything on the barrier. This
// scheduler runs the whole ready frontier instead, Galois-style: every task
// carries an atomic count of unfinished fanin tasks, a finishing task
// decrements its fanouts and enqueues any that hit zero, and workers pull
// from per-worker deques (LIFO for locality) with FIFO work-stealing when
// their own deque drains. No barrier ever forms — a task starts the moment
// its last dependency finishes.
//
// Determinism contract: the scheduler guarantees only that a task runs
// after all its fanins and exactly once. Callers that need bit-identical
// results at any thread count (the noise wavefront does) must make each
// task write slot-addressed outputs and read nothing but its fanins' slots;
// then completion order cannot change any value.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace sna::util {

class CancelToken;
class ThreadPool;

/// A dependency DAG over tasks 0..n-1. fanout[i] lists the tasks that
/// cannot start until i finishes; faninCount[i] is the number of tasks i
/// waits for (the in-degree under the same edge set). The graph must be
/// acyclic — runTaskGraph validates and throws LogicError on a cycle.
struct TaskGraph {
    std::vector<std::vector<int>> fanout;
    std::vector<int> faninCount;

    int size() const { return static_cast<int>(faninCount.size()); }
};

/// Counters from one runTaskGraph call, for bench observability.
struct SchedulerStats {
    /// Worker count the run actually used (pool size, or 1 when serial) —
    /// distinct from the *requested* thread count, which may be 0 ("auto").
    int workers = 0;
    std::size_t tasksExecuted = 0;  ///< == graph.size() on success
    std::size_t steals = 0;  ///< tasks taken from another worker's deque
    /// High-water mark of the global ready frontier (tasks enqueued across
    /// every deque at one instant). 1 on a pure chain; ~width of the
    /// widest wave on a level-structured graph.
    std::size_t maxReadyDepth = 0;
    /// Per-worker fraction of its wall time spent inside task bodies
    /// (1.0 = never idle). One entry per pool worker; {1.0} when serial.
    std::vector<double> busyFraction;
    /// True when the run observed a tripped CancelToken: some bodies were
    /// skipped (or interrupted) and the run drained without executing them.
    bool cancelled = false;
    /// Bodies not run to completion because of cancellation (skipped
    /// outright, or unwound by CancelledError mid-body). On a cancelled
    /// run tasksExecuted + skippedTasks == graph.size(); on an uncancelled
    /// run skippedTasks == 0 and tasksExecuted keeps its historical
    /// meaning (== graph.size(), even down the exception drain path).
    std::size_t skippedTasks = 0;
    /// Failure-quarantine accounting, filled by the analysis layer (the
    /// scheduler itself never quarantines): tasks whose body threw and was
    /// captured per-net, tasks suppressed because an upstream net failed,
    /// and tasks degraded to pass-through instead of being suppressed.
    std::size_t failedTasks = 0;
    std::size_t quarantinedTasks = 0;
    std::size_t degradedTasks = 0;
};

/// Execute run(i) for every task of `graph`, each after all its fanins.
///
/// With `pool == nullptr` or a single-worker pool the tasks run inline in
/// deterministic Kahn order (ready queue FIFO, seeded and relaxed in index
/// order). Otherwise every pool worker runs a scheduling loop: own deque
/// first (newest-first — the task just unlocked, its inputs still warm),
/// then round-robin steals (oldest-first), then a condition-variable nap
/// until work appears or the run drains. The pool must be otherwise idle;
/// completion is detected with ThreadPool::wait().
///
/// Exceptions: the first exception thrown by any task is rethrown on the
/// calling thread after the run drains; once a task has thrown, the bodies
/// of not-yet-started tasks are skipped (their dependents still unlock, so
/// the run terminates). Throws LogicError if the graph has a cycle.
///
/// Cancellation: with a non-null `cancel`, every body runs inside a
/// CancelScope (so deep loops can pollCancellation()), and once the token
/// stops, remaining bodies are skipped while the graph still drains. A
/// cancelled run returns normally with stats.cancelled = true — it does
/// NOT throw — so the caller can harvest completed slots. CancelledError
/// thrown by a body counts the task as skipped, not failed. Coherence
/// guarantee for partial results: a dependent's pre-body check
/// happens-after its fanin's skip decision (deque mutex + pending
/// fetch_sub), so no executed task ever has a skipped fanin.
SchedulerStats runTaskGraph(const TaskGraph& graph,
                            const std::function<void(int)>& run,
                            ThreadPool* pool = nullptr,
                            const CancelToken* cancel = nullptr);

/// An induced subgraph of a TaskGraph plus the mapping back to the full
/// graph's task ids. Running `graph` with `run(fullId[sub])` executes
/// exactly the kept tasks, each after all its *kept* fanins.
struct RestrictedTaskGraph {
    TaskGraph graph;
    std::vector<int> fullId;  ///< sub id -> original task id, ascending
};

/// Induce the subgraph of `graph` on the tasks with keep[id] != 0 —
/// incremental re-analysis runs only the dirty cone this way. Edges
/// survive only when both endpoints are kept; a dropped intermediate task
/// does NOT splice its fanins to its fanouts, so `keep` must be closed
/// under "downstream of a kept task" for dependency order to be complete
/// (the dirty-cone marking guarantees this by construction). Sub ids are
/// assigned in ascending full-id order, so any topological numbering of
/// the full graph carries over to the restriction.
RestrictedTaskGraph restrictTaskGraph(const TaskGraph& graph,
                                      const std::vector<char>& keep);

}  // namespace sna::util

// Deterministic random source for property tests and workload generators.
//
// A thin wrapper over std::mt19937_64 with a fixed default seed so that test
// and bench runs are reproducible across machines.
#pragma once

#include <cstdint>
#include <random>

namespace sna::util {

class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [lo, hi] inclusive.
    int uniformInt(int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /// Bernoulli draw.
    bool chance(double p) {
        return std::bernoulli_distribution(p)(engine_);
    }

    std::mt19937_64& engine() { return engine_; }

private:
    std::mt19937_64 engine_;
};

}  // namespace sna::util

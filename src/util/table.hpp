// ASCII table formatter used by the bench harness to print paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace sna::util {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// with a header rule, matching the formatting used by all bench binaries.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    /// Append one data row; must have the same arity as the header.
    void addRow(std::vector<std::string> row);

    /// Render with column alignment and +-------+ rules.
    std::string str() const;

    std::size_t rows() const { return rows_.size(); }

    /// Format helper: fixed-point with `digits` decimals.
    static std::string num(double v, int digits = 3);
    /// Format helper: signed percentage with one decimal, e.g. "-22.0".
    static std::string pct(double fraction, int digits = 1);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace sna::util

#include "util/log.hpp"

#include <iostream>

namespace sna::log {

namespace {
Level g_level = Level::Warn;

const char* tag(Level level) {
    switch (level) {
        case Level::Debug: return "debug";
        case Level::Info:  return "info ";
        case Level::Warn:  return "warn ";
        case Level::Error: return "error";
        case Level::Off:   return "off  ";
    }
    return "?";
}
}  // namespace

void setLevel(Level level) { g_level = level; }

Level level() { return g_level; }

void emit(Level level, const std::string& message) {
    if (static_cast<int>(level) < static_cast<int>(g_level)) return;
    std::cerr << "[sna:" << tag(level) << "] " << message << '\n';
}

}  // namespace sna::log

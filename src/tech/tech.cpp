#include "tech/tech.hpp"

#include "util/error.hpp"

namespace sna::tech {

const WireLayer& Technology::layer(const std::string& layerName) const {
    for (const auto& l : layers) {
        if (l.name == layerName) return l;
    }
    throw ModelError("technology '" + name + "' has no layer '" + layerName +
                     "'");
}

namespace {

Technology make130() {
    Technology t;
    t.name = "cmos130";
    t.vdd = 1.2;
    t.lmin = 0.13e-6;
    t.wnUnit = 0.42e-6;
    t.wpUnit = 0.84e-6;

    spice::MosModel n;
    n.type = spice::MosType::Nmos;
    n.vt0 = 0.32;
    n.kp = 280e-6;
    n.lambda = 0.12;
    n.gamma = 0.25;
    n.phi = 0.75;
    n.cox = 9.0e-3;
    n.cgso = 2.8e-10;
    n.cgdo = 2.8e-10;
    n.cj = 1.1e-3;
    n.cjsw = 1.1e-10;
    n.ldiff = 0.34e-6;
    t.nmos = n;

    spice::MosModel p = n;
    p.type = spice::MosType::Pmos;
    p.vt0 = 0.30;
    p.kp = 115e-6;
    p.lambda = 0.14;
    p.gamma = 0.22;
    t.pmos = p;

    // Plausible per-µm parasitics at minimum width/spacing for the node.
    t.layers = {
        {"M2", 0.45, 0.045e-15, 0.085e-15},
        {"M4", 0.25, 0.060e-15, 0.110e-15},
        {"M6", 0.08, 0.075e-15, 0.095e-15},
    };
    return t;
}

Technology make90() {
    Technology t;
    t.name = "cmos090";
    t.vdd = 1.0;
    t.lmin = 0.09e-6;
    t.wnUnit = 0.30e-6;
    t.wpUnit = 0.60e-6;

    spice::MosModel n;
    n.type = spice::MosType::Nmos;
    n.vt0 = 0.28;
    n.kp = 350e-6;
    n.lambda = 0.16;
    n.gamma = 0.23;
    n.phi = 0.72;
    n.cox = 1.1e-2;
    n.cgso = 2.4e-10;
    n.cgdo = 2.4e-10;
    n.cj = 1.2e-3;
    n.cjsw = 1.2e-10;
    n.ldiff = 0.24e-6;
    t.nmos = n;

    spice::MosModel p = n;
    p.type = spice::MosType::Pmos;
    p.vt0 = 0.27;
    p.kp = 150e-6;
    p.lambda = 0.18;
    p.gamma = 0.20;
    t.pmos = p;

    t.layers = {
        {"M2", 0.80, 0.040e-15, 0.090e-15},
        {"M4", 0.42, 0.055e-15, 0.115e-15},
        {"M6", 0.15, 0.070e-15, 0.100e-15},
    };
    return t;
}

}  // namespace

const Technology& tech130() {
    static const Technology t = make130();
    return t;
}

const Technology& tech90() {
    static const Technology t = make90();
    return t;
}

std::vector<const Technology*> allTechnologies() {
    return {&tech130(), &tech90()};
}

}  // namespace sna::tech

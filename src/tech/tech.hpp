// Technology descriptions: synthetic 130 nm and 90 nm nodes.
//
// The paper evaluates on STMicroelectronics 0.13 µm and 90 nm processes,
// which are proprietary; these parameter sets are physically plausible
// stand-ins (supply, thresholds, square-law strengths, wire parasitics in
// the right ranges for those nodes). Every experiment compares models
// against golden simulation **on the same devices**, so the substitution
// preserves the paper's claims (see DESIGN.md, substitutions).
#pragma once

#include <string>
#include <vector>

#include "spice/mosfet.hpp"

namespace sna::tech {

/// Per-unit-length parasitics of a routing layer at minimum width/spacing.
struct WireLayer {
    std::string name;        ///< e.g. "M4"
    double rPerUm = 0.0;     ///< series resistance, ohm/µm
    double cgPerUm = 0.0;    ///< capacitance to ground, F/µm
    double ccPerUm = 0.0;    ///< coupling capacitance to one adjacent
                             ///< minimum-spaced neighbor, F/µm
};

struct Technology {
    std::string name;
    double vdd = 1.2;        ///< nominal supply, V
    double lmin = 0.13e-6;   ///< drawn channel length, m
    double wnUnit = 0.0;     ///< unit NMOS width (X1 inverter pulldown), m
    double wpUnit = 0.0;     ///< unit PMOS width (X1 inverter pullup), m
    spice::MosModel nmos;
    spice::MosModel pmos;
    std::vector<WireLayer> layers;

    const WireLayer& layer(const std::string& layerName) const;
};

/// The 0.13 µm node of the paper's main experiment (VDD = 1.2 V).
const Technology& tech130();

/// The 90 nm node of the paper's accuracy sweep (VDD = 1.0 V).
const Technology& tech90();

/// All bundled technologies, for parameterized tests and benches.
std::vector<const Technology*> allTechnologies();

}  // namespace sna::tech

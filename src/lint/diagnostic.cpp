#include "lint/diagnostic.hpp"

#include <sstream>

namespace sna::lint {

const char* severityName(Severity s) {
    switch (s) {
        case Severity::info:
            return "info";
        case Severity::warning:
            return "warning";
        case Severity::error:
            return "error";
    }
    return "unknown";
}

std::string Diagnostic::str() const {
    std::string out = rule;
    out += ' ';
    out += severityName(severity);
    out += " '";
    out += object;
    out += "': ";
    out += message;
    if (waived) out += " [waived]";
    return out;
}

std::size_t LintReport::count(Severity s) const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
        if (!d.waived && d.severity == s) ++n;
    }
    return n;
}

std::size_t LintReport::waivedCount() const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics) {
        if (d.waived) ++n;
    }
    return n;
}

std::string LintReport::summary() const {
    const auto plural = [](std::size_t n, const char* word) {
        std::string s = std::to_string(n) + ' ' + word;
        if (n != 1) s += 's';
        return s;
    };
    std::ostringstream os;
    os << "lint: " << plural(errors(), "error") << ", "
       << plural(warnings(), "warning") << ", " << infos() << " info";
    if (const std::size_t w = waivedCount(); w > 0) {
        os << " (" << w << " waived)";
    }
    return os.str();
}

namespace {

std::string lintErrorMessage(const LintReport& report) {
    std::string msg = "design lint failed: " + report.summary();
    for (const Diagnostic& d : report.diagnostics) {
        if (!d.waived && d.severity == Severity::error) {
            msg += "; first: " + d.str();
            break;
        }
    }
    return msg;
}

}  // namespace

LintError::LintError(LintReport report)
    : Error(lintErrorMessage(report)), report_(std::move(report)) {}

}  // namespace sna::lint

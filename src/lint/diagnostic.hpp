// Structured lint diagnostics — the record type of the design lint
// subsystem (lint/lint.hpp).
//
// Deliberately free of core/ includes: core::DesignNoiseOptions and
// core::AnalysisSnapshot carry these records, while the checker itself
// (lint/lint.cpp) runs over core::DesignIndex — keeping the record type
// standalone is what breaks that include cycle.
//
// Rule ID scheme ("SNA-Lxxx", stable across releases — waiver files and
// downstream tooling key on them):
//   SNA-L1xx  connectivity (netlist vs. parasitics)
//   SNA-L2xx  graph health (levelization side channels)
//   SNA-L3xx  timing windows
//   SNA-L4xx  library / characterization
//   SNA-L5xx  incremental-delta validity
//   SNA-L6xx  industry front end (.lib / Verilog / SDC cross-checks,
//             emitted by core/frontend.hpp's lintFrontEnd)
//   SNA-L7xx  analysis resilience (failed / quarantined / degraded nets,
//             appended after the solve by analyzeDesignOutcome)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace sna::lint {

enum class Severity {
    info,     ///< advisory; never gates a run
    warning,  ///< suspicious but analyzable; never gates a run
    error,    ///< malformed input the analysis would silently absorb
};

/// How the analysis pipeline reacts to lint findings
/// (core::DesignNoiseOptions::lint).
enum class Mode {
    off,     ///< no lint pass at all (the pre-lint behavior)
    warn,    ///< lint before solving; diagnostics attach to the run's
             ///< outputs, the analysis proceeds and is bit-identical to off
    strict,  ///< lint before solving; unwaived errors throw LintError and
             ///< nothing is solved
};

const char* severityName(Severity s);  ///< "info" / "warning" / "error"

/// One finding: a stable rule ID, a severity, the offending object
/// (net, instance, cell:pin, or window net), and a human message.
struct Diagnostic {
    std::string rule;  ///< "SNA-L101", ...
    Severity severity = Severity::warning;
    std::string object;   ///< net / instance / cell:pin the rule fired on
    std::string message;  ///< human-readable explanation
    bool waived = false;  ///< suppressed by a waiver (kept for reporting)

    /// "SNA-L101 error net 'x7': ..." — the canonical one-line rendering.
    std::string str() const;

    bool operator==(const Diagnostic& o) const {
        return rule == o.rule && severity == o.severity &&
               object == o.object && message == o.message &&
               waived == o.waived;
    }
};

/// The outcome of one lint pass, in deterministic (rule, object) firing
/// order. Waived diagnostics stay in the list (flagged) so reports can show
/// what was suppressed; all counts below ignore them.
struct LintReport {
    std::vector<Diagnostic> diagnostics;

    /// Unwaived diagnostics at exactly `s`.
    std::size_t count(Severity s) const;
    std::size_t errors() const { return count(Severity::error); }
    std::size_t warnings() const { return count(Severity::warning); }
    std::size_t infos() const { return count(Severity::info); }
    std::size_t waivedCount() const;
    bool hasErrors() const { return errors() > 0; }

    /// "lint: 2 errors, 1 warning, 0 info (3 waived)".
    std::string summary() const;
};

/// Thrown by strict-mode pipeline runs (core::DesignNoiseOptions::lint ==
/// Mode::strict) when unwaived errors survive: the full report rides along
/// so callers can render every finding, not just the first.
class LintError : public Error {
public:
    explicit LintError(LintReport report);
    const LintReport& report() const { return report_; }

private:
    LintReport report_;
};

}  // namespace sna::lint

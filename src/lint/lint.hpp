// Design lint: staged static validation of the netlist, parasitics,
// timing windows, and library *before* any cluster solves.
//
// A production signoff run must fail fast and loudly on malformed inputs —
// a SPEF coupling cap naming an unknown net, a timing window with lo > hi,
// or an undriven net with receivers would otherwise be silently absorbed
// and yield a quietly-optimistic margin. lintDesign runs rule families over
// the already-built core::DesignIndex (no second traversal of the netlist:
// every query below is an index hash lookup, plus exactly one pass over the
// instance list and one over the SPEF cap sections) and emits structured
// Diagnostics with stable rule IDs:
//
//   connectivity   SNA-L101 undriven SPEF net with receivers        error
//                  SNA-L102 driven SPEF net with no receivers       warning
//                  SNA-L103 coupling cap references unknown net     error
//                  SNA-L104 instance pin bound to missing net       error
//   graph health   SNA-L201 combinational cycle broken              warning
//                  SNA-L202 multiply-driven net                     warning
//   windows        SNA-L301 window with inverted/NaN bounds         error
//                  SNA-L302 window names unknown net                warning
//                  SNA-L303 explicit window narrower than its
//                           propagated fanin hull                   info
//   library        SNA-L401 uncharacterizable cell pin              error
//                  SNA-L402 non-monotone characterization           warning
//                  SNA-L403 NRC width grid does not cover the
//                           propagation width grid                  warning
//   delta          SNA-L501 delta names unknown net                 error
//                  SNA-L502 delta names unknown instance            error
//
// The front-end family (SNA-L601..L615: .lib binding, netlist-vs-library,
// SDC-vs-ports) lives in core/frontend.hpp's lintFrontEnd — it runs before
// a Design exists, so it cannot be a lintDesign stage — and feeds the same
// LintReport / waiver machinery.
//
// The stages run in the order above and each can be switched off; the
// characterization stage (the only one that simulates — load-curve sweeps
// and NRC bisections, shared with the analysis through the CharCache) is
// off by default. Diagnostics come back in deterministic order at any
// thread count.
//
// Pipeline wiring: core::DesignNoiseOptions::lint (off / warn / strict)
// runs this checker inside analyzeDesign right after the index is built;
// parser::parseWaivers + applyWaivers suppress known-benign findings by
// rule + object with unused-waiver reporting.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/design_index.hpp"
#include "core/report.hpp"
#include "lint/diagnostic.hpp"
#include "parser/waivers_parser.hpp"

namespace sna::core {
struct DesignDelta;  // core/incremental.hpp
}

namespace sna::lint {

struct LintOptions {
    /// The run's explicit switching windows (SNA-L3xx), or nullptr when the
    /// run has none. Falls back to index.timingWindows() when null there.
    const core::TimingWindows* windows = nullptr;
    /// The NRC probe grid the analysis will run with (SNA-L403 checks its
    /// coverage of the canonical propagation widths).
    core::NrcOptions nrc;
    /// Characterization cache shared with the analysis, so the deep stage's
    /// load curves / NRCs are computed once for both. nullptr: a private
    /// throwaway cache per call.
    charlib::CharCache* cache = nullptr;
    /// Load-curve grid density the deep stage characterizes at — keep equal
    /// to ClusterMacromodel::Options::loadCurveGrid so the cache keys match
    /// the analysis and the curves are shared, not recomputed.
    int loadCurveGrid = 33;
    /// Stage switches.
    bool connectivity = true;
    bool graph = true;
    bool windowRules = true;
    bool library = true;
    /// Deep library stage (SNA-L402): actually characterizes every victim
    /// driver's load curve and every receiver's NRC and checks the
    /// monotonicity each model guarantees. Simulation-priced; off by
    /// default.
    bool characterization = false;
};

/// Run every enabled stage over the indexed design. Deterministic; never
/// mutates the index beyond forcing its (lazily-built) level graph.
LintReport lintDesign(const core::DesignIndex& index,
                      const parser::SpefFile& spef,
                      const LintOptions& opt = {});

/// Delta validity (SNA-L501/L502): every net and instance a DesignDelta
/// names must exist in the design or the SPEF — a typo'd ECO delta would
/// otherwise mark nothing dirty and quietly splice stale results.
/// analyzeDesignIncremental runs this before touching the snapshot.
LintReport lintDelta(const core::Design& design, const parser::SpefFile& spef,
                     const core::DesignDelta& delta);

/// Mark every diagnostic matched by a waiver (rule must match exactly;
/// object must match exactly or be '*') and return the waivers that
/// matched nothing — a stale waiver is itself a finding.
std::vector<parser::Waiver> applyWaivers(
    LintReport& report, const std::vector<parser::Waiver>& waivers);

// ---- individual model checks (exposed for tests and for linting models
// that did not come from this run's library) ------------------------------

/// SNA-L402 on a load-curve table I_DC = f(v_in, v_out): a static CMOS
/// stage's DC output current is non-decreasing in v_out at any fixed v_in
/// (its output conductance is positive), so a decreasing run beyond the
/// numeric tolerance marks a broken characterization. `label` becomes the
/// diagnostic's object (e.g. "INV_X1:a").
std::optional<Diagnostic> checkLoadCurveMonotone(const la::Grid2d& curve,
                                                 const std::string& label);

/// SNA-L402 on a noise rejection curve: the failing height is guaranteed
/// non-increasing in width; an increasing run beyond the bisection
/// tolerance marks a broken characterization.
std::optional<Diagnostic> checkNrcMonotone(const la::Grid1d& nrc,
                                           const std::string& label);

}  // namespace sna::lint

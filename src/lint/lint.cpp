#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "charlib/char_cache.hpp"
#include "charlib/characterize.hpp"
#include "core/incremental.hpp"
#include "core/propagate.hpp"
#include "core/sna.hpp"
#include "util/error.hpp"

namespace sna::lint {

namespace {

void add(LintReport& r, const char* rule, Severity sev, std::string object,
         std::string message) {
    Diagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.object = std::move(object);
    d.message = std::move(message);
    r.diagnostics.push_back(std::move(d));
}

std::string ps(double seconds) {
    std::ostringstream os;
    os << seconds * 1e12 << " ps";
    return os.str();
}

std::string windowStr(const core::TimingWindow& w) {
    const auto bound = [](double v) -> std::string {
        if (std::isnan(v)) return "nan";
        if (std::isinf(v)) return v > 0 ? "+inf" : "-inf";
        std::ostringstream os;
        os << v * 1e12;
        return os.str();
    };
    return "[" + bound(w.earliest) + ", " + bound(w.latest) + "] ps";
}

std::string joinNames(const std::vector<std::string>& names) {
    std::string out;
    for (const std::string& n : names) {
        if (!out.empty()) out += ", ";
        out += "'" + n + "'";
    }
    return out;
}

/// Everything one pass over the instance list yields: the name sets the
/// connectivity and window rules test membership against, the sorted
/// worklists of the graph and library stages, and the SNA-L104 findings
/// themselves (an unbound pin is discovered exactly where it is scanned).
struct DesignSets {
    std::unordered_set<std::string> instanceNames;
    std::unordered_set<std::string> pinNets;  ///< every net bound to a pin
    std::set<std::string> outputNets;         ///< sorted, SNA-L202 worklist
    std::set<std::string> cellNames;          ///< sorted, SNA-L401 worklist
    std::vector<Diagnostic> l104;             ///< pins bound to no net
};

DesignSets scanInstances(const core::Design& design) {
    DesignSets s;
    const cell::CellLibrary& lib = design.library();
    for (const core::Instance& inst : design.instances()) {
        s.instanceNames.insert(inst.name);
        s.cellNames.insert(inst.cellName);
        for (const auto& [pin, net] : inst.pinToNet) {
            if (net.empty()) {
                Diagnostic d;
                d.rule = "SNA-L104";
                d.severity = Severity::error;
                d.object = inst.name + ":" + pin;
                d.message =
                    "pin is bound to no net (empty net name); the instance "
                    "can neither drive nor load anything through it";
                s.l104.push_back(std::move(d));
                continue;
            }
            s.pinNets.insert(net);
        }
        const cell::Cell& c = lib.cell(inst.cellName);
        const auto out = inst.pinToNet.find(c.outputName());
        if (out != inst.pinToNet.end() && !out->second.empty()) {
            s.outputNets.insert(out->second);
        }
    }
    return s;
}

// ------------------------------------------------------ connectivity (L1xx)

void lintConnectivity(const core::DesignIndex& index,
                      const parser::SpefFile& spef, const DesignSets& s,
                      LintReport& r) {
    for (const auto& [net, spefNet] : spef.nets()) {
        const core::Instance* drv = index.driverOf(net);
        const auto& loads = index.loadsOf(net);
        if (drv == nullptr && !loads.empty()) {
            add(r, "SNA-L101", Severity::error, net,
                "SPEF net has " + std::to_string(loads.size()) +
                    " receiver pin(s) but no driver in the design; its "
                    "noise verdict would be silently skipped");
        } else if (drv != nullptr && loads.empty()) {
            add(r, "SNA-L102", Severity::warning, net,
                "SPEF net is driven by '" + drv->name +
                    "' but no design pin receives it; noise on it is "
                    "checked against no receiver");
        }
    }
    // A coupling cap names two "net:node" (or bare-net) endpoints; an
    // endpoint whose owner is neither a SPEF net section nor a design
    // instance/net injects charge into — or couples noise from — something
    // that does not exist. One finding per unknown owner, first section
    // recorded, sorted by owner name.
    std::map<std::string, std::string> unknownOwners;
    for (const auto& [net, spefNet] : spef.nets()) {
        for (const parser::SpefCap& cap : spefNet.caps) {
            if (cap.node2.empty()) continue;  // grounded cap
            for (const std::string* node : {&cap.node1, &cap.node2}) {
                const std::string owner = node->substr(0, node->find(':'));
                if (spef.nets().count(owner) != 0 ||
                    s.instanceNames.count(owner) != 0 ||
                    s.pinNets.count(owner) != 0) {
                    continue;
                }
                unknownOwners.emplace(owner, net);
            }
        }
    }
    for (const auto& [owner, section] : unknownOwners) {
        add(r, "SNA-L103", Severity::error, owner,
            "coupling cap in SPEF section '" + section +
                "' references '" + owner +
                "', which is neither a SPEF net nor a design "
                "instance/net; its aggressor contribution is dangling");
    }
    for (const Diagnostic& d : s.l104) r.diagnostics.push_back(d);
}

// ------------------------------------------------------- graph health (L2xx)

void lintGraph(const core::DesignIndex& index, const DesignSets& s,
               LintReport& r) {
    for (const auto& [from, to] : index.levels().brokenEdges) {
        add(r, "SNA-L201", Severity::warning, from + "->" + to,
            "combinational cycle: levelization discarded the edge '" + from +
                "' -> '" + to +
                "'; noise propagated across it is not analyzed");
    }
    for (const std::string& net : s.outputNets) {
        const std::vector<std::string>& extra = index.extraDriversOf(net);
        if (extra.empty()) continue;
        add(r, "SNA-L202", Severity::warning, net,
            "net is driven by " + std::to_string(extra.size() + 1) +
                " instances; '" + index.driverOf(net)->name +
                "' (lexicographically smallest) is analyzed, " +
                joinNames(extra) + " are ignored");
    }
}

// ------------------------------------------------------------ windows (L3xx)

void lintWindows(const core::DesignIndex& index, const parser::SpefFile& spef,
                 const DesignSets& s, const LintOptions& opt, LintReport& r) {
    const core::TimingWindows* windows =
        opt.windows != nullptr ? opt.windows : index.timingWindows();
    if (windows == nullptr || windows->empty()) return;
    bool anyInvalid = false;
    for (const auto& [net, w] : windows->all()) {
        if (std::isnan(w.earliest) || std::isnan(w.latest)) {
            add(r, "SNA-L301", Severity::error, net,
                "timing window " + windowStr(w) +
                    " has a NaN bound; every overlap test against it is "
                    "false and the net silently drops out of the "
                    "worst-case combination");
            anyInvalid = true;
        } else if (w.empty()) {
            add(r, "SNA-L301", Severity::error, net,
                "timing window " + windowStr(w) +
                    " is inverted (earliest > latest): it contains no "
                    "instant, so the net can never collide with anything");
            anyInvalid = true;
        }
        if (spef.nets().count(net) == 0 && s.pinNets.count(net) == 0) {
            add(r, "SNA-L302", Severity::warning, net,
                "timing window names a net that exists neither in the "
                "design nor in the SPEF; the constraint binds nothing "
                "(typo, or stale windows file)");
        }
    }
    // SNA-L303: an explicit window tighter than what its fanin can actually
    // produce excludes real transitions from the noise search — optimistic,
    // but only provably so where the propagated hull bound is finite, and
    // deliberately advisory (info): disjoint artificial windows are a
    // legitimate what-if input. Skipped entirely when any window is
    // invalid — propagating NaN/empty windows would poison the hulls.
    if (anyInvalid) return;
    charlib::CharCache localCache;
    charlib::CharCache* cache =
        opt.cache != nullptr ? opt.cache : &localCache;
    const auto propagated = core::propagateWindows(index, cache, windows);
    const cell::CellLibrary& lib = index.design().library();
    for (const auto& [net, w] : windows->all()) {
        const std::vector<core::FaninEdge>& fanin = index.faninOf(net);
        if (fanin.empty()) continue;
        bool any = false;
        core::TimingWindow hull;
        for (const core::FaninEdge& edge : fanin) {
            const auto it = propagated.find(edge.fromNet);
            const core::TimingWindow up = it != propagated.end()
                                              ? it->second
                                              : core::TimingWindow::unbounded();
            const core::TimingWindow shifted =
                core::propagateWindowThroughDriver(
                    lib.cell(edge.inst->cellName), edge.pin, up, cache);
            hull = any ? hull.unite(shifted) : shifted;
            any = true;
        }
        const bool clipsEarly =
            std::isfinite(hull.earliest) && w.earliest > hull.earliest;
        const bool clipsLate =
            std::isfinite(hull.latest) && w.latest < hull.latest;
        if (clipsEarly || clipsLate) {
            add(r, "SNA-L303", Severity::info, net,
                "explicit window " + windowStr(w) +
                    " is narrower than the propagated fanin hull " +
                    windowStr(hull) +
                    "; transitions the fanin can produce are excluded "
                    "from the noise search");
        }
    }
}

// ------------------------------------------------------------ library (L4xx)

void lintLibrary(const core::DesignIndex& index, const DesignSets& s,
                 const LintOptions& opt, LintReport& r) {
    const cell::CellLibrary& lib = index.design().library();
    for (const std::string& cellName : s.cellNames) {
        const cell::Cell& c = lib.cell(cellName);
        for (const std::string& pin : c.inputNames()) {
            std::string why;
            for (const bool level : {false, true}) {
                try {
                    (void)c.holdingVector(level, pin);
                } catch (const ModelError& e) {
                    why = e.what();
                    break;
                }
            }
            if (!why.empty()) {
                add(r, "SNA-L401", Severity::error, cellName + ":" + pin,
                    "pin cannot be characterized (" + why +
                        "); any cluster that sensitizes it throws "
                        "mid-solve");
            }
        }
    }
    std::vector<double> grid;
    try {
        grid = opt.nrc.grid();
    } catch (const Error& e) {
        add(r, "SNA-L403", Severity::error, "nrc-width-grid",
            std::string("NRC width grid options are invalid (") + e.what() +
                "); every receiver check would throw");
        return;
    }
    const std::vector<double> widths = charlib::canonicalPropagationWidths();
    if (grid.size() < 2) {
        add(r, "SNA-L403", Severity::error, "nrc-width-grid",
            "NRC width grid has fewer than two points; the rejection "
            "curve cannot be interpolated");
        return;
    }
    const bool uncoveredLow = grid.front() > widths.front() * (1 + 1e-9);
    const bool uncoveredHigh = grid.back() < widths.back() * (1 - 1e-9);
    if (uncoveredLow || uncoveredHigh) {
        add(r, "SNA-L403", Severity::warning, "nrc-width-grid",
            "NRC probe grid [" + ps(grid.front()) + ", " + ps(grid.back()) +
                "] does not cover the canonical propagation widths [" +
                ps(widths.front()) + ", " + ps(widths.back()) +
                "]; glitches below the grid are clamped to it and wider "
                "ones fall back to uncached exact probes");
    }
}

// --------------------------------------------- deep characterization (L402)

void lintCharacterization(const core::DesignIndex& index,
                          const parser::SpefFile& spef,
                          const LintOptions& opt, LintReport& r) {
    charlib::CharCache localCache;
    charlib::CharCache* cache =
        opt.cache != nullptr ? opt.cache : &localCache;
    const cell::CellLibrary& lib = index.design().library();
    // Victim selection mirrors analyzeDesign: SPEF nets with coupling, a
    // design driver, and at least one load. Drivers contribute their load
    // curve, the first load its NRC — the same (cell, pin, level) keys the
    // analysis characterizes, so a shared cache computes each model once.
    std::set<std::pair<std::string, std::string>> driverPins;
    std::set<std::string> receiverCells;
    for (const auto& [net, spefNet] : spef.nets()) {
        if (index.couplingOf(net).empty()) continue;
        const core::Instance* drv = index.driverOf(net);
        if (drv == nullptr) continue;
        const auto& loads = index.loadsOf(net);
        if (loads.empty()) continue;
        const cell::Cell& dc = lib.cell(drv->cellName);
        if (!dc.inputNames().empty()) {
            driverPins.emplace(drv->cellName, dc.inputNames().front());
        }
        receiverCells.insert(loads.front().first->cellName);
    }
    for (const auto& [cellName, input] : driverPins) {
        for (const bool level : {false, true}) {
            charlib::LoadCurveSpec lc;
            lc.cell = &lib.cell(cellName);
            lc.input = input;
            lc.outputLevel = level;
            lc.nVin = lc.nVout = opt.loadCurveGrid;
            std::optional<Diagnostic> d;
            try {
                d = checkLoadCurveMonotone(*cache->loadCurve(lc),
                                           cellName + ":" + input);
            } catch (const Error&) {
                continue;  // uncharacterizable pins are SNA-L401's finding
            }
            if (d) {
                r.diagnostics.push_back(std::move(*d));
                break;  // one finding per (cell, pin)
            }
        }
    }
    std::vector<double> grid;
    try {
        grid = opt.nrc.grid();
    } catch (const Error&) {
        return;  // already reported as SNA-L403
    }
    if (grid.size() < 2) return;
    for (const std::string& cellName : receiverCells) {
        const cell::Cell& c = lib.cell(cellName);
        if (c.inputNames().empty()) continue;
        for (const bool quiet : {false, true}) {
            charlib::NrcSpec ns;
            ns.cell = &c;
            ns.input = c.inputNames().front();
            ns.quietLevel = quiet;
            ns.widths = grid;
            std::optional<Diagnostic> d;
            try {
                d = checkNrcMonotone(*cache->nrc(ns), cellName);
            } catch (const Error&) {
                continue;  // quiet level not sensitizable on this pin
            }
            if (d) {
                r.diagnostics.push_back(std::move(*d));
                break;  // one finding per cell
            }
        }
    }
}

}  // namespace

LintReport lintDesign(const core::DesignIndex& index,
                      const parser::SpefFile& spef, const LintOptions& opt) {
    LintReport r;
    const DesignSets s = scanInstances(index.design());
    if (opt.connectivity) lintConnectivity(index, spef, s, r);
    if (opt.graph) lintGraph(index, s, r);
    if (opt.windowRules) lintWindows(index, spef, s, opt, r);
    if (opt.library) lintLibrary(index, s, opt, r);
    if (opt.characterization) lintCharacterization(index, spef, opt, r);
    return r;
}

LintReport lintDelta(const core::Design& design, const parser::SpefFile& spef,
                     const core::DesignDelta& delta) {
    LintReport r;
    std::unordered_set<std::string> instanceNames;
    std::unordered_set<std::string> designNets;
    for (const core::Instance& inst : design.instances()) {
        instanceNames.insert(inst.name);
        for (const auto& [pin, net] : inst.pinToNet) {
            if (!net.empty()) designNets.insert(net);
        }
    }
    const std::set<std::string> nets(delta.nets.begin(), delta.nets.end());
    for (const std::string& net : nets) {
        if (designNets.count(net) != 0 || spef.nets().count(net) != 0) {
            continue;
        }
        add(r, "SNA-L501", Severity::error, net,
            "delta names a net that exists neither in the design nor in "
            "the SPEF; it marks nothing dirty, so the incremental run "
            "would silently splice stale results");
    }
    const std::set<std::string> insts(delta.instances.begin(),
                                      delta.instances.end());
    for (const std::string& inst : insts) {
        if (instanceNames.count(inst) != 0) continue;
        add(r, "SNA-L502", Severity::error, inst,
            "delta names an instance that does not exist in the design; "
            "it marks nothing dirty, so the incremental run would "
            "silently splice stale results");
    }
    return r;
}

std::vector<parser::Waiver> applyWaivers(
    LintReport& report, const std::vector<parser::Waiver>& waivers) {
    std::vector<bool> used(waivers.size(), false);
    for (Diagnostic& d : report.diagnostics) {
        for (std::size_t i = 0; i < waivers.size(); ++i) {
            const parser::Waiver& w = waivers[i];
            if (w.rule != d.rule) continue;
            if (w.object != "*" && w.object != d.object) continue;
            d.waived = true;
            used[i] = true;  // keep scanning: every matching waiver is used
        }
    }
    std::vector<parser::Waiver> unused;
    for (std::size_t i = 0; i < waivers.size(); ++i) {
        if (!used[i]) unused.push_back(waivers[i]);
    }
    return unused;
}

std::optional<Diagnostic> checkLoadCurveMonotone(const la::Grid2d& curve,
                                                 const std::string& label) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t ix = 0; ix < curve.xs().size(); ++ix) {
        for (std::size_t iy = 0; iy < curve.ys().size(); ++iy) {
            lo = std::min(lo, curve.at(ix, iy));
            hi = std::max(hi, curve.at(ix, iy));
        }
    }
    // Output conductance of a static CMOS stage is positive, so I_sink must
    // be non-decreasing in v_out at every fixed v_in; allow solver noise.
    const double tol = 1e-6 * (hi - lo) + 1e-18;
    for (std::size_t ix = 0; ix < curve.xs().size(); ++ix) {
        for (std::size_t iy = 0; iy + 1 < curve.ys().size(); ++iy) {
            const double a = curve.at(ix, iy);
            const double b = curve.at(ix, iy + 1);
            if (b < a - tol) {
                Diagnostic d;
                d.rule = "SNA-L402";
                d.severity = Severity::warning;
                d.object = label;
                std::ostringstream os;
                os << "load curve is not monotone in v_out: at v_in = "
                   << curve.xs()[ix] << " V the sunk current drops from "
                   << a << " A (v_out = " << curve.ys()[iy] << " V) to " << b
                   << " A (v_out = " << curve.ys()[iy + 1]
                   << " V); holding resistance and the macromodel solve "
                      "are untrustworthy";
                d.message = os.str();
                return d;
            }
        }
    }
    return std::nullopt;
}

std::optional<Diagnostic> checkNrcMonotone(const la::Grid1d& nrc,
                                           const std::string& label) {
    double peak = 0.0;
    for (const double y : nrc.ys()) peak = std::max(peak, std::abs(y));
    // The failing height is non-increasing in width (a wider glitch is at
    // least as damaging); allow the bisection's own resolution.
    const double tol = 1e-3 * peak + 1e-12;
    for (std::size_t i = 0; i + 1 < nrc.ys().size(); ++i) {
        if (nrc.ys()[i + 1] > nrc.ys()[i] + tol) {
            Diagnostic d;
            d.rule = "SNA-L402";
            d.severity = Severity::warning;
            d.object = label;
            std::ostringstream os;
            os << "noise rejection curve is not monotone: the failing "
                  "height rises from "
               << nrc.ys()[i] << " V at " << ps(nrc.xs()[i]) << " to "
               << nrc.ys()[i + 1] << " V at " << ps(nrc.xs()[i + 1])
               << "; wider glitches must be at least as damaging, so the "
                  "characterization is broken";
            d.message = os.str();
            return d;
        }
    }
    return std::nullopt;
}

}  // namespace sna::lint
